"""Bench: regenerate the MTTF analysis (paper Equations 4-7)."""

import pytest

from repro.experiments import mttf


def test_mttf_regeneration(benchmark):
    result = benchmark(mttf.run, mc_samples=50_000)
    print()
    print(result.format())
    assert result.row("MTTF baseline").measured == pytest.approx(
        354_358, rel=0.01
    )
    assert result.row("MTTF protected (paper Eq.5)").measured == pytest.approx(
        2_190_696, rel=0.01
    )
    # the headline: ~6x more reliable than the baseline
    assert result.row("reliability improvement (paper)").measured == pytest.approx(
        6.0, abs=0.3
    )
    # MC must validate the exact E[max] formula within 2 %
    exact = result.row("MTTF protected (exact E[max] formula)").measured
    mc = result.row("MTTF protected (Monte-Carlo E[max])").measured
    assert mc == pytest.approx(exact, rel=0.02)
