"""Bench: regenerate paper Figure 8 — PARSEC latency under faults.

Quick (4x4) configuration by default; ``REPRO_BENCH_FULL=1`` runs the
paper-scale 8x8 configuration and tightens the assertions to the +13 %
headline band.
"""

import time

import pytest

from conftest import full_scale, run_once, write_bench_json
from repro.experiments import fig8
from repro.experiments.latency import overall_overhead


def test_fig8_regeneration(benchmark, latency_config):
    t0 = time.perf_counter()
    result = run_once(benchmark, fig8.run, cfg=latency_config)
    elapsed = time.perf_counter() - t0
    print()
    print(result.format())
    apps = result.extras["results"]
    assert len(apps) == 9  # the full PARSEC surrogate set
    for a in apps:
        assert a.faulty >= a.fault_free * 0.99
        assert a.faulty_result.drained or a.faulty_result.stats.measured_packets > 0
    overall = overall_overhead(apps)
    if full_scale():
        # the paper's headline: ~13 % overall
        assert 0.05 <= overall <= 0.25
    else:
        assert 0.0 <= overall <= 0.35
    write_bench_json(
        {
            "fig8_regen_s": round(elapsed, 4),
            "fig8_apps": len(apps),
            "fig8_overall_overhead_x": round(overall, 4),
        }
    )
