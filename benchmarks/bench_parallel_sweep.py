"""Engineering benchmark: serial vs parallel sweep execution.

Times a sweep-shaped experiment (the ``load_latency`` curve — one
independent simulation per point) through :mod:`repro.experiments.parallel`
serially and with ``jobs=2``, asserting that (a) the results are
bit-identical (the engine's determinism guarantee) and (b) on a machine
with at least two usable cores, the parallel run achieves a >= 1.5x
speedup.  On a single-core runner the speedup assertion is skipped —
there is nothing to parallelise onto — but the determinism check still
runs, so the engine's correctness is always exercised.

Also times the Table III Monte-Carlo campaign (trial sharding rather
than point sharding) both ways.
"""

import os
import time

import numpy as np
import pytest

from repro.experiments.load_latency import sweep_sharded
from repro.reliability.spf import monte_carlo_faults_to_failure

RATES = (0.04, 0.08, 0.12, 0.16)
MEASURE = 1200


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - t0


def test_load_latency_parallel_speedup(benchmark):
    (serial_points, _), serial_s = _timed(
        sweep_sharded, RATES, measure=MEASURE, num_faults=16
    )

    def parallel():
        return sweep_sharded(RATES, measure=MEASURE, num_faults=16, jobs=2)

    (parallel_points, report) = benchmark.pedantic(
        parallel, rounds=1, iterations=1, warmup_rounds=0
    )
    parallel_s = report.wall_time

    # determinism: jobs is a pure wall-clock knob
    assert serial_points[0] == parallel_points[0]
    assert serial_points == parallel_points

    speedup = serial_s / parallel_s
    print(
        f"\nload_latency sweep: serial {serial_s:.2f}s, "
        f"jobs=2 {parallel_s:.2f}s -> {speedup:.2f}x "
        f"({_usable_cores()} usable core(s))"
    )
    if _usable_cores() >= 2:
        assert speedup >= 1.5, (
            f"expected >= 1.5x speedup at jobs=2, got {speedup:.2f}x"
        )
    else:
        pytest.skip(
            f"single usable core: measured {speedup:.2f}x, "
            "speedup assertion needs >= 2 cores"
        )


def test_spf_monte_carlo_parallel_speedup(benchmark):
    trials = 4000
    serial_mc, serial_s = _timed(
        monte_carlo_faults_to_failure, trials=trials, rng=1
    )

    def parallel():
        return monte_carlo_faults_to_failure(trials=trials, rng=1, jobs=2)

    parallel_mc = benchmark.pedantic(
        parallel, rounds=1, iterations=1, warmup_rounds=0
    )

    assert np.array_equal(serial_mc.samples, parallel_mc.samples)

    parallel_s = parallel_mc.sweep.wall_time
    speedup = serial_s / parallel_s
    print(
        f"\nspf monte carlo ({trials} trials): serial {serial_s:.2f}s, "
        f"jobs=2 {parallel_s:.2f}s -> {speedup:.2f}x "
        f"({_usable_cores()} usable core(s))"
    )
    if _usable_cores() >= 2:
        assert speedup >= 1.5, (
            f"expected >= 1.5x speedup at jobs=2, got {speedup:.2f}x"
        )
