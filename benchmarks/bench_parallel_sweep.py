"""Engineering benchmark: serial vs parallel sweep execution.

Times a sweep-shaped experiment (the ``load_latency`` curve — one
independent simulation per point) through :mod:`repro.experiments.parallel`
serially and with ``jobs=2``, asserting that (a) the results are
bit-identical (the engine's determinism guarantee) and (b) on a machine
with at least two usable cores, the parallel run achieves a >= 1.5x
speedup.  On a single-core runner the speedup assertion is skipped —
there is nothing to parallelise onto — but the determinism check still
runs, so the engine's correctness is always exercised.

Also times the Table III Monte-Carlo campaign (trial sharding rather
than point sharding) both ways, and the warm-network pool against cold
per-point construction on a Figure 7-style repeated-run shape.

Set ``REPRO_BENCH_JSON=<path>`` to write the measurements as JSON (the
CI job uploads it as the ``BENCH_parallel_sweep.json`` artifact and
gates it with ``compare_bench.py``).  Parallel-speedup keys are only
emitted on machines with >= 2 usable cores — a single-core baseline
must not demand them from multi-core runs, nor vice versa.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.experiments.latency import LatencyConfig, run_app
from repro.experiments.load_latency import sweep_sharded
from repro.network import warm
from repro.reliability.spf import monte_carlo_faults_to_failure
from repro.router.flit import reset_packet_ids
from repro.traffic.apps import app_profile

RATES = (0.04, 0.08, 0.12, 0.16)
MEASURE = 1200


def _write_json(payload: dict) -> None:
    path = os.environ.get("REPRO_BENCH_JSON", "")
    if not path:
        return
    existing = {}
    if os.path.exists(path):
        with open(path) as fp:
            existing = json.load(fp)
    existing.update(payload)
    with open(path, "w") as fp:
        json.dump(existing, fp, indent=2, sort_keys=True)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - t0


def test_load_latency_parallel_speedup(benchmark):
    (serial_points, _), serial_s = _timed(
        sweep_sharded, RATES, measure=MEASURE, num_faults=16
    )

    def parallel():
        return sweep_sharded(RATES, measure=MEASURE, num_faults=16, jobs=2)

    (parallel_points, report) = benchmark.pedantic(
        parallel, rounds=1, iterations=1, warmup_rounds=0
    )
    parallel_s = report.wall_time

    # determinism: jobs is a pure wall-clock knob
    assert serial_points[0] == parallel_points[0]
    assert serial_points == parallel_points

    speedup = serial_s / parallel_s
    print(
        f"\nload_latency sweep: serial {serial_s:.2f}s, "
        f"jobs=2 {parallel_s:.2f}s -> {speedup:.2f}x "
        f"({_usable_cores()} usable core(s))"
    )
    if _usable_cores() >= 2:
        _write_json({"load_latency_parallel_speedup": round(speedup, 2)})
        assert speedup >= 1.5, (
            f"expected >= 1.5x speedup at jobs=2, got {speedup:.2f}x"
        )
    else:
        pytest.skip(
            f"single usable core: measured {speedup:.2f}x, "
            "speedup assertion needs >= 2 cores"
        )


def test_warm_pool_amortizes_construction(benchmark):
    """Figure 7-style shape: many short runs of one structural 8x8
    configuration.  The warm pool must produce bit-identical results and
    never be slower than cold per-run construction (the construction
    share it amortizes is reported)."""
    cfg = LatencyConfig(
        warmup_cycles=100,
        measure_cycles=300,
        drain_cycles=3000,
        num_faults=32,
    )
    profile = app_profile("fft")
    points = (False, True, False, True, False, True)

    def run_points():
        out = []
        for faulty in points:
            reset_packet_ids()
            out.append(run_app(profile, cfg, faulty))
        return out

    def cold_points():
        out = []
        for faulty in points:
            reset_packet_ids()
            warm.clear_pool()  # force construction for every point
            out.append(run_app(profile, cfg, faulty))
        return out

    cold, cold_s = _timed(cold_points)

    warm.clear_pool()
    warm.drain_setup_seconds()
    run_points()  # prime the pool, then measure steady-state reuse
    warm.drain_setup_seconds()
    box = {}

    def warm_run():
        out, box["s"] = _timed(run_points)
        return out

    warmed = benchmark.pedantic(
        warm_run, rounds=1, iterations=1, warmup_rounds=0
    )
    warm_s = box["s"]
    setup_s = warm.drain_setup_seconds()

    for a, b in zip(cold, warmed):
        assert a.stats.summary() == b.stats.summary()

    ratio = cold_s / warm_s
    print(
        f"\nfig7-style x{len(points)} points: cold {cold_s:.2f}s, "
        f"warm {warm_s:.2f}s (setup {setup_s:.3f}s) -> {ratio:.2f}x"
    )
    _write_json({"warm_pool_speedup_x": round(ratio, 2)})
    assert ratio >= 0.9, (
        f"warm pool slower than cold construction: {ratio:.2f}x"
    )


def test_spf_monte_carlo_parallel_speedup(benchmark):
    trials = 4000
    serial_mc, serial_s = _timed(
        monte_carlo_faults_to_failure, trials=trials, rng=1
    )

    def parallel():
        return monte_carlo_faults_to_failure(trials=trials, rng=1, jobs=2)

    parallel_mc = benchmark.pedantic(
        parallel, rounds=1, iterations=1, warmup_rounds=0
    )

    assert np.array_equal(serial_mc.samples, parallel_mc.samples)

    parallel_s = parallel_mc.sweep.wall_time
    speedup = serial_s / parallel_s
    print(
        f"\nspf monte carlo ({trials} trials): serial {serial_s:.2f}s, "
        f"jobs=2 {parallel_s:.2f}s -> {speedup:.2f}x "
        f"({_usable_cores()} usable core(s))"
    )
    if _usable_cores() >= 2:
        _write_json({"spf_mc_parallel_speedup": round(speedup, 2)})
        assert speedup >= 1.5, (
            f"expected >= 1.5x speedup at jobs=2, got {speedup:.2f}x"
        )
