"""Bench: regenerate paper Table III (SPF comparison)."""

import pytest

from repro.experiments import table3


def test_table3_regeneration(benchmark):
    result = benchmark(table3.run, mc_trials=300)
    print()
    print(result.format())
    # the published comparison rows
    assert result.row("BulletProof: SPF").measured == pytest.approx(2.07, abs=0.01)
    assert result.row("Vicis: SPF").measured == pytest.approx(6.55, abs=0.01)
    assert result.row("RoCo: SPF").measured == pytest.approx(5.5, abs=0.01)
    # the proposed router: SPF ~11.4 and the ordering holds
    assert result.row("Proposed Router: SPF").measured == pytest.approx(
        11.4, abs=0.5
    )
    assert result.row("proposed router has highest SPF").measured is True
    # min-faults sanity from the Monte-Carlo
    assert result.row("proposed: MC min faults").measured == 2
