"""Bench: regenerate paper Table II (correction-circuitry FIT values)."""

import pytest

from repro.experiments import table2


def test_table2_regeneration(benchmark):
    result = benchmark(table2.run)
    print()
    print(result.format())
    for stage, paper in (("RC", 117.0), ("VA", 60.0), ("SA", 53.0), ("XB", 416.0)):
        assert result.row(f"FIT({stage} correction)").measured == pytest.approx(
            paper
        )
    assert result.row("FIT(total correction)").measured == pytest.approx(646.0)
