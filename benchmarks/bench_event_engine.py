"""Engineering benchmark: the event-driven engine vs per-cycle stepping.

Not a paper artefact — pins the speedup the skip-ahead loop buys on the
workload shapes it exists for (see ``docs/performance.md``):

* **drain-heavy**: a cycle-0 burst followed by a long, almost entirely
  idle measurement window — the fig7/fig8 drain-tail regime.  The event
  engine must jump the idle stretch wholesale; the acceptance floor is a
  >= 2x wall-clock speedup over the identical per-cycle run.
* **low-injection**: sparse SPLASH-2-like load where long quiet gaps
  separate packet bursts; the vectorised traffic lookahead scans whole
  chunks per RNG call instead of stepping each cycle.

Both cases also re-assert bit-identity between the two loop flavours —
a speedup from diverging behaviour would be a bug, not a win.

Set ``REPRO_BENCH_JSON=<path>`` to write the per-case wall times and
speedups as JSON (the CI job uploads it as the
``BENCH_event_engine.json`` artifact).
"""

import json
import os
import time

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.network.simulator import NoCSimulator
from repro.router.flit import Packet, reset_packet_ids
from repro.traffic.generator import SyntheticTraffic, TraceTraffic


def _write_json(payload: dict) -> None:
    path = os.environ.get("REPRO_BENCH_JSON", "")
    if not path:
        return
    existing = {}
    if os.path.exists(path):
        with open(path) as fp:
            existing = json.load(fp)
    existing.update(payload)
    with open(path, "w") as fp:
        json.dump(existing, fp, indent=2, sort_keys=True)


def _drain_heavy_sim(event_driven: bool) -> NoCSimulator:
    """Cycle-0 burst, then a 30k-cycle idle measurement window."""
    reset_packet_ids()
    net = NetworkConfig(
        width=8, height=8, router=RouterConfig(num_vcs=4, num_vnets=2)
    )
    burst = [
        Packet(
            src=node,
            dest=(node + 13) % net.num_nodes,
            size_flits=5,
            vnet=0,
            creation_cycle=0,
        )
        for node in range(net.num_nodes)
    ]
    return NoCSimulator(
        net,
        SimulationConfig(
            warmup_cycles=0, measure_cycles=30_000, drain_cycles=5000, seed=1
        ),
        TraceTraffic(burst),
        event_driven=event_driven,
    )


def _low_injection_sim(event_driven: bool) -> NoCSimulator:
    """Sparse Bernoulli load: quiet gaps dominate the window."""
    reset_packet_ids()
    net = NetworkConfig(width=8, height=8)
    return NoCSimulator(
        net,
        SimulationConfig(
            warmup_cycles=100,
            measure_cycles=50_000,
            drain_cycles=5000,
            seed=3,
        ),
        SyntheticTraffic(net, injection_rate=5e-5, rng=3),
        event_driven=event_driven,
    )


def _best_of(sim_factory, event_driven: bool, rounds: int = 3):
    """Best wall time over ``rounds`` fresh runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        sim = sim_factory(event_driven)
        t0 = time.perf_counter()
        result = sim.run()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _compare(name: str, sim_factory, benchmark):
    per_cycle_s, per_cycle = _best_of(sim_factory, event_driven=False)
    samples = []

    def timed():
        sim = sim_factory(True)
        t0 = time.perf_counter()
        res = sim.run()
        samples.append(time.perf_counter() - t0)
        return res

    event = benchmark.pedantic(
        timed, rounds=3, iterations=1, warmup_rounds=1
    )
    event_s = min(samples)

    # a speedup earned by divergence would be a bug: both loop flavours
    # must produce the same run, bit for bit
    assert event.cycles == per_cycle.cycles
    assert event.drained == per_cycle.drained
    assert event.stats.summary() == per_cycle.stats.summary()

    speedup = per_cycle_s / event_s if event_s > 0 else float("inf")
    _write_json(
        {
            f"{name}_event_s": round(event_s, 4),
            f"{name}_per_cycle_s": round(per_cycle_s, 4),
            f"{name}_speedup": round(speedup, 2),
        }
    )
    return speedup


def test_drain_heavy_speedup(benchmark):
    speedup = _compare("drain_heavy", _drain_heavy_sim, benchmark)
    # acceptance floor: the idle tail must be skipped, not stepped
    assert speedup >= 2.0, f"drain-heavy speedup {speedup:.2f}x < 2x"


def test_low_injection_speedup(benchmark):
    speedup = _compare("low_injection", _low_injection_sim, benchmark)
    # sparse loads still step every busy cycle; the win is smaller but
    # must not regress below parity by more than measurement noise
    assert speedup >= 1.1, f"low-injection speedup {speedup:.2f}x"
