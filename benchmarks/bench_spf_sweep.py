"""Bench: Section VIII-E sensitivity — SPF vs VC count (and the ablation
on VC provisioning as a reliability knob)."""

import pytest

from repro.experiments import spf_sweep


def test_spf_sweep_regeneration(benchmark):
    result = benchmark(spf_sweep.run)
    print()
    print(result.format())
    sweep = result.extras["sweep"]
    # paper: SPF 7 at 2 VCs, 11.4 at 4 VCs, larger beyond
    assert sweep[2].spf == pytest.approx(7.0, abs=0.6)
    assert sweep[4].spf == pytest.approx(11.4, abs=0.5)
    assert result.row("SPF monotonically increases with VCs").measured is True
    assert result.row("SPF beyond 4 VCs exceeds the 4-VC value").measured is True
