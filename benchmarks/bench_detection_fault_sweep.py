"""Bench (extensions): detection latency + latency-vs-fault-count sweep."""

import pytest

from conftest import run_once
from repro.experiments import detection_latency, fault_sweep
from repro.experiments.latency import QUICK_CONFIG


def test_detection_latency(benchmark):
    result = run_once(
        benchmark, detection_latency.run, measure_cycles=2000,
        num_faults=20, seed=4,
    )
    print()
    print(result.format())
    injected = result.row("faults injected").measured
    latent = result.row("latent-spare injections (unobservable)").measured
    detected = result.row("observable faults detected").measured
    pending = result.row("still-latent at end of run").measured
    assert injected == latent + detected + pending
    assert detected > 0
    assert result.row("every observed detection after injection").measured is True


def test_fault_sweep(benchmark):
    result = run_once(
        benchmark, fault_sweep.run, fault_counts=(0, 8, 16, 32),
        app="ocean", cfg=QUICK_CONFIG,
    )
    print()
    print(result.format())
    rows = result.extras["rows"]
    # the shape: more tolerated faults, more latency — never less
    assert result.row("overhead non-decreasing in fault count").measured is True
    assert rows[-1][1] > rows[0][1]
