"""Ablation: VA arbiter sharing vs no protection (Section V-B1).

Removing the sharing mechanism turns a VA stage-1 arbiter fault back into
the baseline behaviour: the affected VC's head flit blocks forever, the
input port backs up, and the network wedges.  With sharing, the same
fault costs at most occasional +1-cycle waits.
"""

import pytest

from conftest import run_once
from repro.config import (
    NetworkConfig,
    PORT_WEST,
    RouterConfig,
    SimulationConfig,
)
from repro.core.protected_router import protected_router_factory
from repro.faults.injector import ExplicitFaultSchedule
from repro.faults.sites import FaultSite, FaultUnit
from repro.network.simulator import NoCSimulator, baseline_router_factory
from repro.traffic.generator import SyntheticTraffic


def run_router(protected: bool):
    net = NetworkConfig(width=4, height=4, router=RouterConfig(num_vcs=4))
    victim = net.node_id(1, 1)
    # fault every VC's arbiter set except one: sharing carries the port
    # through; without sharing (baseline) the port wedges
    schedule = ExplicitFaultSchedule(
        [
            (0, FaultSite(victim, FaultUnit.VA1_ARBITER_SET, PORT_WEST, v))
            for v in range(3)
        ]
    )
    factory = (
        protected_router_factory(net) if protected else baseline_router_factory(net)
    )
    sim = NoCSimulator(
        net,
        SimulationConfig(
            warmup_cycles=300,
            measure_cycles=3000,
            drain_cycles=4000,
            seed=5,
            watchdog_cycles=1500,
        ),
        SyntheticTraffic(net, injection_rate=0.10, rng=5),
        router_factory=factory,
        fault_schedule=schedule,
    )
    return sim.run()


def test_sharing_vs_unprotected(benchmark):
    def measure():
        return run_router(True), run_router(False)

    with_sharing, without = run_once(benchmark, measure)
    print(
        f"\nsharing: lat={with_sharing.avg_network_latency:.2f} "
        f"blocked={with_sharing.blocked}"
        f"  unprotected: delivered={without.stats.packets_ejected}/"
        f"{without.stats.packets_created} blocked={without.blocked}"
    )
    # with sharing: everything delivered, mechanism exercised
    assert not with_sharing.blocked and with_sharing.drained
    assert with_sharing.router_stats.va_borrowed_grants > 0
    # without: the port wedges — packets pile up undelivered
    assert without.blocked or not without.drained
    assert without.stats.packets_ejected < without.stats.packets_created
