"""Engineering benchmark: vectorized reliability Monte-Carlo kernels.

PR "amortize per-run costs" rewrote the trial loops of the reliability
Monte-Carlos as batched NumPy / bisection fast paths, keeping the
original scalar loops as references.  This benchmark times each fast
path against its retained oracle, asserts the >= 1.5x speedup the
rework promises, and — because the fast paths are pinned bit-identical,
not statistically close — asserts exact equality of the results while
it is at it:

* ``simulated_faults_to_failure`` — warm-router + prefix-bisection
  campaign vs fresh-router probe-every-injection loop,
* ``_fabric_trial_chunk`` — union-find disconnection kernel vs per-kill
  `networkx` strong-connectivity scans,
* ``monte_carlo_mttf`` — batched exponential draws vs one draw per call.

Set ``REPRO_BENCH_JSON=<path>`` to write the measured speedups as JSON
(the CI job uploads it as the ``BENCH_mc_reliability.json`` artifact).
"""

import json
import os
import time

import numpy as np

from repro.config import NetworkConfig
from repro.reliability.mttf import (
    monte_carlo_mttf,
    monte_carlo_mttf_reference,
)
from repro.reliability.network_level import (
    _fabric_trial_chunk,
    _fabric_trial_chunk_reference,
)
from repro.reliability.spf_simulation import simulated_faults_to_failure


def _write_json(payload: dict) -> None:
    path = os.environ.get("REPRO_BENCH_JSON", "")
    if not path:
        return
    existing = {}
    if os.path.exists(path):
        with open(path) as fp:
            existing = json.load(fp)
    existing.update(payload)
    with open(path, "w") as fp:
        json.dump(existing, fp, indent=2, sort_keys=True)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _report(name: str, ref_s: float, fast_s: float) -> float:
    speedup = ref_s / fast_s
    print(
        f"\n{name}: reference {ref_s:.3f}s, fast {fast_s:.3f}s "
        f"-> {speedup:.1f}x"
    )
    _write_json({f"{name}_speedup_x": round(speedup, 2)})
    return speedup


def test_spf_campaign_speedup(benchmark):
    trials, rng = 24, 3
    box = {}

    def fast():
        out, s = _timed(
            lambda: simulated_faults_to_failure(trials=trials, rng=rng)
        )
        box["s"] = s
        return out

    fast_res = benchmark.pedantic(
        fast, rounds=1, iterations=1, warmup_rounds=1
    )
    ref_res, ref_s = _timed(
        lambda: simulated_faults_to_failure(
            trials=trials, rng=rng, reference=True
        )
    )
    assert np.array_equal(fast_res.samples, ref_res.samples)
    speedup = _report("spf_campaign", ref_s, box["s"])
    assert speedup >= 1.5, f"expected >= 1.5x, got {speedup:.2f}x"


def test_fabric_disconnection_speedup(benchmark):
    net = NetworkConfig(width=8, height=8)
    seeds = np.random.SeedSequence(7).spawn(80)
    box = {}

    def fast():
        out, s = _timed(
            lambda: _fabric_trial_chunk(net, "protected", seeds, 4, None)
        )
        box["s"] = s
        return out

    fast_rows = benchmark.pedantic(
        fast, rounds=1, iterations=1, warmup_rounds=1
    )
    ref_rows, ref_s = _timed(
        lambda: _fabric_trial_chunk_reference(net, "protected", seeds, 4, None)
    )
    assert np.array_equal(fast_rows, ref_rows)
    speedup = _report("fabric_disconnection", ref_s, box["s"])
    assert speedup >= 1.5, f"expected >= 1.5x, got {speedup:.2f}x"


def test_mttf_sampling_speedup(benchmark):
    samples, rng = 100_000, 42
    box = {}

    def fast():
        out, s = _timed(
            lambda: monte_carlo_mttf(2822.0, 646.0, samples=samples, rng=rng)
        )
        box["s"] = s
        return out

    fast_mttf = benchmark.pedantic(
        fast, rounds=1, iterations=1, warmup_rounds=1
    )
    ref_mttf, ref_s = _timed(
        lambda: monte_carlo_mttf_reference(
            2822.0, 646.0, samples=samples, rng=rng
        )
    )
    assert fast_mttf == ref_mttf  # identical stream, bit-equal mean
    speedup = _report("mttf_sampling", ref_s, box["s"])
    assert speedup >= 1.5, f"expected >= 1.5x, got {speedup:.2f}x"
