"""Ablation: crossbar secondary path vs output-port retirement (Section V-D).

Without the demux/P-mux correction circuitry, a crossbar mux fault makes
its output port unreachable — on a mesh with dimension-order routing that
strands every packet needing the port.  With the secondary path, the same
fault costs only shared-mux bandwidth.  The bench also quantifies that
bandwidth cost: eastbound traffic through the faulty router's shared mux
slows, but completes.
"""

import pytest

from conftest import run_once
from repro.config import (
    NetworkConfig,
    PORT_EAST,
    RouterConfig,
    SimulationConfig,
)
from repro.core.protected_router import protected_router_factory
from repro.faults.injector import ExplicitFaultSchedule
from repro.faults.sites import FaultSite, FaultUnit
from repro.network.simulator import NoCSimulator, baseline_router_factory
from repro.traffic.generator import SyntheticTraffic


def run_router(protected: bool, faulty: bool):
    net = NetworkConfig(width=4, height=4, router=RouterConfig(num_vcs=4))
    victim = net.node_id(1, 1)
    schedule = None
    if faulty:
        schedule = ExplicitFaultSchedule(
            [(0, FaultSite(victim, FaultUnit.XB_MUX, PORT_EAST))]
        )
    factory = (
        protected_router_factory(net) if protected else baseline_router_factory(net)
    )
    sim = NoCSimulator(
        net,
        SimulationConfig(
            warmup_cycles=300,
            measure_cycles=3000,
            drain_cycles=4000,
            seed=9,
            watchdog_cycles=1500,
        ),
        SyntheticTraffic(net, injection_rate=0.10, rng=9),
        router_factory=factory,
        fault_schedule=schedule,
    )
    return sim.run()


def test_secondary_path_vs_retirement(benchmark):
    def measure():
        return (
            run_router(True, faulty=False),
            run_router(True, faulty=True),
            run_router(False, faulty=True),
        )

    clean, protected, retired = run_once(benchmark, measure)
    print(
        f"\nfault-free: {clean.avg_network_latency:.2f}"
        f"  secondary-path: {protected.avg_network_latency:.2f}"
        f"  retired(baseline): delivered={retired.stats.packets_ejected}/"
        f"{retired.stats.packets_created}"
    )
    # secondary path: alive, all packets delivered, crossings recorded
    assert not protected.blocked and protected.drained
    assert protected.router_stats.secondary_path_grants > 0
    # the bandwidth cost exists but is bounded at this load
    assert protected.avg_network_latency < clean.avg_network_latency * 1.5
    # port retirement (unprotected): traffic through the port strands
    assert retired.blocked or not retired.drained
    assert retired.stats.packets_ejected < retired.stats.packets_created
