"""Bench (extension): ECC datapath study — Vicis's mechanism composed
with the protected router on the live fabric."""

import pytest

from conftest import run_once
from repro.comparison.ecc_sim import run_ecc_study


def test_ecc_datapath_protection(benchmark):
    result = run_once(
        benchmark,
        run_ecc_study,
        faulty_ports_per_router=0.3,
        measure_cycles=2000,
        seed=1,
    )
    print(
        f"\nclean={result.clean} corrected={result.corrected} "
        f"uncorrectable={result.uncorrectable} "
        f"silent={result.silent_corruptions} "
        f"protected={result.protected_fraction:.3f}"
    )
    # datapath faults were actually exercised
    assert result.bits_flipped > 0
    assert result.corrected > 0
    # SECDED guarantee: no silent data corruption, high protection
    assert result.silent_corruptions == 0
    assert result.protected_fraction > 0.95
    # accounting closes: every delivered packet decoded exactly once
    assert result.total_codewords == result.packets_delivered
