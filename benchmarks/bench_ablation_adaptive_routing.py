"""Ablation (extension): XY vs fault-aware west-first adaptive routing.

The paper's design keeps packets flowing *through* a faulty router via
in-router redundancy; network-level rerouting (Vicis-style) is the
complementary approach.  This bench layers the west-first turn-model
router on top of the protected design and measures both angles:

* fault-free cost: adaptivity is minimal (same hop counts), so the
  latency penalty at moderate load must be small;
* added tolerance: when an output port dies *completely* (normal and
  secondary paths), XY strands its traffic while west-first detours.

Detour scope: the turn model only offers alternatives when another
*productive* direction exists.  Same-row eastbound traffic through the
dead port has none and strands under either routing, so the tolerance
comparison uses diagonal (detourable) flows — the honest statement of
what minimal adaptive routing buys.
"""

import pytest

from conftest import run_once
from repro.config import NetworkConfig, PORT_EAST, RouterConfig, SimulationConfig
from repro.core.protected_router import protected_router_factory
from repro.faults.injector import ExplicitFaultSchedule
from repro.faults.sites import FaultSite, FaultUnit
from repro.network.simulator import NoCSimulator
from repro.router.flit import Packet
from repro.traffic.generator import SyntheticTraffic, TraceTraffic

NET = NetworkConfig(width=4, height=4, router=RouterConfig(num_vcs=4))
VICTIM = NET.node_id(1, 1)

DEAD_OUTPUT = [
    (0, FaultSite(VICTIM, FaultUnit.XB_MUX, PORT_EAST)),
    (0, FaultSite(VICTIM, FaultUnit.XB_SECONDARY, PORT_EAST)),
]


def diagonal_flows():
    """SE-bound packets whose XY path crosses the victim's east port but
    which have a productive southern detour."""
    return [
        Packet(src=NET.node_id(0, 1), dest=NET.node_id(3, 2 + (i % 2)),
               size_flits=1, creation_cycle=10 + 3 * i)
        for i in range(30)
    ]


def run(routing_kind: str, kill_output: bool, traffic=None):
    schedule = (
        ExplicitFaultSchedule(list(DEAD_OUTPUT)) if kill_output else None
    )
    if traffic is None:
        traffic = SyntheticTraffic(NET, injection_rate=0.08, rng=13)
    sim = NoCSimulator(
        NET,
        SimulationConfig(
            warmup_cycles=0, measure_cycles=2500, drain_cycles=3000,
            seed=13, watchdog_cycles=1200,
        ),
        traffic,
        router_factory=protected_router_factory(NET),
        fault_schedule=schedule,
        routing_kind=routing_kind,
    )
    return sim.run()


def test_adaptive_routing_ablation(benchmark):
    def measure():
        return (
            run("xy", kill_output=False),
            run("west_first", kill_output=False),
            run("xy", True, TraceTraffic(diagonal_flows())),
            run("west_first", True, TraceTraffic(diagonal_flows())),
        )

    xy_clean, wf_clean, xy_dead, wf_dead = run_once(benchmark, measure)
    print(
        f"\nfault-free: xy={xy_clean.avg_network_latency:.2f} "
        f"west_first={wf_clean.avg_network_latency:.2f}"
    )
    print(
        f"dead output, diagonal flows: xy delivered "
        f"{xy_dead.stats.packets_ejected}/{xy_dead.stats.packets_created}, "
        f"west_first delivered {wf_dead.stats.packets_ejected}/"
        f"{wf_dead.stats.packets_created}"
    )
    # fault-free: adaptivity is ~free at this load (same minimal paths)
    assert wf_clean.avg_network_latency <= xy_clean.avg_network_latency * 1.15
    # dead output: XY strands the diagonal flows, west-first detours them
    assert xy_dead.blocked or (
        xy_dead.stats.packets_ejected < xy_dead.stats.packets_created
    )
    assert not wf_dead.blocked
    assert wf_dead.stats.packets_ejected == wf_dead.stats.packets_created
