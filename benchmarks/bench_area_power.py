"""Bench: Section VI-A — area and power overheads (45 nm proxy)."""

import pytest

from repro.experiments import area_power


def test_area_power_regeneration(benchmark):
    result = benchmark(area_power.run)
    print()
    print(result.format())
    # paper: 28 % / 31 % area, 29 % / 30 % power; proxy within 3 points
    assert result.row("area overhead (correction only)").measured == pytest.approx(
        0.28, abs=0.03
    )
    assert result.row("area overhead (with detection)").measured == pytest.approx(
        0.31, abs=0.03
    )
    assert result.row("power overhead (correction only)").measured == pytest.approx(
        0.29, abs=0.03
    )
    assert result.row("power overhead (with detection)").measured == pytest.approx(
        0.30, abs=0.03
    )
    # the qualitative claim of Table III: cheaper than BulletProof (52 %)
    # and Vicis (42 %)
    assert result.row("area overhead (with detection)").measured < 0.42
