"""Bench (extension): fabric-level MTTF, baseline vs protected routers."""

import pytest

from conftest import run_once
from repro.experiments import network_reliability


def test_network_reliability(benchmark):
    result = run_once(benchmark, network_reliability.run, trials=120)
    print()
    print(result.format())
    # the per-router ~6x gain compounds at fabric scale: the first-failure
    # gain exceeds the per-router MTTF ratio because redundancy lifts the
    # weakest-router tail hardest
    assert result.row("gain: first router failure").measured > 6.0
    assert result.row("gain: mesh disconnection").measured > 2.0
    assert result.row(
        "protected gains >= 2x on every fabric metric"
    ).measured is True
