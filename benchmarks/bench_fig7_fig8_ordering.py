"""Bench: the Figure 7 vs Figure 8 cross-check.

The paper's headline pair — PARSEC's faulty-latency overhead (13 %)
exceeds SPLASH-2's (10 %) — comes from PARSEC loading the fabric harder.
This bench verifies the *ordering* on a reduced configuration using the
heaviest and lightest apps of each suite as sentinels, and verifies the
suite-level average injection-rate ordering that drives it.
"""

import numpy as np

from conftest import run_once
from repro.experiments.latency import LatencyConfig, run_app_pair
from repro.traffic.apps import PARSEC_PROFILES, SPLASH2_PROFILES, app_profile

CFG = LatencyConfig(
    width=4,
    height=4,
    warmup_cycles=500,
    measure_cycles=3000,
    drain_cycles=4000,
    num_faults=24,
)


def test_suite_load_ordering(benchmark):
    def measure():
        s = np.mean([p.injection_rate for p in SPLASH2_PROFILES])
        p = np.mean([p.injection_rate for p in PARSEC_PROFILES])
        return s, p

    s, p = benchmark(measure)
    assert p > s  # PARSEC loads harder on average -> 13 % > 10 %


def test_heavier_app_sees_larger_fault_overhead(benchmark):
    def measure():
        light = run_app_pair(app_profile("water-nsq"), CFG)
        heavy = run_app_pair(app_profile("canneal"), CFG)
        return light, heavy

    light, heavy = run_once(benchmark, measure)
    print(
        f"\nwater-nsq: {light.overhead:+.1%}  canneal: {heavy.overhead:+.1%}"
    )
    assert heavy.fault_free > light.fault_free  # heavier base load
    assert heavy.overhead >= light.overhead - 0.02
