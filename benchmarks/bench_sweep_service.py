"""Engineering benchmark: the sweep-as-a-service results server.

Boots ``python -m repro.service`` as a real subprocess (OS-picked port,
fresh cache directory), then drives it with the stdlib async client the
way CI and humans do:

* **cold vs warm** — the first request computes the sweep; the second
  identical request must be served from the content-addressed cache at
  least 10x faster (in practice it is hundreds of times faster: one
  JSON file read vs a network simulation);
* **in-flight dedup** — N concurrent identical cold requests must
  trigger exactly one computation; the other N-1 join it and all N
  answers are bit-identical;
* **streaming** — a streamed request delivers every sweep point as an
  NDJSON event before the final result.

Set ``REPRO_BENCH_JSON=<path>`` to write the measurements as JSON (the
CI ``service`` job publishes them as ``BENCH_sweep_service.json``).
"""

import asyncio
import json
import os
import re
import subprocess
import sys
import time

import pytest

from repro.service import wait_ready

#: two sub-second sweep points — big enough to dwarf cache-read time,
#: small enough for CI
CONFIG = {
    "fault_counts": [0, 2],
    "latency": {
        "width": 4,
        "height": 4,
        "warmup_cycles": 50,
        "measure_cycles": 300,
        "drain_cycles": 500,
        "num_faults": 8,
    },
}

N_CLIENTS = 5


def _write_json(payload: dict) -> None:
    path = os.environ.get("REPRO_BENCH_JSON", "")
    if not path:
        return
    existing = {}
    if os.path.exists(path):
        with open(path) as fp:
            existing = json.load(fp)
    existing.update(payload)
    with open(path, "w") as fp:
        json.dump(existing, fp, indent=2, sort_keys=True)


@pytest.fixture
def service(tmp_path):
    """A live ``python -m repro.service`` subprocess; yields its port."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--port", "0",
            "--cache-dir", str(tmp_path / "cache"),
            "--jobs", "2",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        ready = proc.stdout.readline()
        match = re.search(r"http://[^:]+:(\d+)", ready)
        assert match, f"no ready line from the server: {ready!r}"
        port = int(match.group(1))
        asyncio.run(wait_ready("127.0.0.1", port, timeout=30))
        yield port
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


def test_warm_cache_hit_speedup(service, benchmark):
    """An identical repeat request must be served >=10x faster."""
    from repro.service import ServiceClient

    client = ServiceClient("127.0.0.1", service)

    async def timed_sweep(**kwargs):
        t0 = time.perf_counter()
        reply = await client.sweep("fault_sweep", CONFIG, **kwargs)
        return reply, time.perf_counter() - t0

    cold, cold_s = asyncio.run(timed_sweep())
    assert cold["cached"] is False

    box = {}

    def warm_once():
        reply, box["s"] = asyncio.run(timed_sweep())
        return reply

    warm = benchmark.pedantic(warm_once, rounds=1, iterations=1,
                              warmup_rounds=0)
    warm_s = box["s"]

    assert warm["cached"] is True
    assert warm["result"] == cold["result"]
    assert warm["sha256"] == cold["sha256"]

    speedup = cold_s / warm_s
    print(
        f"\nsweep service: cold {cold_s:.3f}s, warm {warm_s * 1e3:.1f}ms "
        f"-> {speedup:.0f}x"
    )
    _write_json({
        "service_cold_s": round(cold_s, 4),
        "service_warm_s": round(warm_s, 5),
        "service_warm_speedup_x": round(speedup, 1),
    })
    assert speedup >= 10.0, (
        f"warm cache hit only {speedup:.1f}x faster than cold compute"
    )


def test_concurrent_identical_requests_compute_once(service, benchmark):
    """N concurrent cold clients -> exactly 1 computation, N answers."""
    from repro.service import ServiceClient

    client = ServiceClient("127.0.0.1", service)
    config = json.loads(json.dumps(CONFIG))
    config["fault_counts"] = [0, 2, 4]

    async def stampede():
        return await asyncio.gather(
            *[client.sweep("fault_sweep", config) for _ in range(N_CLIENTS)]
        )

    box = {}

    def measured():
        t0 = time.perf_counter()
        replies = asyncio.run(stampede())
        box["s"] = time.perf_counter() - t0
        return replies

    replies = benchmark.pedantic(measured, rounds=1, iterations=1,
                                 warmup_rounds=0)

    assert len({r["sha256"] for r in replies}) == 1, "answers diverged"
    stats = asyncio.run(client.stats())
    counters = stats["counters"]
    computations = counters["service.computations"]
    joined = counters["service.dedup_joined"]
    print(
        f"\n{N_CLIENTS} concurrent identical requests in {box['s']:.3f}s: "
        f"{computations} computation(s), {joined} joined in flight"
    )
    _write_json({
        "service_dedup_clients": N_CLIENTS,
        "service_dedup_computations": computations,
        "service_dedup_joined": joined,
    })
    assert computations == 1, (
        f"dedup failed: {computations} computations for "
        f"{N_CLIENTS} identical requests"
    )
    assert joined == N_CLIENTS - 1


def test_streaming_delivers_points(service, benchmark):
    """A streamed request reports each sweep point before the result."""
    from repro.service import ServiceClient

    client = ServiceClient("127.0.0.1", service)
    config = json.loads(json.dumps(CONFIG))
    config["fault_counts"] = [0, 2, 4, 6]

    points = []

    async def streamed():
        return await client.sweep(
            "fault_sweep", config, stream=True, on_point=points.append
        )

    reply = benchmark.pedantic(
        lambda: asyncio.run(streamed()), rounds=1, iterations=1,
        warmup_rounds=0,
    )
    assert reply["points_streamed"] == len(points) == 4
    assert reply["result"]["rows"]
    _write_json({"service_streamed_points": len(points)})
