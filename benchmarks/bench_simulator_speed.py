"""Engineering benchmark: raw simulator throughput.

Not a paper artefact — tracks the cycle-loop performance the figure
reproductions depend on (cycles/second on the standard 8x8 configuration
at moderate load), so regressions in the hot path show up here first.

The cases deliberately cover the distinct regimes of the active-set
cycle loop (see ``docs/performance.md``):

* steady-state injection (8x8 protected, 4x4 baseline),
* the drain phase, where injection stops and the active sets shrink as
  routers go idle — the regime the active-set bookkeeping helps most,
* adaptive routing (``west_first``), which bypasses the route-table and
  path-plan caches and exercises the uncached RC path.

Set ``REPRO_BENCH_JSON=<path>`` to write per-configuration throughput
(cycles/second, best round) as JSON (the CI job uploads it as the
``BENCH_simulator_speed.json`` artifact).
"""

import json
import os
import time

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.core.protected_router import protected_router_factory
from repro.network.simulator import NoCSimulator, baseline_router_factory
from repro.traffic.generator import COHERENCE_MIX, SyntheticTraffic


def make_sim(width=8, height=8, rate=0.08, cycles=1500, **kwargs):
    net = NetworkConfig(
        width=width,
        height=height,
        router=RouterConfig(num_vcs=4, num_vnets=2),
    )
    return NoCSimulator(
        net,
        SimulationConfig(
            warmup_cycles=0,
            measure_cycles=cycles,
            drain_cycles=kwargs.pop("drain_cycles", 0),
        ),
        SyntheticTraffic(net, injection_rate=rate, mix=COHERENCE_MIX, rng=1),
        router_factory=kwargs.pop(
            "router_factory", protected_router_factory(net)
        ),
        **kwargs,
    )


def _write_json(payload: dict) -> None:
    path = os.environ.get("REPRO_BENCH_JSON", "")
    if not path:
        return
    existing = {}
    if os.path.exists(path):
        with open(path) as fp:
            existing = json.load(fp)
    existing.update(payload)
    with open(path, "w") as fp:
        json.dump(existing, fp, indent=2, sort_keys=True)


def _timed(sim_factory, samples):
    """Run a fresh sim, recording (simulated cycles, wall seconds)."""
    sim = sim_factory()
    t0 = time.perf_counter()
    result = sim.run()
    samples.append((result.cycles, time.perf_counter() - t0))
    return result


def _record(name: str, samples) -> None:
    """Emit the best-round throughput for one configuration."""
    best = max(cycles / elapsed for cycles, elapsed in samples if elapsed > 0)
    _write_json({f"{name}_cycles_per_s": round(best, 1)})


def test_8x8_protected_throughput(benchmark):
    samples = []
    result = benchmark.pedantic(
        lambda: _timed(make_sim, samples),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.stats.flits_injected > 0
    _record("protected_8x8", samples)


def test_4x4_baseline_throughput(benchmark):
    def factory():
        net = NetworkConfig(width=4, height=4)
        return NoCSimulator(
            net,
            SimulationConfig(
                warmup_cycles=0, measure_cycles=2000, drain_cycles=0
            ),
            SyntheticTraffic(net, injection_rate=0.08, rng=1),
        )

    samples = []
    result = benchmark.pedantic(
        lambda: _timed(factory, samples),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.stats.flits_injected > 0
    _record("baseline_4x4", samples)


def test_8x8_drain_phase_throughput(benchmark):
    """Short measure window, long drain: most simulated cycles run after
    injection stops, while the active sets shrink toward empty."""

    def factory():
        return make_sim(rate=0.12, cycles=300, drain_cycles=5000)

    samples = []
    result = benchmark.pedantic(
        lambda: _timed(factory, samples),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.drained
    _record("protected_8x8_drain", samples)


def test_8x8_adaptive_routing_throughput(benchmark):
    """West-first adaptive routing takes the uncached RC path (no route
    table, per-flit candidate scoring)."""

    def factory():
        net = NetworkConfig(
            width=8, height=8, router=RouterConfig(num_vcs=4, num_vnets=2)
        )
        return NoCSimulator(
            net,
            SimulationConfig(
                warmup_cycles=0, measure_cycles=1500, drain_cycles=0
            ),
            SyntheticTraffic(
                net, injection_rate=0.08, mix=COHERENCE_MIX, rng=1
            ),
            router_factory=baseline_router_factory(net),
            routing_kind="west_first",
        )

    samples = []
    result = benchmark.pedantic(
        lambda: _timed(factory, samples),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.stats.flits_injected > 0
    _record("adaptive_8x8_west_first", samples)


def test_spf_monte_carlo_throughput(benchmark):
    from repro.reliability.spf import monte_carlo_faults_to_failure

    mc = benchmark.pedantic(
        lambda: monte_carlo_faults_to_failure(trials=200, rng=1),
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
    assert 2 <= mc.mean <= 28
