"""Engineering benchmark: raw simulator throughput.

Not a paper artefact — tracks the cycle-loop performance the figure
reproductions depend on (cycles/second on the standard 8x8 configuration
at moderate load), so regressions in the hot path show up here first.
"""

import pytest

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.core.protected_router import protected_router_factory
from repro.network.simulator import NoCSimulator
from repro.traffic.generator import COHERENCE_MIX, SyntheticTraffic


def make_sim(width=8, height=8, rate=0.08, cycles=1500):
    net = NetworkConfig(
        width=width,
        height=height,
        router=RouterConfig(num_vcs=4, num_vnets=2),
    )
    return NoCSimulator(
        net,
        SimulationConfig(
            warmup_cycles=0, measure_cycles=cycles, drain_cycles=0
        ),
        SyntheticTraffic(net, injection_rate=rate, mix=COHERENCE_MIX, rng=1),
        router_factory=protected_router_factory(net),
    )


def test_8x8_protected_throughput(benchmark):
    def run():
        sim = make_sim()
        return sim.run()

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.stats.flits_injected > 0


def test_4x4_baseline_throughput(benchmark):
    from repro.network.simulator import baseline_router_factory

    def run():
        net = NetworkConfig(width=4, height=4)
        sim = NoCSimulator(
            net,
            SimulationConfig(warmup_cycles=0, measure_cycles=2000,
                             drain_cycles=0),
            SyntheticTraffic(net, injection_rate=0.08, rng=1),
        )
        return sim.run()

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.stats.flits_injected > 0


def test_spf_monte_carlo_throughput(benchmark):
    from repro.reliability.spf import monte_carlo_faults_to_failure

    mc = benchmark.pedantic(
        lambda: monte_carlo_faults_to_failure(trials=200, rng=1),
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
    assert 2 <= mc.mean <= 28
