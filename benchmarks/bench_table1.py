"""Bench: regenerate paper Table I (baseline pipeline FIT values)."""

import pytest

from repro.experiments import table1


def test_table1_regeneration(benchmark):
    result = benchmark(table1.run)
    print()
    print(result.format())
    # exact component FIT values
    assert result.row("FIT(6-bit comparator)").measured == pytest.approx(11.7)
    assert result.row("FIT(32-bit 5:1 mux)").measured == pytest.approx(204.8)
    # stage rows within 1 % of the printed table
    for stage, paper in (("RC", 117.0), ("SA", 203.0), ("XB", 1024.0)):
        assert result.row(f"FIT({stage} stage)").measured == pytest.approx(
            paper, rel=0.01
        )
    # the paper's VA row is internally inconsistent by 4 FIT; stay within 1 %
    assert result.row("FIT(VA stage)").measured == pytest.approx(1478, rel=0.01)
    assert result.row("FIT(total pipeline)").measured == pytest.approx(
        2822, rel=0.01
    )
