#!/usr/bin/env python
"""Gate fresh ``BENCH_*.json`` measurements against committed baselines.

Every engineering bench writes its measurements to the JSON file named
by ``REPRO_BENCH_JSON``.  This script diffs those fresh files against
the committed snapshots in ``benchmarks/baselines/`` and fails (exit 1)
when a metric regresses beyond its tolerance:

* **machine-independent ratios** (``*_speedup``, ``*_speedup_x``,
  ``*_overhead_x``, ``*_ratio``) are gated tight — default 25%.  A
  speedup is work divided by the same work on the same machine, so a
  25% drop means the optimization itself eroded, not the runner;
* **machine-dependent magnitudes** (``*_s`` seconds, ``*_per_s`` /
  ``*_per_sec`` rates) are gated loose — default 60% — because CI
  runner generations legitimately differ by tens of percent.  The loose
  gate still catches the failures that matter (an accidental
  quadratic, a dropped fast path) which shift throughput by integer
  factors;
* **counts** (streamed points, dedup computations, emitted events) are
  deterministic and must match exactly;
* timings whose baseline is under the noise floor (50 ms) are reported
  but never gated — at that scale scheduler jitter exceeds any signal.

Usage::

    python benchmarks/compare_bench.py BENCH_observability.json ...
    python benchmarks/compare_bench.py --update BENCH_*.json   # new baselines

Exit codes: 0 ok, 1 regression, 2 usage error / missing baseline.
"""

import argparse
import json
import os
import shutil
import sys

BASELINE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "baselines")

#: baseline seconds below this are pure scheduler jitter — never gated
NOISE_FLOOR_S = 0.05

RELATIVE_SUFFIXES = ("_speedup", "_speedup_x", "_overhead_x", "_ratio")
RATE_SUFFIXES = ("_per_s", "_per_sec")


def classify(key, value):
    """``(kind, higher_is_better)`` for one metric key.

    kind is one of ``relative`` (machine-independent ratio),
    ``absolute`` (machine-dependent magnitude), ``count`` (exact), or
    ``info`` (never gated).
    """
    if key.endswith(RELATIVE_SUFFIXES):
        lower_is_better = key.endswith(("_overhead_x", "_ratio"))
        return "relative", not lower_is_better
    if key.endswith(RATE_SUFFIXES):
        return "absolute", True
    if key.endswith("_s"):
        return "absolute", False
    if isinstance(value, int) and not isinstance(value, bool):
        return "count", True
    return "info", True


def compare_metric(key, base, fresh, *, rel_tol, abs_tol):
    """Return ``(status, message)``; status in {ok, skip, info, FAIL}."""
    kind, higher = classify(key, base)
    arrow = f"{base:g} -> {fresh:g}"
    if kind == "info":
        return "info", f"{key}: {arrow} (informational)"
    if kind == "count":
        if fresh == base:
            return "ok", f"{key}: {base:g} (exact)"
        return "FAIL", f"{key}: {arrow} (deterministic count changed)"
    if kind == "absolute" and key.endswith("_s") and base < NOISE_FLOOR_S:
        return "skip", (
            f"{key}: {arrow} (under the {NOISE_FLOOR_S * 1e3:.0f} ms "
            f"noise floor, not gated)"
        )
    tol = rel_tol if kind == "relative" else abs_tol
    if base == 0:
        return "info", f"{key}: {arrow} (zero baseline, not gated)"
    change = (fresh - base) / abs(base)
    regressed = change < -tol if higher else change > tol
    direction = "higher" if higher else "lower"
    note = (
        f"{key}: {arrow} ({change:+.1%}, {direction} is better, "
        f"tolerance {tol:.0%})"
    )
    return ("FAIL" if regressed else "ok"), note


def compare_file(fresh_path, baseline_path, *, rel_tol, abs_tol):
    """Compare one fresh BENCH file; returns a list of failure lines."""
    with open(fresh_path) as fp:
        fresh = json.load(fp)
    with open(baseline_path) as fp:
        base = json.load(fp)

    failures = []
    print(f"== {os.path.basename(fresh_path)} "
          f"(baseline: {os.path.relpath(baseline_path)})")
    for key in sorted(set(base) | set(fresh)):
        if key not in fresh:
            failures.append(f"{key}: missing from the fresh run "
                            f"(bench stopped emitting it?)")
            print(f"  FAIL {failures[-1]}")
            continue
        if key not in base:
            print(f"  new  {key}: {fresh[key]:g} "
                  f"(not in baseline; run --update to adopt)")
            continue
        status, message = compare_metric(
            key, base[key], fresh[key], rel_tol=rel_tol, abs_tol=abs_tol
        )
        print(f"  {status:<4} {message}")
        if status == "FAIL":
            failures.append(message)
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Diff fresh BENCH_*.json files against committed "
        "baselines; exit 1 on regression.",
    )
    parser.add_argument("files", nargs="+", metavar="BENCH.json",
                        help="fresh benchmark JSON files")
    parser.add_argument("--baseline-dir", default=BASELINE_DIR)
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", 0.25)),
        help="allowed regression for machine-independent ratios "
        "(default 0.25)",
    )
    parser.add_argument(
        "--absolute-tolerance", type=float,
        default=float(os.environ.get("REPRO_BENCH_ABS_TOLERANCE", 0.60)),
        help="allowed regression for machine-dependent magnitudes "
        "(default 0.60; absorbs runner variance, still catches "
        "integer-factor slowdowns)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="adopt the fresh files as the new baselines instead of "
        "comparing",
    )
    args = parser.parse_args(argv)

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for path in args.files:
            dst = os.path.join(args.baseline_dir, os.path.basename(path))
            shutil.copyfile(path, dst)
            print(f"baseline updated: {os.path.relpath(dst)}")
        return 0

    all_failures = []
    for path in args.files:
        if not os.path.exists(path):
            print(f"error: fresh benchmark file not found: {path}",
                  file=sys.stderr)
            return 2
        baseline = os.path.join(args.baseline_dir, os.path.basename(path))
        if not os.path.exists(baseline):
            print(
                f"error: no committed baseline for {os.path.basename(path)}"
                f" — run `python benchmarks/compare_bench.py --update "
                f"{path}` and commit {os.path.relpath(baseline)}",
                file=sys.stderr,
            )
            return 2
        all_failures += compare_file(
            path, baseline,
            rel_tol=args.tolerance, abs_tol=args.absolute_tolerance,
        )

    if all_failures:
        print(f"\n{len(all_failures)} benchmark regression(s):",
              file=sys.stderr)
        for line in all_failures:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print("\nall benchmark metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
