"""Bench (comparison): RoCo's graceful degradation vs the proposed router.

The paper's argument against RoCo (Section III): "it cannot tolerate
faults in virtual channel allocation and crossbar stages" beyond
module-level degradation.  This bench makes the difference concrete in
simulation: after the same row-side fault barrage, the proposed router
keeps *all* traffic flowing (in-router redundancy), while the RoCo model
retires its row module — column traffic survives, row traffic strands.
"""

import pytest

from conftest import run_once
from repro.comparison.roco_router import roco_router_factory
from repro.config import (
    NetworkConfig,
    PORT_EAST,
    PORT_WEST,
    RouterConfig,
    SimulationConfig,
)
from repro.core.protected_router import protected_router_factory
from repro.faults.injector import ExplicitFaultSchedule
from repro.faults.sites import FaultSite, FaultUnit
from repro.network.simulator import NoCSimulator
from repro.traffic.generator import SyntheticTraffic

NET = NetworkConfig(width=4, height=4, router=RouterConfig(num_vcs=4))
VICTIM = NET.node_id(1, 1)

#: three row-side faults: enough to kill RoCo's row module (tolerance 2),
#: all individually tolerated by the proposed router
ROW_BARRAGE = [
    (0, FaultSite(VICTIM, FaultUnit.SA1_ARBITER, PORT_EAST)),
    (0, FaultSite(VICTIM, FaultUnit.VA1_ARBITER_SET, PORT_WEST, 0)),
    (0, FaultSite(VICTIM, FaultUnit.XB_MUX, PORT_EAST)),
]


def run(factory):
    sim = NoCSimulator(
        NET,
        SimulationConfig(warmup_cycles=200, measure_cycles=2500,
                         drain_cycles=2500, seed=17, watchdog_cycles=1000),
        SyntheticTraffic(NET, injection_rate=0.08, rng=17),
        router_factory=factory,
        fault_schedule=ExplicitFaultSchedule(list(ROW_BARRAGE)),
    )
    return sim.run()


def test_roco_degrades_proposed_tolerates(benchmark):
    def measure():
        return (
            run(protected_router_factory(NET)),
            run(roco_router_factory(NET)),
        )

    proposed, roco = run_once(benchmark, measure)
    print(
        f"\nproposed: delivered {proposed.stats.packets_ejected}/"
        f"{proposed.stats.packets_created} "
        f"lat={proposed.avg_network_latency:.2f}"
        f"  roco: delivered {roco.stats.packets_ejected}/"
        f"{roco.stats.packets_created}"
    )
    # the proposed router tolerates all three faults: full delivery
    assert not proposed.blocked and proposed.drained
    assert proposed.stats.packets_ejected == proposed.stats.packets_created
    # RoCo's row module dies: row traffic through the victim strands
    assert roco.blocked or roco.stats.packets_ejected < roco.stats.packets_created
