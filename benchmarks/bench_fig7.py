"""Bench: regenerate paper Figure 7 — SPLASH-2 latency under faults.

Quick (4x4) configuration by default; set ``REPRO_BENCH_FULL=1`` for the
paper-scale 8x8 run (the shape assertions then tighten to the paper's
+10 % headline band).
"""

import time

import pytest

from conftest import full_scale, run_once, write_bench_json
from repro.experiments import fig7
from repro.experiments.latency import overall_overhead


def test_fig7_regeneration(benchmark, latency_config):
    t0 = time.perf_counter()
    result = run_once(benchmark, fig7.run, cfg=latency_config)
    elapsed = time.perf_counter() - t0
    print()
    print(result.format())
    apps = result.extras["results"]
    assert len(apps) == 8  # the full SPLASH-2 surrogate set
    # shape: faults never make the network faster, every app delivered
    for a in apps:
        assert a.faulty >= a.fault_free * 0.99
        assert a.fault_free_result.stats.measured_packets > 0
        assert a.faulty_result.stats.measured_packets > 0
    overall = overall_overhead(apps)
    if full_scale():
        # the paper's headline: ~10 % overall; accept a generous band
        assert 0.04 <= overall <= 0.20
    else:
        assert 0.0 <= overall <= 0.30
    # memory-bound apps (ocean/radix) hurt at least as much as the
    # lightest app (water) — the contention-driven mechanism
    by_name = {a.app: a for a in apps}
    heavy = (by_name["ocean"].overhead + by_name["radix"].overhead) / 2
    assert heavy >= by_name["water-nsq"].overhead - 0.02
    write_bench_json(
        {
            "fig7_regen_s": round(elapsed, 4),
            "fig7_apps": len(apps),
            "fig7_overall_overhead_x": round(overall, 4),
        }
    )
