"""Bench (extension): load-latency curves, fault-free vs faulty.

Pins the contention-driven shape behind Figures 7/8: tolerated faults
cost little at low load and increasingly more toward saturation (the
faulty curve's knee shifts left).
"""

import pytest

from conftest import run_once
from repro.experiments import load_latency


def test_load_latency_curves(benchmark):
    result = run_once(
        benchmark,
        load_latency.run,
        rates=(0.03, 0.09, 0.15),
        measure=2500,
        num_faults=24,
    )
    print()
    print(result.format())
    points = result.extras["points"]
    # fault-free curve is monotone in load
    ff = [p.fault_free_latency for p in points]
    assert ff == sorted(ff)
    # faulty curve never dips below fault-free
    for p in points:
        assert p.faulty_latency >= p.fault_free_latency * 0.99
    # the headline shape: overhead grows with load
    assert result.row("fault overhead grows with load").measured is True
