"""Ablation: rotating vs static SA-bypass default winner (Section V-C1).

The paper argues the default winner should rotate across the port's VCs
"to avoid the potential starvation problem that could arise from static
allocation".  This bench pins an SA stage-1 fault on a router port fed by
traffic on multiple VCs and compares default-winner policies:

* rotating (paper's choice; period = ``bypass_rotation_period``),
* effectively static (a rotation period far longer than the run).

With a static default winner, packets whose wire VC never becomes the
default rely entirely on VC transfers into the (busy) default slot, which
can only happen when the default empties — so worst-case (max) latency
degrades; rotation bounds it.
"""

import pytest

from conftest import run_once
from repro.config import (
    NetworkConfig,
    PORT_WEST,
    RouterConfig,
    SimulationConfig,
)
from repro.core.protected_router import protected_router_factory
from repro.faults.injector import ExplicitFaultSchedule
from repro.faults.sites import FaultSite, FaultUnit
from repro.network.simulator import NoCSimulator
from repro.traffic.generator import SyntheticTraffic


def run_policy(rotation_period: int):
    net = NetworkConfig(
        width=4,
        height=4,
        router=RouterConfig(num_vcs=4, bypass_rotation_period=rotation_period),
    )
    # SA1 fault on the west port of a column-1 router: all eastbound
    # traffic through it is forced onto the bypass path
    victim = net.node_id(1, 1)
    schedule = ExplicitFaultSchedule(
        [(0, FaultSite(victim, FaultUnit.SA1_ARBITER, PORT_WEST))]
    )
    sim = NoCSimulator(
        net,
        SimulationConfig(
            warmup_cycles=500,
            measure_cycles=4000,
            drain_cycles=6000,
            seed=3,
            watchdog_cycles=20_000,
        ),
        SyntheticTraffic(net, injection_rate=0.12, rng=3),
        router_factory=protected_router_factory(net),
        fault_schedule=schedule,
        keep_samples=True,
    )
    return sim.run()


def test_rotating_vs_static_default_winner(benchmark):
    def measure():
        rotating = run_policy(rotation_period=8)
        static = run_policy(rotation_period=10**9)
        return rotating, static

    rotating, static = run_once(benchmark, measure)
    print(
        f"\nrotating: avg={rotating.avg_network_latency:.2f} "
        f"max={rotating.stats.max_network_latency}"
        f"  static: avg={static.avg_network_latency:.2f} "
        f"max={static.stats.max_network_latency}"
    )
    # both policies keep the network alive (the bypass works either way)
    assert not rotating.blocked and not static.blocked
    # rotation bounds the worst case: static never beats it meaningfully
    assert (
        rotating.stats.max_network_latency
        <= static.stats.max_network_latency * 1.10 + 5
    )
    # the starvation signature: the static policy's tail is no better
    p99_rot = rotating.stats.latency_percentile(99)
    p99_sta = static.stats.latency_percentile(99)
    assert p99_rot <= p99_sta * 1.10 + 5
