"""Bench (extension): router provisioning design-space exploration."""

import pytest

from conftest import run_once
from repro.experiments import design_space, mttf_sensitivity


def test_design_space(benchmark):
    result = run_once(
        benchmark, design_space.run,
        vc_counts=(2, 4, 8), buffer_depths=(2, 4), measure=1200,
    )
    print()
    print(result.format())
    points = result.extras["points"]
    # reliability and cost both favour more VCs...
    assert points[(8, 2)][1] > points[(2, 2)][1]  # SPF
    assert points[(8, 2)][2] < points[(2, 2)][2]  # area overhead fraction
    # ...making the paper's 4-VC point a balanced middle
    assert result.row("more VCs raise SPF").measured is True


def test_mttf_sensitivity(benchmark):
    result = benchmark(mttf_sensitivity.run)
    print()
    print(result.format())
    assert result.row(
        "improvement ratio invariant across operating points"
    ).measured is True
    assert result.row("improvement ratio").measured == pytest.approx(
        6.18, abs=0.05
    )
