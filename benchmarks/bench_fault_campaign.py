"""Engineering benchmark: online campaign machinery overhead.

The campaign runner (:mod:`repro.experiments.fault_campaign`) adds a
temporal layer on top of a plain fault sweep: mid-run timeline
injection/healing, a per-router :class:`RecoveryMonitor`, and the
degradation-report fold.  That layer must stay cheap — this bench runs
the same simulated work both ways on the per-point event engine (the
engine timeline points always fall back to) and asserts the campaign's
per-point overhead vs a plain static fault sweep stays within 25 %.

Set ``REPRO_BENCH_JSON=<path>`` to write the measurements as JSON (the
CI ``benchmark-smoke`` job publishes them as the
``BENCH_fault_campaign.json`` artifact and gates them with
``compare_bench.py``).
"""

import time

from conftest import run_once, write_bench_json
from repro.experiments.fault_campaign import CampaignConfig, run
from repro.experiments.latency import LatencyConfig, suite_traffic
from repro.experiments.parallel import LanePoint, run_lane_sweep
from repro.faults import RandomFaultSchedule, TimelineSpec

TIMELINES = 4
LATENCY = LatencyConfig(
    width=4, height=4,
    warmup_cycles=200, measure_cycles=1500, drain_cycles=2500, seed=9,
)
CAMPAIGN = CampaignConfig(
    timelines=TIMELINES,
    router_kinds=("protected",),
    timeline=TimelineSpec(events=4, mean_interval=300.0),
    latency=LATENCY,
    app="lu",
    engine="event",
)


def _static_schedule(net, events, seed):
    """The plain-sweep counterpart: same fault count, fixed before run."""
    return RandomFaultSchedule(
        net.router, net.num_nodes, mean_interval=5.0, num_faults=events,
        rng=seed + 101, first_fault_at=0, avoid_failure=True,
    )


def _plain_points():
    """Mirror of the campaign's point list with static schedules."""
    net = LATENCY.network()
    sim_config = LATENCY.simulation()
    points = [
        LanePoint(
            config=net,
            sim_config=sim_config,
            make_traffic=suite_traffic,
            traffic_args=(net, CAMPAIGN.app, LATENCY.seed,
                          LATENCY.rate_scale),
            make_schedule=None,
            schedule_args=(),
            router_kind="protected",
            label="plain/fault-free",
        )
    ]
    for t in range(TIMELINES):
        points.append(
            LanePoint(
                config=net,
                sim_config=sim_config,
                make_traffic=suite_traffic,
                traffic_args=(net, CAMPAIGN.app, LATENCY.seed + t,
                              LATENCY.rate_scale),
                make_schedule=_static_schedule,
                schedule_args=(net, CAMPAIGN.timeline.events, t),
                router_kind="protected",
                label=f"plain/static-{t}",
            )
        )
    return points


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_campaign_overhead_vs_plain_fault_sweep(benchmark):
    """Timelines + recovery monitoring vs a static sweep, same points."""
    # warm both paths once so neither pays first-import costs
    run_lane_sweep(_plain_points(), jobs=None, engine="event")

    (_, plain_s) = _timed(
        lambda: run_lane_sweep(_plain_points(), jobs=None, engine="event")
    )

    box = {}

    def campaign():
        out, box["s"] = _timed(lambda: run(CAMPAIGN, jobs=None))
        return out

    res = run_once(benchmark, campaign)
    campaign_s = box["s"]

    # the campaign did its job: temporal events measured end to end
    row = res.extras["rows"][0]
    assert row["kind"] == "protected"
    assert row["events"] == TIMELINES * CAMPAIGN.timeline.events
    assert all(
        "mutates the fabric" in reason
        for shard in res.extras["sweep"].shards
        for reason in shard.fallback_reasons
    )

    ratio = campaign_s / plain_s
    print(
        f"\nfault campaign ({TIMELINES} timelines, event engine): "
        f"plain {plain_s:.2f}s, campaign {campaign_s:.2f}s "
        f"-> {ratio:.2f}x overhead"
    )
    write_bench_json({"fault_campaign_overhead_x": round(ratio, 2)})
    # the acceptance budget: online machinery costs <= 25% over a plain
    # fault sweep of the same simulated work (plus a small absolute
    # allowance so sub-second runs don't gate on scheduler noise)
    assert campaign_s <= plain_s * 1.25 + 0.5, (
        f"campaign overhead out of bounds: {ratio:.2f}x"
    )
