"""Shared helpers for the benchmark suite.

Every paper table/figure has a `bench_*.py` here that (a) times the
regeneration under pytest-benchmark and (b) asserts the reproduced shape
(who wins, by roughly what factor) against the paper's numbers.

The simulation-heavy figure benches default to the reduced QUICK
configuration; set ``REPRO_BENCH_FULL=1`` to run them at the paper's 8x8
scale (minutes instead of seconds).
"""

import json
import os

import pytest

from repro.experiments.latency import LatencyConfig, QUICK_CONFIG


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def write_bench_json(payload: dict) -> None:
    """Merge measurements into the JSON file named by ``REPRO_BENCH_JSON``.

    The CI benchmark job uploads these files as ``BENCH_*.json``
    artifacts and gates them against committed baselines with
    ``compare_bench.py``.  No-op when the env var is unset.
    """
    path = os.environ.get("REPRO_BENCH_JSON", "")
    if not path:
        return
    existing = {}
    if os.path.exists(path):
        with open(path) as fp:
            existing = json.load(fp)
    existing.update(payload)
    with open(path, "w") as fp:
        json.dump(existing, fp, indent=2, sort_keys=True)


@pytest.fixture
def latency_config() -> LatencyConfig:
    """Figure 7/8 configuration: quick by default, paper scale on demand."""
    return LatencyConfig() if full_scale() else QUICK_CONFIG


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive function with a single measured round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)
