"""Bench: Section VI-B — per-stage critical-path impact."""

import pytest

from repro.experiments import critical_path


def test_critical_path_regeneration(benchmark):
    result = benchmark(critical_path.run)
    print()
    print(result.format())
    # paper: RC negligible, VA +20 %, SA +10 %, XB +25 %
    assert result.row("RC critical-path increase").measured < 0.06
    assert result.row("VA critical-path increase").measured == pytest.approx(
        0.20, abs=0.04
    )
    assert result.row("SA critical-path increase").measured == pytest.approx(
        0.10, abs=0.04
    )
    assert result.row("XB critical-path increase").measured == pytest.approx(
        0.25, abs=0.04
    )
    # ordering: XB takes the worst hit, VA next, SA mild, RC negligible
    overheads = result.extras["report"].overheads
    assert overheads["XB"] > overheads["VA"] > overheads["SA"] > overheads["RC"]
