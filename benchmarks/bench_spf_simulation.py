"""Bench (validation): simulation-based vs analytical faults-to-failure.

The paper's Table III faults-to-failure figure for the proposed router is
theoretical; BulletProof and Vicis derived theirs "through simulations".
This bench runs our simulation-based campaign and confirms it tracks the
analytical Monte-Carlo — closing the loop between the Section VIII
predicates and what a live router actually survives.
"""

import pytest

from conftest import run_once
from repro.config import RouterConfig
from repro.reliability.spf import monte_carlo_faults_to_failure
from repro.reliability.spf_simulation import simulated_faults_to_failure


def test_simulated_vs_analytic_faults_to_failure(benchmark):
    def measure():
        sim = simulated_faults_to_failure(trials=40, rng=3)
        analytic = monte_carlo_faults_to_failure(
            RouterConfig(), trials=500, rng=3, include_va2=False
        )
        return sim, analytic

    sim, analytic = run_once(benchmark, measure)
    print(
        f"\nsimulated: mean={sim.mean:.2f} [{sim.minimum}, {sim.maximum}]"
        f"  analytic MC: mean={analytic.mean:.2f} "
        f"[{analytic.minimum}, {analytic.maximum}]"
    )
    # behavioural and analytical campaigns agree
    assert sim.mean == pytest.approx(analytic.mean, rel=0.2)
    assert sim.minimum >= 2
    assert sim.maximum <= 28
