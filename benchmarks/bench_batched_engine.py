"""Engineering benchmark: the batched lane engine vs per-lane event runs.

Not a paper artefact — pins the throughput win the flat-NumPy lane
engine (:mod:`repro.network.batched`) buys on the workload it exists
for: a Figure 7-style sweep of many short, structurally identical
simulations.  64 lanes (8x8 protected mesh, coherence mix, rates
spanning the pre-saturation range, half the lanes carrying tolerated
fault schedules) run once each through

* the **event engine** — one warm fabric per lane, run serially; and
* the **batched engine** — all 64 lanes stepped together as flat
  ``(lanes, routers, ports, vcs)`` state arrays.

The acceptance floor is a >= 3x aggregate points-per-second speedup.
As everywhere else in this suite, the speedup must come from batching,
not divergence: every lane's result is asserted bit-identical between
the two engines (cycle counts, drain status, full latency/throughput
summary, router-stat counters) before any timing is trusted.

Set ``REPRO_BENCH_JSON=<path>`` to write the measurements as JSON (the
CI job uploads it as the ``BENCH_batched_engine.json`` artifact and
gates it with ``compare_bench.py``).
"""

import json
import os
import time
from dataclasses import asdict

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.core.protected_router import protected_router_factory
from repro.faults.injector import spawn_lane_injectors
from repro.network.batched import LaneSpec, run_lanes, supports
from repro.network.simulator import NoCSimulator
from repro.traffic.generator import COHERENCE_MIX, SyntheticTraffic

LANES = 64
NET = NetworkConfig(
    width=8, height=8, router=RouterConfig(num_vcs=4, num_vnets=2)
)
FACTORY = protected_router_factory(NET)
SIM = SimulationConfig(
    warmup_cycles=50,
    measure_cycles=400,
    drain_cycles=1000,
    seed=7,
    watchdog_cycles=4000,
)
RATES = [0.02 + 0.005 * i for i in range(LANES)]


def _write_json(payload: dict) -> None:
    path = os.environ.get("REPRO_BENCH_JSON", "")
    if not path:
        return
    existing = {}
    if os.path.exists(path):
        with open(path) as fp:
            existing = json.load(fp)
    existing.update(payload)
    with open(path, "w") as fp:
        json.dump(existing, fp, indent=2, sort_keys=True)


def _lane_inputs():
    """Per-lane traffic + fault schedules, identical for both engines.

    Every odd lane carries a tolerated-fault schedule (the Figure 7
    "faulty" flavour); seeds derive from ``SeedSequence.spawn`` so each
    lane's streams are independent of how lanes are grouped.
    """
    schedules = spawn_lane_injectors(
        NET.router, NET.num_nodes, LANES, mean_interval=40.0, num_faults=8,
        rng=2024, first_fault_at=50, avoid_failure=True,
    )
    lanes = []
    for i, rate in enumerate(RATES):
        traffic = SyntheticTraffic(
            NET, injection_rate=rate, mix=COHERENCE_MIX, rng=1000 + i
        )
        lanes.append(LaneSpec(traffic, schedules[i] if i % 2 else None))
    return lanes


def _event_results():
    out = []
    for spec in _lane_inputs():
        sim = NoCSimulator(
            NET, SIM, spec.traffic,
            router_factory=FACTORY,
            fault_schedule=spec.fault_schedule,
        )
        out.append(sim.run())
    return out


def _lane_key(res):
    """Everything a lane result asserts: identity, not approximation."""
    return (
        res.cycles,
        res.blocked,
        res.drained,
        res.faults_injected,
        res.stats.summary(),
        asdict(res.router_stats),
    )


def test_batched_engine_speedup(benchmark):
    assert supports(NET, FACTORY, "xy") is None

    t0 = time.perf_counter()
    event = _event_results()
    event_s = time.perf_counter() - t0

    box = {}

    def batched_run():
        t0 = time.perf_counter()
        out = run_lanes(
            NET, SIM, _lane_inputs(), router_factory=FACTORY
        )
        box["s"] = time.perf_counter() - t0
        return out

    batched = benchmark.pedantic(
        batched_run, rounds=1, iterations=1, warmup_rounds=0
    )
    batched_s = box["s"]

    # a speedup earned by divergence would be a bug, not a win
    assert len(batched) == len(event) == LANES
    for lane, (b, e) in enumerate(zip(batched, event)):
        assert _lane_key(b) == _lane_key(e), f"lane {lane} diverged"

    speedup = event_s / batched_s
    print(
        f"\nfig7-style sweep, {LANES} lanes: event {event_s:.2f}s "
        f"({LANES / event_s:.1f} points/s), batched {batched_s:.2f}s "
        f"({LANES / batched_s:.1f} points/s) -> {speedup:.2f}x"
    )
    _write_json(
        {
            "batched_engine_speedup": round(speedup, 2),
            "batched_points_per_s": round(LANES / batched_s, 2),
            "event_points_per_s": round(LANES / event_s, 2),
            "batched_lanes_s": round(batched_s, 4),
            "event_lanes_s": round(event_s, 4),
        }
    )
    # acceptance floor: batching must carry its weight at fleet size
    assert speedup >= 3.0, f"batched speedup {speedup:.2f}x < 3x"
