"""Engineering benchmark: the batched lane engine vs per-lane event runs.

Not a paper artefact — pins the throughput win the flat-NumPy lane
engine (:mod:`repro.network.batched`) buys on the workload it exists
for: a Figure 7-style sweep of many short, structurally identical
simulations.  64 lanes (8x8 protected mesh, coherence mix, rates
spanning the pre-saturation range, half the lanes carrying tolerated
fault schedules) run once each through

* the **event engine** — one warm fabric per lane, run serially; and
* the **batched engine** — all 64 lanes stepped together as flat
  ``(lanes, routers, ports, vcs)`` state arrays.

The acceptance floor is a >= 3x aggregate points-per-second speedup.
As everywhere else in this suite, the speedup must come from batching,
not divergence: every lane's result is asserted bit-identical between
the two engines (cycle counts, drain status, full latency/throughput
summary, router-stat counters) before any timing is trusted.

Set ``REPRO_BENCH_JSON=<path>`` to write the measurements as JSON (the
CI job uploads it as the ``BENCH_batched_engine.json`` artifact and
gates it with ``compare_bench.py``).
"""

import json
import os
import time
from dataclasses import asdict

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.core.protected_router import protected_router_factory
from repro.faults.injector import spawn_lane_injectors
from repro.network.batched import LaneSpec, run_lanes, supports
from repro.network.simulator import NoCSimulator
from repro.traffic.generator import COHERENCE_MIX, SyntheticTraffic

LANES = 64
NET = NetworkConfig(
    width=8, height=8, router=RouterConfig(num_vcs=4, num_vnets=2)
)
FACTORY = protected_router_factory(NET)
SIM = SimulationConfig(
    warmup_cycles=50,
    measure_cycles=400,
    drain_cycles=1000,
    seed=7,
    watchdog_cycles=4000,
)
RATES = [0.02 + 0.005 * i for i in range(LANES)]


def _write_json(payload: dict) -> None:
    path = os.environ.get("REPRO_BENCH_JSON", "")
    if not path:
        return
    existing = {}
    if os.path.exists(path):
        with open(path) as fp:
            existing = json.load(fp)
    existing.update(payload)
    with open(path, "w") as fp:
        json.dump(existing, fp, indent=2, sort_keys=True)


def _lane_inputs():
    """Per-lane traffic + fault schedules, identical for both engines.

    Every odd lane carries a tolerated-fault schedule (the Figure 7
    "faulty" flavour); seeds derive from ``SeedSequence.spawn`` so each
    lane's streams are independent of how lanes are grouped.
    """
    schedules = spawn_lane_injectors(
        NET.router, NET.num_nodes, LANES, mean_interval=40.0, num_faults=8,
        rng=2024, first_fault_at=50, avoid_failure=True,
    )
    lanes = []
    for i, rate in enumerate(RATES):
        traffic = SyntheticTraffic(
            NET, injection_rate=rate, mix=COHERENCE_MIX, rng=1000 + i
        )
        lanes.append(LaneSpec(traffic, schedules[i] if i % 2 else None))
    return lanes


def _event_results():
    out = []
    for spec in _lane_inputs():
        sim = NoCSimulator(
            NET, SIM, spec.traffic,
            router_factory=FACTORY,
            fault_schedule=spec.fault_schedule,
        )
        out.append(sim.run())
    return out


def _lane_key(res):
    """Everything a lane result asserts: identity, not approximation."""
    return (
        res.cycles,
        res.blocked,
        res.drained,
        res.faults_injected,
        res.stats.summary(),
        asdict(res.router_stats),
    )


def test_batched_engine_speedup(benchmark):
    assert supports(NET, FACTORY, "xy") is None

    t0 = time.perf_counter()
    event = _event_results()
    event_s = time.perf_counter() - t0

    box = {}

    def batched_run():
        t0 = time.perf_counter()
        out = run_lanes(
            NET, SIM, _lane_inputs(), router_factory=FACTORY
        )
        box["s"] = time.perf_counter() - t0
        return out

    batched = benchmark.pedantic(
        batched_run, rounds=1, iterations=1, warmup_rounds=0
    )
    batched_s = box["s"]

    # a speedup earned by divergence would be a bug, not a win
    assert len(batched) == len(event) == LANES
    for lane, (b, e) in enumerate(zip(batched, event)):
        assert _lane_key(b) == _lane_key(e), f"lane {lane} diverged"

    speedup = event_s / batched_s
    print(
        f"\nfig7-style sweep, {LANES} lanes: event {event_s:.2f}s "
        f"({LANES / event_s:.1f} points/s), batched {batched_s:.2f}s "
        f"({LANES / batched_s:.1f} points/s) -> {speedup:.2f}x"
    )
    _write_json(
        {
            "batched_engine_speedup": round(speedup, 2),
            "batched_points_per_s": round(LANES / batched_s, 2),
            "event_points_per_s": round(LANES / event_s, 2),
            "batched_lanes_s": round(batched_s, 4),
            "event_lanes_s": round(event_s, 4),
        }
    )
    # acceptance floor: batching must carry its weight at fleet size
    assert speedup >= 3.0, f"batched speedup {speedup:.2f}x < 3x"


def test_lane_refill_occupancy(benchmark):
    """4x-oversubscribed sweep: pending points stream into retired lanes.

    The engine gets ``LANES / 4`` concurrent slots and must keep the
    state arrays >= 90% occupied while the other three quarters of the
    points refill freed lanes — and every refilled lane must still be
    bit-identical to its full-width run (itself pinned against the
    event engine above).
    """
    from repro.network.batched import BatchedLaneEngine

    width = LANES // 4
    full = run_lanes(NET, SIM, _lane_inputs(), router_factory=FACTORY)

    box = {}

    def refill_run():
        lanes = _lane_inputs()
        engine = BatchedLaneEngine(
            NET, SIM, lanes[:width], FACTORY, pending=lanes[width:]
        )
        t0 = time.perf_counter()
        out = engine.run()
        box["s"] = time.perf_counter() - t0
        box["occupancy"] = engine.lane_occupancy
        return out

    refilled = benchmark.pedantic(
        refill_run, rounds=1, iterations=1, warmup_rounds=0
    )
    assert len(refilled) == LANES
    for lane, (r, f) in enumerate(zip(refilled, full)):
        assert _lane_key(r) == _lane_key(f), f"lane {lane} diverged"
    occupancy = box["occupancy"]
    print(
        f"\nrefill sweep, {LANES} points over {width} slots: "
        f"{box['s']:.2f}s ({LANES / box['s']:.1f} points/s), "
        f"occupancy {occupancy:.3f}"
    )
    _write_json(
        {
            "refill_lane_occupancy": round(occupancy, 4),
            "refill_points_per_s": round(LANES / box["s"], 2),
            "refill_s": round(box["s"], 4),
        }
    )
    assert occupancy >= 0.9, f"lane occupancy {occupancy:.3f} < 0.9"


def test_fig7_suite_lane_speedup(benchmark):
    """The converted fig7 path end to end: ``run_suite_sharded`` batched
    vs event on the quick SPLASH-2 suite (8 apps x fault-free/faulty).

    All 16 points share one structural key, so the batched run steps the
    whole suite as lanes of a single engine; the event run is the same
    sweep with ``engine="event"``.  Per-app latencies must match
    exactly before the timing counts.
    """
    from repro.experiments.latency import QUICK_CONFIG, run_suite_sharded

    t0 = time.perf_counter()
    event_apps, event_report = run_suite_sharded(
        "splash2", QUICK_CONFIG, engine="event"
    )
    event_s = time.perf_counter() - t0
    points = event_report.points

    box = {}

    def suite_run():
        t0 = time.perf_counter()
        out = run_suite_sharded("splash2", QUICK_CONFIG, engine="batched")
        box["s"] = time.perf_counter() - t0
        return out

    batched_apps, batched_report = benchmark.pedantic(
        suite_run, rounds=1, iterations=1, warmup_rounds=0
    )
    batched_s = box["s"]

    assert batched_report.fallbacks == 0, batched_report.fallback_reasons
    assert len(batched_apps) == len(event_apps) == 8
    for b, e in zip(batched_apps, event_apps):
        assert b.app == e.app
        assert b.fault_free == e.fault_free, f"{b.app} fault-free diverged"
        assert b.faulty == e.faulty, f"{b.app} faulty diverged"

    speedup = event_s / batched_s
    print(
        f"\nfig7 quick suite, {points} points: event {event_s:.2f}s, "
        f"batched {batched_s:.2f}s -> {speedup:.2f}x"
    )
    _write_json(
        {
            "fig7_suite_speedup": round(speedup, 2),
            "fig7_suite_batched_s": round(batched_s, 4),
            "fig7_suite_event_s": round(event_s, 4),
        }
    )
    # the suite runs real app surrogates (lower injection, deep drains)
    # on a 4x4 quick mesh — smaller win than the 64-lane 8x8 case, but
    # batching must still pay for itself
    assert speedup >= 1.5, f"suite speedup {speedup:.2f}x < 1.5x"
