"""Engineering benchmark: the observability layer's overhead gates.

Two gates, both run by the CI ``benchmark-smoke`` job:

* **Disabled path <= 5 %.**  With everything off, the instrumentation
  reduces to ``x is None`` attribute checks in the simulator, routers,
  allocators, and NIC.  The un-instrumented seed code no longer exists
  to diff against, so the executable proxy is an interleaved A/A
  comparison: the same disabled-path simulation timed as "baseline" and
  "candidate" in alternation, min-of-5 each.  The min-ratio must stay
  within the 5 % budget — if someone accidentally moves real work onto
  the disabled path (e.g. sampling without a guard), the candidate
  labels in this file are where the regression shows up first.
* **Enabled mode stays usable.**  Full tracing + metrics + profiling on
  the same workload must finish within a sane multiple of the disabled
  run, and the tracer's throughput (events emitted per wall second) is
  reported for trend tracking.

Set ``REPRO_BENCH_JSON=<path>`` to write the measurements as JSON (the
CI job uploads it as the ``BENCH_observability.json`` artifact).
"""

import json
import os
import time

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.network.simulator import NoCSimulator, baseline_router_factory
from repro.observability import Observability, ObservabilityConfig
from repro.traffic.generator import SyntheticTraffic

#: hard budget for the disabled path (ISSUE acceptance criterion)
DISABLED_OVERHEAD_BUDGET = 0.05

#: enabled mode may cost real time, but not explode: tracing + metrics +
#: profiling together must stay under this multiple of the disabled run
ENABLED_OVERHEAD_CEILING = 3.0

_REPEATS = 5


def _run(observability=None):
    net = NetworkConfig(width=4, height=4, router=RouterConfig())
    sim_cfg = SimulationConfig(
        warmup_cycles=100,
        measure_cycles=800,
        drain_cycles=2000,
        seed=3,
        watchdog_cycles=10_000,
    )
    traffic = SyntheticTraffic(net, injection_rate=0.10, rng=3)
    sim = NoCSimulator(
        net,
        sim_cfg,
        traffic,
        router_factory=baseline_router_factory(net),
        observability=observability,
    )
    t0 = time.perf_counter()
    result = sim.run()
    return time.perf_counter() - t0, result


def _write_json(payload: dict) -> None:
    path = os.environ.get("REPRO_BENCH_JSON", "")
    if not path:
        return
    existing = {}
    if os.path.exists(path):
        with open(path) as fp:
            existing = json.load(fp)
    existing.update(payload)
    with open(path, "w") as fp:
        json.dump(existing, fp, indent=2, sort_keys=True)


def test_disabled_path_overhead_within_budget():
    _run()  # warm caches / JIT-free but import+allocator warmup matters
    baseline, candidate = [], []
    for _ in range(_REPEATS):
        baseline.append(_run()[0])
        candidate.append(_run()[0])
    ratio = min(candidate) / min(baseline)
    print(
        f"\ndisabled-path A/A: baseline {min(baseline):.3f}s, "
        f"candidate {min(candidate):.3f}s -> ratio {ratio:.3f} "
        f"(budget {1 + DISABLED_OVERHEAD_BUDGET:.2f})"
    )
    _write_json(
        {
            "disabled_baseline_s": min(baseline),
            "disabled_candidate_s": min(candidate),
            "disabled_ratio": ratio,
            "disabled_budget": 1 + DISABLED_OVERHEAD_BUDGET,
        }
    )
    assert ratio <= 1 + DISABLED_OVERHEAD_BUDGET, (
        f"disabled observability path exceeded the {DISABLED_OVERHEAD_BUDGET:.0%} "
        f"budget: A/A ratio {ratio:.3f}"
    )


def test_enabled_mode_throughput():
    disabled_s = min(_run()[0] for _ in range(3))

    def enabled():
        obs = Observability(
            ObservabilityConfig(trace=True, metrics=True, profile=True)
        )
        wall, result = _run(obs)
        return wall, obs.tracer.emitted

    enabled_s, emitted = min(enabled() for _ in range(3))
    overhead = enabled_s / disabled_s
    events_per_sec = emitted / enabled_s
    print(
        f"\nenabled (trace+metrics+profile): {enabled_s:.3f}s vs "
        f"{disabled_s:.3f}s disabled -> {overhead:.2f}x, "
        f"{emitted:,} events ({events_per_sec:,.0f} events/s)"
    )
    _write_json(
        {
            "enabled_s": enabled_s,
            "enabled_overhead_x": overhead,
            "trace_events_emitted": emitted,
            "trace_events_per_sec": events_per_sec,
        }
    )
    assert emitted > 0
    assert overhead <= ENABLED_OVERHEAD_CEILING, (
        f"fully enabled observability cost {overhead:.2f}x "
        f"(ceiling {ENABLED_OVERHEAD_CEILING}x)"
    )
