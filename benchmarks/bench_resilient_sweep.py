"""Engineering benchmark: resilient sweep engine overhead.

The resilient engine (:mod:`repro.experiments.resilient`) replaces the
plain process pool with supervised workers, per-point watchdogs, and an
append-only checkpoint store.  That machinery must stay cheap: this
bench runs the same sweep through the plain engine and through the
resilient engine (checkpointing every point) and asserts the overhead
is bounded, then re-runs from the completed checkpoint and asserts the
resume path short-circuits execution entirely.

Set ``REPRO_BENCH_JSON=<path>`` to write the measurements as JSON
(the CI `benchmark-smoke` job publishes them as the
``BENCH_resilient_sweep.json`` artifact and gates them with
``compare_bench.py``).
"""

import json
import os
import time

import numpy as np

from repro.experiments.parallel import SweepTask, run_sweep
from repro.experiments.resilient import RetryPolicy, sweep_runtime

POINTS = 12
DRAWS = 120_000  # ~a few ms of real numpy work per point


def _write_json(payload: dict) -> None:
    path = os.environ.get("REPRO_BENCH_JSON", "")
    if not path:
        return
    existing = {}
    if os.path.exists(path):
        with open(path) as fp:
            existing = json.load(fp)
    existing.update(payload)
    with open(path, "w") as fp:
        json.dump(existing, fp, indent=2, sort_keys=True)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _point(i: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    return float(rng.standard_normal(DRAWS).sum())


def _tasks():
    return [
        SweepTask(index=i, fn=_point, args=(i, 1000 + i), label=f"p{i}")
        for i in range(POINTS)
    ]


def test_resilient_engine_overhead(benchmark, tmp_path):
    """Supervised workers + checkpointing vs the plain pool, jobs=2."""
    (plain_values, _), plain_s = _timed(lambda: run_sweep(_tasks(), jobs=2))

    def resilient_run():
        with sweep_runtime(out_dir=tmp_path / "run",
                           retry=RetryPolicy(max_attempts=2)):
            return run_sweep(_tasks(), jobs=2)

    box = {}

    def measured():
        out, box["s"] = _timed(resilient_run)
        return out

    values, report = benchmark.pedantic(
        measured, rounds=1, iterations=1, warmup_rounds=0
    )
    resilient_s = box["s"]

    # same engine contract: bit-identical values, every point checkpointed
    assert values == plain_values
    assert report.checkpointed == POINTS
    assert report.retries == 0

    ratio = resilient_s / plain_s
    print(
        f"\nresilient sweep ({POINTS} points, jobs=2): plain {plain_s:.2f}s, "
        f"resilient {resilient_s:.2f}s -> {ratio:.2f}x overhead"
    )
    _write_json({"resilient_sweep_overhead_x": round(ratio, 2)})
    # generous bound: supervision + checkpoint appends must not blow up
    # a sweep of short points (long points amortize it further)
    assert resilient_s <= plain_s * 3.0 + 2.0, (
        f"resilient engine overhead out of bounds: {ratio:.2f}x"
    )


def test_resume_short_circuits_completed_points(benchmark, tmp_path):
    """Resuming a fully-checkpointed run must replay, not re-execute."""
    run_dir = tmp_path / "run"
    with sweep_runtime(out_dir=run_dir):
        full_values, _ = run_sweep(_tasks(), jobs=2)

    def resume():
        with sweep_runtime(resume=run_dir):
            return run_sweep(_tasks(), jobs=2)

    box = {}

    def measured():
        out, box["s"] = _timed(resume)
        return out

    values, report = benchmark.pedantic(
        measured, rounds=1, iterations=1, warmup_rounds=0
    )
    resume_s = box["s"]

    assert values == full_values
    assert report.resumed == POINTS
    assert report.checkpointed == 0

    rate = POINTS / resume_s
    print(
        f"\nresume of a complete run: {POINTS} points replayed in "
        f"{resume_s:.3f}s ({rate:,.0f} points/s, no workers spawned)"
    )
    _write_json({"resilient_resume_points_per_s": round(rate, 1)})
    # replay is pure JSONL reading — it must beat re-execution handily
    assert resume_s < 1.0, f"checkpoint replay too slow: {resume_s:.3f}s"
