"""Tests for mesh/torus wiring tables."""

import pytest

from repro.config import (
    NetworkConfig,
    OPPOSITE_PORT,
    PORT_EAST,
    PORT_LOCAL,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_WEST,
)
from repro.network.topology import Topology


class TestMesh:
    def test_link_count(self):
        # 8x8 mesh: 2 * (7*8 + 8*7) = 224 unidirectional links
        topo = Topology(NetworkConfig(width=8, height=8))
        assert topo.num_links == 224

    def test_corner_has_two_neighbours(self):
        topo = Topology(NetworkConfig(width=4, height=4))
        ports = [
            p
            for p in (PORT_NORTH, PORT_EAST, PORT_SOUTH, PORT_WEST)
            if topo.neighbour(0, p) is not None
        ]
        assert sorted(ports) == sorted([PORT_EAST, PORT_SOUTH])

    def test_links_are_symmetric(self):
        topo = Topology(NetworkConfig(width=5, height=3))
        for (node, port), (dst, dst_port) in topo.links.items():
            back = topo.links[(dst, OPPOSITE_PORT[port])]
            assert back == (node, OPPOSITE_PORT[dst_port])

    def test_upstream_inverse_of_neighbour(self):
        topo = Topology(NetworkConfig(width=4, height=4))
        for (node, port), (dst, dst_port) in topo.links.items():
            up = topo.upstream(dst, dst_port)
            assert up == (node, port)

    def test_local_port_queries_raise(self):
        topo = Topology(NetworkConfig(width=4, height=4))
        with pytest.raises(ValueError):
            topo.neighbour(0, PORT_LOCAL)
        with pytest.raises(ValueError):
            topo.upstream(0, PORT_LOCAL)

    def test_neighbour_geometry(self):
        net = NetworkConfig(width=4, height=4)
        topo = Topology(net)
        centre = net.node_id(1, 1)
        assert topo.neighbour(centre, PORT_EAST) == (
            net.node_id(2, 1),
            PORT_WEST,
        )
        assert topo.neighbour(centre, PORT_SOUTH) == (
            net.node_id(1, 2),
            PORT_NORTH,
        )


class TestTorus:
    def test_every_port_wired(self):
        topo = Topology(NetworkConfig(width=4, height=4, topology="torus"))
        # 4 directions * 16 nodes
        assert topo.num_links == 64

    def test_wraparound_links(self):
        net = NetworkConfig(width=4, height=4, topology="torus")
        topo = Topology(net)
        # west from (0,0) wraps to (3,0)
        assert topo.neighbour(0, PORT_WEST) == (net.node_id(3, 0), PORT_EAST)
        # north from (0,0) wraps to (0,3)
        assert topo.neighbour(0, PORT_NORTH) == (net.node_id(0, 3), PORT_SOUTH)


class TestGraphView:
    def test_mesh_is_strongly_connected(self):
        topo = Topology(NetworkConfig(width=4, height=4))
        assert topo.is_connected()

    def test_removing_cut_nodes_disconnects(self):
        # 1x4 line mesh: removing an interior node disconnects it
        topo = Topology(NetworkConfig(width=4, height=1))
        assert topo.is_connected()
        assert not topo.is_connected(frozenset({1}))

    def test_torus_survives_single_router_loss(self):
        topo = Topology(NetworkConfig(width=4, height=4, topology="torus"))
        assert topo.is_connected(frozenset({5}))

    def test_graph_edge_count_matches(self):
        topo = Topology(NetworkConfig(width=3, height=3))
        assert topo.graph().number_of_edges() == topo.num_links
