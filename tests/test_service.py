"""Tests for the sweep-as-a-service layer (:mod:`repro.service`).

Three groups:

* **cache-key soundness** — the fingerprint must ignore exactly the
  non-semantic fields (``jobs``, ``stream``, spelling differences) and
  react to every semantic one (any config field, nested or not, and the
  seed);
* **ResultCache** — atomic persistence, fingerprint-validated reads,
  poisoned-entry eviction;
* **server end-to-end** — an in-process asyncio server driven by the
  stdlib client: cold compute, warm hit, in-flight dedup, streaming,
  poisoning recovery, and error paths.
"""

import asyncio
import json

import pytest

from repro.experiments.fault_sweep import FaultSweepConfig
from repro.experiments.latency import LatencyConfig
from repro.service import (
    ResultCache,
    ServiceClient,
    ServiceError,
    SweepService,
    build_config,
    effective_config,
    request_fingerprint,
)
from repro.service.cache import make_entry
from repro.service.fingerprint import RequestError, canonical

#: a deliberately tiny fault sweep: two points, sub-second each
TINY = {
    "fault_counts": [0, 2],
    "latency": {
        "width": 4,
        "height": 4,
        "warmup_cycles": 50,
        "measure_cycles": 300,
        "drain_cycles": 500,
        "num_faults": 8,
    },
}


def _fp(name, config=None, seed=None, quick=False):
    cfg, residual = effective_config(name, config, quick=quick, seed=seed)
    return request_fingerprint(name, cfg, seed=residual)


# ----------------------------------------------------------------------
# cache-key soundness
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_spelling_differences_hash_identically(self):
        """Key order, list-vs-tuple, dict-vs-dataclass: same key."""
        a = _fp("fault_sweep", TINY)
        reordered = {k: TINY[k] for k in reversed(list(TINY))}
        assert _fp("fault_sweep", reordered) == a
        as_dataclass = FaultSweepConfig(
            fault_counts=(0, 2),
            latency=LatencyConfig(
                width=4, height=4, warmup_cycles=50, measure_cycles=300,
                drain_cycles=500, num_faults=8,
            ),
        )
        assert _fp("fault_sweep", as_dataclass) == a

    def test_explicit_defaults_equal_omitted_fields(self):
        """config: null == config: {} == all-defaults spelled out."""
        base = _fp("load_latency")
        assert _fp("load_latency", {}) == base
        spelled = {
            "rates": [0.05, 0.10, 0.15, 0.20, 0.25],
            "width": 4, "height": 4, "num_faults": 48,
            "seed": 1, "measure": 3000,
        }
        assert _fp("load_latency", spelled) == base

    def test_non_semantic_request_fields_do_not_reach_the_key(self):
        """jobs/stream are transport/execution knobs: results are
        bit-identical regardless (pinned by tests/test_parallel.py), so
        requests differing only there must share one cache entry."""
        async def run():
            service, client = await _start_service_tmp()
            try:
                a = await client.sweep("fault_sweep", TINY, jobs=1)
                b = await client.sweep(
                    "fault_sweep", TINY, jobs=2, stream=True
                )
                assert a["fingerprint"] == b["fingerprint"]
                assert b["cached"] is True  # second request was a hit
            finally:
                await service.close()
        asyncio.run(run())

    def test_every_semantic_field_changes_the_key(self):
        base = _fp("fault_sweep", TINY)
        top = dict(TINY)
        top["fault_counts"] = [0, 3]
        assert _fp("fault_sweep", top) != base
        app = dict(TINY)
        app["app"] = "fft"
        assert _fp("fault_sweep", app) != base
        nested = json.loads(json.dumps(TINY))
        nested["latency"]["measure_cycles"] = 301
        assert _fp("fault_sweep", nested) != base

    def test_seed_override_changes_the_key(self):
        assert _fp("fault_sweep", TINY, seed=2) != _fp("fault_sweep", TINY)
        # when the config carries a top-level seed field the override
        # folds into it — the two spellings are one request
        assert _fp("load_latency", seed=7) == _fp("load_latency", {"seed": 7})
        assert _fp("load_latency", seed=7) != _fp("load_latency")

    def test_quick_flag_resolves_to_the_quick_config(self):
        assert _fp("fault_sweep", quick=True) == _fp(
            "fault_sweep", {"fault_counts": [0, 8, 24]}
        )

    def test_experiment_name_is_part_of_the_key(self):
        assert _fp("fig7") != _fp("fig8")

    def test_unknown_experiment_and_fields_rejected(self):
        with pytest.raises(RequestError):
            _fp("fig9000")
        with pytest.raises(RequestError):
            build_config("fault_sweep", {"fault_count": [1]})  # typo
        with pytest.raises(RequestError):
            build_config("fault_sweep", {"latency": {"widht": 4}})

    def test_canonical_tags_the_config_class(self):
        """Structurally identical configs of different types must not
        collide (table1 and table2 both take a RouterGeometry — the
        experiment name separates those; the class tag separates any
        future same-shape config pairs)."""
        c = canonical(FaultSweepConfig())
        assert c["__config__"] == "FaultSweepConfig"


# ----------------------------------------------------------------------
# ResultCache
# ----------------------------------------------------------------------
class TestResultCache:
    def _entry(self, fp="ab" + "0" * 62):
        cfg, _ = effective_config("fault_sweep", TINY)
        return make_entry(
            fp, "fault_sweep", cfg,
            {"experiment": "fault_sweep", "rows": [{"label": "x"}]},
            {"wall_s": 1.0},
        )

    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        entry = self._entry()
        cache.put(entry)
        assert entry.fingerprint in cache
        got = cache.get(entry.fingerprint)
        assert got is not None
        assert got.result == entry.result
        assert got.request == entry.request
        assert len(cache) == 1
        assert cache.index() == {entry.fingerprint: "fault_sweep"}

    def test_missing_is_a_miss(self, tmp_path):
        assert ResultCache(tmp_path).get("ff" + "0" * 62) is None

    @pytest.mark.parametrize(
        "poison",
        [
            b"",                                    # truncated to nothing
            b"{\"version\": 1",                    # torn JSON
            b"not json at all",
            json.dumps({"version": 99}).encode(),   # future version
        ],
    )
    def test_poisoned_entries_evicted(self, tmp_path, poison):
        cache = ResultCache(tmp_path)
        entry = self._entry()
        path = cache.put(entry)
        path.write_bytes(poison)
        assert cache.get(entry.fingerprint) is None
        assert cache.poisoned == 1
        assert not path.exists()  # evicted, next request recomputes

    def test_tampered_payload_detected(self, tmp_path):
        """Flipping a result value breaks the recorded digest."""
        cache = ResultCache(tmp_path)
        entry = self._entry()
        path = cache.put(entry)
        data = json.loads(path.read_bytes())
        data["result"]["rows"][0]["label"] = "forged"
        path.write_text(json.dumps(data))
        assert cache.get(entry.fingerprint) is None
        assert cache.poisoned == 1

    def test_misfiled_entry_detected(self, tmp_path):
        """An entry served under the wrong fingerprint is poison too."""
        cache = ResultCache(tmp_path)
        entry = self._entry()
        src = cache.put(entry)
        other = "cd" + "1" * 62
        dst = cache.path_for(other)
        dst.parent.mkdir(parents=True, exist_ok=True)
        dst.write_bytes(src.read_bytes())
        assert cache.get(other) is None
        assert cache.get(entry.fingerprint) is not None

    def _fp(self, i):
        return f"{i:02x}" + "e" * 62

    def _pin_mtime(self, cache, fp, order):
        """Give entry ``fp`` a deterministic LRU rank (older = smaller)."""
        import os

        os.utime(cache.path_for(fp), ns=(order * 10**9, order * 10**9))

    def test_max_entries_evicts_lru(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=3)
        for i in range(6):
            cache.put(self._entry(self._fp(i)))
            self._pin_mtime(cache, self._fp(i), i)
        assert len(cache) == 3
        assert cache.evicted == 3
        survivors = {fp[:2] for fp in cache.fingerprints()}
        assert survivors == {"03", "04", "05"}

    def test_max_bytes_evicts_lru(self, tmp_path):
        cache = ResultCache(tmp_path)  # measure one entry first
        probe = cache.put(self._entry(self._fp(0)))
        entry_size = probe.stat().st_size
        probe.unlink()

        cache = ResultCache(tmp_path, max_bytes=2 * entry_size)
        for i in range(4):
            cache.put(self._entry(self._fp(i)))
            self._pin_mtime(cache, self._fp(i), i)
        assert len(cache) == 2
        assert cache.evicted == 2

    def test_read_refreshes_recency(self, tmp_path):
        """A validated get() keeps its entry out of the LRU axe."""
        cache = ResultCache(tmp_path, max_entries=2)
        for i in range(2):
            cache.put(self._entry(self._fp(i)))
            self._pin_mtime(cache, self._fp(i), i)
        assert cache.get(self._fp(0)) is not None  # oldest becomes newest
        cache.put(self._entry(self._fp(2)))
        assert cache.get(self._fp(0)) is not None
        assert cache.get(self._fp(1)) is None  # the untouched one went
        assert cache.evicted == 1

    def test_fresh_write_never_evicted(self, tmp_path):
        """A budget below one entry keeps only the latest, never zero."""
        cache = ResultCache(tmp_path, max_bytes=1)
        cache.put(self._entry(self._fp(0)))
        assert cache.get(self._fp(0)) is not None
        cache.put(self._entry(self._fp(1)))
        assert cache.get(self._fp(1)) is not None
        assert cache.get(self._fp(0)) is None
        assert len(cache) == 1

    def test_unbounded_by_default(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(8):
            cache.put(self._entry(self._fp(i)))
        assert len(cache) == 8
        assert cache.evicted == 0

    def test_bad_budgets_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_bytes=-1)
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_entries=0)


# ----------------------------------------------------------------------
# server end-to-end
# ----------------------------------------------------------------------
async def _start_service_tmp(**kwargs):
    import tempfile

    tmp = tempfile.mkdtemp(prefix="repro-service-")
    service = SweepService(tmp, **kwargs)
    port = await service.start()
    return service, ServiceClient("127.0.0.1", port)


class TestServer:
    def test_stats_surface_cache_evictions(self, tmp_path):
        """The eviction tally reaches the stats payload as cache_evicted."""
        service = SweepService(str(tmp_path), cache_max_entries=1)
        cfg, _ = effective_config("fault_sweep", TINY)
        for i in range(3):
            service.cache.put(
                make_entry(
                    f"{i:02x}" + "d" * 62, "fault_sweep", cfg,
                    {"experiment": "fault_sweep", "rows": []}, {},
                )
            )
        stats = service._stats()
        assert stats["cache_entries"] == 1
        assert stats["cache_evicted"] == 2

    def test_cold_then_warm_bit_identical(self):
        async def run():
            service, client = await _start_service_tmp()
            try:
                cold = await client.sweep("fault_sweep", TINY)
                assert cold["cached"] is False
                warm = await client.sweep("fault_sweep", TINY)
                assert warm["cached"] is True
                assert warm["result"] == cold["result"]
                assert warm["sha256"] == cold["sha256"]
                fetched = await client.result(cold["fingerprint"])
                assert fetched["result"] == cold["result"]
                stats = await client.stats()
                counters = stats["counters"]
                assert counters["service.computations"] == 1
                assert counters["service.cache_hits"] == 1
            finally:
                await service.close()
        asyncio.run(run())

    def test_result_matches_direct_run(self):
        """The determinism contract end to end: the service's rendered
        rows equal a direct in-process run of the same config."""
        from repro.experiments import fault_sweep
        from repro.service.results import render_result

        async def run():
            service, client = await _start_service_tmp()
            try:
                reply = await client.sweep("fault_sweep", TINY)
            finally:
                await service.close()
            return reply

        reply = asyncio.run(run())
        cfg, _ = effective_config("fault_sweep", TINY)
        direct, _sweep = render_result(fault_sweep.run(cfg))
        assert reply["result"]["rows"] == direct["rows"]
        assert reply["result"]["text"] == direct["text"]

    def test_inflight_dedup_computes_once(self):
        async def run():
            service, client = await _start_service_tmp()
            try:
                n = 5
                replies = await asyncio.gather(
                    *[client.sweep("fault_sweep", TINY) for _ in range(n)]
                )
                assert len({r["sha256"] for r in replies}) == 1
                stats = await client.stats()
                counters = stats["counters"]
                assert counters["service.computations"] == 1
                assert counters["service.dedup_joined"] == n - 1
                assert counters["service.cache_misses"] == n
                assert stats["inflight"] == 0  # drained afterwards
            finally:
                await service.close()
        asyncio.run(run())

    def test_streaming_points_arrive_before_the_result(self):
        async def run():
            service, client = await _start_service_tmp()
            try:
                points = []
                reply = await client.sweep(
                    "fault_sweep", TINY, stream=True,
                    on_point=points.append,
                )
                # the two fault counts share one structural key, so the
                # lane sweep runs them as a single batched chunk: one
                # streamed event covering both points
                assert reply["points_streamed"] == 2
                assert len(points) == 1
                assert points[0]["points"] == 2
                assert points[0]["label"] == "protected/xy lanes 0-1"
                assert reply["result"]["rows"]
            finally:
                await service.close()
        asyncio.run(run())

    def test_poisoned_cache_recomputes(self):
        async def run():
            service, client = await _start_service_tmp()
            try:
                cold = await client.sweep("fault_sweep", TINY)
                path = service.cache.path_for(cold["fingerprint"])
                path.write_text("garbage, as if the disk bit-rotted")
                again = await client.sweep("fault_sweep", TINY)
                assert again["cached"] is False  # poison never served
                assert again["result"] == cold["result"]
                stats = await client.stats()
                assert stats["cache_poisoned"] == 1
                assert stats["counters"]["service.computations"] == 2
            finally:
                await service.close()
        asyncio.run(run())

    def test_error_paths(self):
        async def run():
            service, client = await _start_service_tmp()
            try:
                with pytest.raises(ServiceError) as err:
                    await client.sweep("fig9000")
                assert err.value.status == 400
                with pytest.raises(ServiceError) as err:
                    await client.sweep(
                        "fault_sweep", {"no_such_field": 1}
                    )
                assert err.value.status == 400
                assert await client.result("ab" + "0" * 62) is None
                catalog = await client.experiments()
                assert "fault_sweep" in catalog
                assert catalog["fault_sweep"]["config"] == "FaultSweepConfig"
            finally:
                await service.close()
        asyncio.run(run())


# ----------------------------------------------------------------------
# thread-local runtime activation (the seam the server relies on)
# ----------------------------------------------------------------------
class TestThreadLocalRuntime:
    def test_concurrent_threads_get_independent_runtimes(self, tmp_path):
        """Two threads installing sweep runtimes concurrently must not
        share state — before the thread-local fix the second thread
        silently joined the first thread's runtime (and would have
        checkpointed into its store)."""
        import threading

        from repro.experiments.resilient import active_runtime, sweep_runtime

        seen = {}
        barrier = threading.Barrier(2, timeout=10)

        def worker(name, out_dir):
            with sweep_runtime(out_dir=out_dir):
                barrier.wait()  # both runtimes installed at once
                seen[name] = active_runtime().store.path
                barrier.wait()

        threads = [
            threading.Thread(
                target=worker, args=(i, tmp_path / f"run{i}")
            )
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert seen[0] != seen[1]
        assert active_runtime() is None  # main thread untouched

    def test_progress_hook_fires_per_point(self):
        from repro.experiments import fault_sweep
        from repro.experiments.resilient import sweep_runtime

        events = []
        cfg, _ = effective_config("fault_sweep", TINY)
        with sweep_runtime(progress=events.append):
            fault_sweep.run(cfg, jobs=2)
        # jobs=2 splits the 2-point lane group into one chunk per worker
        assert {e["label"] for e in events} == {
            "protected/xy lanes 0-0", "protected/xy lanes 1-1"
        }
        assert sum(e["points"] for e in events) == 2
        assert all(e["resumed"] is False for e in events)
