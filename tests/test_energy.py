"""Tests for the per-event energy model and the energy experiment."""

import math

import pytest

from repro.experiments import energy as energy_exp
from repro.experiments.latency import QUICK_CONFIG
from repro.router.router import RouterStats
from repro.synthesis.energy import EnergyModel, EnergyReport, energy_of_run

from conftest import make_network_config, make_sim


class TestEnergyModel:
    def test_breakdown_sums_to_total(self):
        stats = RouterStats(
            flits_traversed=100,
            buffer_writes=100,
            va_grants=30,
            sa_grants=100,
            secondary_path_grants=5,
            vc_transfers=2,
        )
        bd = EnergyModel().router_energy_pj(stats)
        parts = sum(v for k, v in bd.items() if k != "total")
        assert bd["total"] == pytest.approx(parts)

    def test_idle_router_zero_energy(self):
        bd = EnergyModel().router_energy_pj(RouterStats())
        assert bd["total"] == 0.0

    def test_secondary_and_transfer_priced(self):
        base = EnergyModel().router_energy_pj(
            RouterStats(flits_traversed=10, buffer_writes=10, sa_grants=10)
        )
        faulty = EnergyModel().router_energy_pj(
            RouterStats(
                flits_traversed=10,
                buffer_writes=10,
                sa_grants=10,
                secondary_path_grants=10,
                vc_transfers=3,
            )
        )
        assert faulty["total"] > base["total"]

    def test_report_per_flit(self):
        rep = EnergyReport(
            breakdown_pj={"total": 100.0}, flits_delivered=50,
            packets_delivered=10,
        )
        assert rep.pj_per_flit == 2.0
        assert rep.pj_per_packet == 10.0

    def test_report_empty_run_nan(self):
        rep = EnergyReport(
            breakdown_pj={"total": 0.0}, flits_delivered=0, packets_delivered=0
        )
        assert math.isnan(rep.pj_per_flit)
        assert math.isnan(rep.pj_per_packet)


class TestEnergyOfRun:
    def test_prices_real_simulation(self):
        net = make_network_config(3, 3)
        sim = make_sim(net, injection_rate=0.06, measure=600)
        result = sim.run()
        rep = energy_of_run(result)
        assert rep.total_pj > 0
        assert rep.pj_per_flit > 0
        # per-flit energy is bounded: every flit costs at least one
        # write+read+crossbar+link on its path
        m = EnergyModel()
        floor = (
            m.buffer_write_pj + m.buffer_read_pj + m.xb_traversal_pj
            + m.link_traversal_pj
        )
        assert rep.pj_per_flit >= floor

    def test_energy_scales_with_hops(self):
        """Longer paths cost proportionally more energy per flit."""
        from repro.router.flit import Packet
        from repro.traffic.generator import TraceTraffic

        net = make_network_config(4, 4)
        short = make_sim(
            net, traffic=TraceTraffic(
                [Packet(src=0, dest=1, size_flits=1, creation_cycle=0)]
            ), warmup=0, measure=30,
        ).run()
        faraway = make_sim(
            net, traffic=TraceTraffic(
                [Packet(src=0, dest=15, size_flits=1, creation_cycle=0)]
            ), warmup=0, measure=60,
        ).run()
        assert (
            energy_of_run(faraway).pj_per_flit
            > 2.5 * energy_of_run(short).pj_per_flit
        )


class TestEnergyExperiment:
    def test_quick_experiment_shape(self):
        res = energy_exp.run(app="lu", cfg=QUICK_CONFIG)
        assert res.row("fault-free energy/flit").measured > 0
        assert res.row("faulty energy/flit").measured >= res.row(
            "fault-free energy/flit"
        ).measured * 0.99
        assert res.row("energy overhead below latency overhead").measured is True
