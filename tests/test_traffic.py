"""Tests for traffic patterns, generators, app surrogates, and traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig, RouterConfig
from repro.router.flit import Packet
from repro.traffic.apps import (
    PARSEC_PROFILES,
    SPLASH2_PROFILES,
    AppProfile,
    app_profile,
    directory_home_nodes,
    make_app_traffic,
    suite_profiles,
)
from repro.traffic.generator import (
    COHERENCE_MIX,
    SINGLE_FLIT_MIX,
    _MAX_CHUNK_CYCLES,
    NullTraffic,
    PacketClass,
    SyntheticTraffic,
    TraceTraffic,
)
from repro.traffic.patterns import (
    BitComplement,
    BitReverse,
    Hotspot,
    Neighbor,
    Tornado,
    Transpose,
    UniformRandom,
    available_patterns,
    make_pattern,
)
from repro.traffic.trace import (
    bucket_by_cycle,
    load_trace,
    record_source,
    record_to_packet,
    save_trace,
)


@pytest.fixture
def net():
    return NetworkConfig(width=4, height=4)


def rng():
    return np.random.default_rng(7)


class TestPatterns:
    def test_uniform_never_self(self, net):
        p = UniformRandom(net)
        src = np.repeat(np.arange(16), 50)
        dst = p.destinations(src, rng())
        assert np.all(dst != src)
        assert np.all((0 <= dst) & (dst < 16))

    def test_uniform_covers_all_destinations(self, net):
        p = UniformRandom(net)
        src = np.zeros(2000, dtype=int)
        dst = p.destinations(src, rng())
        assert set(dst) == set(range(1, 16))

    def test_transpose(self, net):
        p = Transpose(net)
        # (1,0)=1 -> (0,1)=4
        assert p.destinations(np.array([1]), rng())[0] == 4

    def test_transpose_requires_square(self):
        with pytest.raises(ValueError):
            Transpose(NetworkConfig(width=4, height=2))

    def test_bit_complement(self, net):
        p = BitComplement(net)
        assert p.destinations(np.array([0]), rng())[0] == 15
        assert p.destinations(np.array([3]), rng())[0] == 12

    def test_bit_reverse_power_of_two_only(self):
        with pytest.raises(ValueError):
            BitReverse(NetworkConfig(width=3, height=3))

    def test_bit_reverse_mapping(self, net):
        p = BitReverse(net)
        # 16 nodes, 4 bits: 1 (0001) -> 8 (1000)
        assert p.destinations(np.array([1]), rng())[0] == 8

    def test_tornado_half_width(self, net):
        p = Tornado(net)
        # (0,0) -> (x + ceil(4/2)-1) mod 4 = (0+1)%4 = 1
        assert p.destinations(np.array([0]), rng())[0] == 1

    def test_neighbor(self, net):
        p = Neighbor(net)
        assert p.destinations(np.array([0]), rng())[0] == 1
        assert p.destinations(np.array([3]), rng())[0] == 0  # wraps row

    def test_hotspot_bias(self, net):
        p = Hotspot(net, hotspots=[5], fraction=0.5)
        src = np.ones(4000, dtype=int) * 2
        dst = p.destinations(src, rng())
        frac5 = np.mean(dst == 5)
        assert 0.4 < frac5 < 0.6
        assert np.all(dst != src)

    def test_hotspot_validation(self, net):
        with pytest.raises(ValueError):
            Hotspot(net, hotspots=[99])
        with pytest.raises(ValueError):
            Hotspot(net, fraction=1.5)
        with pytest.raises(ValueError):
            Hotspot(net, hotspots=[])

    def test_factory(self, net):
        assert available_patterns()
        for name in available_patterns():
            if name == "bit_reverse" and net.num_nodes & (net.num_nodes - 1):
                continue
            pat = make_pattern(name, net)
            assert pat.name == name
        with pytest.raises(ValueError):
            make_pattern("zigzag", net)

    @given(st.sampled_from(["uniform_random", "transpose", "bit_complement",
                            "tornado", "neighbor", "hotspot"]))
    @settings(max_examples=20, deadline=None)
    def test_patterns_never_self_target(self, name):
        net = NetworkConfig(width=4, height=4)
        pat = make_pattern(name, net)
        src = np.arange(16)
        for seed in range(3):
            dst = pat.destinations(src, np.random.default_rng(seed))
            assert np.all(dst != src)


class TestSyntheticTraffic:
    def test_rate_is_respected(self, net):
        t = SyntheticTraffic(net, injection_rate=0.1, rng=1)
        total = sum(len(list(t.generate(c))) for c in range(3000))
        expected = 0.1 * 16 * 3000  # 1-flit packets
        assert total == pytest.approx(expected, rel=0.1)

    def test_mix_rates_account_for_length(self, net):
        t = SyntheticTraffic(net, injection_rate=0.2, mix=COHERENCE_MIX, rng=1)
        flits = sum(
            p.size_flits for c in range(3000) for p in t.generate(c)
        )
        assert flits == pytest.approx(0.2 * 16 * 3000, rel=0.1)

    def test_vnet_assignment_follows_class(self, net):
        t = SyntheticTraffic(net, injection_rate=0.2, mix=COHERENCE_MIX, rng=1)
        pkts = [p for c in range(500) for p in t.generate(c)]
        for p in pkts:
            if p.size_flits == 1:
                assert p.vnet == 0
            else:
                assert p.vnet == 1

    def test_burstiness_preserves_average(self, net):
        smooth = SyntheticTraffic(net, injection_rate=0.1, rng=1)
        bursty = SyntheticTraffic(net, injection_rate=0.1, rng=1, burstiness=0.6)
        n_s = sum(len(list(smooth.generate(c))) for c in range(6000))
        n_b = sum(len(list(bursty.generate(c))) for c in range(6000))
        assert n_b == pytest.approx(n_s, rel=0.25)

    def test_deterministic_with_seed(self, net):
        a = SyntheticTraffic(net, injection_rate=0.1, rng=5)
        b = SyntheticTraffic(net, injection_rate=0.1, rng=5)
        pa = [(p.src, p.dest) for c in range(200) for p in a.generate(c)]
        pb = [(p.src, p.dest) for c in range(200) for p in b.generate(c)]
        assert pa == pb

    def test_rejects_bad_rates(self, net):
        with pytest.raises(ValueError):
            SyntheticTraffic(net, injection_rate=-0.1)
        with pytest.raises(ValueError):
            SyntheticTraffic(net, injection_rate=2.0)  # >1 pkt/node/cycle
        with pytest.raises(ValueError):
            SyntheticTraffic(net, injection_rate=0.1, mix=())

    def test_packet_class_validation(self):
        with pytest.raises(ValueError):
            PacketClass(size_flits=0)
        with pytest.raises(ValueError):
            PacketClass(size_flits=1, weight=0)

    def test_null_traffic(self):
        assert list(NullTraffic().generate(0)) == []


class TestChunkedDraws:
    """The chunked Bernoulli prefetch must be invisible in the packet
    stream: same packets, same destinations, same classes as per-cycle
    draws from the same seed (the reference path is chunk length 1)."""

    def test_chunked_identical_to_per_cycle(self, net):
        for rate in (0.0, 0.01, 0.05, 0.2):
            for burst in (0.0, 0.6):
                for mix in (SINGLE_FLIT_MIX, COHERENCE_MIX):
                    fast = SyntheticTraffic(
                        net, rate, mix=mix, rng=11, burstiness=burst
                    )
                    ref = SyntheticTraffic(
                        net, rate, mix=mix, rng=11, burstiness=burst
                    )
                    got, want = [], []
                    for c in range(1500):
                        got.extend(
                            (p.src, p.dest, p.size_flits, p.vnet)
                            for p in fast.generate(c)
                        )
                        # pin the reference to per-cycle draws
                        ref._chunk_cycles = 1
                        ref._quiet_streak = 0
                        want.extend(
                            (p.src, p.dest, p.size_flits, p.vnet)
                            for p in ref.generate(c)
                        )
                    assert got == want, (rate, burst, len(mix))

    def test_chunk_grows_on_silence_and_resets_on_start(self, net):
        silent = SyntheticTraffic(net, injection_rate=0.0, rng=1)
        for c in range(10 * _MAX_CHUNK_CYCLES):
            assert not list(silent.generate(c))
        assert silent._chunk_cycles == _MAX_CHUNK_CYCLES

        busy = SyntheticTraffic(net, injection_rate=0.02, rng=1)
        grew = shrank = False
        for c in range(4000):
            had = bool(list(busy.generate(c)))
            if had:
                assert busy._chunk_cycles == 1  # reset on every start
                shrank = True
            elif busy._chunk_cycles > 1:
                grew = True
        assert grew and shrank

    def test_saturated_stream_never_chunks(self, net):
        t = SyntheticTraffic(net, injection_rate=1.0, rng=2)
        for c in range(50):
            assert list(t.generate(c))
        assert t._chunk_cycles == 1
        assert t._chunk is None


class TestNextInjectionLookahead:
    """``next_injection`` (the event-driven engine's skip-ahead hook) must
    consume the random stream exactly as per-cycle ``generate`` calls
    would: same hit cycles, same packets, regardless of how lookahead
    calls and per-cycle steps interleave."""

    HORIZON = 1500

    @staticmethod
    def _per_cycle(traffic, horizon):
        """Reference drive: generate every cycle."""
        out = {}
        for c in range(horizon):
            pkts = [
                (p.src, p.dest, p.size_flits, p.vnet, p.creation_cycle)
                for p in traffic.generate(c)
            ]
            if pkts:
                out[c] = pkts
        return out

    @staticmethod
    def _skipping(traffic, horizon):
        """Engine drive: jump straight between next_injection hits."""
        out = {}
        c = 0
        while c < horizon:
            nxt = traffic.next_injection(c, horizon)
            if nxt is None:
                break
            assert c <= nxt < horizon
            pkts = [
                (p.src, p.dest, p.size_flits, p.vnet, p.creation_cycle)
                for p in traffic.generate(nxt)
            ]
            assert pkts, f"lookahead promised a hit at {nxt}"
            out[nxt] = pkts
            c = nxt + 1
        return out

    def test_flat_lookahead_matches_per_cycle(self, net):
        for rate in (0.0, 0.002, 0.02, 0.2):
            for mix in (SINGLE_FLIT_MIX, COHERENCE_MIX):
                ref = SyntheticTraffic(net, rate, mix=mix, rng=23)
                fast = SyntheticTraffic(net, rate, mix=mix, rng=23)
                want = self._per_cycle(ref, self.HORIZON)
                got = self._skipping(fast, self.HORIZON)
                assert got == want, (rate, len(mix))

    def test_bursty_lookahead_matches_per_cycle(self, net):
        for burst in (0.3, 0.8):
            ref = SyntheticTraffic(net, 0.01, rng=29, burstiness=burst)
            fast = SyntheticTraffic(net, 0.01, rng=29, burstiness=burst)
            want = self._per_cycle(ref, self.HORIZON)
            got = self._skipping(fast, self.HORIZON)
            assert got == want, burst

    def test_interleaved_lookahead_and_generate(self, net):
        """The engine may clamp a jump short of the promised hit (fault
        wakes) and then step per-cycle; quiet cycles already drawn by the
        lookahead must be no-ops, and the stashed hit must land intact."""
        ref = SyntheticTraffic(net, 0.01, rng=31)
        fast = SyntheticTraffic(net, 0.01, rng=31)
        want = self._per_cycle(ref, self.HORIZON)
        got = {}
        c = 0
        while c < self.HORIZON:
            nxt = fast.next_injection(c, self.HORIZON)
            if nxt is None:
                # proven quiet: stepping through must yield nothing
                for w in range(c, self.HORIZON):
                    assert not list(fast.generate(w))
                break
            # step per cycle part of the way (as if a wake interrupted),
            # then let a second lookahead re-confirm the stash
            mid = c + (nxt - c) // 2
            for w in range(c, mid):
                assert not list(fast.generate(w))
            assert fast.next_injection(mid, self.HORIZON) == nxt
            for w in range(mid, nxt):
                assert not list(fast.generate(w))
            pkts = [
                (p.src, p.dest, p.size_flits, p.vnet, p.creation_cycle)
                for p in fast.generate(nxt)
            ]
            assert pkts
            got[nxt] = pkts
            c = nxt + 1
        assert got == want

    def test_trace_traffic_lookahead(self):
        pkts = [
            Packet(src=0, dest=5, size_flits=1, vnet=0, creation_cycle=c)
            for c in (3, 3, 40)
        ]
        t = TraceTraffic(pkts)
        assert t.next_injection(0, 100) == 3
        assert len(list(t.generate(3))) == 2
        assert t.next_injection(4, 100) == 40
        # beyond the horizon: invisible to this window
        assert t.next_injection(4, 30) is None
        # catch-up: an overdue bucket is due immediately
        assert t.next_injection(50, 100) == 50
        assert len(list(t.generate(50))) == 1
        assert t.next_injection(51, 100) is None

    def test_null_traffic_lookahead(self):
        assert NullTraffic().next_injection(0, 10_000) is None


class TestBucketByCycle:
    def test_buckets_sorted_and_stable(self):
        pkts = [
            Packet(src=s, dest=(s + 1) % 16, size_flits=1, creation_cycle=c)
            for s, c in [(0, 7), (1, 2), (2, 7), (3, 2), (4, 0)]
        ]
        cycles, buckets = bucket_by_cycle(pkts)
        assert cycles == [0, 2, 7]
        assert [p.src for p in buckets[2]] == [1, 3]  # trace order kept
        assert [p.src for p in buckets[7]] == [0, 2]

    def test_empty_trace(self):
        cycles, buckets = bucket_by_cycle([])
        assert cycles == [] and buckets == {}
        t = TraceTraffic([])
        assert list(t.generate(0)) == []
        assert t.remaining == 0


class TestTraceTraffic:
    def test_replay_in_order(self):
        pkts = [
            Packet(src=0, dest=1, size_flits=1, creation_cycle=c)
            for c in (5, 2, 9)
        ]
        t = TraceTraffic(pkts)
        assert [p.creation_cycle for p in t.generate(2)] == [2]
        assert [p.creation_cycle for p in t.generate(7)] == [5]
        assert t.remaining == 1

    def test_trace_file_roundtrip(self, tmp_path):
        pkts = [
            Packet(src=0, dest=5, size_flits=5, vnet=1, creation_cycle=10),
            Packet(src=3, dest=1, size_flits=1, creation_cycle=2),
        ]
        path = tmp_path / "t.jsonl"
        assert save_trace(pkts, path) == 2
        loaded = load_trace(path)
        assert [(p.src, p.dest, p.size_flits, p.vnet, p.creation_cycle)
                for p in loaded] == [
            (3, 1, 1, 0, 2),
            (0, 5, 5, 1, 10),
        ]

    def test_bad_record_rejected(self):
        with pytest.raises(ValueError):
            record_to_packet({"cycle": 0, "src": 1})

    def test_bad_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"cycle": 0, "src": 0, "dest": 1, "size": 1, "vnet": 0}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trace(path)

    def test_record_source(self, net):
        src = SyntheticTraffic(net, injection_rate=0.2, rng=1)
        pkts = record_source(src, 100)
        assert pkts
        assert all(0 <= p.creation_cycle < 100 for p in pkts)


class TestAppSurrogates:
    def test_suite_membership(self):
        assert len(SPLASH2_PROFILES) == 8
        assert len(PARSEC_PROFILES) == 9
        assert all(p.suite == "splash2" for p in SPLASH2_PROFILES)
        assert all(p.suite == "parsec" for p in PARSEC_PROFILES)

    def test_lookup(self):
        assert app_profile("ocean").suite == "splash2"
        assert app_profile("canneal").suite == "parsec"
        with pytest.raises(ValueError):
            app_profile("doom")

    def test_suites(self):
        assert suite_profiles("splash2") == SPLASH2_PROFILES
        assert suite_profiles("parsec") == PARSEC_PROFILES
        with pytest.raises(ValueError):
            suite_profiles("spec")

    def test_parsec_loads_heavier_on_average(self):
        """The paper's 13 % > 10 % ordering rests on this."""
        s = np.mean([p.injection_rate for p in SPLASH2_PROFILES])
        p = np.mean([p.injection_rate for p in PARSEC_PROFILES])
        assert p > s

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            AppProfile("x", "s", injection_rate=0.0, burstiness=0.1,
                       hotspot_fraction=0.1)
        with pytest.raises(ValueError):
            AppProfile("x", "s", injection_rate=0.1, burstiness=1.0,
                       hotspot_fraction=0.1)

    def test_directory_homes_on_edges(self):
        net = NetworkConfig(width=8, height=8)
        homes = directory_home_nodes(net)
        assert homes
        for h in homes:
            _, y = net.coords(h)
            assert y in (0, net.height - 1)

    def test_make_app_traffic_two_vnets(self):
        net = NetworkConfig(
            width=4, height=4, router=RouterConfig(num_vcs=4, num_vnets=2)
        )
        t = make_app_traffic(net, "ocean", rng=1)
        pkts = [p for c in range(300) for p in t.generate(c)]
        assert pkts
        assert {p.vnet for p in pkts} <= {0, 1}

    def test_make_app_traffic_single_vnet(self):
        net = NetworkConfig(width=4, height=4)
        t = make_app_traffic(net, "fft", rng=1)
        pkts = [p for c in range(300) for p in t.generate(c)]
        assert all(p.vnet == 0 for p in pkts)

    def test_rate_scale(self):
        net = NetworkConfig(width=4, height=4)
        lo = make_app_traffic(net, "lu", rng=1, rate_scale=0.5)
        hi = make_app_traffic(net, "lu", rng=1, rate_scale=2.0)
        n_lo = sum(len(list(lo.generate(c))) for c in range(2000))
        n_hi = sum(len(list(hi.generate(c))) for c in range(2000))
        assert n_hi > 2.5 * n_lo
        with pytest.raises(ValueError):
            make_app_traffic(net, "lu", rate_scale=0)
