"""Tests for the experiment harness (reports, runner, analytic experiments,
and quick-config latency experiments)."""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.latency import (
    LatencyConfig,
    QUICK_CONFIG,
    overall_overhead,
    run_app_pair,
    run_suite,
)
from repro.experiments.report import ExperimentResult, Row
from repro.experiments import area_power, critical_path, mttf, spf_sweep, table1, table2, table3
from repro.traffic.apps import app_profile


class TestReport:
    def test_relative_error(self):
        assert Row("x", 11.0, 10.0).relative_error() == pytest.approx(0.1)
        assert Row("x", 11.0, None).relative_error() is None
        assert Row("x", True, True).relative_error() == 0.0
        assert Row("x", "text", 3).relative_error() is None

    def test_result_lookup_and_format(self):
        res = ExperimentResult("t", "title")
        res.add("alpha", 1.0, 2.0, unit="h", note="why")
        assert res.row("alpha").measured == 1.0
        with pytest.raises(KeyError):
            res.row("beta")
        text = res.format()
        assert "alpha" in text and "title" in text and "why" in text

    def test_max_relative_error(self):
        res = ExperimentResult("t", "title")
        res.add("a", 11.0, 10.0)
        res.add("b", 10.0, 10.0)
        assert res.max_relative_error() == pytest.approx(0.1)


class TestAnalyticExperiments:
    def test_table1_close_to_paper(self):
        res = table1.run()
        # everything within 1 % of the printed table
        assert res.max_relative_error() < 0.01

    def test_table2_exact(self):
        res = table2.run()
        assert res.max_relative_error() < 1e-9

    def test_mttf_headline(self):
        res = mttf.run(mc_samples=20_000)
        assert res.row("MTTF protected (paper Eq.5)").relative_error() < 0.01
        assert res.row("reliability improvement (paper)").measured == pytest.approx(
            6.18, abs=0.05
        )

    def test_table3_ordering(self):
        res = table3.run(mc_trials=100)
        assert res.row("proposed router has highest SPF").measured is True

    def test_spf_sweep_shape(self):
        res = spf_sweep.run()
        assert res.row("SPF monotonically increases with VCs").measured is True

    def test_area_power_bands(self):
        res = area_power.run()
        assert 0.2 < res.row("area overhead (with detection)").measured < 0.4
        assert 0.2 < res.row("power overhead (with detection)").measured < 0.4

    def test_critical_path_ordering(self):
        res = critical_path.run()
        rep = res.extras["report"]
        assert rep.overhead("XB") > rep.overhead("SA")


class TestRunner:
    def test_registry_covers_all_artifacts(self):
        paper_artifacts = {
            "table1",
            "table2",
            "mttf",
            "table3",
            "spf_sweep",
            "area_power",
            "critical_path",
            "fig7",
            "fig8",
        }
        extensions = {
            "load_latency",
            "network_reliability",
            "reliability_curves",
            "energy",
            "detection_latency",
            "fault_sweep",
            "design_space",
            "mttf_sensitivity",
            "fault_campaign",
        }
        assert set(EXPERIMENTS) == paper_artifacts | extensions

    def test_run_experiment_dispatch(self):
        res = run_experiment("table2")
        assert res.experiment == "table2"

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig9")

    def test_cli_main(self, capsys):
        from repro.experiments.runner import main

        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "correction" in out


class TestLatencyHarness:
    def test_quick_config_app_pair(self):
        r = run_app_pair(app_profile("water-nsq"), QUICK_CONFIG)
        assert r.fault_free > 0
        assert r.faulty >= r.fault_free * 0.95
        assert r.fault_free_result.drained

    def test_run_suite_subset(self):
        res = run_suite("splash2", QUICK_CONFIG, apps=["lu"])
        assert len(res) == 1 and res[0].app == "lu"

    def test_run_suite_unknown_app(self):
        with pytest.raises(ValueError):
            run_suite("splash2", QUICK_CONFIG, apps=["doom"])

    def test_overall_overhead_requires_results(self):
        with pytest.raises(ValueError):
            overall_overhead([])

    def test_faulty_run_injects_requested_faults(self):
        from repro.experiments.latency import run_app

        res = run_app(app_profile("lu"), QUICK_CONFIG, faulty=True)
        assert res.faults_injected == QUICK_CONFIG.num_faults

    def test_latency_config_validation(self):
        cfg = LatencyConfig(width=4, height=4)
        net = cfg.network()
        assert net.num_nodes == 16
        sim = cfg.simulation()
        assert sim.measure_cycles == cfg.measure_cycles
