"""Tests for the end-to-end ECC datapath study."""

import pytest

from repro.comparison.ecc_sim import (
    DatapathFaultyRouter,
    run_ecc_study,
)
from repro.config import NetworkConfig
from repro.router.routing import XYRouting


class TestDatapathFaultyRouter:
    def test_no_faults_no_flips(self):
        net = NetworkConfig(width=3, height=3)
        r = DatapathFaultyRouter(4, net.router, XYRouting(net), rng=1)
        from repro.comparison.vicis import HammingSECDED
        from repro.router.flit import Packet

        ecc = HammingSECDED(16)
        pkt = Packet(src=3, dest=5, size_flits=1,
                     payload={"value": 7, "codeword": ecc.encode(7), "ecc": ecc})
        for f in pkt.flits():
            r.receive_flit(4, 0, f, 0)
        assert r.bits_flipped == 0

    def test_faulty_port_flips_codeword(self):
        net = NetworkConfig(width=3, height=3)
        r = DatapathFaultyRouter(4, net.router, XYRouting(net), rng=1)
        r.datapath_fault_ports.add(4)
        from repro.comparison.vicis import HammingSECDED
        from repro.router.flit import Packet

        ecc = HammingSECDED(16)
        original = ecc.encode(0x1234)
        pkt = Packet(src=3, dest=5, size_flits=1,
                     payload={"value": 0x1234, "codeword": original, "ecc": ecc})
        flits = list(pkt.flits())
        for f in flits:
            r.receive_flit(4, 0, f, 0)
        assert r.bits_flipped == 1
        stored = r.in_ports[4].by_wire(0).front()
        assert stored.payload["codeword"] != original
        data, status = ecc.decode(stored.payload["codeword"])
        assert (data, status) == (0x1234, "corrected")

    def test_non_codeword_payloads_untouched(self):
        net = NetworkConfig(width=3, height=3)
        r = DatapathFaultyRouter(4, net.router, XYRouting(net), rng=1)
        r.datapath_fault_ports.add(4)
        from repro.router.flit import Packet

        pkt = Packet(src=3, dest=5, size_flits=1, payload={"value": 9})
        for f in pkt.flits():
            r.receive_flit(4, 0, f, 0)
        assert r.bits_flipped == 0


class TestECCStudy:
    def test_clean_network_all_clean(self):
        res = run_ecc_study(
            faulty_ports_per_router=0.0, measure_cycles=800, seed=2
        )
        assert res.corrected == 0
        assert res.uncorrectable == 0
        assert res.clean > 0
        assert res.protected_fraction == 1.0

    def test_faulty_network_corrects_most(self):
        res = run_ecc_study(
            faulty_ports_per_router=0.3, measure_cycles=1200, seed=1
        )
        assert res.bits_flipped > 0
        assert res.corrected > 0
        # SECDED: single flips always corrected, never silently wrong
        assert res.silent_corruptions == 0
        assert res.protected_fraction > 0.95

    def test_decode_accounting_complete(self):
        res = run_ecc_study(
            faulty_ports_per_router=0.2, measure_cycles=800, seed=3
        )
        assert res.total_codewords == res.packets_delivered

    def test_rejects_bad_fault_density(self):
        with pytest.raises(ValueError):
            run_ecc_study(faulty_ports_per_router=9.0)
