"""Tests for XY/YX/lookahead routing functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    NetworkConfig,
    PORT_EAST,
    PORT_LOCAL,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_WEST,
)
from repro.router.routing import (
    LookaheadXYRouting,
    XYRouting,
    YXRouting,
    _neighbour,
    make_routing,
)


@pytest.fixture
def net():
    return NetworkConfig(width=8, height=8)


class TestXY:
    def test_local_delivery(self, net):
        r = XYRouting(net)
        assert r.output_port(12, 12) == PORT_LOCAL

    def test_x_before_y(self, net):
        r = XYRouting(net)
        # node (1,1)=9 to (3,3)=27: X not resolved -> go east
        assert r.output_port(9, 27) == PORT_EAST
        # node (3,1)=11 to (3,3): X resolved -> go south
        assert r.output_port(11, 27) == PORT_SOUTH

    def test_all_four_directions(self, net):
        r = XYRouting(net)
        centre = net.node_id(4, 4)
        assert r.output_port(centre, net.node_id(6, 4)) == PORT_EAST
        assert r.output_port(centre, net.node_id(2, 4)) == PORT_WEST
        assert r.output_port(centre, net.node_id(4, 6)) == PORT_SOUTH
        assert r.output_port(centre, net.node_id(4, 2)) == PORT_NORTH

    def test_hop_count_is_manhattan(self, net):
        r = XYRouting(net)
        src = net.node_id(1, 2)
        dst = net.node_id(6, 7)
        assert r.hop_count(src, dst) == 5 + 5

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=100, deadline=None)
    def test_route_walk_terminates_at_destination(self, src, dst):
        net = NetworkConfig(width=8, height=8)
        r = XYRouting(net)
        cur = src
        for _ in range(20):
            port = r.output_port(cur, dst)
            if port == PORT_LOCAL:
                break
            cur = _neighbour(net, cur, port)
        assert cur == dst

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=100, deadline=None)
    def test_no_y_to_x_turns(self, src, dst):
        """Dimension order: once the route moves in Y it never moves in X."""
        net = NetworkConfig(width=8, height=8)
        r = XYRouting(net)
        cur, moved_y = src, False
        for _ in range(20):
            port = r.output_port(cur, dst)
            if port == PORT_LOCAL:
                break
            if port in (PORT_NORTH, PORT_SOUTH):
                moved_y = True
            else:
                assert not moved_y, "illegal Y->X turn"
            cur = _neighbour(net, cur, port)


class TestYX:
    def test_y_before_x(self, net):
        r = YXRouting(net)
        assert r.output_port(9, 27) == PORT_SOUTH

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=60, deadline=None)
    def test_same_hop_count_as_xy(self, src, dst):
        net = NetworkConfig(width=8, height=8)
        if src == dst:
            return
        assert XYRouting(net).hop_count(src, dst) == YXRouting(net).hop_count(
            src, dst
        )


class TestTorus:
    def test_wraparound_shorter(self):
        net = NetworkConfig(width=8, height=8, topology="torus")
        r = XYRouting(net)
        # (0,0) -> (7,0): wrap west is 1 hop, east is 7
        assert r.output_port(0, 7) == PORT_WEST
        assert r.hop_count(0, 7) == 1

    def test_torus_hop_count_at_most_mesh(self):
        mesh = NetworkConfig(width=6, height=6)
        torus = NetworkConfig(width=6, height=6, topology="torus")
        rm, rt = XYRouting(mesh), XYRouting(torus)
        for src in range(0, 36, 5):
            for dst in range(0, 36, 7):
                if src == dst:
                    continue
                assert rt.hop_count(src, dst) <= rm.hop_count(src, dst)


class TestLookahead:
    def test_next_hop_port(self, net):
        r = LookaheadXYRouting(net)
        # from (0,0) to (2,0): current port EAST, at (1,0) port is EAST again
        assert r.next_hop_port(0, 2) == PORT_EAST
        # from (1,0) to (2,2): at (2,0) X is resolved -> SOUTH
        assert r.next_hop_port(1, net.node_id(2, 2)) == PORT_SOUTH

    def test_next_hop_local(self, net):
        r = LookaheadXYRouting(net)
        assert r.next_hop_port(5, 5) == PORT_LOCAL
        # one hop away: next router is the destination
        assert r.next_hop_port(0, 1) == PORT_LOCAL


class TestFactory:
    def test_kinds(self, net):
        assert isinstance(make_routing(net, "xy"), XYRouting)
        assert isinstance(make_routing(net, "yx"), YXRouting)
        assert isinstance(make_routing(net, "lookahead_xy"), LookaheadXYRouting)

    def test_unknown(self, net):
        with pytest.raises(ValueError):
            make_routing(net, "adaptive")


class TestNeighbour:
    def test_mesh_edge_raises(self):
        net = NetworkConfig(width=4, height=4)
        with pytest.raises(ValueError):
            _neighbour(net, 0, PORT_NORTH)

    def test_local_port_raises(self):
        net = NetworkConfig(width=4, height=4)
        with pytest.raises(ValueError):
            _neighbour(net, 0, PORT_LOCAL)
