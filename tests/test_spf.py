"""Tests for the SPF analysis (paper Section VIII)."""

import pytest

from repro.config import RouterConfig
from repro.reliability.spf import (
    analyze_spf,
    monte_carlo_faults_to_failure,
    spf_vs_vc_count,
    stage_fault_bounds,
)


class TestStageBounds:
    def test_paper_accounting_4vc(self):
        """Section VIII: RC 5/2, VA 15/4, SA 5/2, XB 2/2."""
        bounds = {b.stage: b for b in stage_fault_bounds(RouterConfig())}
        assert bounds["RC"].max_tolerated == 5
        assert bounds["RC"].min_to_failure == 2
        assert bounds["VA"].max_tolerated == 15
        assert bounds["VA"].min_to_failure == 4
        assert bounds["SA"].max_tolerated == 5
        assert bounds["SA"].min_to_failure == 2
        assert bounds["XB"].max_tolerated == 2
        assert bounds["XB"].min_to_failure == 2

    def test_exact_xb_bound_is_three(self):
        bounds = {b.stage: b for b in stage_fault_bounds(RouterConfig(), exact_xb=True)}
        assert bounds["XB"].max_tolerated == 3

    def test_vc_scaling(self):
        bounds = {b.stage: b for b in stage_fault_bounds(RouterConfig(num_vcs=2))}
        assert bounds["VA"].max_tolerated == 5  # P*(V-1)
        assert bounds["VA"].min_to_failure == 2


class TestAnalyzeSPF:
    def test_paper_headline(self):
        """27 tolerated, 28 max, 2 min, mean 15, SPF 15/1.31 = 11.4."""
        r = analyze_spf(0.31)
        assert r.max_tolerated == 27
        assert r.max_to_failure == 28
        assert r.min_to_failure == 2
        assert r.mean_faults_to_failure == 15.0
        assert r.spf == pytest.approx(11.45, abs=0.01)

    def test_spf_with_two_vcs(self):
        """Section VIII-E: SPF ~7 at 2 VCs (mean 10 at ~43 % overhead)."""
        r = analyze_spf(0.43, RouterConfig(num_vcs=2))
        assert r.mean_faults_to_failure == 10.0
        assert r.spf == pytest.approx(7.0, abs=0.3)

    def test_stage_lookup(self):
        r = analyze_spf(0.31)
        assert r.stage("VA").max_tolerated == 15
        with pytest.raises(KeyError):
            r.stage("ZZ")

    def test_rejects_negative_overhead(self):
        with pytest.raises(ValueError):
            analyze_spf(-0.1)

    def test_spf_decreases_with_overhead(self):
        assert analyze_spf(0.5).spf < analyze_spf(0.2).spf


class TestSPFSweep:
    def test_monotone_in_vcs(self):
        sweep = spf_vs_vc_count({2: 0.43, 4: 0.31, 8: 0.25})
        spfs = [sweep[v].spf for v in (2, 4, 8)]
        assert spfs[0] < spfs[1] < spfs[2]

    def test_paper_endpoints(self):
        sweep = spf_vs_vc_count({2: 0.43, 4: 0.31})
        assert sweep[2].spf == pytest.approx(7.0, abs=0.3)
        assert sweep[4].spf == pytest.approx(11.45, abs=0.1)


class TestMonteCarloSPF:
    def test_bounds_respected(self):
        mc = monte_carlo_faults_to_failure(trials=300, rng=5)
        # analytic extremes: failure needs >=2 faults and happens by 28
        assert mc.minimum >= 2
        assert mc.maximum <= 28
        assert 2 <= mc.mean <= 28

    def test_deterministic_with_seed(self):
        a = monte_carlo_faults_to_failure(trials=100, rng=3)
        b = monte_carlo_faults_to_failure(trials=100, rng=3)
        assert a.mean == b.mean

    def test_more_vcs_tolerate_more(self):
        small = monte_carlo_faults_to_failure(
            RouterConfig(num_vcs=2), trials=300, rng=1
        )
        big = monte_carlo_faults_to_failure(
            RouterConfig(num_vcs=8), trials=300, rng=1
        )
        assert big.mean > small.mean

    def test_percentiles(self):
        mc = monte_carlo_faults_to_failure(trials=300, rng=5)
        assert mc.percentile(0) == mc.minimum
        assert mc.percentile(100) == mc.maximum

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            monte_carlo_faults_to_failure(trials=0)
