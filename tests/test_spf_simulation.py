"""Tests for the simulation-based faults-to-failure campaign, including
agreement with the Section VIII analytical predicates."""

import numpy as np
import pytest

from repro.config import NetworkConfig, RouterConfig
from repro.core.failure import protected_router_failed
from repro.core.protected_router import ProtectedRouter
from repro.faults.sites import FaultSite, FaultUnit, enumerate_sites
from repro.reliability.spf import monte_carlo_faults_to_failure
from repro.reliability.spf_simulation import (
    functional_failure,
    simulated_faults_to_failure,
)
from repro.router.routing import XYRouting


def make_router():
    net = NetworkConfig(width=3, height=3)
    return ProtectedRouter(4, net.router, XYRouting(net)), net


class TestFunctionalFailure:
    def test_healthy_router_functions(self):
        router, net = make_router()
        assert not functional_failure(router, net)

    def test_rc_double_fault_fails_functionally(self):
        router, net = make_router()
        router.inject_fault(FaultSite(4, FaultUnit.RC_PRIMARY, 1))
        router.inject_fault(FaultSite(4, FaultUnit.RC_DUPLICATE, 1))
        assert functional_failure(router, net)

    def test_sa_pair_fails_functionally(self):
        router, net = make_router()
        router.inject_fault(FaultSite(4, FaultUnit.SA1_ARBITER, 2))
        router.inject_fault(FaultSite(4, FaultUnit.SA1_BYPASS, 2))
        assert functional_failure(router, net)

    def test_xb_pair_fails_functionally(self):
        router, net = make_router()
        router.inject_fault(FaultSite(4, FaultUnit.XB_MUX, 3))
        router.inject_fault(FaultSite(4, FaultUnit.XB_MUX, 2))  # secondary src
        assert functional_failure(router, net)

    def test_single_faults_never_fail_functionally(self):
        """Behavioural counterpart of the exhaustive predicate test."""
        net = NetworkConfig(width=3, height=3)
        for site in enumerate_sites(net.router, router=4, include_va2=False):
            router = ProtectedRouter(4, net.router, XYRouting(net))
            router.inject_fault(site)
            assert not functional_failure(router, net), site.describe()

    def test_paper_max_27_faults_still_function(self):
        router, net = make_router()
        for p in range(5):
            router.inject_fault(FaultSite(4, FaultUnit.RC_PRIMARY, p))
        for p in range(5):
            for v in range(3):
                router.inject_fault(FaultSite(4, FaultUnit.VA1_ARBITER_SET, p, v))
        for p in range(5):
            router.inject_fault(FaultSite(4, FaultUnit.SA1_ARBITER, p))
        router.inject_fault(FaultSite(4, FaultUnit.XB_MUX, 1))
        router.inject_fault(FaultSite(4, FaultUnit.XB_MUX, 3))
        assert router.faults.num_faults == 27
        assert not functional_failure(router, net, max_cycles=120)


class TestPredicateAgreement:
    def test_predicate_and_functional_agree_along_random_paths(self):
        """Inject random fault sequences; at every step the analytical
        predicate and the behavioural probe must give the same verdict."""
        net = NetworkConfig(width=3, height=3)
        sites = list(enumerate_sites(net.router, router=4, include_va2=False))
        rng = np.random.default_rng(5)
        for trial in range(4):
            router = ProtectedRouter(4, net.router, XYRouting(net))
            for i in rng.permutation(len(sites)):
                router.inject_fault(sites[int(i)])
                predicate = protected_router_failed(router.faults)
                functional = functional_failure(router, net)
                assert predicate == functional, (
                    f"disagreement after {router.faults.num_faults} faults: "
                    f"predicate={predicate} functional={functional} "
                    f"history={[s.describe() for s in router.faults.sites()]}"
                )
                if predicate:
                    break


class TestSimulatedCampaign:
    def test_bounds(self):
        res = simulated_faults_to_failure(trials=8, rng=2)
        assert 2 <= res.minimum
        assert res.maximum <= 28

    def test_deterministic(self):
        a = simulated_faults_to_failure(trials=5, rng=9)
        b = simulated_faults_to_failure(trials=5, rng=9)
        assert a.mean == b.mean

    def test_tracks_predicate_monte_carlo(self):
        """The behavioural and analytical MC means agree closely (same
        failure law, same site pool)."""
        sim = simulated_faults_to_failure(trials=40, rng=3)
        analytic = monte_carlo_faults_to_failure(
            RouterConfig(), trials=400, rng=3, include_va2=False
        )
        assert sim.mean == pytest.approx(analytic.mean, rel=0.2)

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            simulated_faults_to_failure(trials=0)

    def test_bisection_fast_path_matches_reference(self):
        """The bisection + warm-router campaign returns the exact sample
        vector of the inject-one-probe-every-step oracle (same rng
        stream, monotone failure in the fault prefix)."""
        import numpy as np

        for seed in (2, 3, 9, 11):
            fast = simulated_faults_to_failure(trials=6, rng=seed)
            ref = simulated_faults_to_failure(
                trials=6, rng=seed, reference=True
            )
            assert np.array_equal(fast.samples, ref.samples)
            assert fast.mean == ref.mean
            assert fast.std == ref.std
