"""Event-driven engine: skip-ahead correctness at the fault/active-set seams.

The engine (``NoCSimulator`` with ``event_driven=True``, the default)
jumps over provably idle stretches.  These tests pin the seams where the
jump could go wrong:

* fault arrivals inside an idle stretch must bound the jump (the wake
  event armed by ``_arm_fault_wake``), not be deferred or dropped;
* a fault landing on an idle router mid-drain must behave exactly as
  under the per-cycle and reference loops (the ``router.wake()`` routing
  of ``_inject_faults``);
* the drain loop's ``drained`` flag must be decided by one predicate
  evaluation after the loop, for every exit path, including a drain that
  finishes exactly at the deadline cycle;
* ``faults_injected`` must be identical across all loop flavours for
  schedule edges: faults at cycle 0, on the warmup/measure boundary, and
  after drain begins.
"""

import dataclasses
import math

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.core.protected_router import protected_router_factory
from repro.faults.injector import ExplicitFaultSchedule
from repro.faults.sites import FaultSite, FaultUnit
from repro.network.simulator import NoCSimulator, baseline_router_factory
from repro.router.flit import Packet, reset_packet_ids
from repro.traffic.generator import NullTraffic, SyntheticTraffic, TraceTraffic

#: every loop flavour: event-driven, per-cycle active-set, full-scan
ENGINES = ("event", "stepper", "reference")

PORT_WEST = 1  # matches repro.router.routing port numbering


def _engine_kwargs(engine: str) -> dict:
    return {
        "use_reference_stepper": engine == "reference",
        "event_driven": engine == "event",
    }


def _site(router: int) -> FaultSite:
    return FaultSite(router, FaultUnit.SA1_ARBITER, PORT_WEST)


def _burst(net: NetworkConfig, count: int = 6) -> list[Packet]:
    """A cycle-0 burst between corner nodes (long drain, idle far side)."""
    return [
        Packet(
            src=0,
            dest=net.num_nodes - 1,
            size_flits=5,
            vnet=0,
            creation_cycle=0,
        )
        for _ in range(count)
    ]


def _norm(obj):
    """NaN-tolerant structural comparison key (a zero-packet run's
    latency averages are NaN, and NaN != NaN)."""
    if isinstance(obj, float) and math.isnan(obj):
        return "nan"
    if isinstance(obj, dict):
        return {k: _norm(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_norm(v) for v in obj]
    return obj


def _assert_all_equal(results: dict) -> None:
    ref = results["reference"]
    for engine, res in results.items():
        assert res.cycles == ref.cycles, engine
        assert res.blocked == ref.blocked, engine
        assert res.drained == ref.drained, engine
        assert res.faults_injected == ref.faults_injected, engine
        assert _norm(res.stats.summary()) == _norm(ref.stats.summary()), engine
        assert dataclasses.asdict(res.router_stats) == dataclasses.asdict(
            ref.router_stats
        ), engine


class TestFaultWakeInIdleStretch:
    """A fault due inside a skippable idle stretch must still inject on
    its exact cycle — the wake event pins the jump target."""

    def _run(self, engine: str, monkeypatched_sim=None):
        reset_packet_ids()
        net = NetworkConfig(width=4, height=4)
        sim = NoCSimulator(
            net,
            SimulationConfig(
                warmup_cycles=50,
                measure_cycles=400,
                drain_cycles=500,
                seed=2,
            ),
            NullTraffic(),
            router_factory=protected_router_factory(net),
            fault_schedule=ExplicitFaultSchedule([(300, _site(5))]),
            **_engine_kwargs(engine),
        )
        result = sim.run()
        sim.check_invariants()
        return sim, result

    def test_fault_in_fully_idle_window_injected_by_all_engines(self):
        results = {}
        for engine in ENGINES:
            _, results[engine] = self._run(engine)
        assert results["reference"].faults_injected == 1
        _assert_all_equal(results)

    def test_fault_wake_is_load_bearing(self, monkeypatch):
        """Disarming the fault wake makes the event engine jump straight
        over the fault — proving the wake (not catch-up luck) is what
        keeps the test above honest."""
        monkeypatch.setattr(
            NoCSimulator, "_arm_fault_wake", lambda self: None
        )
        _, broken = self._run("event")
        assert broken.faults_injected == 0
        _, stepper = self._run("stepper")
        assert stepper.faults_injected == 1


class TestFaultIntoIdleRouterMidDrain:
    """Satellite regression: a fault landing on a fully idle protected
    router while the rest of the fabric is still draining must leave the
    active-set and event-driven loops bit-identical to the reference."""

    def _run(self, engine: str, protected: bool = True):
        reset_packet_ids()
        net = NetworkConfig(
            width=4, height=4, router=RouterConfig(num_vcs=4, num_vnets=2)
        )
        # inject_until == 1: the burst drains for tens of cycles while
        # router 5 (off the XY path of a 0 -> 15 burst) sits idle
        sim = NoCSimulator(
            net,
            SimulationConfig(
                warmup_cycles=0,
                measure_cycles=1,
                drain_cycles=500,
                seed=3,
            ),
            TraceTraffic(_burst(net)),
            router_factory=(
                protected_router_factory(net)
                if protected
                else baseline_router_factory(net)
            ),
            fault_schedule=ExplicitFaultSchedule([(8, _site(4))]),
            **_engine_kwargs(engine),
        )
        result = sim.run()
        sim.check_invariants()
        return sim, result

    def test_mid_drain_fault_identical_across_engines(self):
        results = {}
        for engine in ENGINES:
            sim, results[engine] = self._run(engine)
            # the fault landed mid-drain, while flits were still in flight
            assert results[engine].faults_injected == 1
            assert results[engine].drained
        _assert_all_equal(results)

    def test_mid_drain_fault_baseline_router(self):
        results = {}
        for engine in ENGINES:
            _, results[engine] = self._run(engine, protected=False)
        _assert_all_equal(results)


class TestDrainDeadlineBoundary:
    """The drained flag is decided once, after the drain loop — so a
    drain that completes exactly at the deadline still counts."""

    def _run(self, engine: str, drain_cycles: int):
        reset_packet_ids()
        net = NetworkConfig(width=4, height=4)
        sim = NoCSimulator(
            net,
            SimulationConfig(
                warmup_cycles=0,
                measure_cycles=1,
                drain_cycles=drain_cycles,
                seed=5,
            ),
            TraceTraffic(_burst(net)),
            **_engine_kwargs(engine),
        )
        result = sim.run()
        sim.check_invariants()
        return result

    def test_exact_deadline_drain_counts_as_drained(self):
        # measure how long the drain actually takes with a generous budget
        generous = self._run("event", drain_cycles=500)
        assert generous.drained
        needed = generous.cycles - 1  # inject_until == 1
        assert needed > 2
        for engine in ENGINES:
            exact = self._run(engine, drain_cycles=needed)
            assert exact.drained, engine
            assert exact.cycles == generous.cycles, engine
            # one cycle less and the network is still busy at the deadline
            short = self._run(engine, drain_cycles=needed - 1)
            assert not short.drained, engine


class TestFaultScheduleEdges:
    """``faults_injected`` pinned across every loop flavour (and the
    profiled path) for schedule edge cases."""

    WARMUP = 20
    MEASURE = 80

    def _run(self, engine: str, fault_cycles, profile: bool = False):
        from repro.observability import Observability, ObservabilityConfig

        reset_packet_ids()
        net = NetworkConfig(width=4, height=4)
        obs = None
        if profile:
            obs = Observability(ObservabilityConfig(profile=True))
        sim = NoCSimulator(
            net,
            SimulationConfig(
                warmup_cycles=self.WARMUP,
                measure_cycles=self.MEASURE,
                drain_cycles=300,
                seed=7,
            ),
            SyntheticTraffic(net, injection_rate=0.05, rng=7),
            router_factory=protected_router_factory(net),
            fault_schedule=ExplicitFaultSchedule(
                [(c, _site(3 + i)) for i, c in enumerate(fault_cycles)]
            ),
            observability=obs,
            **_engine_kwargs(engine),
        )
        result = sim.run()
        sim.check_invariants()
        return result

    def _pin_across_engines(self, fault_cycles):
        runs = {e: self._run(e, fault_cycles) for e in ENGINES}
        runs["profiled"] = self._run("event", fault_cycles, profile=True)
        counts = {e: r.faults_injected for e, r in runs.items()}
        assert len(set(counts.values())) == 1, counts
        ref = runs["reference"]
        for engine, res in runs.items():
            assert res.cycles == ref.cycles, engine
            assert res.stats.summary() == ref.stats.summary(), engine
        return counts["reference"]

    def test_fault_at_cycle_zero(self):
        assert self._pin_across_engines([0]) == 1

    def test_fault_on_warmup_measure_boundary(self):
        assert self._pin_across_engines([self.WARMUP]) == 1

    def test_fault_after_drain_begins(self):
        # due shortly after injection stops: lands while the fabric is
        # still draining, so every engine must inject it
        count = self._pin_across_engines([self.WARMUP + self.MEASURE + 2])
        assert count == 1

    def test_fault_beyond_drain_never_injected(self):
        # due long after the fabric has fully drained: every engine ends
        # the run first, and none may inject it
        assert self._pin_across_engines([10_000]) == 0

    def test_mixed_edges_together(self):
        n = self._pin_across_engines(
            [0, self.WARMUP, self.WARMUP + self.MEASURE + 2, 10_000]
        )
        assert n == 3
