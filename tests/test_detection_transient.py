"""Tests for the online-detection layer and the transient-fault extension."""

import pytest

from repro.config import PORT_EAST, PORT_WEST, RouterConfig
from repro.faults.detection import NetworkDetector, OnlineDetector
from repro.faults.sites import FaultSite, FaultUnit
from repro.faults.transient import (
    TransientFault,
    TransientFaultSchedule,
    random_transients,
)
from repro.router.flit import Packet

from conftest import SingleRouterHarness, make_network_config, make_sim


class TestOnlineDetector:
    def _harness_with_detector(self):
        h = SingleRouterHarness(protected=True)
        return h, OnlineDetector(h.router)

    def test_rc_fault_detected_when_exercised(self):
        h, det = self._harness_with_detector()
        site = FaultSite(4, FaultUnit.RC_PRIMARY, PORT_WEST)
        h.router.inject_fault(site)
        assert det.watch(site, cycle=0)
        assert det.poll(0) == []  # latent until traffic arrives
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        h.step(2)
        events = det.poll(h.cycle)
        assert len(events) == 1
        assert events[0].detection_latency >= 1
        assert det.pending == 0

    def test_latent_spare_faults_not_observable(self):
        h, det = self._harness_with_detector()
        site = FaultSite(4, FaultUnit.RC_DUPLICATE, PORT_WEST)
        h.router.inject_fault(site)
        assert not det.watch(site, cycle=0)
        assert not det.observable(site)

    def test_xb_fault_detected_via_secondary_path(self):
        h, det = self._harness_with_detector()
        site = FaultSite(4, FaultUnit.XB_MUX, PORT_EAST)
        h.router.inject_fault(site)
        det.watch(site, cycle=0)
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        h.step(6)
        assert det.poll(h.cycle)
        assert det.mean_detection_latency() >= 1

    def test_no_events_without_faults(self):
        h, det = self._harness_with_detector()
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        h.step(6)
        assert det.poll(h.cycle) == []
        assert det.mean_detection_latency() is None


class TestNetworkDetector:
    def test_fleetwide_detection(self):
        net = make_network_config(3, 3)
        sim = make_sim(net, protected=True, injection_rate=0.1, measure=800)
        det = NetworkDetector(sim.routers)
        site = FaultSite(4, FaultUnit.SA1_ARBITER, PORT_WEST)
        sim.routers[4].inject_fault(site)
        det.watch(site, 0)
        res = sim.run()
        assert not res.blocked
        events = det.poll(res.cycles)
        assert len(det.events) == 1
        assert det.pending == 0
        assert det.mean_detection_latency() > 0
        del events


class TestTransientFault:
    def test_validation(self):
        site = FaultSite(0, FaultUnit.SA1_ARBITER, 0)
        with pytest.raises(ValueError):
            TransientFault(0, site, duration=0)
        with pytest.raises(ValueError):
            TransientFault(-1, site)

    def test_heal_cycle(self):
        site = FaultSite(0, FaultUnit.SA1_ARBITER, 0)
        t = TransientFault(10, site, duration=5)
        assert t.heal_cycle == 15

    def test_injector_schedules_inject_and_heal(self):
        site = FaultSite(0, FaultUnit.SA1_ARBITER, 0)
        inj = TransientFaultSchedule([TransientFault(5, site, duration=3)])
        assert list(inj.due(4)) == []
        assert list(inj.due(5)) == [site]
        assert list(inj.heals_due(7)) == []
        assert list(inj.heals_due(8)) == [site]

    def test_overlapping_transients_merge(self):
        site = FaultSite(0, FaultUnit.SA1_ARBITER, 0)
        inj = TransientFaultSchedule(
            [TransientFault(5, site, 3), TransientFault(6, site, 10)]
        )
        # heals once, at the later heal time (16)
        assert list(inj.heals_due(15)) == []
        assert list(inj.heals_due(16)) == [site]

    def test_network_recovers_after_transient(self):
        """A transient SA fault degrades then fully heals: the run drains
        and the router ends fault-free."""
        net = make_network_config(3, 3)
        site = FaultSite(4, FaultUnit.SA1_ARBITER, PORT_WEST)
        inj = TransientFaultSchedule([TransientFault(100, site, duration=200)])
        sim = make_sim(
            net, protected=True, injection_rate=0.08, measure=1200,
            fault_schedule=inj,
        )
        inj.attach(sim)
        res = sim.run()
        assert not res.blocked and res.drained
        assert res.stats.packets_ejected == res.stats.packets_created
        assert not sim.routers[4].faults.any_faults  # healed
        assert res.router_stats.sa_bypass_grants > 0  # absorbed meanwhile

    def test_random_transients_deterministic(self):
        a = random_transients(RouterConfig(), 4, 0.01, 1000, rng=3)
        b = random_transients(RouterConfig(), 4, 0.01, 1000, rng=3)
        assert [(t.cycle, t.site) for t in a] == [(t.cycle, t.site) for t in b]
        assert len(a) == pytest.approx(10, abs=8)

    def test_random_transients_validation(self):
        with pytest.raises(ValueError):
            random_transients(RouterConfig(), 4, 1.5, 100)
        with pytest.raises(ValueError):
            random_transients(RouterConfig(), 4, 0.1, 0)

    def test_transient_barrage_preserves_invariants(self):
        net = make_network_config(3, 3)
        transients = random_transients(
            net.router, net.num_nodes, rate_per_cycle=0.02, cycles=800,
            duration=30, rng=7,
        )
        inj = TransientFaultSchedule(transients)
        sim = make_sim(
            net, protected=True, injection_rate=0.06, measure=800,
            drain=6000, fault_schedule=inj, watchdog=5000,
        )
        inj.attach(sim)
        res = sim.run()
        sim.check_invariants()
        # transients can transiently create a failing combination, but the
        # network must still conserve flits
        assert res.stats.flits_ejected <= res.stats.flits_injected
        if not res.blocked:
            assert res.stats.packets_ejected == res.stats.packets_created
