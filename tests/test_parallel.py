"""Tests for the deterministic multiprocessing sweep engine
(:mod:`repro.experiments.parallel`) and the serial == parallel guarantee
of every sweep-shaped experiment wired into it."""

import numpy as np
import pytest

from repro.experiments.parallel import (
    PointOutcome,
    SweepTask,
    map_sweep,
    resolve_jobs,
    run_sweep,
    spawn_seeds,
)


def _square(x):
    return x * x


def _with_cycles(x):
    return PointOutcome(x + 1, cycles=10 * x)


def _boom(x):
    raise RuntimeError(f"task {x} failed")


class TestEngine:
    def test_serial_matches_parallel_values(self):
        serial, _ = map_sweep(_square, [(i,) for i in range(9)])
        parallel, _ = map_sweep(_square, [(i,) for i in range(9)], jobs=3)
        assert serial == parallel == [i * i for i in range(9)]

    def test_results_in_task_order(self):
        tasks = [SweepTask(index=i, fn=_square, args=(i,)) for i in range(7)]
        values, _ = run_sweep(tasks, jobs=2)
        assert values == [i * i for i in range(7)]

    def test_bad_indices_rejected(self):
        tasks = [SweepTask(index=5, fn=_square, args=(1,))]
        with pytest.raises(ValueError):
            run_sweep(tasks)

    def test_point_outcome_unwrapped_and_cycles_accounted(self):
        values, report = map_sweep(_with_cycles, [(i,) for i in range(4)])
        assert values == [1, 2, 3, 4]
        assert report.cycles == 10 * (0 + 1 + 2 + 3)

    def test_shard_report_covers_all_points(self):
        _, report = map_sweep(_square, [(i,) for i in range(10)], jobs=3)
        assert report.jobs == 3
        assert sum(s.points for s in report.shards) == 10
        assert report.points == 10
        assert "points" in report.format()

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError):
            map_sweep(_boom, [(1,)], jobs=2)

    def test_more_jobs_than_tasks(self):
        values, report = map_sweep(_square, [(3,)], jobs=8)
        assert values == [9]
        assert report.jobs == 1  # clamped to the task count

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(0) >= 1  # all cores
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestSpawnSeeds:
    def test_deterministic_and_independent_of_layout(self):
        a = spawn_seeds(42, 8)
        b = spawn_seeds(42, 8)
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]
        assert all(
            np.random.default_rng(x).integers(1 << 30)
            == np.random.default_rng(y).integers(1 << 30)
            for x, y in zip(a, b)
        )

    def test_children_differ(self):
        a, b = spawn_seeds(42, 2)
        assert np.random.default_rng(a).integers(1 << 30) != np.random.default_rng(
            b
        ).integers(1 << 30)

    def test_accepts_generator_and_seedseq(self):
        assert len(spawn_seeds(np.random.default_rng(1), 3)) == 3
        assert len(spawn_seeds(np.random.SeedSequence(1), 3)) == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)


class TestMonteCarloDeterminism:
    def test_spf_mc_bit_identical(self):
        from repro.reliability.spf import monte_carlo_faults_to_failure

        serial = monte_carlo_faults_to_failure(trials=60, rng=11)
        sharded = monte_carlo_faults_to_failure(trials=60, rng=11, jobs=3)
        assert np.array_equal(serial.samples, sharded.samples)
        assert serial.mean == sharded.mean
        assert sharded.sweep.jobs == 3

    def test_network_reliability_bit_identical(self):
        from repro.config import NetworkConfig
        from repro.reliability.network_level import analyze_network_reliability

        net = NetworkConfig(width=3, height=3)
        serial = analyze_network_reliability(net, trials=24, rng=9)
        sharded = analyze_network_reliability(net, trials=24, rng=9, jobs=2)
        assert serial.mean_first_failure == sharded.mean_first_failure
        assert serial.mean_kth_failure == sharded.mean_kth_failure
        assert serial.mean_disconnection == sharded.mean_disconnection


class TestSimulationSweepDeterminism:
    def test_load_latency_bit_identical(self):
        from repro.experiments.load_latency import sweep_sharded

        rates = (0.04, 0.10)
        serial, _ = sweep_sharded(rates, measure=400, num_faults=8)
        parallel, report = sweep_sharded(
            rates, measure=400, num_faults=8, jobs=2
        )
        assert serial == parallel
        assert report.cycles > 0  # simulated cycles are accounted

    def test_fault_sweep_bit_identical(self):
        from repro.experiments import fault_sweep
        from repro.experiments.latency import LatencyConfig

        cfg = LatencyConfig(
            width=4, height=4, warmup_cycles=200, measure_cycles=600,
            drain_cycles=2000, num_faults=8,
        )
        serial = fault_sweep.run(fault_counts=(0, 8), cfg=cfg)
        parallel = fault_sweep.run(fault_counts=(0, 8), cfg=cfg, jobs=2)
        assert serial.extras["rows"] == parallel.extras["rows"]


class TestRunnerJobsFlag:
    def test_cli_accepts_jobs(self, capsys):
        from repro.experiments.runner import main

        assert main(["table3", "--quick", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "sweep:" in out  # shard report surfaced

    def test_cli_rejects_negative_jobs(self):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["table2", "--jobs", "-1"])

    def test_registry_passes_jobs_through(self):
        from repro.experiments import run_experiment

        res = run_experiment("table3", quick=True, jobs=2)
        assert res.extras["sweep"].jobs == 2


def _boom_even(x):
    if x % 2 == 0:
        raise ValueError(f"even point {x}")
    return x


class TestWorkerFailures:
    """A point raising inside a worker must fail the sweep loudly."""

    def test_all_failures_collected_with_tracebacks(self):
        from repro.experiments.parallel import SweepError

        with pytest.raises(SweepError) as exc_info:
            map_sweep(
                _boom_even,
                [(i,) for i in range(6)],
                jobs=2,
                labels=[f"p{i}" for i in range(6)],
            )
        err = exc_info.value
        # every failing point is reported, in task order, with its label
        assert [f.index for f in err.failures] == [0, 2, 4]
        assert err.failures[0].label == "p0"
        assert "ValueError: even point 0" in str(err)
        assert "Traceback" in err.failures[0].traceback

    def test_sweep_error_is_a_runtime_error(self):
        from repro.experiments.parallel import SweepError

        assert issubclass(SweepError, RuntimeError)

    def test_serial_path_fails_identically(self):
        from repro.experiments.parallel import SweepError

        with pytest.raises(SweepError) as exc_info:
            map_sweep(_boom_even, [(0,)], jobs=1)
        assert len(exc_info.value.failures) == 1

    def test_cli_exits_nonzero_on_worker_failure(self, capsys, monkeypatch):
        """Regression: ``python -m repro.experiments`` must not exit 0
        when an experiment raises inside a parallel worker shard."""
        from repro.experiments import runner

        def _failing(quick, jobs):
            values, _ = map_sweep(_boom_even, [(0,), (1,)], jobs=jobs or 2)
            return values

        monkeypatch.setitem(runner.EXPERIMENTS, "table1", _failing)
        rc = runner.main(["table1", "--jobs", "2"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "table1 FAILED" in err
        assert "sweep point(s) failed" in err


def _raise_on_load():
    raise RuntimeError("poisoned payload")


class _PoisonOnUnpickle:
    """Pickles fine, explodes when a worker tries to unpickle it."""

    def __reduce__(self):
        return (_raise_on_load, ())


def _identity(x):
    return x


class TestShardSetupFailures:
    """Worker-side failures outside the point function (argument
    unpickling, shard setup) must surface as a PointFailure naming the
    offending task index — not as a raw pool traceback."""

    def test_poisoned_argument_fails_only_its_point(self):
        from repro.experiments.parallel import SweepError, SweepTask, run_sweep

        tasks = [
            SweepTask(index=0, fn=_identity, args=(0,), label="ok0"),
            SweepTask(
                index=1, fn=_identity, args=(_PoisonOnUnpickle(),),
                label="poisoned",
            ),
            SweepTask(index=2, fn=_identity, args=(2,), label="ok2"),
        ]
        with pytest.raises(SweepError) as exc_info:
            run_sweep(tasks, jobs=2)
        failures = exc_info.value.failures
        assert [f.index for f in failures] == [1]
        assert failures[0].label == "poisoned"
        assert "poisoned payload" in failures[0].error

    def test_serial_path_never_pickles(self):
        """jobs=1 stays in-process: arguments are not serialised, so an
        unpicklable (or poison) argument is simply passed through."""
        from repro.experiments.parallel import SweepTask, run_sweep

        poison = _PoisonOnUnpickle()
        tasks = [SweepTask(index=0, fn=_identity, args=(poison,))]
        values, _ = run_sweep(tasks, jobs=1)
        assert values[0] is poison
