"""Tests for flits and packet segmentation."""

import pytest

from repro.router.flit import Flit, FlitType, Packet


class TestFlitType:
    def test_head_flags(self):
        assert FlitType.HEAD.is_head
        assert FlitType.HEAD_TAIL.is_head
        assert not FlitType.BODY.is_head
        assert not FlitType.TAIL.is_head

    def test_tail_flags(self):
        assert FlitType.TAIL.is_tail
        assert FlitType.HEAD_TAIL.is_tail
        assert not FlitType.HEAD.is_tail
        assert not FlitType.BODY.is_tail


class TestPacketSegmentation:
    def test_single_flit_packet_is_head_tail(self):
        pkt = Packet(src=0, dest=1, size_flits=1)
        flits = list(pkt.flits())
        assert len(flits) == 1
        assert flits[0].ftype == FlitType.HEAD_TAIL

    def test_two_flit_packet(self):
        pkt = Packet(src=0, dest=1, size_flits=2)
        kinds = [f.ftype for f in pkt.flits()]
        assert kinds == [FlitType.HEAD, FlitType.TAIL]

    def test_five_flit_packet(self):
        pkt = Packet(src=0, dest=1, size_flits=5)
        kinds = [f.ftype for f in pkt.flits()]
        assert kinds == [
            FlitType.HEAD,
            FlitType.BODY,
            FlitType.BODY,
            FlitType.BODY,
            FlitType.TAIL,
        ]

    def test_flit_indices_and_lengths(self):
        pkt = Packet(src=2, dest=9, size_flits=4)
        flits = list(pkt.flits())
        assert [f.flit_index for f in flits] == [0, 1, 2, 3]
        assert all(f.packet_len == 4 for f in flits)
        assert all(f.packet_id == pkt.packet_id for f in flits)
        assert all(f.src == 2 and f.dest == 9 for f in flits)

    def test_payload_travels_on_head_only(self):
        pkt = Packet(src=0, dest=1, size_flits=3, payload={"addr": 0x40})
        flits = list(pkt.flits())
        assert flits[0].payload == {"addr": 0x40}
        assert flits[1].payload is None
        assert flits[2].payload is None

    def test_packet_ids_are_unique(self):
        a = Packet(src=0, dest=1, size_flits=1)
        b = Packet(src=0, dest=1, size_flits=1)
        assert a.packet_id != b.packet_id

    def test_rejects_empty_packet(self):
        with pytest.raises(ValueError):
            Packet(src=0, dest=1, size_flits=0)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Packet(src=3, dest=3, size_flits=1)

    def test_vnet_propagates(self):
        pkt = Packet(src=0, dest=1, size_flits=2, vnet=1)
        assert all(f.vnet == 1 for f in pkt.flits())


class TestFlitLatency:
    def test_latency_requires_completion(self):
        f = Flit(FlitType.HEAD_TAIL, 0, 0, 1)
        with pytest.raises(ValueError):
            _ = f.network_latency
        with pytest.raises(ValueError):
            _ = f.total_latency

    def test_latency_computation(self):
        f = Flit(FlitType.HEAD_TAIL, 0, 0, 1, creation_cycle=5)
        f.injection_cycle = 10
        f.ejection_cycle = 35
        assert f.network_latency == 25
        assert f.total_latency == 30
