"""Tests for the BulletProof / Vicis / RoCo comparison models."""

import pytest

from repro.comparison.bulletproof import BulletProofModel, NMRUnit, SparedComponent
from repro.comparison.roco import RoCoModel, RowColumnState
from repro.comparison.spf_table import build_spf_table, proposed_router_wins
from repro.comparison.vicis import HammingSECDED, VicisModel, best_port_swap


class TestNMR:
    def test_majority_vote_correct_output(self):
        unit = NMRUnit(lambda x: x * 2, n=3)
        assert unit.compute(21) == 42

    def test_tolerates_minority_faults(self):
        unit = NMRUnit(lambda x: x + 1, n=3)
        unit.mark_faulty(0)
        assert not unit.failed
        assert unit.compute(1) == 2

    def test_majority_faults_fail(self):
        unit = NMRUnit(lambda x: x, n=3)
        unit.mark_faulty(0)
        unit.mark_faulty(1)
        assert unit.failed
        with pytest.raises(RuntimeError):
            unit.compute(7)

    def test_tolerable_faults(self):
        assert NMRUnit(lambda: 0, n=3).tolerable_faults == 1
        assert NMRUnit(lambda: 0, n=5).tolerable_faults == 2

    def test_rejects_even_n(self):
        with pytest.raises(ValueError):
            NMRUnit(lambda: 0, n=4)


class TestSparedComponent:
    def test_survives_spares(self):
        c = SparedComponent("alloc", spares=2)
        c.hit()
        c.hit()
        assert not c.failed
        c.hit()
        assert c.failed


class TestBulletProofModel:
    def test_published_spf(self):
        m = BulletProofModel()
        assert m.published_spf == pytest.approx(2.07, abs=0.01)

    def test_fault_bounds(self):
        m = BulletProofModel()
        assert m.min_faults_to_failure() == 2  # a unit and its spare
        assert m.max_faults_to_failure() == 6  # 5 spares + 1

    def test_mc_mean_between_bounds(self):
        m = BulletProofModel()
        mean = m.monte_carlo_faults_to_failure(trials=2000, rng=1)
        assert m.min_faults_to_failure() <= mean <= m.max_faults_to_failure()
        # close to the published fault-injection result
        assert mean == pytest.approx(3.15, abs=0.6)


class TestHammingSECDED:
    def test_roundtrip_clean(self):
        ecc = HammingSECDED(32)
        for v in (0, 1, 0xDEADBEEF, 0xFFFFFFFF):
            code = ecc.encode(v)
            data, status = ecc.decode(code)
            assert (data, status) == (v, "ok")

    def test_corrects_any_single_bit(self):
        ecc = HammingSECDED(16)
        v = 0xA5C3
        code = ecc.encode(v)
        for bit in range(ecc.data_bits + ecc.parity_bits + 1):
            data, status = ecc.decode(ecc.corrupt(code, [bit]))
            assert status == "corrected"
            assert data == v

    def test_detects_double_errors(self):
        ecc = HammingSECDED(16)
        code = ecc.encode(0x1234)
        _, status = ecc.decode(ecc.corrupt(code, [3, 9]))
        assert status == "uncorrectable"

    def test_overhead_bits(self):
        ecc = HammingSECDED(32)
        assert ecc.parity_bits == 6
        assert ecc.code_bits == 39

    def test_rejects_oversized_data(self):
        ecc = HammingSECDED(8)
        with pytest.raises(ValueError):
            ecc.encode(256)

    def test_rejects_bad_bit_position(self):
        ecc = HammingSECDED(8)
        with pytest.raises(ValueError):
            ecc.corrupt(ecc.encode(1), [99])


class TestPortSwap:
    def test_full_health_identity_possible(self):
        swap = best_port_swap([0, 1, 2, 3], [0, 1, 2, 3])
        assert swap is not None
        assert sorted(swap.keys()) == [0, 1, 2, 3]
        assert len(set(swap.values())) == 4

    def test_swaps_around_dead_port(self):
        # physical port 2 dead; 4 directions needed from remaining 4 ports
        swap = best_port_swap([0, 1, 3, 4], [0, 1, 2, 3])
        assert swap is not None
        assert 2 not in swap.values()

    def test_insufficient_ports(self):
        assert best_port_swap([0, 1], [0, 1, 2]) is None

    def test_empty_requirements(self):
        assert best_port_swap([0, 1], []) == {}


class TestVicisModel:
    def test_published_spf(self):
        assert VicisModel().published_spf == pytest.approx(6.55, abs=0.01)

    def test_mc_mean_positive(self):
        mean = VicisModel().monte_carlo_faults_to_failure(trials=1000, rng=2)
        assert mean > 2


class TestRoCo:
    def test_degradation_lifecycle(self):
        s = RowColumnState(per_half_tolerance=1)
        s.hit_row()
        assert not s.degraded and not s.failed
        s.hit_row()
        assert s.degraded and not s.failed
        s.hit_col()
        s.hit_col()
        assert s.failed

    def test_published_bound(self):
        m = RoCoModel()
        assert m.published_spf_bound == 5.5
        assert m.spf(0.2) < 5.5

    def test_mc_mean(self):
        mean = RoCoModel().monte_carlo_faults_to_failure(trials=2000, rng=3)
        # row/col each tolerate 2: min 6? no - failure when both exceed:
        # min faults = 2*(tol+1) = 6 only if alternating... bounded sanity:
        assert 4 <= mean <= 12


class TestSPFTable:
    def test_paper_values(self):
        rows = {r.architecture: r for r in build_spf_table()}
        assert rows["BulletProof"].spf == pytest.approx(2.07, abs=0.01)
        assert rows["Vicis"].spf == pytest.approx(6.55, abs=0.01)
        assert rows["RoCo"].spf_is_upper_bound
        assert rows["Proposed Router"].spf == pytest.approx(11.4, abs=0.3)

    def test_proposed_wins(self):
        assert proposed_router_wins(build_spf_table())

    def test_explicit_overhead(self):
        rows = {r.architecture: r for r in build_spf_table(
            proposed_area_overhead=0.31
        )}
        assert rows["Proposed Router"].spf == pytest.approx(11.45, abs=0.02)

    def test_row_formatting(self):
        for row in build_spf_table():
            s = row.format()
            assert row.architecture in s
