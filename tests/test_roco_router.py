"""Tests for the behavioural RoCo router (graceful degradation model)."""

import pytest

from repro.comparison.roco_router import (
    DEFAULT_MODULE_TOLERANCE,
    RoCoRouter,
    roco_router_factory,
)
from repro.config import (
    NetworkConfig,
    PORT_EAST,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_WEST,
    RouterConfig,
)
from repro.faults.sites import FaultSite, FaultUnit
from repro.router.flit import Packet
from repro.router.routing import XYRouting
from repro.traffic.generator import TraceTraffic

from conftest import make_network_config, make_sim


def make_roco():
    net = NetworkConfig(width=3, height=3)
    return RoCoRouter(4, net.router, XYRouting(net)), net


class TestModuleAccounting:
    def test_fresh_router_healthy(self):
        r, _ = make_roco()
        assert not r.row_failed and not r.col_failed
        assert not r.failed and not r.degraded

    def test_row_faults_charged_to_row(self):
        r, _ = make_roco()
        r.inject_fault(FaultSite(4, FaultUnit.SA1_ARBITER, PORT_EAST))
        r.inject_fault(FaultSite(4, FaultUnit.XB_MUX, PORT_WEST))
        assert r.row_faults == 2 and r.col_faults == 0

    def test_module_dies_past_tolerance(self):
        r, _ = make_roco()
        for i, port in enumerate([PORT_EAST, PORT_WEST, PORT_EAST]):
            r.inject_fault(FaultSite(4, FaultUnit.VA1_ARBITER_SET, port, i))
        assert r.row_faults == DEFAULT_MODULE_TOLERANCE + 1
        assert r.row_failed and r.degraded and not r.failed

    def test_both_modules_dead_is_failure(self):
        r, _ = make_roco()
        r.fail_module("row")
        r.fail_module("col")
        assert r.failed

    def test_local_faults_charged_to_healthier_module(self):
        r, _ = make_roco()
        r.inject_fault(FaultSite(4, FaultUnit.SA1_ARBITER, PORT_EAST))
        # row has 1 fault, col 0 -> local fault lands on col
        r.inject_fault(FaultSite(4, FaultUnit.SA1_ARBITER, 0))
        assert r.col_faults == 1

    def test_fail_module_validation(self):
        r, _ = make_roco()
        with pytest.raises(ValueError):
            r.fail_module("diagonal")

    def test_requires_five_ports(self):
        net = NetworkConfig(width=3, height=3)
        with pytest.raises(ValueError):
            RoCoRouter(4, RouterConfig(num_ports=6), XYRouting(net))


class TestDegradedBehaviour:
    def test_dead_row_blocks_row_outputs(self):
        r, _ = make_roco()
        r.fail_module("row")
        assert r.crossbar.plan_path(PORT_EAST) is None
        assert r.crossbar.plan_path(PORT_WEST) is None
        assert r.crossbar.plan_path(PORT_NORTH) is not None

    def test_dead_row_still_forwards_column_traffic(self):
        """The headline: degraded, not dead — column traffic keeps flowing
        straight through a router whose row module died."""
        net = make_network_config(3, 3)
        victim = net.node_id(1, 1)
        from repro.config import SimulationConfig
        from repro.network.simulator import NoCSimulator

        sim = NoCSimulator(
            net,
            SimulationConfig(warmup_cycles=0, measure_cycles=200,
                             drain_cycles=2000, seed=1),
            TraceTraffic([
                Packet(src=net.node_id(1, 0), dest=net.node_id(1, 2),
                       size_flits=1, creation_cycle=5 + i)
                for i in range(10)
            ]),
            router_factory=roco_router_factory(net),
        )
        sim.routers[victim].fail_module("row")
        res = sim.run()
        assert res.drained and not res.blocked
        assert res.stats.packets_ejected == 10

    def test_dead_row_strands_row_traffic(self):
        net = make_network_config(3, 3)
        victim = net.node_id(1, 1)
        from repro.network.simulator import NoCSimulator
        from repro.config import SimulationConfig

        sim = NoCSimulator(
            net,
            SimulationConfig(warmup_cycles=0, measure_cycles=400,
                             drain_cycles=1500, seed=1,
                             watchdog_cycles=800),
            TraceTraffic([
                Packet(src=net.node_id(0, 1), dest=net.node_id(2, 1),
                       size_flits=1, creation_cycle=5)
            ]),
            router_factory=roco_router_factory(net),
        )
        sim.routers[victim].fail_module("row")
        res = sim.run()
        assert res.blocked or res.stats.packets_ejected == 0

    def test_fault_free_roco_delivers_everything(self):
        net = make_network_config(4, 4)
        from repro.network.simulator import NoCSimulator
        from repro.config import SimulationConfig
        from repro.traffic.generator import SyntheticTraffic

        sim = NoCSimulator(
            net,
            SimulationConfig(warmup_cycles=100, measure_cycles=1000,
                             drain_cycles=3000, seed=2),
            SyntheticTraffic(net, injection_rate=0.06, rng=2),
            router_factory=roco_router_factory(net),
        )
        res = sim.run()
        assert res.drained
        assert res.stats.packets_ejected == res.stats.packets_created

    def test_monte_carlo_matches_roco_model(self):
        """Injecting random pipeline faults into the RoCo router until
        failure tracks the RoCoModel's published-style MC (same two-module
        law, faults split ~evenly)."""
        import numpy as np

        from repro.comparison.roco import RoCoModel
        from repro.faults.sites import enumerate_sites

        net = NetworkConfig(width=3, height=3)
        rng = np.random.default_rng(4)
        sites = [
            s for s in enumerate_sites(net.router, router=4, protected=False)
            if s.port != 0  # non-local, so the module split is clean
        ]
        counts = []
        for _ in range(60):
            r = RoCoRouter(4, net.router, XYRouting(net))
            n = 0
            for i in rng.permutation(len(sites)):
                r.inject_fault(sites[int(i)])
                n += 1
                if r.failed:
                    break
            counts.append(n)
        mc = RoCoModel().monte_carlo_faults_to_failure(trials=2000, rng=4)
        assert np.mean(counts) == pytest.approx(mc, rel=0.25)
