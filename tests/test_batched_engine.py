"""The batched lane engine (:mod:`repro.network.batched`).

The engine's contract is *bit-identity*: stepping N structurally
identical sweep points as lanes of flat NumPy state arrays must produce,
for every lane, exactly the result a serial per-lane event-engine run
produces — cycle counts, drain status, the full latency/throughput
summary, and the aggregated router counters.  These tests pin that
contract three ways:

* **differential matrix + fuzz** — fixed scenarios spanning mesh shape,
  VC/vnet count, router kind, routing kind, and fault schedules, plus
  seeded randomized draws of the same axes;
* **sweep-layer seams** — ``run_lane_sweep`` grouping/fallback rules
  (unsupported configurations fall back per point to the event engine,
  recorded in the report), chunking invariance across ``jobs``, and the
  warm-pool ``engine`` key that keeps batched fallback points from
  aliasing event-engine pools;
* **router state export/import** — the per-router snapshot hooks the
  lane engine's import/export seam builds on: round-trip stability and
  cross-fabric restoration into a freshly built router.
"""

import numpy as np
import pytest

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.core.protected_router import protected_router_factory
from repro.experiments.load_latency import _make_schedule, _make_traffic
from repro.experiments.parallel import LanePoint, run_lane_sweep
from repro.faults.injector import RandomFaultSchedule, spawn_lane_injectors
from repro.network import warm
from repro.network.batched import LaneSpec, run_lanes, supports
from repro.network.simulator import NoCSimulator, baseline_router_factory
from repro.router.flit import Flit, reset_packet_ids
from repro.traffic.generator import (
    COHERENCE_MIX,
    SINGLE_FLIT_MIX,
    SyntheticTraffic,
)


def _net(width, height, vcs, vnets):
    return NetworkConfig(
        width=width, height=height,
        router=RouterConfig(num_vcs=vcs, num_vnets=vnets),
    )


def _sim_cfg(measure=250, seed=5):
    return SimulationConfig(
        warmup_cycles=50,
        measure_cycles=measure,
        drain_cycles=1500,
        seed=seed,
        watchdog_cycles=6000,
    )


def _factory(net, kind):
    if kind == "protected":
        return protected_router_factory(net)
    return baseline_router_factory(net)


def _lane_key(res):
    """Everything a lane result asserts: identity, not approximation."""
    import dataclasses

    return (
        res.cycles,
        res.blocked,
        res.drained,
        res.faults_injected,
        res.stats.summary(),
        dataclasses.asdict(res.router_stats),
    )


def _event_reference(net, sim_cfg, spec, factory, routing_kind="xy"):
    reset_packet_ids()
    sim = NoCSimulator(
        net, sim_cfg, spec.traffic,
        router_factory=factory,
        fault_schedule=spec.fault_schedule,
        routing_kind=routing_kind,
    )
    return sim.run()


def _assert_lanes_match(net, sim_cfg, make_specs, kind, routing_kind="xy"):
    """Batched run vs per-lane event runs over identical lane inputs.

    ``make_specs`` is called once per engine so each gets fresh,
    identically seeded traffic/schedule objects.
    """
    factory = _factory(net, kind)
    assert supports(net, factory, routing_kind) is None
    reset_packet_ids()
    batched = run_lanes(
        net, sim_cfg, make_specs(), router_factory=factory,
        routing_kind=routing_kind,
    )
    refs = [
        _event_reference(net, sim_cfg, spec, factory, routing_kind)
        for spec in make_specs()
    ]
    assert len(batched) == len(refs)
    for lane, (b, r) in enumerate(zip(batched, refs)):
        assert _lane_key(b) == _lane_key(r), f"lane {lane} diverged"


# ----------------------------------------------------------------------
# differential matrix
# ----------------------------------------------------------------------
class TestBatchedDifferential:
    def test_baseline_single_vnet(self):
        net = _net(3, 3, 2, 1)

        def specs():
            return [
                LaneSpec(SyntheticTraffic(net, injection_rate=r, rng=40 + i))
                for i, r in enumerate((0.05, 0.10, 0.15))
            ]

        _assert_lanes_match(net, _sim_cfg(), specs, "baseline")

    def test_protected_with_faults_coherence_mix(self):
        net = _net(4, 4, 4, 2)

        def specs():
            schedules = spawn_lane_injectors(
                net.router, net.num_nodes, 3, mean_interval=30.0,
                num_faults=8, rng=77, first_fault_at=40, avoid_failure=True,
            )
            return [
                LaneSpec(
                    SyntheticTraffic(
                        net, injection_rate=0.08, mix=COHERENCE_MIX,
                        rng=50 + i,
                    ),
                    schedules[i] if i else None,  # lane 0 fault-free
                )
                for i in range(3)
            ]

        _assert_lanes_match(net, _sim_cfg(), specs, "protected")

    def test_rectangular_mesh_yx_routing(self):
        net = _net(4, 2, 4, 2)

        def specs():
            return [
                LaneSpec(
                    SyntheticTraffic(
                        net, injection_rate=0.06, mix=COHERENCE_MIX, rng=60
                    )
                ),
                LaneSpec(
                    SyntheticTraffic(
                        net, injection_rate=0.12, mix=COHERENCE_MIX, rng=61
                    )
                ),
            ]

        _assert_lanes_match(net, _sim_cfg(), specs, "protected", "yx")

    def test_lookahead_routing(self):
        net = _net(3, 3, 2, 1)

        def specs():
            return [
                LaneSpec(SyntheticTraffic(net, injection_rate=0.1, rng=70))
            ]

        _assert_lanes_match(net, _sim_cfg(), specs, "baseline", "lookahead_xy")

    def test_single_lane_degenerate(self):
        """A one-lane batch is just a slow spelling of a serial run."""
        net = _net(3, 3, 4, 2)

        def specs():
            return [
                LaneSpec(
                    SyntheticTraffic(
                        net, injection_rate=0.09, mix=COHERENCE_MIX, rng=80
                    )
                )
            ]

        _assert_lanes_match(net, _sim_cfg(), specs, "protected")

    def test_fuzz_randomized_scenarios(self):
        """Seeded property sweep over mesh/VC/rate/fault-count draws."""
        rng = np.random.default_rng(20260808)
        for case in range(4):
            width = int(rng.integers(2, 5))
            height = int(rng.integers(2, 4))
            vnets = int(rng.integers(1, 3))
            vcs = int(rng.choice([2, 4]))
            net = _net(width, height, vcs, vnets)
            kind = "protected" if rng.random() < 0.7 else "baseline"
            lanes = int(rng.integers(2, 5))
            rates = rng.uniform(0.02, 0.12, size=lanes).round(3)
            mix = COHERENCE_MIX if vnets == 2 else SINGLE_FLIT_MIX
            faulted = (
                kind == "protected"
                and rng.random() < 0.7
                and net.num_nodes >= 4
            )
            seed_base = int(rng.integers(0, 2**16))

            def specs():
                schedules = [None] * lanes
                if faulted:
                    injectors = spawn_lane_injectors(
                        net.router, net.num_nodes, lanes,
                        mean_interval=25.0,
                        num_faults=int(min(6, net.num_nodes)),
                        rng=seed_base + 1, first_fault_at=30,
                        avoid_failure=True,
                    )
                    # every other lane carries faults
                    schedules = [
                        injectors[i] if i % 2 else None for i in range(lanes)
                    ]
                return [
                    LaneSpec(
                        SyntheticTraffic(
                            net, injection_rate=float(rates[i]), mix=mix,
                            rng=seed_base + 10 + i,
                        ),
                        schedules[i],
                    )
                    for i in range(lanes)
                ]

            _assert_lanes_match(
                net, _sim_cfg(measure=150, seed=seed_base % 97), specs, kind
            )


# ----------------------------------------------------------------------
# multi-cycle link/credit latency (per-edge delay rings)
# ----------------------------------------------------------------------
class TestMultiCycleLatency:
    def _net_lat(self, link, credit, vcs=4, vnets=2):
        return NetworkConfig(
            width=4, height=3, link_latency=link, credit_latency=credit,
            router=RouterConfig(num_vcs=vcs, num_vnets=vnets),
        )

    def test_link_latency_two(self):
        net = self._net_lat(2, 1)

        def specs():
            return [
                LaneSpec(
                    SyntheticTraffic(
                        net, injection_rate=0.05 + 0.03 * i,
                        mix=COHERENCE_MIX, rng=400 + i,
                    )
                )
                for i in range(3)
            ]

        _assert_lanes_match(net, _sim_cfg(), specs, "protected")

    def test_credit_latency_three(self):
        net = self._net_lat(1, 3)

        def specs():
            return [
                LaneSpec(
                    SyntheticTraffic(
                        net, injection_rate=0.08, mix=COHERENCE_MIX,
                        rng=410 + i,
                    )
                )
                for i in range(2)
            ]

        _assert_lanes_match(net, _sim_cfg(), specs, "baseline")

    def test_both_nonunit_with_faults(self):
        net = self._net_lat(3, 2)

        def specs():
            schedules = spawn_lane_injectors(
                net.router, net.num_nodes, 3, mean_interval=30.0,
                num_faults=6, rng=88, first_fault_at=40,
                avoid_failure=True,
            )
            return [
                LaneSpec(
                    SyntheticTraffic(
                        net, injection_rate=0.07, mix=COHERENCE_MIX,
                        rng=420 + i,
                    ),
                    schedules[i] if i % 2 else None,
                )
                for i in range(3)
            ]

        _assert_lanes_match(net, _sim_cfg(), specs, "protected")


# ----------------------------------------------------------------------
# keep_samples: per-flit latency sampling through the batched path
# ----------------------------------------------------------------------
class TestKeepSamples:
    def test_samples_match_serial(self):
        net = NetworkConfig(
            width=4, height=4, link_latency=2,
            router=RouterConfig(num_vcs=4, num_vnets=2),
        )
        cfg = _sim_cfg(measure=250)
        factory = protected_router_factory(net)

        def specs():
            return [
                LaneSpec(
                    SyntheticTraffic(
                        net, injection_rate=0.08, mix=COHERENCE_MIX,
                        rng=430 + i,
                    )
                )
                for i in range(3)
            ]

        def sample_key(s):
            # packet ids are allocation-order artefacts; everything the
            # samples *measure* must match exactly
            return (s.src, s.dest, s.injection_cycle, s.ejection_cycle,
                    s.hops)

        reset_packet_ids()
        batched = run_lanes(
            net, cfg, specs(), router_factory=factory, keep_samples=True
        )
        for lane, spec in enumerate(specs()):
            reset_packet_ids()
            ref = NoCSimulator(
                net, cfg, spec.traffic, router_factory=factory,
                keep_samples=True,
            ).run()
            got = sorted(sample_key(s) for s in batched[lane].stats.samples)
            want = sorted(sample_key(s) for s in ref.stats.samples)
            assert got, f"lane {lane} kept no samples"
            assert got == want, f"lane {lane} samples diverged"
            assert batched[lane].stats.latency_percentile(95) == ref.stats.latency_percentile(95)


# ----------------------------------------------------------------------
# lane refill: streaming pending points into retired slots
# ----------------------------------------------------------------------
class TestLaneRefill:
    def _specs(self, net, n, seed0=200):
        schedules = spawn_lane_injectors(
            net.router, net.num_nodes, n, mean_interval=30.0,
            num_faults=6, rng=123, first_fault_at=40, avoid_failure=True,
        )
        return [
            LaneSpec(
                SyntheticTraffic(
                    net, injection_rate=0.04 + 0.01 * (i % 5),
                    mix=COHERENCE_MIX, rng=seed0 + i,
                ),
                schedules[i] if i % 2 else None,
            )
            for i in range(n)
        ]

    def test_refill_golden_bit_identical(self):
        """Every refilled point matches the same point run fresh."""
        net = _net(4, 4, 4, 2)
        cfg = _sim_cfg(measure=200)
        factory = protected_router_factory(net)
        reset_packet_ids()
        batched = run_lanes(
            net, cfg, self._specs(net, 8), router_factory=factory, width=2
        )
        refs = [
            _event_reference(net, cfg, s, factory)
            for s in self._specs(net, 8)
        ]
        assert len(batched) == 8
        for i, (b, r) in enumerate(zip(batched, refs)):
            assert _lane_key(b) == _lane_key(r), f"point {i} diverged"

    def test_width_invariance(self):
        """Any slot width yields the same per-point results."""
        net = _net(4, 4, 4, 2)
        cfg = _sim_cfg(measure=150)
        factory = protected_router_factory(net)
        reset_packet_ids()
        wide = run_lanes(net, cfg, self._specs(net, 6), router_factory=factory)
        reset_packet_ids()
        narrow = run_lanes(
            net, cfg, self._specs(net, 6), router_factory=factory, width=3
        )
        for i, (a, b) in enumerate(zip(wide, narrow)):
            assert _lane_key(a) == _lane_key(b), f"point {i} diverged"

    def test_occupancy_stays_dense_when_oversubscribed(self):
        """4x oversubscription keeps the state arrays >= 90% occupied."""
        from repro.network.batched import BatchedLaneEngine

        net = _net(4, 4, 4, 2)
        cfg = _sim_cfg(measure=200)
        lanes = self._specs(net, 16)
        engine = BatchedLaneEngine(
            net, cfg, lanes[:4],
            router_factory=protected_router_factory(net),
            pending=lanes[4:],
        )
        results = engine.run()
        assert len(results) == 16
        assert all(r is not None for r in results)
        assert engine.lane_occupancy >= 0.9


# ----------------------------------------------------------------------
# golden determinism: faults pinned to window seams, through the refill
# path (PR 9 covered the event engine; this pins the batched engine)
# ----------------------------------------------------------------------
class TestSeamFaultsGoldenUnderRefill:
    """A fault landing exactly on the warmup/measure boundary, and one
    during drain, must be bit-identical between a refilled batched lane
    and a fresh event-engine run of the same point."""

    def _specs(self, net, cfg, n):
        from repro.faults import ExplicitFaultSchedule, FaultSite, FaultUnit

        boundary = cfg.warmup_cycles  # first measured cycle
        in_drain = cfg.warmup_cycles + cfg.measure_cycles + 10
        specs = []
        for i in range(n):
            schedule = ExplicitFaultSchedule(
                [
                    (boundary, FaultSite(i % net.num_nodes,
                                         FaultUnit.RC_PRIMARY, 0)),
                    (in_drain, FaultSite((i + 5) % net.num_nodes,
                                         FaultUnit.XB_MUX, 1)),
                ]
            )
            specs.append(
                LaneSpec(
                    SyntheticTraffic(
                        net, injection_rate=0.05, mix=COHERENCE_MIX,
                        rng=300 + i,
                    ),
                    schedule,
                )
            )
        return specs

    @pytest.mark.parametrize("kind", ["baseline", "protected"])
    def test_boundary_and_drain_faults_bit_identical(self, kind):
        net = _net(4, 4, 4, 2)
        cfg = _sim_cfg(measure=200)
        factory = _factory(net, kind)
        reset_packet_ids()
        # width=2 over 6 lanes: lanes 2..5 enter through the refill path
        batched = run_lanes(
            net, cfg, self._specs(net, cfg, 6),
            router_factory=factory, width=2,
        )
        refs = [
            _event_reference(net, cfg, spec, factory)
            for spec in self._specs(net, cfg, 6)
        ]
        for i, (b, r) in enumerate(zip(batched, refs)):
            assert b.faults_injected == 2, f"point {i} missed a seam fault"
            assert _lane_key(b) == _lane_key(r), f"point {i} diverged"


# ----------------------------------------------------------------------
# supports() gate
# ----------------------------------------------------------------------
class TestSupportsGate:
    def test_supported_config_returns_none(self):
        net = _net(4, 4, 4, 2)
        assert supports(net, protected_router_factory(net), "xy") is None

    def test_adaptive_routing_declined(self):
        net = _net(4, 4, 2, 1)
        reason = supports(net, baseline_router_factory(net), "west_first")
        assert reason is not None and "adaptive" in reason

    def test_nonunit_latency_supported(self):
        """Multi-cycle link/credit latency batches via the delay rings."""
        net = NetworkConfig(
            width=3, height=3, link_latency=2, credit_latency=3
        )
        assert supports(net, baseline_router_factory(net), "xy") is None

    def test_oversized_vc_space_declined(self):
        net = NetworkConfig(
            width=3, height=3, router=RouterConfig(num_vcs=16)
        )
        reason = supports(net, None, "xy")
        assert reason is not None and "num_ports * num_vcs" in reason


# ----------------------------------------------------------------------
# sweep layer: grouping, fallback, chunk invariance
# ----------------------------------------------------------------------
def _lane_points(net, sim_cfg, routing_kinds, rate=0.05, seed=3):
    return [
        LanePoint(
            config=net,
            sim_config=sim_cfg,
            make_traffic=_make_traffic,
            traffic_args=(net, rate, seed + i),
            router_kind="protected",
            routing_kind=rk,
            label=f"p{i}:{rk}",
        )
        for i, rk in enumerate(routing_kinds)
    ]


class TestRunLaneSweep:
    def test_unsupported_points_fall_back_per_point(self):
        net = _net(4, 4, 4, 2)
        points = _lane_points(
            net, _sim_cfg(measure=150),
            ("xy", "west_first", "xy", "west_first"),
        )
        batched_values, batched_report = run_lane_sweep(points)
        event_values, event_report = run_lane_sweep(points, engine="event")

        assert batched_report.points == len(points)
        assert batched_report.fallbacks == 2
        assert event_report.fallbacks == 0
        assert "event-engine fallbacks" in batched_report.format()
        # the *why* is threaded through to the report, not just a count
        assert any("adaptive" in r for r in batched_report.fallback_reasons)
        assert "fallback reasons:" in batched_report.format()
        assert event_report.fallback_reasons == ()
        for i, (b, e) in enumerate(zip(batched_values, event_values)):
            assert b.stats.summary() == e.stats.summary(), f"point {i}"
            assert b.cycles == e.cycles

    def test_chunking_invariance_across_jobs(self):
        net = _net(4, 4, 4, 2)
        sim_cfg = _sim_cfg(measure=150)
        points = [
            LanePoint(
                config=net,
                sim_config=sim_cfg,
                make_traffic=_make_traffic,
                traffic_args=(net, 0.03 + 0.02 * i, 11 + i),
                make_schedule=_make_schedule if i % 2 else None,
                schedule_args=(net, 6, 11 + i) if i % 2 else (),
                router_kind="protected",
                label=f"p{i}",
            )
            for i in range(5)
        ]
        serial_values, serial_report = run_lane_sweep(points, jobs=None)
        par_values, par_report = run_lane_sweep(points, jobs=2)
        assert serial_report.points == par_report.points == 5
        for i, (a, b) in enumerate(zip(serial_values, par_values)):
            assert a.stats.summary() == b.stats.summary(), f"point {i}"
            assert a.cycles == b.cycles
            assert a.faults_injected == b.faults_injected

    def test_lane_width_invariance_through_sweep(self):
        """The streaming queue's slot width is a pure wall-clock knob."""
        net = _net(4, 4, 4, 2)
        sim_cfg = _sim_cfg(measure=150)
        points = [
            LanePoint(
                config=net,
                sim_config=sim_cfg,
                make_traffic=_make_traffic,
                traffic_args=(net, 0.03 + 0.01 * i, 21 + i),
                router_kind="protected",
                label=f"p{i}",
            )
            for i in range(6)
        ]
        wide_values, _ = run_lane_sweep(points)
        narrow_values, narrow_report = run_lane_sweep(points, lane_width=2)
        assert narrow_report.points == 6
        for i, (a, b) in enumerate(zip(wide_values, narrow_values)):
            assert a.stats.summary() == b.stats.summary(), f"point {i}"
            assert a.cycles == b.cycles

    def test_small_groups_fall_back_with_reason(self):
        """Singleton structural groups skip the batched engine."""
        net_a = _net(3, 3, 2, 2)
        net_b = _net(4, 3, 2, 2)
        points = [
            LanePoint(
                config=net,
                sim_config=_sim_cfg(measure=100),
                make_traffic=_make_traffic,
                traffic_args=(net, 0.05, 31 + i),
                router_kind="baseline",
                label=f"solo{i}",
            )
            for i, net in enumerate((net_a, net_b))
        ]
        values, report = run_lane_sweep(points)
        assert report.fallbacks == 2
        assert any(
            "below the lane batching threshold" in r
            for r in report.fallback_reasons
        )
        event_values, _ = run_lane_sweep(points, engine="event")
        for a, b in zip(values, event_values):
            assert a.stats.summary() == b.stats.summary()

    def test_empty_sweep(self):
        values, report = run_lane_sweep([])
        assert values == []
        assert report.points == 0

    def test_unknown_engine_rejected(self):
        net = _net(3, 3, 2, 1)
        points = _lane_points(net, _sim_cfg(), ("xy",))
        with pytest.raises(ValueError):
            run_lane_sweep(points, engine="quantum")


# ----------------------------------------------------------------------
# warm pool: engine kind is part of the key
# ----------------------------------------------------------------------
class TestWarmPoolEngineKey:
    def test_engine_kind_never_aliases_pools(self):
        warm.clear_pool()
        try:
            net = _net(3, 3, 2, 1)
            cfg = _sim_cfg(measure=50)

            def traffic(seed):
                return SyntheticTraffic(net, injection_rate=0.05, rng=seed)

            factory = baseline_router_factory(net)
            a = warm.acquire(net, cfg, traffic(1), factory, engine="event")
            b = warm.acquire(net, cfg, traffic(2), factory, engine="batched")
            assert a is not b, "engine kinds must not share pooled fabrics"
            c = warm.acquire(net, cfg, traffic(3), factory, engine="event")
            assert c is a, "same engine kind should reuse its pool"
        finally:
            warm.clear_pool()


# ----------------------------------------------------------------------
# router state export/import hooks
# ----------------------------------------------------------------------
def _norm(obj):
    """JSON-comparable normal form of an exported router state."""
    if isinstance(obj, Flit):
        return ["flit"] + [getattr(obj, f) for f in Flit.__slots__]
    if isinstance(obj, dict):
        return {k: _norm(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_norm(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(repr(_norm(v)) for v in obj)
    if hasattr(obj, "describe"):
        return obj.describe()
    return obj


def _run_faulted_sim(seed=7, rate=0.2):
    net = _net(4, 4, 4, 2)
    schedule = RandomFaultSchedule(
        net.router, net.num_nodes, mean_interval=30, num_faults=10,
        rng=5, first_fault_at=40, avoid_failure=True,
    )
    reset_packet_ids()
    sim = NoCSimulator(
        net,
        _sim_cfg(measure=300, seed=seed),
        SyntheticTraffic(net, injection_rate=rate, mix=COHERENCE_MIX, rng=seed),
        router_factory=protected_router_factory(net),
        fault_schedule=schedule,
    )
    sim.run()
    return sim


class TestRouterStateExport:
    def test_export_import_round_trip(self):
        """export -> reset -> import -> export must be a fixed point."""
        sim = _run_faulted_sim()
        before = [_norm(r.export_state()) for r in sim.routers]
        for router, state in zip(
            sim.routers, [r.export_state() for r in sim.routers]
        ):
            router.reset()
            router.import_state(state)
        after = [_norm(r.export_state()) for r in sim.routers]
        assert after == before
        sim.check_invariants()

    def test_cross_fabric_import(self):
        """A snapshot restores into a freshly built identical fabric."""
        src = _run_faulted_sim()
        states = [r.export_state() for r in src.routers]

        net = _net(4, 4, 4, 2)
        reset_packet_ids()
        dst = NoCSimulator(
            net,
            _sim_cfg(measure=300, seed=7),
            SyntheticTraffic(
                net, injection_rate=0.2, mix=COHERENCE_MIX, rng=99
            ),
            router_factory=protected_router_factory(net),
        )
        for router, state in zip(dst.routers, states):
            router.import_state(state)
        dst.check_invariants()
        restored = [_norm(r.export_state()) for r in dst.routers]
        assert restored == [_norm(s) for s in states]

    def test_export_captures_faults_and_occupancy(self):
        """The snapshot must actually carry faults and buffered flits —
        an all-empty export would round-trip trivially."""
        sim = _run_faulted_sim()
        states = [r.export_state() for r in sim.routers]
        total_faults = sum(
            len(s["faults"]["history"]) for s in states
        )
        assert total_faults == 10


# ----------------------------------------------------------------------
# streaming queue x resilient runtime: chunk-granular checkpoint/resume
# ----------------------------------------------------------------------
class TestLaneChunkResume:
    """A killed lane sweep resumes bit-identically from its chunk
    records (the batched analogue of ``TestSimulationResumeGolden`` in
    ``tests/test_resilient.py``, which pins the per-point event path)."""

    def _run(self, tmp_path, **kw):
        from repro.experiments import fault_sweep
        from repro.experiments.latency import QUICK_CONFIG

        config = fault_sweep.FaultSweepConfig(
            fault_counts=(0, 8, 16, 32), latency=QUICK_CONFIG, app="lu"
        )
        return fault_sweep.run(config, jobs=2, **kw)

    def test_truncated_chunk_checkpoint_resume_matches(self, tmp_path):
        full = self._run(tmp_path, out_dir=tmp_path / "run")
        jsonl = tmp_path / "run" / "sweep-000.jsonl"
        lines = jsonl.read_text().splitlines()
        # 4 points, one structural group, jobs=2 -> two 2-lane chunks,
        # each one durable record
        assert len(lines) == 2
        records = [__import__("json").loads(line) for line in lines]
        assert sorted(r["points"] for r in records) == [2, 2]
        # drop the last record: simulates a SIGKILL mid-sweep
        jsonl.write_text(lines[0] + "\n")

        resumed = self._run(tmp_path, resume=tmp_path / "run")
        assert resumed.extras["rows"] == full.extras["rows"]
        report = resumed.extras["sweep"]
        assert report.points == 4
        # point-accurate resume accounting: one chunk = two points
        assert report.resumed == 2
