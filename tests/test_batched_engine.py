"""The batched lane engine (:mod:`repro.network.batched`).

The engine's contract is *bit-identity*: stepping N structurally
identical sweep points as lanes of flat NumPy state arrays must produce,
for every lane, exactly the result a serial per-lane event-engine run
produces — cycle counts, drain status, the full latency/throughput
summary, and the aggregated router counters.  These tests pin that
contract three ways:

* **differential matrix + fuzz** — fixed scenarios spanning mesh shape,
  VC/vnet count, router kind, routing kind, and fault schedules, plus
  seeded randomized draws of the same axes;
* **sweep-layer seams** — ``run_lane_sweep`` grouping/fallback rules
  (unsupported configurations fall back per point to the event engine,
  recorded in the report), chunking invariance across ``jobs``, and the
  warm-pool ``engine`` key that keeps batched fallback points from
  aliasing event-engine pools;
* **router state export/import** — the per-router snapshot hooks the
  lane engine's import/export seam builds on: round-trip stability and
  cross-fabric restoration into a freshly built router.
"""

import numpy as np
import pytest

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.core.protected_router import protected_router_factory
from repro.experiments.load_latency import _make_schedule, _make_traffic
from repro.experiments.parallel import LanePoint, run_lane_sweep
from repro.faults.injector import RandomFaultInjector, spawn_lane_injectors
from repro.network import warm
from repro.network.batched import LaneSpec, run_lanes, supports
from repro.network.simulator import NoCSimulator, baseline_router_factory
from repro.router.flit import Flit, reset_packet_ids
from repro.traffic.generator import (
    COHERENCE_MIX,
    SINGLE_FLIT_MIX,
    SyntheticTraffic,
)


def _net(width, height, vcs, vnets):
    return NetworkConfig(
        width=width, height=height,
        router=RouterConfig(num_vcs=vcs, num_vnets=vnets),
    )


def _sim_cfg(measure=250, seed=5):
    return SimulationConfig(
        warmup_cycles=50,
        measure_cycles=measure,
        drain_cycles=1500,
        seed=seed,
        watchdog_cycles=6000,
    )


def _factory(net, kind):
    if kind == "protected":
        return protected_router_factory(net)
    return baseline_router_factory(net)


def _lane_key(res):
    """Everything a lane result asserts: identity, not approximation."""
    import dataclasses

    return (
        res.cycles,
        res.blocked,
        res.drained,
        res.faults_injected,
        res.stats.summary(),
        dataclasses.asdict(res.router_stats),
    )


def _event_reference(net, sim_cfg, spec, factory, routing_kind="xy"):
    reset_packet_ids()
    sim = NoCSimulator(
        net, sim_cfg, spec.traffic,
        router_factory=factory,
        fault_schedule=spec.fault_schedule,
        routing_kind=routing_kind,
    )
    return sim.run()


def _assert_lanes_match(net, sim_cfg, make_specs, kind, routing_kind="xy"):
    """Batched run vs per-lane event runs over identical lane inputs.

    ``make_specs`` is called once per engine so each gets fresh,
    identically seeded traffic/schedule objects.
    """
    factory = _factory(net, kind)
    assert supports(net, factory, routing_kind) is None
    reset_packet_ids()
    batched = run_lanes(
        net, sim_cfg, make_specs(), router_factory=factory,
        routing_kind=routing_kind,
    )
    refs = [
        _event_reference(net, sim_cfg, spec, factory, routing_kind)
        for spec in make_specs()
    ]
    assert len(batched) == len(refs)
    for lane, (b, r) in enumerate(zip(batched, refs)):
        assert _lane_key(b) == _lane_key(r), f"lane {lane} diverged"


# ----------------------------------------------------------------------
# differential matrix
# ----------------------------------------------------------------------
class TestBatchedDifferential:
    def test_baseline_single_vnet(self):
        net = _net(3, 3, 2, 1)

        def specs():
            return [
                LaneSpec(SyntheticTraffic(net, injection_rate=r, rng=40 + i))
                for i, r in enumerate((0.05, 0.10, 0.15))
            ]

        _assert_lanes_match(net, _sim_cfg(), specs, "baseline")

    def test_protected_with_faults_coherence_mix(self):
        net = _net(4, 4, 4, 2)

        def specs():
            schedules = spawn_lane_injectors(
                net.router, net.num_nodes, 3, mean_interval=30.0,
                num_faults=8, rng=77, first_fault_at=40, avoid_failure=True,
            )
            return [
                LaneSpec(
                    SyntheticTraffic(
                        net, injection_rate=0.08, mix=COHERENCE_MIX,
                        rng=50 + i,
                    ),
                    schedules[i] if i else None,  # lane 0 fault-free
                )
                for i in range(3)
            ]

        _assert_lanes_match(net, _sim_cfg(), specs, "protected")

    def test_rectangular_mesh_yx_routing(self):
        net = _net(4, 2, 4, 2)

        def specs():
            return [
                LaneSpec(
                    SyntheticTraffic(
                        net, injection_rate=0.06, mix=COHERENCE_MIX, rng=60
                    )
                ),
                LaneSpec(
                    SyntheticTraffic(
                        net, injection_rate=0.12, mix=COHERENCE_MIX, rng=61
                    )
                ),
            ]

        _assert_lanes_match(net, _sim_cfg(), specs, "protected", "yx")

    def test_lookahead_routing(self):
        net = _net(3, 3, 2, 1)

        def specs():
            return [
                LaneSpec(SyntheticTraffic(net, injection_rate=0.1, rng=70))
            ]

        _assert_lanes_match(net, _sim_cfg(), specs, "baseline", "lookahead_xy")

    def test_single_lane_degenerate(self):
        """A one-lane batch is just a slow spelling of a serial run."""
        net = _net(3, 3, 4, 2)

        def specs():
            return [
                LaneSpec(
                    SyntheticTraffic(
                        net, injection_rate=0.09, mix=COHERENCE_MIX, rng=80
                    )
                )
            ]

        _assert_lanes_match(net, _sim_cfg(), specs, "protected")

    def test_fuzz_randomized_scenarios(self):
        """Seeded property sweep over mesh/VC/rate/fault-count draws."""
        rng = np.random.default_rng(20260808)
        for case in range(4):
            width = int(rng.integers(2, 5))
            height = int(rng.integers(2, 4))
            vnets = int(rng.integers(1, 3))
            vcs = int(rng.choice([2, 4]))
            net = _net(width, height, vcs, vnets)
            kind = "protected" if rng.random() < 0.7 else "baseline"
            lanes = int(rng.integers(2, 5))
            rates = rng.uniform(0.02, 0.12, size=lanes).round(3)
            mix = COHERENCE_MIX if vnets == 2 else SINGLE_FLIT_MIX
            faulted = (
                kind == "protected"
                and rng.random() < 0.7
                and net.num_nodes >= 4
            )
            seed_base = int(rng.integers(0, 2**16))

            def specs():
                schedules = [None] * lanes
                if faulted:
                    injectors = spawn_lane_injectors(
                        net.router, net.num_nodes, lanes,
                        mean_interval=25.0,
                        num_faults=int(min(6, net.num_nodes)),
                        rng=seed_base + 1, first_fault_at=30,
                        avoid_failure=True,
                    )
                    # every other lane carries faults
                    schedules = [
                        injectors[i] if i % 2 else None for i in range(lanes)
                    ]
                return [
                    LaneSpec(
                        SyntheticTraffic(
                            net, injection_rate=float(rates[i]), mix=mix,
                            rng=seed_base + 10 + i,
                        ),
                        schedules[i],
                    )
                    for i in range(lanes)
                ]

            _assert_lanes_match(
                net, _sim_cfg(measure=150, seed=seed_base % 97), specs, kind
            )


# ----------------------------------------------------------------------
# supports() gate
# ----------------------------------------------------------------------
class TestSupportsGate:
    def test_supported_config_returns_none(self):
        net = _net(4, 4, 4, 2)
        assert supports(net, protected_router_factory(net), "xy") is None

    def test_adaptive_routing_declined(self):
        net = _net(4, 4, 2, 1)
        reason = supports(net, baseline_router_factory(net), "west_first")
        assert reason is not None and "adaptive" in reason

    def test_nonunit_latency_declined(self):
        net = NetworkConfig(width=3, height=3, link_latency=2)
        assert supports(net, None, "xy") is not None


# ----------------------------------------------------------------------
# sweep layer: grouping, fallback, chunk invariance
# ----------------------------------------------------------------------
def _lane_points(net, sim_cfg, routing_kinds, rate=0.05, seed=3):
    return [
        LanePoint(
            config=net,
            sim_config=sim_cfg,
            make_traffic=_make_traffic,
            traffic_args=(net, rate, seed + i),
            router_kind="protected",
            routing_kind=rk,
            label=f"p{i}:{rk}",
        )
        for i, rk in enumerate(routing_kinds)
    ]


class TestRunLaneSweep:
    def test_unsupported_points_fall_back_per_point(self):
        net = _net(4, 4, 4, 2)
        points = _lane_points(
            net, _sim_cfg(measure=150),
            ("xy", "west_first", "xy", "west_first"),
        )
        batched_values, batched_report = run_lane_sweep(points)
        event_values, event_report = run_lane_sweep(points, engine="event")

        assert batched_report.points == len(points)
        assert batched_report.fallbacks == 2
        assert event_report.fallbacks == 0
        assert "event-engine fallbacks" in batched_report.format()
        for i, (b, e) in enumerate(zip(batched_values, event_values)):
            assert b.stats.summary() == e.stats.summary(), f"point {i}"
            assert b.cycles == e.cycles

    def test_chunking_invariance_across_jobs(self):
        net = _net(4, 4, 4, 2)
        sim_cfg = _sim_cfg(measure=150)
        points = [
            LanePoint(
                config=net,
                sim_config=sim_cfg,
                make_traffic=_make_traffic,
                traffic_args=(net, 0.03 + 0.02 * i, 11 + i),
                make_schedule=_make_schedule if i % 2 else None,
                schedule_args=(net, 6, 11 + i) if i % 2 else (),
                router_kind="protected",
                label=f"p{i}",
            )
            for i in range(5)
        ]
        serial_values, serial_report = run_lane_sweep(points, jobs=None)
        par_values, par_report = run_lane_sweep(points, jobs=2)
        assert serial_report.points == par_report.points == 5
        for i, (a, b) in enumerate(zip(serial_values, par_values)):
            assert a.stats.summary() == b.stats.summary(), f"point {i}"
            assert a.cycles == b.cycles
            assert a.faults_injected == b.faults_injected

    def test_empty_sweep(self):
        values, report = run_lane_sweep([])
        assert values == []
        assert report.points == 0

    def test_unknown_engine_rejected(self):
        net = _net(3, 3, 2, 1)
        points = _lane_points(net, _sim_cfg(), ("xy",))
        with pytest.raises(ValueError):
            run_lane_sweep(points, engine="quantum")


# ----------------------------------------------------------------------
# warm pool: engine kind is part of the key
# ----------------------------------------------------------------------
class TestWarmPoolEngineKey:
    def test_engine_kind_never_aliases_pools(self):
        warm.clear_pool()
        try:
            net = _net(3, 3, 2, 1)
            cfg = _sim_cfg(measure=50)

            def traffic(seed):
                return SyntheticTraffic(net, injection_rate=0.05, rng=seed)

            factory = baseline_router_factory(net)
            a = warm.acquire(net, cfg, traffic(1), factory, engine="event")
            b = warm.acquire(net, cfg, traffic(2), factory, engine="batched")
            assert a is not b, "engine kinds must not share pooled fabrics"
            c = warm.acquire(net, cfg, traffic(3), factory, engine="event")
            assert c is a, "same engine kind should reuse its pool"
        finally:
            warm.clear_pool()


# ----------------------------------------------------------------------
# router state export/import hooks
# ----------------------------------------------------------------------
def _norm(obj):
    """JSON-comparable normal form of an exported router state."""
    if isinstance(obj, Flit):
        return ["flit"] + [getattr(obj, f) for f in Flit.__slots__]
    if isinstance(obj, dict):
        return {k: _norm(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_norm(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(repr(_norm(v)) for v in obj)
    if hasattr(obj, "describe"):
        return obj.describe()
    return obj


def _run_faulted_sim(seed=7, rate=0.2):
    net = _net(4, 4, 4, 2)
    schedule = RandomFaultInjector(
        net.router, net.num_nodes, mean_interval=30, num_faults=10,
        rng=5, first_fault_at=40, avoid_failure=True,
    )
    reset_packet_ids()
    sim = NoCSimulator(
        net,
        _sim_cfg(measure=300, seed=seed),
        SyntheticTraffic(net, injection_rate=rate, mix=COHERENCE_MIX, rng=seed),
        router_factory=protected_router_factory(net),
        fault_schedule=schedule,
    )
    sim.run()
    return sim


class TestRouterStateExport:
    def test_export_import_round_trip(self):
        """export -> reset -> import -> export must be a fixed point."""
        sim = _run_faulted_sim()
        before = [_norm(r.export_state()) for r in sim.routers]
        for router, state in zip(
            sim.routers, [r.export_state() for r in sim.routers]
        ):
            router.reset()
            router.import_state(state)
        after = [_norm(r.export_state()) for r in sim.routers]
        assert after == before
        sim.check_invariants()

    def test_cross_fabric_import(self):
        """A snapshot restores into a freshly built identical fabric."""
        src = _run_faulted_sim()
        states = [r.export_state() for r in src.routers]

        net = _net(4, 4, 4, 2)
        reset_packet_ids()
        dst = NoCSimulator(
            net,
            _sim_cfg(measure=300, seed=7),
            SyntheticTraffic(
                net, injection_rate=0.2, mix=COHERENCE_MIX, rng=99
            ),
            router_factory=protected_router_factory(net),
        )
        for router, state in zip(dst.routers, states):
            router.import_state(state)
        dst.check_invariants()
        restored = [_norm(r.export_state()) for r in dst.routers]
        assert restored == [_norm(s) for s in states]

    def test_export_captures_faults_and_occupancy(self):
        """The snapshot must actually carry faults and buffered flits —
        an all-empty export would round-trip trivially."""
        sim = _run_faulted_sim()
        states = [r.export_state() for r in sim.routers]
        total_faults = sum(
            len(s["faults"]["history"]) for s in states
        )
        assert total_faults == 10
