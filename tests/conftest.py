"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.core.protected_router import ProtectedRouter, protected_router_factory
from repro.network.simulator import NoCSimulator, baseline_router_factory
from repro.router.flit import Packet, reset_packet_ids
from repro.router.router import BaselineRouter
from repro.router.routing import XYRouting
from repro.traffic.generator import NullTraffic, SyntheticTraffic


@pytest.fixture(autouse=True)
def _fresh_packet_ids():
    """Keep packet ids deterministic per test."""
    reset_packet_ids()
    yield


@pytest.fixture(autouse=True)
def _observability_disabled():
    """Restore the all-disabled observability default after every test.

    Tests that call :func:`repro.observability.configure` would otherwise
    leak tracing/metrics into later tests through the process-global
    config and its environment mirror.
    """
    import repro.observability as observability

    yield
    observability.reset()


def make_network_config(width=4, height=4, **router_kwargs) -> NetworkConfig:
    return NetworkConfig(
        width=width, height=height, router=RouterConfig(**router_kwargs)
    )


def make_sim(
    net: NetworkConfig,
    *,
    protected: bool = False,
    injection_rate: float = 0.05,
    warmup: int = 100,
    measure: int = 1500,
    drain: int = 3000,
    seed: int = 7,
    traffic=None,
    fault_schedule=None,
    watchdog: int = 2000,
    **sim_kwargs,
) -> NoCSimulator:
    sim_cfg = SimulationConfig(
        warmup_cycles=warmup,
        measure_cycles=measure,
        drain_cycles=drain,
        seed=seed,
        watchdog_cycles=watchdog,
    )
    if traffic is None:
        traffic = SyntheticTraffic(net, injection_rate=injection_rate, rng=seed)
    factory = protected_router_factory(net) if protected else baseline_router_factory(net)
    return NoCSimulator(
        net, sim_cfg, traffic, router_factory=factory,
        fault_schedule=fault_schedule, **sim_kwargs,
    )


class FakeScheduler:
    """Stand-in EventScheduler for single-router unit tests.

    Records flit deliveries and credit returns instead of routing them
    through a fabric.
    """

    def __init__(self) -> None:
        self.cycle = 0
        self.delivered: list[tuple[int, int, int, object]] = []
        self.credits: list[tuple[int, int, int]] = []

    def deliver_flit(self, src_node, out_port, out_vc, flit) -> None:
        self.delivered.append((src_node, out_port, out_vc, flit))

    def return_credit(self, node, in_port, wire_vc) -> None:
        self.credits.append((node, in_port, wire_vc))


class SingleRouterHarness:
    """Drives one router through its pipeline phases without a network.

    The router sits (conceptually) at the centre of a 3x3 mesh so every
    output direction is meaningful for XY routing.
    """

    def __init__(self, protected: bool = False, **router_kwargs) -> None:
        self.net = NetworkConfig(
            width=3, height=3, router=RouterConfig(**router_kwargs)
        )
        routing = XYRouting(self.net)
        cls = ProtectedRouter if protected else BaselineRouter
        self.router = cls(4, self.net.router, routing)  # node 4 = centre
        self.sched = FakeScheduler()
        self.cycle = 0
        #: flits waiting to be drip-fed into (port, wire_vc), in order
        self._pending: dict[tuple[int, int], list] = {}

    def inject(self, port: int, wire_vc: int, packet: Packet) -> None:
        """Queue a packet's flits for an input VC; fed as slots free up
        (like a real upstream router respecting credits)."""
        self._pending.setdefault((port, wire_vc), []).extend(packet.flits())
        self._feed()

    def _feed(self) -> None:
        for (port, wire_vc), queue in self._pending.items():
            vc = self.router.in_ports[port].by_wire(wire_vc)
            while queue and vc.free_slots > 0:
                flit = queue.pop(0)
                flit.injection_cycle = self.cycle
                self.router.receive_flit(port, wire_vc, flit, self.cycle)

    def step(self, n: int = 1) -> None:
        for _ in range(n):
            self.sched.cycle = self.cycle
            self.router.xb_phase(self.sched, self.cycle)
            self.router.sa_phase(self.cycle)
            self.router.va_phase(self.cycle)
            self.router.rc_phase(self.cycle)
            self._feed()
            self.cycle += 1

    def run_until_delivered(self, n_flits: int, max_cycles: int = 200) -> bool:
        """Step until ``n_flits`` flits left the router (or give up)."""
        for _ in range(max_cycles):
            if len(self.sched.delivered) >= n_flits:
                return True
            self.step()
        return len(self.sched.delivered) >= n_flits


@pytest.fixture
def harness():
    return SingleRouterHarness()


@pytest.fixture
def protected_harness():
    return SingleRouterHarness(protected=True)
