"""Tests for :mod:`repro.observability`: golden event schema, bounded
ring tracing, Chrome trace export, the metrics registry and its
deterministic cross-shard merge (``--jobs 1`` == ``--jobs 4``), the
profiler, the zero-cost-when-disabled guarantee, and the CLI flags."""

import json

import pytest
from conftest import make_network_config, make_sim

import repro.observability as observability
from repro.config import replace
from repro.core.protected_router import protected_router_factory
from repro.experiments.latency import QUICK_CONFIG
from repro.faults.injector import RandomFaultSchedule
from repro.network.simulator import NoCSimulator
from repro.observability import (
    EVENT_SCHEMA,
    EventTracer,
    MetricsRegistry,
    Observability,
    ObservabilityConfig,
    merge_exports,
    merge_snapshots,
)
from repro.observability.events import validate_event
from repro.observability.profiler import STAGE_NAMES, StageProfiler, merge_profiles
from repro.observability.report import render_json, render_text
from repro.observability.trace import chrome_trace
from repro.traffic.apps import app_profile, make_app_traffic


def _small_cfg():
    """A faulty-but-tolerable 4x4 configuration sized for unit tests."""
    return replace(
        QUICK_CONFIG,
        warmup_cycles=200,
        measure_cycles=600,
        drain_cycles=2000,
        num_faults=8,
    )


def _traced_run(**obs_kwargs):
    """One small faulty protected-router run with explicit observability."""
    obs = Observability(ObservabilityConfig(**obs_kwargs))
    cfg = _small_cfg()
    net = cfg.network()
    traffic = make_app_traffic(net, app_profile("ocean"), rng=cfg.seed)
    schedule = RandomFaultSchedule(
        net.router,
        net.num_nodes,
        mean_interval=10.0,
        num_faults=cfg.num_faults,
        rng=cfg.seed + 7919,
        first_fault_at=0,
        avoid_failure=True,
    )
    sim = NoCSimulator(
        net,
        cfg.simulation(),
        traffic,
        router_factory=protected_router_factory(net),
        fault_schedule=schedule,
        observability=obs,
    )
    return sim.run(), obs


# ----------------------------------------------------------------------
# golden event schema
# ----------------------------------------------------------------------
class TestEventSchema:
    #: the pinned schema — changing an event's payload is a contract
    #: change and must update this table *and* docs/observability.md
    GOLDEN = {
        "inject": ("dest", "flit", "packet", "src", "vc", "vnet"),
        "rc": ("in_port", "out_port", "packet"),
        "va_grant": (
            "borrowed", "in_port", "in_slot", "out_port", "out_vc", "packet",
        ),
        "va_retry": ("out_port", "out_vc", "packet"),
        "sa_grant": ("in_port", "out_port", "packet", "secondary"),
        "sa_bypass": ("packet", "port", "slot"),
        "xb": ("flit", "in_port", "out_port", "out_vc", "packet", "secondary"),
        "link": ("flit", "out_port", "out_vc", "packet"),
        "eject": ("dest", "flit", "packet", "src", "vc"),
    }

    def test_schema_is_pinned(self):
        assert EVENT_SCHEMA == self.GOLDEN

    def test_faulty_run_emits_only_conforming_events(self):
        result, obs = _traced_run(trace=True, trace_capacity=500_000)
        events = obs.tracer.events()
        assert events, "traced run emitted nothing"
        assert obs.tracer.dropped == 0  # capacity chosen to keep everything
        for ev in events:
            validate_event(ev)
        kinds = {kind for _, kind, _, _ in events}
        # a full lifecycle must appear in any healthy run
        assert {"inject", "rc", "va_grant", "sa_grant", "xb", "link",
                "eject"} <= kinds

    def test_validate_event_rejects_bad_payloads(self):
        with pytest.raises(ValueError):
            validate_event((0, "nonsense", 0, {}))
        with pytest.raises(ValueError):
            validate_event((0, "rc", 0, {"wrong": 1}))


class TestTracerRing:
    def test_ring_bound_and_dropped_accounting(self):
        tr = EventTracer(capacity=8)
        for c in range(20):
            tr.emit(c, "rc", 0, in_port=1, out_port=2, packet=c)
        assert len(tr) == 8
        assert tr.emitted == 20
        assert tr.dropped == 12
        # the ring keeps the *latest* events
        assert [e[0] for e in tr.events()] == list(range(12, 20))
        snap = tr.snapshot()
        assert snap["capacity"] == 8 and snap["dropped"] == 12

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)


class TestChromeExport:
    def test_trace_event_json_structure(self):
        result, obs = _traced_run(trace=True)
        doc = chrome_trace([("ocean@8faults", obs.tracer.events())])
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = doc["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert metadata and spans and len(metadata) + len(spans) == len(events)
        names = {e["args"]["name"] for e in metadata if e["name"] == "process_name"}
        assert any(n.startswith("ocean@8faults / router ") for n in names)
        for e in spans:
            assert e["ts"] >= 0 and e["dur"] == 1
            assert set(e) == {"name", "cat", "ph", "ts", "dur", "pid",
                              "tid", "args"}
        assert "xb_primary" in {e["name"] for e in spans}
        json.dumps(doc)  # must be serialisable as-is

    def test_points_get_disjoint_pid_ranges(self):
        ev = [(0, "rc", 3, {"in_port": 0, "out_port": 1, "packet": 9})]
        doc = chrome_trace([("a", ev), ("b", ev)])
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(pids) == 2


# ----------------------------------------------------------------------
# zero-cost-when-disabled
# ----------------------------------------------------------------------
class TestDisabledPath:
    def test_default_sim_has_no_observability(self):
        sim = make_sim(make_network_config(), warmup=50, measure=150,
                       drain=800)
        assert sim.obs is None
        assert all(r.tracer is None for r in sim.routers)
        assert all(nic.tracer is None for nic in sim.nics)
        assert sim.scheduler.tracer is None
        result = sim.run()
        assert result.observability is None

    def test_configure_enables_and_reset_disables(self):
        observability.configure(metrics=True)
        assert observability.maybe_create() is not None
        sim = make_sim(make_network_config())
        assert sim.obs is not None and sim.obs.metrics is not None
        assert sim.obs.tracer is None  # only metrics were requested
        observability.reset()
        assert observability.maybe_create() is None

    def test_env_mirror_round_trip(self):
        import os

        observability.configure(trace=True, profile=True, trace_capacity=123)
        assert os.environ[observability.ENV_VAR] == "trace,profile"
        assert os.environ[observability.ENV_CAPACITY_VAR] == "123"
        observability.reset()
        assert observability.ENV_VAR not in os.environ


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_and_labels(self):
        m = MetricsRegistry()
        m.inc("hits", router=3)
        m.inc("hits", 4, router=3)
        m.inc("hits", router=5)
        snap = m.snapshot()
        assert snap["counters"] == {"hits{router=3}": 5, "hits{router=5}": 1}

    def test_gauge_merge_keeps_max(self):
        a = MetricsRegistry()
        a.set_gauge("peak", 7.0)
        b = MetricsRegistry()
        b.set_gauge("peak", 11.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["gauges"]["peak"] == 11.0

    def test_histogram_merge_rejects_mismatched_edges(self):
        a = MetricsRegistry()
        a.observe("lat", 3, edges=(1, 2, 4))
        b = MetricsRegistry()
        b.observe("lat", 3, edges=(1, 2, 8))
        with pytest.raises(ValueError):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_is_order_independent(self):
        snaps = []
        for k in range(4):
            m = MetricsRegistry()
            m.inc("n", k + 1, shard=0)
            m.observe("h", k, edges=(0, 1, 2, 4))
            snaps.append(m.snapshot())
        fwd = merge_snapshots(snaps)
        rev = merge_snapshots(list(reversed(snaps)))
        assert fwd["counters"] == rev["counters"]
        assert fwd["histograms"]["h"]["counts"] == rev["histograms"]["h"]["counts"]

    def test_merge_skips_none(self):
        m = MetricsRegistry()
        m.inc("x")
        merged = merge_snapshots([None, m.snapshot(), None])
        assert merged["counters"] == {"x": 1}


class TestHarvestedMetrics:
    def test_run_metrics_cover_stages_and_fault_paths(self):
        result, obs = _traced_run(metrics=True)
        snap = result.observability["metrics"]
        counters = snap["counters"]
        base_names = {k.split("{")[0] for k in counters}
        assert {"router.flits_traversed", "router.va_grants",
                "router.sa_grants", "network.packets_ejected",
                "sim.cycles", "sim.faults_injected"} <= base_names
        # the 8 tolerated faults must have activated at least one
        # fault-handling path somewhere in the fabric
        fault_paths = {"router.sa_bypass_grants",
                       "router.secondary_path_grants",
                       "router.va_borrowed_grants",
                       "router.va_stage2_fault_retries",
                       "router.vc_transfers"}
        assert base_names & fault_paths
        # sampled occupancy + adopted latency histogram
        assert "network.latency_cycles" in snap["histograms"]
        assert any(
            k.startswith("router.occupancy_flits") for k in snap["histograms"]
        )


# ----------------------------------------------------------------------
# determinism across shardings (the headline guarantee)
# ----------------------------------------------------------------------
class TestShardingDeterminism:
    def test_metrics_bit_identical_jobs_1_vs_4(self):
        from repro.experiments import fault_sweep

        observability.configure(metrics=True)
        cfg = _small_cfg()
        serial = fault_sweep.run(fault_counts=(0, 8), cfg=cfg, jobs=1)
        parallel = fault_sweep.run(fault_counts=(0, 8), cfg=cfg, jobs=4)
        m1 = serial.extras["sweep"].observability["metrics"]
        m4 = parallel.extras["sweep"].observability["metrics"]
        assert m1["counters"], "sweep collected no metrics"
        assert json.dumps(m1, sort_keys=True) == json.dumps(m4, sort_keys=True)

    def test_merge_exports_keeps_point_labels(self):
        ex = {
            "metrics": MetricsRegistry().snapshot(),
            "trace": EventTracer(4).snapshot(),
            "profile": None,
        }
        merged = merge_exports([("p0", ex), ("p1", None)])
        assert [label for label, _ in merged["traces"]] == ["p0"]

    def test_merge_exports_all_empty_is_none(self):
        assert merge_exports([("a", None), ("b", None)]) is None


# ----------------------------------------------------------------------
# profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_stage_shares_sum_to_one(self):
        result, obs = _traced_run(profile=True)
        snap = result.observability["profile"]
        assert snap["samples"] > 0
        assert set(snap["stages"]) == set(STAGE_NAMES)
        total_share = sum(r["share"] for r in snap["stages"].values())
        assert total_share == pytest.approx(1.0)

    def test_merge_profiles(self):
        p = StageProfiler(sample_every=1)
        p.record("rc", 0.5)
        p.cycle_done()
        merged = merge_profiles([p.snapshot(), None, p.snapshot()])
        assert merged["samples"] == 2
        assert merged["stages"]["rc"]["time_s"] == pytest.approx(1.0)
        assert merge_profiles([None, None]) is None

    def test_sampling_stride(self):
        p = StageProfiler(sample_every=4)
        assert [c for c in range(8) if p.should_sample(c)] == [0, 4]


# ----------------------------------------------------------------------
# report rendering
# ----------------------------------------------------------------------
class TestReport:
    def test_text_report_sections(self):
        result, obs = _traced_run(trace=True, metrics=True, profile=True)
        text = render_text(result.observability)
        assert "observability summary" in text
        assert "pipeline:" in text
        assert "profile (" in text
        assert "trace:" in text
        assert "latency histogram:" in text

    def test_json_report_is_deterministic(self):
        result, _ = _traced_run(metrics=True)
        a = render_json(result.observability)
        b = render_json(result.observability)
        assert a == b
        assert json.loads(a)["metrics"]["counters"]

    def test_disabled_report(self):
        assert "disabled" in render_text(None)


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
class TestCLI:
    def test_metrics_and_trace_out(self, tmp_path, capsys):
        from repro.experiments.runner import main

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        rc = main([
            "fault_sweep", "--quick", "--jobs", "2",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
        ])
        assert rc == 0
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"]
        out = capsys.readouterr().out
        assert "observability summary" in out

    def test_trace_capacity_validation(self):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["table1", "--trace-capacity", "0"])
