"""Determinism and regression pinning.

Every stochastic element takes an explicit seed (DESIGN.md item 7), so
identical configurations must produce bit-identical results across runs
— and goldens pin a few end-to-end numbers so accidental behavioural
changes to the pipeline surface as test failures rather than silent
drift in the paper reproduction.
"""

import pytest

from repro.faults.injector import RandomFaultSchedule

from conftest import make_network_config, make_sim


def run_pair(**kwargs):
    net = make_network_config(4, 4)
    a = make_sim(net, **kwargs).run()
    b = make_sim(net, **kwargs).run()
    return a, b


class TestRunToRunDeterminism:
    def test_identical_latency_and_counts(self):
        a, b = run_pair(injection_rate=0.08, measure=1200, seed=33)
        assert a.stats.avg_network_latency == b.stats.avg_network_latency
        assert a.stats.packets_ejected == b.stats.packets_ejected
        assert a.cycles == b.cycles

    def test_identical_under_faults(self):
        net = make_network_config(4, 4)

        def build():
            inj = RandomFaultSchedule(
                net.router, net.num_nodes, mean_interval=50, num_faults=10,
                rng=5, first_fault_at=0, avoid_failure=True,
            )
            return make_sim(
                net, protected=True, injection_rate=0.08, measure=1200,
                seed=33, fault_schedule=inj,
            ).run()

        a, b = build(), build()
        assert a.stats.avg_network_latency == b.stats.avg_network_latency
        for f in (
            "va_borrowed_grants",
            "sa_bypass_grants",
            "secondary_path_grants",
            "vc_transfers",
        ):
            assert getattr(a.router_stats, f) == getattr(b.router_stats, f)

    def test_different_seeds_differ(self):
        a = make_sim(make_network_config(4, 4), injection_rate=0.08,
                     measure=1200, seed=1).run()
        b = make_sim(make_network_config(4, 4), injection_rate=0.08,
                     measure=1200, seed=2).run()
        assert a.stats.packets_created != b.stats.packets_created


class TestGoldenValues:
    """Pinned end-to-end numbers for fixed seeds.

    If a change legitimately alters pipeline behaviour (e.g. a different
    arbitration order), these goldens must be re-derived and the change
    justified against the paper-reproduction experiments.
    """

    def test_golden_baseline_latency(self):
        res = make_sim(
            make_network_config(4, 4), injection_rate=0.08, measure=1500,
            warmup=200, seed=42,
        ).run()
        assert res.stats.packets_ejected == res.stats.packets_created
        assert res.stats.avg_network_latency == pytest.approx(18.50, abs=0.01)

    def test_golden_analytic_stack(self):
        from repro.reliability import analyze_mttf, analyze_spf

        rep = analyze_mttf()
        assert rep.baseline_fit == pytest.approx(2818.5)
        assert rep.correction_fit == pytest.approx(646.0)
        assert analyze_spf(0.31).spf == pytest.approx(15 / 1.31)

    def test_golden_fault_mechanism_counters(self):
        from repro.faults.injector import ExplicitFaultSchedule
        from repro.faults.sites import FaultSite, FaultUnit

        net = make_network_config(4, 4)
        faults = ExplicitFaultSchedule([
            (0, FaultSite(5, FaultUnit.SA1_ARBITER, 4)),
            (0, FaultSite(5, FaultUnit.XB_MUX, 2)),
        ])
        res = make_sim(
            net, protected=True, injection_rate=0.08, measure=1500,
            warmup=200, seed=42, fault_schedule=faults,
        ).run()
        assert res.drained
        rs = res.router_stats
        # pinned: mechanisms fire deterministically for this seed
        assert rs.sa_bypass_grants > 50
        assert rs.secondary_path_grants > 100
        assert rs.vc_transfers > 0
