"""Tests for the area/power/critical-path synthesis proxy (Section VI)."""

import pytest

from repro.reliability.stages import RouterGeometry
from repro.synthesis.area import analyze_area, area_overhead, area_overhead_vs_vcs
from repro.synthesis.gates import Block, gate_delay
from repro.synthesis.netlists import (
    baseline_netlist,
    correction_netlist,
    detection_netlist,
    vc_state_field_bits,
)
from repro.synthesis.power import analyze_power
from repro.synthesis.timing import (
    analyze_critical_path,
    baseline_paths,
    protected_paths,
)


class TestBlocks:
    def test_area_proportional_to_transistors(self):
        a = Block("a", 100)
        b = Block("b", 200)
        assert b.area_um2 == pytest.approx(2 * a.area_um2)

    def test_sequential_blocks_burn_more_dynamic(self):
        comb = Block("c", 100, sequential=False, activity=0.2)
        seq = Block("s", 100, sequential=True, activity=0.2)
        assert seq.dynamic_power_nw > comb.dynamic_power_nw

    def test_rejects_bad_activity(self):
        with pytest.raises(ValueError):
            Block("x", 10, activity=1.5)

    def test_gate_delay_lookup(self):
        assert gate_delay("mux2") > 0
        with pytest.raises(ValueError):
            gate_delay("flux_capacitor")


class TestNetlists:
    def test_correction_netlist_matches_table2_census(self):
        corr = correction_netlist()
        # Table II transistors: RC 1170 + VA 3000 + SA 2330 + XB 4160
        assert corr.transistors == 1170 + 3000 + 2330 + 4160

    def test_baseline_includes_infrastructure(self):
        base = baseline_netlist()
        names = [b.name for b in base.blocks]
        assert any("state fields" in n for n in names)
        assert any("pipeline" in n for n in names)

    def test_state_field_bits_reasonable(self):
        bits = vc_state_field_bits(RouterGeometry())
        assert 10 <= bits <= 20

    def test_detection_sized_as_baseline_fraction(self):
        det = detection_netlist()
        base = baseline_netlist()
        assert det.area_um2 == pytest.approx(0.03 * base.area_um2, rel=1e-6)
        assert det.total_power_nw == pytest.approx(
            0.01 * base.total_power_nw, rel=0.05
        )


class TestAreaReproduction:
    def test_correction_overhead_near_paper(self):
        """Paper: 28 % (correction only)."""
        rep = analyze_area()
        assert rep.correction_overhead == pytest.approx(0.28, abs=0.03)

    def test_total_overhead_near_paper(self):
        """Paper: 31 % (with detection)."""
        rep = analyze_area()
        assert rep.total_overhead == pytest.approx(0.31, abs=0.03)

    def test_overhead_decreases_with_vcs(self):
        """More VCs -> bigger baseline -> relatively smaller correction."""
        ovh = area_overhead_vs_vcs([2, 4, 8])
        assert ovh[2] > ovh[4] > ovh[8]

    def test_two_vc_overhead_supports_spf7(self):
        """The Section VIII-E SPF=7 point needs ~40+ % overhead at 2 VCs."""
        assert area_overhead(RouterGeometry(num_vcs=2)) > 0.33

    def test_protected_area_is_sum(self):
        rep = analyze_area()
        assert rep.protected_um2 == pytest.approx(
            rep.baseline_um2 + rep.correction_um2
        )


class TestPowerReproduction:
    def test_correction_power_near_paper(self):
        """Paper: 29 % (correction only)."""
        rep = analyze_power()
        assert rep.correction_overhead == pytest.approx(0.29, abs=0.03)

    def test_total_power_near_paper(self):
        """Paper: 30 % (with detection)."""
        rep = analyze_power()
        assert rep.total_overhead == pytest.approx(0.30, abs=0.03)

    def test_power_positive_components(self):
        rep = analyze_power()
        assert rep.baseline_static_nw > 0
        assert rep.baseline_dynamic_nw > rep.baseline_static_nw  # active logic


class TestCriticalPath:
    def test_paper_overheads(self):
        """Paper: RC negligible, VA +20 %, SA +10 %, XB +25 %."""
        rep = analyze_critical_path()
        assert rep.overhead("RC") < 0.06
        assert rep.overhead("VA") == pytest.approx(0.20, abs=0.04)
        assert rep.overhead("SA") == pytest.approx(0.10, abs=0.04)
        assert rep.overhead("XB") == pytest.approx(0.25, abs=0.04)

    def test_protected_never_faster(self):
        rep = analyze_critical_path()
        for stage in ("RC", "VA", "SA", "XB"):
            assert rep.protected_ps[stage] >= rep.baseline_ps[stage]

    def test_va_is_the_critical_stage(self):
        """The VA stage (two arbiter levels, incl. a 20:1) dominates the
        router clock period — the standard result for VC routers."""
        rep = analyze_critical_path()
        assert rep.min_clock_period_baseline_ps == rep.baseline_ps["VA"]

    def test_paths_have_named_cells(self):
        for paths in (baseline_paths(), protected_paths()):
            for stage, p in paths.items():
                assert p.delay_ps == pytest.approx(
                    sum(d for _, d in p.cells)
                )
                assert len(p.cells) >= 3

    def test_protected_adds_cells(self):
        base = baseline_paths()
        prot = protected_paths()
        for stage in ("RC", "VA", "SA", "XB"):
            assert len(prot[stage].cells) > len(base[stage].cells)
