"""Tests for the fabric-level reliability extension."""

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.reliability.network_level import (
    _fabric_trial_chunk,
    _fabric_trial_chunk_reference,
    _links_symmetric,
    analyze_network_reliability,
    protection_gain,
    sample_router_lifetimes,
)
from repro.network.topology import Topology


class TestLifetimeSampling:
    def test_shapes(self):
        lt = sample_router_lifetimes(16, 10, rng=1)
        assert lt.shape == (10, 16)
        assert np.all(lt > 0)

    def test_protected_outlives_baseline_on_average(self):
        base = sample_router_lifetimes(64, 50, model="baseline", rng=2)
        prot = sample_router_lifetimes(64, 50, model="protected", rng=2)
        assert prot.mean() > base.mean() * 2

    def test_baseline_mean_matches_mttf(self):
        """Sampled baseline lifetimes average to ~1e9/FIT hours."""
        lt = sample_router_lifetimes(64, 400, model="baseline", rng=3)
        assert lt.mean() == pytest.approx(1e9 / 2818.5, rel=0.05)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            sample_router_lifetimes(4, 4, model="quantum")

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            sample_router_lifetimes(0, 10)


class TestNetworkAnalysis:
    def test_ordering_of_metrics(self):
        """First failure <= k-th failure <= disconnection (more events
        must accumulate for the later metrics)."""
        rep = analyze_network_reliability(
            NetworkConfig(width=4, height=4), trials=60, k=3, rng=5
        )
        assert rep.mean_first_failure <= rep.mean_kth_failure
        assert rep.mean_kth_failure <= rep.mean_disconnection

    def test_more_routers_fail_sooner(self):
        """Bigger fabric -> earlier first failure (min of more samples)."""
        small = analyze_network_reliability(
            NetworkConfig(width=2, height=2), trials=80, k=1, rng=7
        )
        big = analyze_network_reliability(
            NetworkConfig(width=6, height=6), trials=80, k=1, rng=7
        )
        assert big.mean_first_failure < small.mean_first_failure

    def test_k_validation(self):
        with pytest.raises(ValueError):
            analyze_network_reliability(
                NetworkConfig(width=2, height=2), k=5, trials=5
            )

    def test_rows(self):
        rep = analyze_network_reliability(
            NetworkConfig(width=3, height=3), trials=20, rng=1
        )
        assert len(rep.rows()) == 3


class TestProtectionGain:
    def test_protected_wins_everywhere(self):
        gains = protection_gain(NetworkConfig(width=3, height=3), trials=60)
        assert all(g > 1.5 for g in gains.values())


class TestVectorizedTrialKernel:
    """The union-find disconnection kernel must be bit-identical to the
    per-kill `networkx` oracle (same per-seed lifetime streams, same
    first/k-th/disconnection columns)."""

    def _assert_chunks_equal(self, net, model, trials=30, k=3, root=42):
        seeds = np.random.SeedSequence(root).spawn(trials)
        fast = _fabric_trial_chunk(net, model, seeds, k, None)
        ref = _fabric_trial_chunk_reference(net, model, seeds, k, None)
        assert np.array_equal(fast, ref)

    def test_mesh_baseline(self):
        self._assert_chunks_equal(NetworkConfig(width=4, height=4), "baseline")

    def test_mesh_protected(self):
        self._assert_chunks_equal(NetworkConfig(width=4, height=4), "protected")

    def test_torus(self):
        net = NetworkConfig(width=4, height=4, topology="torus")
        self._assert_chunks_equal(net, "protected")

    def test_rectangular_mesh(self):
        self._assert_chunks_equal(
            NetworkConfig(width=5, height=3), "baseline", trials=20
        )

    def test_mesh_links_are_symmetric(self):
        for kind in ("mesh", "torus"):
            topo = Topology(NetworkConfig(width=4, height=3, topology=kind))
            assert _links_symmetric(topo)
