"""Additional property-based tests focused on the FT mechanisms.

Hypothesis drives random swap sequences, heal/inject interleavings, and
fault/traffic mixes through the mechanisms that DESIGN.md identifies as
the model's riskiest parts: the wire/physical VC indirection, plan-cache
invalidation, and the protected router's inertness when healed.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig, PORT_EAST, PORT_WEST, RouterConfig
from repro.core.protected_router import ProtectedRouter
from repro.faults.sites import FaultSite, FaultUnit, enumerate_sites
from repro.router.flit import Packet
from repro.router.input_port import InputPort
from repro.router.routing import XYRouting

from conftest import SingleRouterHarness

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestIndirectionProperties:
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                    max_size=30))
    @settings(**SETTINGS)
    def test_arbitrary_swap_sequences_keep_permutation(self, swaps):
        ip = InputPort(port=1, num_vcs=4, buffer_depth=4)
        for a, b in swaps:
            ip.swap_slots(a, b)
        ip.check_invariants()

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                    max_size=20),
           st.integers(0, 3))
    @settings(**SETTINGS)
    def test_wire_addressing_survives_any_swaps(self, swaps, wire):
        """Flits sent to a wire id always land in the same VC object no
        matter how slots were shuffled in between."""
        ip = InputPort(port=1, num_vcs=4, buffer_depth=8)
        target = ip.by_wire(wire)
        flits = list(Packet(src=0, dest=1, size_flits=3).flits())
        ip.by_wire(wire).enqueue(flits[0])
        for a, b in swaps:
            ip.swap_slots(a, b)
        ip.by_wire(wire).enqueue(flits[1])
        ip.by_wire(wire).enqueue(flits[2])
        assert ip.by_wire(wire) is target
        assert target.occupancy == 3


class TestHealInjectProperties:
    @given(st.lists(st.integers(0, 74), unique=True, min_size=1, max_size=12),
           st.data())
    @settings(**SETTINGS)
    def test_inject_then_heal_restores_pristine_plans(self, idxs, data):
        """Healing every injected fault restores every crossbar plan to
        the fault-free plan (cache invalidation correctness)."""
        net = NetworkConfig(width=3, height=3)
        sites = list(enumerate_sites(net.router))
        router = ProtectedRouter(4, net.router, XYRouting(net))
        pristine = [router.crossbar.plan_path(k) for k in range(5)]
        chosen = [sites[i] for i in idxs]
        for s in chosen:
            router.inject_fault(s)
        order = data.draw(st.permutations(range(len(chosen))))
        for i in order:
            router.heal_fault(chosen[i])
        assert not router.faults.any_faults
        assert [router.crossbar.plan_path(k) for k in range(5)] == pristine
        assert not router.failed

    @given(st.lists(st.integers(0, 74), unique=True, max_size=10))
    @settings(**SETTINGS)
    def test_double_injection_is_idempotent(self, idxs):
        net = NetworkConfig(width=3, height=3)
        sites = list(enumerate_sites(net.router))
        router = ProtectedRouter(4, net.router, XYRouting(net))
        for i in idxs:
            assert router.inject_fault(sites[i])
            assert not router.inject_fault(sites[i])
        assert router.faults.num_faults == len(idxs)


class TestMechanismInertness:
    @given(st.integers(1, 3), st.integers(1, 8))
    @settings(**SETTINGS)
    def test_healed_router_behaves_like_pristine(self, n_faults, n_packets):
        """Inject faults, heal them all *before* traffic: the delivery
        trace must equal a never-faulted router's."""
        def drive(with_fault_cycle: bool):
            from repro.router.flit import reset_packet_ids

            reset_packet_ids()
            h = SingleRouterHarness(protected=True)
            if with_fault_cycle:
                sites = [
                    FaultSite(4, FaultUnit.SA1_ARBITER, PORT_WEST),
                    FaultSite(4, FaultUnit.XB_MUX, PORT_EAST),
                    FaultSite(4, FaultUnit.VA1_ARBITER_SET, PORT_WEST, 0),
                ][:n_faults]
                for s in sites:
                    h.router.inject_fault(s)
                for s in sites:
                    h.router.heal_fault(s)
            for i in range(n_packets):
                h.inject(PORT_WEST, i % 4, Packet(src=3, dest=5, size_flits=2))
            h.step(60)
            return [
                (p, vc, f.packet_id, f.flit_index)
                for (_, p, vc, f) in h.sched.delivered
            ]

        assert drive(True) == drive(False)

    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_fault_free_mechanism_counters_stay_zero(self, seed):
        h = SingleRouterHarness(protected=True)
        import numpy as np

        rng = np.random.default_rng(seed)
        for _ in range(6):
            port = int(rng.integers(1, 5))
            vc = int(rng.integers(4))
            candidates = [d for d in range(9) if d != 4]
            src = int(rng.choice(candidates))
            dest = int(rng.choice([d for d in candidates if d != src]))
            h.inject(port, vc, Packet(
                src=src, dest=dest, size_flits=int(rng.integers(1, 4)),
            ))
        h.step(80)
        s = h.router.stats
        assert s.sa_bypass_grants == 0
        assert s.vc_transfers == 0
        assert s.va_borrowed_grants == 0
        assert s.secondary_path_grants == 0
        assert s.rc_duplicate_computations == 0
