"""Edge-case tests for the simulator: watchdog, drain budget, hooks,
event-scheduler internals, and per-vnet statistics."""

import pytest

from repro.config import NetworkConfig, PORT_WEST, RouterConfig, SimulationConfig
from repro.faults.injector import ExplicitFaultSchedule
from repro.faults.sites import FaultSite, FaultUnit
from repro.network.simulator import NoCSimulator
from repro.router.flit import Packet
from repro.traffic.generator import COHERENCE_MIX, SyntheticTraffic, TraceTraffic

from conftest import make_network_config, make_sim


class TestWatchdog:
    def test_watchdog_trips_on_wedged_baseline(self):
        net = make_network_config(3, 3)
        inj = ExplicitFaultSchedule(
            [(10, FaultSite(4, FaultUnit.SA1_ARBITER, PORT_WEST))]
        )
        sim = make_sim(
            net, protected=False, injection_rate=0.15, measure=3000,
            drain=500, watchdog=400, fault_schedule=inj,
        )
        res = sim.run()
        assert res.blocked
        # the run never exceeds its cycle budget
        assert res.cycles <= 100 + 3000 + 500 + 1

    def test_watchdog_does_not_trip_on_healthy_network(self):
        net = make_network_config(3, 3)
        sim = make_sim(net, injection_rate=0.08, measure=1500, watchdog=300)
        res = sim.run()
        assert not res.blocked

    def test_hop_progress_counts_even_without_ejections(self):
        """Regression: a live packet forwarding hop-by-hop must not be
        flagged as blocked just because no flit ejects within the
        watchdog window.  A corner-to-corner packet on a 4x4 mesh takes
        ~35 cycles before its first ejection; with a 10-cycle watchdog
        the link deliveries along the way are the only progress signal."""
        net = make_network_config(4, 4)
        pkt = Packet(src=0, dest=15, size_flits=1, creation_cycle=0)
        sim = make_sim(
            net, traffic=TraceTraffic([pkt]), warmup=0, measure=5,
            drain=200, watchdog=10,
        )
        res = sim.run()
        assert not res.blocked
        assert res.drained
        assert res.stats.packets_ejected == 1


class TestDrain:
    def test_drain_budget_exhaustion_reported(self):
        """A wedged packet with a drain budget too small to notice via
        watchdog: drained=False, blocked may also flag."""
        net = make_network_config(3, 3)
        inj = ExplicitFaultSchedule([
            (0, FaultSite(4, FaultUnit.RC_PRIMARY, PORT_WEST)),
        ])
        pkt = Packet(src=3, dest=5, size_flits=1, creation_cycle=10)
        sim = make_sim(
            net, protected=False, traffic=TraceTraffic([pkt]), warmup=0,
            measure=100, drain=50, watchdog=10_000,
            fault_schedule=inj,
        )
        res = sim.run()
        assert not res.drained

    def test_zero_drain_budget(self):
        net = make_network_config(3, 3)
        pkt = Packet(src=0, dest=1, size_flits=1, creation_cycle=5)
        sim = make_sim(net, traffic=TraceTraffic([pkt]), warmup=0,
                       measure=100, drain=0)
        res = sim.run()
        # measurement window was long enough: everything already done
        assert res.drained

    def test_drain_deadline_checks_nic_queues(self):
        """Regression: at the drain deadline a run must not report
        drained=True while packets still wait in NIC source queues, even
        with zero flits in flight.  All wire VCs of NIC 0 are pinned to
        a phantom packet so its queued packet can never start injecting."""
        net = make_network_config(3, 3)
        pkt = Packet(src=0, dest=1, size_flits=1, creation_cycle=0)
        sim = make_sim(net, traffic=TraceTraffic([pkt]), warmup=0,
                       measure=5, drain=30)
        nic = sim.nics[0]
        nic.allocated = [-1] * len(nic.allocated)
        res = sim.run()
        assert nic.queued_packets == 1
        assert not res.drained
        assert not res.blocked  # nothing in flight: not a wedge either


class TestHooks:
    def test_on_eject_sees_every_flit(self):
        net = make_network_config(3, 3)
        seen = []
        sim = make_sim(
            net, injection_rate=0.08, measure=600,
            on_eject=lambda flit, cycle: seen.append(flit.packet_id),
        )
        res = sim.run()
        assert len(seen) == res.stats.flits_ejected


class TestEventScheduler:
    def test_pending_flits_counts_only_flit_events(self):
        net = make_network_config(3, 3)
        sim = make_sim(net, injection_rate=0.1, measure=300)
        sim._step(0, inject_traffic=True)
        for c in range(1, 8):
            sim._step(c, inject_traffic=True)
            assert sim.scheduler.pending_flits() <= sim.scheduler.pending_events
        sim.check_invariants()

    def test_unconnected_edge_send_asserts(self):
        """A routing bug that sends a flit off the mesh edge is caught."""
        net = make_network_config(3, 3)
        sim = make_sim(net, injection_rate=0.0, measure=10)
        sim.scheduler.cycle = 0
        from repro.config import PORT_NORTH
        from repro.router.flit import Flit, FlitType

        with pytest.raises(AssertionError, match="mesh edge"):
            sim.scheduler.deliver_flit(
                0, PORT_NORTH, 0, Flit(FlitType.HEAD_TAIL, 0, 0, 1)
            )


class TestVnetBreakdown:
    def test_breakdown_separates_classes(self):
        net = NetworkConfig(
            width=4, height=4, router=RouterConfig(num_vcs=4, num_vnets=2)
        )
        traffic = SyntheticTraffic(
            net, injection_rate=0.1, mix=COHERENCE_MIX, rng=3
        )
        sim = make_sim(net, traffic=traffic, measure=1500)
        res = sim.run()
        bd = res.stats.vnet_breakdown()
        assert set(bd) == {0, 1}
        assert bd[0]["packets"] + bd[1]["packets"] == res.stats.measured_packets
        # 5-flit replies (vnet 1) serialise: higher latency than requests
        assert bd[1]["avg_network_latency"] > bd[0]["avg_network_latency"]

    def test_empty_breakdown(self):
        from repro.network.stats import NetworkStats

        assert NetworkStats().vnet_breakdown() == {}
