"""Tests for fault sites, router fault state, and injection schedules."""

import numpy as np
import pytest

from repro.config import RouterConfig
from repro.faults.injector import (
    NullFaultSchedule,
    RandomFaultSchedule,
    ExplicitFaultSchedule,
)
from repro.faults.sites import (
    FaultSite,
    FaultUnit,
    RouterFaultState,
    enumerate_sites,
)


class TestFaultSite:
    def test_per_vc_units_require_vc(self):
        with pytest.raises(ValueError):
            FaultSite(0, FaultUnit.VA1_ARBITER_SET, 1)

    def test_per_port_units_reject_vc(self):
        with pytest.raises(ValueError):
            FaultSite(0, FaultUnit.SA1_ARBITER, 1, 2)

    def test_describe(self):
        s = FaultSite(12, FaultUnit.VA1_ARBITER_SET, 3, 1)
        assert "router 12" in s.describe()
        assert "p3v1" in s.describe()

    def test_stage_mapping(self):
        assert FaultUnit.RC_PRIMARY.stage == "RC"
        assert FaultUnit.VA2_ARBITER.stage == "VA"
        assert FaultUnit.SA1_BYPASS.stage == "SA"
        assert FaultUnit.XB_SECONDARY.stage == "XB"

    def test_correction_circuitry_flags(self):
        assert FaultUnit.RC_DUPLICATE.is_correction_circuitry
        assert FaultUnit.SA1_BYPASS.is_correction_circuitry
        assert FaultUnit.XB_SECONDARY.is_correction_circuitry
        assert not FaultUnit.RC_PRIMARY.is_correction_circuitry
        assert not FaultUnit.VA1_ARBITER_SET.is_correction_circuitry


class TestEnumerateSites:
    def test_protected_site_count_5port_4vc(self):
        """5+5 RC, 20 VA1, 20 VA2, 5+5 SA1, 5 SA2, 5+5 XB = 75 sites."""
        sites = list(enumerate_sites(RouterConfig(), protected=True))
        assert len(sites) == 75

    def test_baseline_site_count(self):
        """Baseline drops the 15 correction-circuitry sites."""
        sites = list(enumerate_sites(RouterConfig(), protected=False))
        assert len(sites) == 60
        assert not any(s.unit.is_correction_circuitry for s in sites)

    def test_exclude_va2(self):
        sites = list(enumerate_sites(RouterConfig(), include_va2=False))
        assert len(sites) == 55
        assert not any(s.unit == FaultUnit.VA2_ARBITER for s in sites)

    def test_sites_are_unique(self):
        sites = list(enumerate_sites(RouterConfig()))
        assert len(set(sites)) == len(sites)

    def test_router_id_propagates(self):
        sites = list(enumerate_sites(RouterConfig(), router=7))
        assert all(s.router == 7 for s in sites)


class TestRouterFaultState:
    def test_inject_and_lookup(self):
        fs = RouterFaultState(RouterConfig())
        assert fs.inject(FaultSite(0, FaultUnit.SA1_ARBITER, 2))
        assert 2 in fs.sa1
        assert fs.num_faults == 1

    def test_idempotent_injection(self):
        fs = RouterFaultState(RouterConfig())
        site = FaultSite(0, FaultUnit.XB_MUX, 1)
        assert fs.inject(site)
        assert not fs.inject(site)
        assert fs.num_faults == 1

    def test_heal(self):
        fs = RouterFaultState(RouterConfig())
        site = FaultSite(0, FaultUnit.VA1_ARBITER_SET, 1, 2)
        fs.inject(site)
        assert fs.heal(site)
        assert (1, 2) not in fs.va1
        assert fs.num_faults == 0
        assert not fs.heal(site)

    def test_clear(self):
        fs = RouterFaultState(RouterConfig())
        for s in list(enumerate_sites(RouterConfig()))[:10]:
            fs.inject(s)
        fs.clear()
        assert fs.num_faults == 0
        assert not fs.any_faults

    def test_out_of_range_port_rejected(self):
        fs = RouterFaultState(RouterConfig())
        with pytest.raises(ValueError):
            fs.inject(FaultSite(0, FaultUnit.SA1_ARBITER, 5))

    def test_out_of_range_vc_rejected(self):
        fs = RouterFaultState(RouterConfig())
        with pytest.raises(ValueError):
            fs.inject(FaultSite(0, FaultUnit.VA1_ARBITER_SET, 0, 4))

    def test_every_unit_routable(self):
        fs = RouterFaultState(RouterConfig())
        for s in enumerate_sites(RouterConfig()):
            assert fs.inject(s)
        assert fs.num_faults == 75


class TestScheduledInjector:
    def test_due_in_order(self):
        s1 = FaultSite(0, FaultUnit.SA1_ARBITER, 0)
        s2 = FaultSite(0, FaultUnit.SA1_ARBITER, 1)
        inj = ExplicitFaultSchedule([(10, s1), (5, s2)])
        assert list(inj.due(4)) == []
        assert list(inj.due(5)) == [s2]
        assert list(inj.due(100)) == [s1]
        assert inj.remaining == 0

    def test_multiple_same_cycle(self):
        s1 = FaultSite(0, FaultUnit.SA1_ARBITER, 0)
        s2 = FaultSite(1, FaultUnit.SA1_ARBITER, 0)
        inj = ExplicitFaultSchedule([(5, s1), (5, s2)])
        assert len(list(inj.due(5))) == 2


class TestRandomInjector:
    def test_deterministic_with_seed(self):
        cfg = RouterConfig()
        a = RandomFaultSchedule(cfg, 16, mean_interval=100, num_faults=5, rng=3)
        b = RandomFaultSchedule(cfg, 16, mean_interval=100, num_faults=5, rng=3)
        assert a.planned == b.planned

    def test_sites_are_distinct(self):
        inj = RandomFaultSchedule(
            RouterConfig(), 4, mean_interval=50, num_faults=20, rng=1
        )
        sites = [s for _, s in inj.planned]
        assert len(set(sites)) == 20

    def test_mean_interval_approximately_respected(self):
        inj = RandomFaultSchedule(
            RouterConfig(), 64, mean_interval=1000, num_faults=200, rng=2
        )
        cycles = [c for c, _ in inj.planned]
        gaps = np.diff([0] + cycles)
        assert 700 < gaps.mean() < 1300

    def test_first_fault_at(self):
        inj = RandomFaultSchedule(
            RouterConfig(), 4, mean_interval=100, num_faults=3, rng=1,
            first_fault_at=42,
        )
        assert inj.planned[0][0] == 42

    def test_too_many_faults_rejected(self):
        with pytest.raises(ValueError):
            RandomFaultSchedule(
                RouterConfig(), 1, mean_interval=10, num_faults=100, rng=0
            )

    def test_unprotected_pool_excludes_correction_sites(self):
        inj = RandomFaultSchedule(
            RouterConfig(), 2, mean_interval=10, num_faults=120, rng=0,
            protected=False,
        )
        assert not any(s.unit.is_correction_circuitry for _, s in inj.planned)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            RandomFaultSchedule(RouterConfig(), 4, mean_interval=0, num_faults=1)
        with pytest.raises(ValueError):
            RandomFaultSchedule(RouterConfig(), 4, mean_interval=10, num_faults=-1)

    def test_avoid_failure_keeps_routers_alive(self):
        from repro.core.failure import protected_router_failed
        from repro.faults.sites import RouterFaultState

        cfg = RouterConfig()
        inj = RandomFaultSchedule(
            cfg, 4, mean_interval=10, num_faults=40, rng=11,
            avoid_failure=True,
        )
        states = [RouterFaultState(cfg) for _ in range(4)]
        for _, site in inj.planned:
            states[site.router].inject(site)
            assert not protected_router_failed(states[site.router], exact=True)

    def test_avoid_failure_can_exhaust(self):
        """Requesting more tolerable faults than exist raises."""
        with pytest.raises(ValueError, match="without failing"):
            RandomFaultSchedule(
                RouterConfig(), 1, mean_interval=10, num_faults=70, rng=0,
                avoid_failure=True,
            )


class TestNullInjector:
    def test_never_due(self):
        inj = NullFaultSchedule()
        assert list(inj.due(0)) == []
        assert list(inj.due(10**9)) == []
