"""Golden determinism: optimized active-set stepper vs the reference scan.

The performance rework (active-set scheduling, calendar event queue,
route-table and path-plan caching) is required to be *bit-identical* to
the seed implementation — not statistically close, identical.  The seed's
full-scan cycle loop is kept as ``NoCSimulator._step_reference``; these
tests run the same configurations through both steppers and assert every
observable output matches exactly:

* cycle count, blocked/drained flags, faults injected,
* the full :class:`NetworkStats` summary (latency averages, percentiles,
  histogram, per-vnet breakdown),
* the aggregated per-router :class:`RouterStats` counters,
* the complete observability export — metrics registry snapshot and the
  byte-for-byte trace event stream.

If a change legitimately alters pipeline behaviour, it must update both
steppers in lockstep (and re-derive the goldens in test_determinism.py).
"""

import dataclasses

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.core.protected_router import protected_router_factory
from repro.faults.injector import RandomFaultInjector
from repro.network.simulator import NoCSimulator, baseline_router_factory
from repro.observability import Observability, ObservabilityConfig
from repro.router.flit import reset_packet_ids
from repro.traffic.generator import COHERENCE_MIX, SyntheticTraffic


def _run_once(protected: bool, with_faults: bool, reference: bool):
    reset_packet_ids()
    net = NetworkConfig(
        width=8, height=8, router=RouterConfig(num_vcs=4, num_vnets=2)
    )
    fault_schedule = None
    if with_faults:
        fault_schedule = RandomFaultInjector(
            net.router,
            net.num_nodes,
            mean_interval=40,
            num_faults=12,
            rng=11,
            first_fault_at=50,
            avoid_failure=True,
        )
    obs = Observability(ObservabilityConfig(trace=True, metrics=True))
    sim = NoCSimulator(
        net,
        SimulationConfig(
            warmup_cycles=50,
            measure_cycles=400,
            drain_cycles=2000,
            seed=9,
            watchdog_cycles=4000,
        ),
        SyntheticTraffic(net, injection_rate=0.08, mix=COHERENCE_MIX, rng=9),
        router_factory=(
            protected_router_factory(net)
            if protected
            else baseline_router_factory(net)
        ),
        fault_schedule=fault_schedule,
        observability=obs,
        use_reference_stepper=reference,
    )
    result = sim.run()
    return sim, result


def _assert_bit_identical(protected: bool, with_faults: bool) -> None:
    sim_fast, fast = _run_once(protected, with_faults, reference=False)
    sim_ref, ref = _run_once(protected, with_faults, reference=True)

    assert fast.cycles == ref.cycles
    assert fast.blocked == ref.blocked
    assert fast.drained == ref.drained
    assert fast.faults_injected == ref.faults_injected

    assert fast.stats.summary() == ref.stats.summary()
    assert dataclasses.asdict(fast.router_stats) == dataclasses.asdict(
        ref.router_stats
    )

    # exports are plain dicts: metrics snapshot and the ordered trace
    # event stream must match entry for entry
    assert fast.observability == ref.observability

    # both steppers must leave the fabric (and the active sets) consistent
    sim_fast.check_invariants()
    sim_ref.check_invariants()


class TestGoldenDeterminism:
    def test_8x8_baseline_bit_identical(self):
        _assert_bit_identical(protected=False, with_faults=False)

    def test_8x8_protected_with_faults_bit_identical(self):
        _assert_bit_identical(protected=True, with_faults=True)

    def test_adaptive_routing_bit_identical(self):
        """West-first adaptive routing has no route table — the per-flit
        candidate selection (credit sums + plan lookups) must still be
        identical between the steppers."""
        reset_packet_ids()
        net = NetworkConfig(width=4, height=4)

        def run(reference: bool):
            reset_packet_ids()
            sim = NoCSimulator(
                net,
                SimulationConfig(
                    warmup_cycles=50,
                    measure_cycles=500,
                    drain_cycles=2000,
                    seed=4,
                    watchdog_cycles=4000,
                ),
                SyntheticTraffic(net, injection_rate=0.08, rng=4),
                router_factory=baseline_router_factory(net),
                routing_kind="west_first",
                use_reference_stepper=reference,
            )
            return sim.run()

        fast, ref = run(False), run(True)
        assert fast.cycles == ref.cycles
        assert fast.stats.summary() == ref.stats.summary()
        assert dataclasses.asdict(fast.router_stats) == dataclasses.asdict(
            ref.router_stats
        )
