"""Golden determinism: optimized active-set stepper vs the reference scan.

The performance rework (active-set scheduling, calendar event queue,
route-table and path-plan caching) is required to be *bit-identical* to
the seed implementation — not statistically close, identical.  The seed's
full-scan cycle loop is kept as ``NoCSimulator._step_reference``; these
tests run the same configurations through both steppers and assert every
observable output matches exactly:

* cycle count, blocked/drained flags, faults injected,
* the full :class:`NetworkStats` summary (latency averages, percentiles,
  histogram, per-vnet breakdown),
* the aggregated per-router :class:`RouterStats` counters,
* the complete observability export — metrics registry snapshot and the
  byte-for-byte trace event stream.

If a change legitimately alters pipeline behaviour, it must update both
steppers in lockstep (and re-derive the goldens in test_determinism.py).
"""

import dataclasses

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.core.protected_router import protected_router_factory
from repro.faults.injector import RandomFaultSchedule
from repro.network import warm
from repro.network.simulator import NoCSimulator, baseline_router_factory
from repro.observability import Observability, ObservabilityConfig
from repro.router.flit import reset_packet_ids
from repro.traffic.generator import COHERENCE_MIX, SyntheticTraffic


#: the three loop flavours under test: the event-driven engine (skip-ahead
#: on), the per-cycle active-set stepper, and the full-scan reference
ENGINES = ("event", "stepper", "reference")


def _run_once(
    protected: bool,
    with_faults: bool,
    engine: str = "reference",
    profile: bool = False,
):
    reset_packet_ids()
    net = NetworkConfig(
        width=8, height=8, router=RouterConfig(num_vcs=4, num_vnets=2)
    )
    fault_schedule = None
    if with_faults:
        fault_schedule = RandomFaultSchedule(
            net.router,
            net.num_nodes,
            mean_interval=40,
            num_faults=12,
            rng=11,
            first_fault_at=50,
            avoid_failure=True,
        )
    obs = Observability(
        ObservabilityConfig(trace=True, metrics=True, profile=profile)
    )
    sim = NoCSimulator(
        net,
        SimulationConfig(
            warmup_cycles=50,
            measure_cycles=400,
            drain_cycles=2000,
            seed=9,
            watchdog_cycles=4000,
        ),
        SyntheticTraffic(net, injection_rate=0.08, mix=COHERENCE_MIX, rng=9),
        router_factory=(
            protected_router_factory(net)
            if protected
            else baseline_router_factory(net)
        ),
        fault_schedule=fault_schedule,
        observability=obs,
        use_reference_stepper=(engine == "reference"),
        event_driven=(engine == "event"),
    )
    result = sim.run()
    return sim, result


def _semantic_export(result):
    """Observability export minus the wall-clock profile section."""
    if result.observability is None:
        return None
    return {
        k: v for k, v in result.observability.items() if k != "profile"
    }


def _assert_results_match(fast, ref) -> None:
    assert fast.cycles == ref.cycles
    assert fast.blocked == ref.blocked
    assert fast.drained == ref.drained
    assert fast.faults_injected == ref.faults_injected

    assert fast.stats.summary() == ref.stats.summary()
    assert dataclasses.asdict(fast.router_stats) == dataclasses.asdict(
        ref.router_stats
    )

    # exports are plain dicts: metrics snapshot and the ordered trace
    # event stream must match entry for entry
    assert fast.observability == ref.observability


def _assert_bit_identical(protected: bool, with_faults: bool) -> None:
    sim_ref, ref = _run_once(protected, with_faults, "reference")
    sim_ref.check_invariants()
    for engine in ("event", "stepper"):
        sim_fast, fast = _run_once(protected, with_faults, engine)
        _assert_results_match(fast, ref)
        # every loop flavour must leave the fabric (active sets, event
        # counters) consistent
        sim_fast.check_invariants()


class TestGoldenDeterminism:
    def test_8x8_baseline_bit_identical(self):
        _assert_bit_identical(protected=False, with_faults=False)

    def test_8x8_protected_with_faults_bit_identical(self):
        _assert_bit_identical(protected=True, with_faults=True)

    def test_adaptive_routing_bit_identical(self):
        """West-first adaptive routing has no route table — the per-flit
        candidate selection (credit sums + plan lookups) must still be
        identical across all three loop flavours."""
        reset_packet_ids()
        net = NetworkConfig(width=4, height=4)

        def run(engine: str):
            reset_packet_ids()
            sim = NoCSimulator(
                net,
                SimulationConfig(
                    warmup_cycles=50,
                    measure_cycles=500,
                    drain_cycles=2000,
                    seed=4,
                    watchdog_cycles=4000,
                ),
                SyntheticTraffic(net, injection_rate=0.08, rng=4),
                router_factory=baseline_router_factory(net),
                routing_kind="west_first",
                use_reference_stepper=(engine == "reference"),
                event_driven=(engine == "event"),
            )
            return sim.run()

        ref = run("reference")
        for engine in ("event", "stepper"):
            fast = run(engine)
            assert fast.cycles == ref.cycles
            assert fast.stats.summary() == ref.stats.summary()
            assert dataclasses.asdict(
                fast.router_stats
            ) == dataclasses.asdict(ref.router_stats)


class TestBatchedLaneGolden:
    """Per-lane golden: the batched lane engine on the same 8x8
    fig7-style scenario the engine matrix above pins, against the event
    engine lane by lane.

    The batched engine declines observability (``supports()`` reports
    why), so unlike ``_run_once`` these references run observability-free
    — the comparison covers every output the engines share: cycle
    counts, drain status, the full stats summary, and the aggregated
    router counters.
    """

    def _scenario(self):
        net = NetworkConfig(
            width=8, height=8, router=RouterConfig(num_vcs=4, num_vnets=2)
        )
        sim_cfg = SimulationConfig(
            warmup_cycles=50,
            measure_cycles=400,
            drain_cycles=2000,
            seed=9,
            watchdog_cycles=4000,
        )
        return net, sim_cfg

    def _traffic(self, net):
        return SyntheticTraffic(
            net, injection_rate=0.08, mix=COHERENCE_MIX, rng=9
        )

    def _schedule(self, net):
        return RandomFaultSchedule(
            net.router,
            net.num_nodes,
            mean_interval=40,
            num_faults=12,
            rng=11,
            first_fault_at=50,
            avoid_failure=True,
        )

    def _assert_lane_matches(self, batched, ref):
        assert batched.cycles == ref.cycles
        assert batched.blocked == ref.blocked
        assert batched.drained == ref.drained
        assert batched.faults_injected == ref.faults_injected
        assert batched.stats.summary() == ref.stats.summary()
        assert dataclasses.asdict(batched.router_stats) == dataclasses.asdict(
            ref.router_stats
        )

    def test_batched_lanes_bit_identical(self):
        from repro.network.batched import LaneSpec, run_lanes

        net, sim_cfg = self._scenario()

        # protected group: a fault-free lane + a tolerated-fault lane
        reset_packet_ids()
        protected = run_lanes(
            net,
            sim_cfg,
            [
                LaneSpec(self._traffic(net)),
                LaneSpec(self._traffic(net), self._schedule(net)),
            ],
            router_factory=protected_router_factory(net),
        )
        # baseline group: one fault-free lane
        reset_packet_ids()
        baseline = run_lanes(net, sim_cfg, [LaneSpec(self._traffic(net))])

        flavours = [
            (protected[0], protected_router_factory(net), None),
            (protected[1], protected_router_factory(net), self._schedule),
            (baseline[0], baseline_router_factory(net), None),
        ]
        for lane, (batched, factory, schedule) in enumerate(flavours):
            reset_packet_ids()
            ref = NoCSimulator(
                net,
                sim_cfg,
                self._traffic(net),
                router_factory=factory,
                fault_schedule=schedule(net) if schedule else None,
            ).run()
            self._assert_lane_matches(batched, ref)

    def test_multicycle_latency_lanes_bit_identical(self):
        """Same golden with 2-cycle links and 3-cycle credit return.

        Non-unit latencies route flits and credits through the engine's
        calendar rings; the delayed arrivals must land on exactly the
        cycle the serial simulator delivers them."""
        from repro.network.batched import LaneSpec, run_lanes

        net, sim_cfg = self._scenario()
        net = dataclasses.replace(net, link_latency=2, credit_latency=3)

        reset_packet_ids()
        batched = run_lanes(
            net,
            sim_cfg,
            [
                LaneSpec(self._traffic(net)),
                LaneSpec(self._traffic(net), self._schedule(net)),
            ],
            router_factory=protected_router_factory(net),
        )
        for lane, schedule in enumerate((None, self._schedule)):
            reset_packet_ids()
            ref = NoCSimulator(
                net,
                sim_cfg,
                self._traffic(net),
                router_factory=protected_router_factory(net),
                fault_schedule=schedule(net) if schedule else None,
            ).run()
            self._assert_lane_matches(batched[lane], ref)

    def test_keep_samples_lanes_bit_identical(self):
        """Per-packet latency samples survive batching unchanged."""
        from repro.network.batched import LaneSpec, run_lanes

        net, sim_cfg = self._scenario()

        reset_packet_ids()
        batched = run_lanes(
            net,
            sim_cfg,
            [LaneSpec(self._traffic(net))],
            router_factory=protected_router_factory(net),
            keep_samples=True,
        )
        reset_packet_ids()
        ref = NoCSimulator(
            net,
            sim_cfg,
            self._traffic(net),
            router_factory=protected_router_factory(net),
            keep_samples=True,
        ).run()
        self._assert_lane_matches(batched[0], ref)

        def key(s):
            # packet ids are allocation-order artefacts; compare what
            # the samples measure
            return (s.src, s.dest, s.injection_cycle, s.ejection_cycle,
                    s.hops)

        assert batched[0].stats.samples
        assert sorted(key(s) for s in batched[0].stats.samples) == sorted(
            key(s) for s in ref.stats.samples
        )
        assert batched[0].stats.latency_percentile(
            95
        ) == ref.stats.latency_percentile(95)

    def test_refilled_lanes_bit_identical(self):
        """Lanes installed mid-run via refill match fresh serial runs.

        ``width=2`` forces the third spec to stream into whichever slot
        retires first; the refilled lane gets a power-on reset plus a
        local-cycle offset, so its results must be indistinguishable
        from a simulator that started at cycle zero."""
        from repro.network.batched import LaneSpec, run_lanes

        net, sim_cfg = self._scenario()

        def specs():
            return [
                LaneSpec(self._traffic(net)),
                LaneSpec(self._traffic(net), self._schedule(net)),
                LaneSpec(
                    SyntheticTraffic(
                        net, injection_rate=0.06, mix=COHERENCE_MIX, rng=77
                    )
                ),
            ]

        reset_packet_ids()
        batched = run_lanes(
            net,
            sim_cfg,
            specs(),
            router_factory=protected_router_factory(net),
            width=2,
        )
        assert len(batched) == 3
        for lane, spec in enumerate(specs()):
            reset_packet_ids()
            ref = NoCSimulator(
                net,
                sim_cfg,
                spec.traffic,
                router_factory=protected_router_factory(net),
                fault_schedule=spec.fault_schedule,
            ).run()
            self._assert_lane_matches(batched[lane], ref)


class TestProfiledGolden:
    """A profiled run must be bit-identical to an unprofiled one.

    The profiler used to live in a hand-copied ``_step_profiled`` fork of
    ``_step``; the fork drifted (notably in where ``on_cycle`` sampling
    happened relative to the pipeline phases).  The unified body keeps
    profiling behind ``is None`` guards, so everything except the
    wall-clock profile section must match exactly."""

    def _assert_profiled_matches(self, protected: bool, with_faults: bool):
        sim_plain, plain = _run_once(
            protected, with_faults, "event", profile=False
        )
        sim_prof, prof = _run_once(
            protected, with_faults, "event", profile=True
        )
        assert prof.cycles == plain.cycles
        assert prof.faults_injected == plain.faults_injected
        assert prof.stats.summary() == plain.stats.summary()
        assert dataclasses.asdict(prof.router_stats) == dataclasses.asdict(
            plain.router_stats
        )
        # metrics + trace identical; only the wall-clock profile differs
        assert _semantic_export(prof) == _semantic_export(plain)
        assert prof.observability["profile"] is not None
        assert plain.observability["profile"] is None
        sim_plain.check_invariants()
        sim_prof.check_invariants()

    def test_profiled_baseline_bit_identical(self):
        self._assert_profiled_matches(protected=False, with_faults=False)

    def test_profiled_protected_with_faults_bit_identical(self):
        self._assert_profiled_matches(protected=True, with_faults=True)


class TestWarmResetEquivalence:
    """Warm ``NoCSimulator.reset()`` must be indistinguishable from fresh
    construction — the amortization layer (`repro.network.warm`) rests on
    this.  Each case runs the *target* configuration twice: on a freshly
    built fabric, and on a fabric first dirtied by a full run with a
    different seed and fault schedule, then reset.  Every observable
    output must match exactly, including runs that inject faults after
    the reset (reset-then-inject == fresh-build-with-faults)."""

    def _target(self, net, factory, routing_kind, with_faults, sim=None):
        reset_packet_ids()
        schedule = None
        if with_faults:
            schedule = RandomFaultSchedule(
                net.router,
                net.num_nodes,
                mean_interval=30,
                num_faults=8,
                rng=13,
                first_fault_at=40,
                avoid_failure=True,
            )
        sim_cfg = SimulationConfig(
            warmup_cycles=50,
            measure_cycles=300,
            drain_cycles=2000,
            seed=6,
            watchdog_cycles=4000,
        )
        traffic = SyntheticTraffic(net, injection_rate=0.08, rng=6)
        if sim is None:
            sim = NoCSimulator(
                net,
                sim_cfg,
                traffic,
                router_factory=factory,
                fault_schedule=schedule,
                routing_kind=routing_kind,
            )
        else:
            sim.reset(sim_cfg, traffic, schedule)
        result = sim.run()
        return sim, result

    def _assert_reset_equivalent(self, protected, with_faults, routing_kind):
        net = NetworkConfig(
            width=4, height=4, router=RouterConfig(num_vcs=4, num_vnets=2)
        )
        factory = (
            protected_router_factory(net)
            if protected
            else baseline_router_factory(net)
        )
        _, fresh = self._target(net, factory, routing_kind, with_faults)

        # dirty the fabric: an unrelated full run (different seed, its own
        # fault schedule) leaves buffers, credits, faults and stats behind
        reset_packet_ids()
        dirty = NoCSimulator(
            net,
            SimulationConfig(
                warmup_cycles=50,
                measure_cycles=200,
                drain_cycles=2000,
                seed=2,
                watchdog_cycles=4000,
            ),
            SyntheticTraffic(net, injection_rate=0.1, rng=2),
            router_factory=factory,
            fault_schedule=RandomFaultSchedule(
                net.router,
                net.num_nodes,
                mean_interval=25,
                num_faults=6,
                rng=3,
                first_fault_at=30,
                avoid_failure=True,
            ),
            routing_kind=routing_kind,
        )
        dirty.run()

        _, warm_res = self._target(
            net, factory, routing_kind, with_faults, sim=dirty
        )

        assert fresh.cycles == warm_res.cycles
        assert fresh.blocked == warm_res.blocked
        assert fresh.drained == warm_res.drained
        assert fresh.faults_injected == warm_res.faults_injected
        assert fresh.stats.summary() == warm_res.stats.summary()
        assert dataclasses.asdict(fresh.router_stats) == dataclasses.asdict(
            warm_res.router_stats
        )

    def test_baseline_reset_with_faults(self):
        self._assert_reset_equivalent(
            protected=False, with_faults=True, routing_kind="xy"
        )

    def test_protected_reset_with_faults(self):
        self._assert_reset_equivalent(
            protected=True, with_faults=True, routing_kind="xy"
        )

    def test_adaptive_west_first_reset_with_faults(self):
        self._assert_reset_equivalent(
            protected=False, with_faults=True, routing_kind="west_first"
        )

    def test_warm_pool_reuses_fabric(self):
        warm.clear_pool()
        net = NetworkConfig(width=4, height=4)
        sim_cfg = SimulationConfig(
            warmup_cycles=10, measure_cycles=50, drain_cycles=500, seed=1
        )

        def traffic():
            return SyntheticTraffic(net, injection_rate=0.05, rng=1)

        warm.drain_setup_seconds()
        a = warm.acquire(net, sim_cfg, traffic())
        a.run()
        b = warm.acquire(net, sim_cfg, traffic())
        assert b is a  # same structural key -> pooled fabric reused
        assert warm.pool_size() == 1
        assert warm.drain_setup_seconds() > 0.0
        assert warm.drain_setup_seconds() == 0.0  # drained

        # an unmarked ad-hoc factory must bypass the pool entirely
        marked = baseline_router_factory(net)

        def unmarked(node, routing):
            return marked(node, routing)

        c = warm.acquire(net, sim_cfg, traffic(), router_factory=unmarked)
        assert c is not a
        assert warm.pool_size() == 1  # pool unchanged
        warm.clear_pool()
        assert warm.pool_size() == 0

    def test_warm_pool_rerun_is_bit_identical(self):
        """Two pooled runs of the same point == two fresh runs."""
        warm.clear_pool()
        net = NetworkConfig(width=4, height=4)
        sim_cfg = SimulationConfig(
            warmup_cycles=20, measure_cycles=200, drain_cycles=1000, seed=5
        )

        def run_warm():
            reset_packet_ids()
            sim = warm.acquire(
                net, sim_cfg, SyntheticTraffic(net, injection_rate=0.08, rng=5)
            )
            return sim.run()

        def run_fresh():
            reset_packet_ids()
            sim = NoCSimulator(
                net, sim_cfg, SyntheticTraffic(net, injection_rate=0.08, rng=5)
            )
            return sim.run()

        w1, w2, f = run_warm(), run_warm(), run_fresh()
        assert w1.stats.summary() == f.stats.summary()
        assert w2.stats.summary() == f.stats.summary()
        assert w1.cycles == w2.cycles == f.cycles
