"""Tests for the CLI driver (repro.tools) and the terminal charts."""

import pytest

from repro.experiments.charts import curve, grouped_bars, hbar, latency_figure
from repro.experiments.latency import AppLatency
from repro.tools import build_parser, main, report, run


class TestCharts:
    def test_hbar_scaling(self):
        assert hbar(10, 10, width=10) == "█" * 10
        assert hbar(5, 10, width=10) == "█" * 5
        assert hbar(0, 10, width=10) == ""

    def test_hbar_half_cell(self):
        assert hbar(5.5, 10, width=10).endswith("▌")

    def test_hbar_validation(self):
        with pytest.raises(ValueError):
            hbar(1, 0)
        with pytest.raises(ValueError):
            hbar(-1, 10)

    def test_grouped_bars(self):
        out = grouped_bars(["a", "bb"], [10.0, 20.0], [12.0, 25.0])
        assert "a" in out and "bb" in out
        assert "25.0" in out
        assert out.count("|") == 4

    def test_grouped_bars_validation(self):
        with pytest.raises(ValueError):
            grouped_bars(["a"], [1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            grouped_bars([], [], [])

    def test_latency_figure(self):
        results = [
            AppLatency("fft", 30.0, 33.0),
            AppLatency("lu", 28.0, 29.0),
        ]
        fig = latency_figure(results, "Figure 7")
        assert "Figure 7" in fig
        assert "fft" in fig and "lu" in fig
        assert "overall latency increase" in fig

    def test_curve(self):
        out = curve([0.02, 0.1], [15.0, 40.0])
        assert "0.020" in out and "40.0" in out
        with pytest.raises(ValueError):
            curve([1.0], [])


class TestToolsCLI:
    def _args(self, *extra):
        return build_parser().parse_args(
            ["--width", "3", "--height", "3", "--cycles", "400",
             "--warmup", "100", "--drain", "3000", *extra]
        )

    def test_basic_run(self):
        net, sim_cfg, result, elapsed = run(self._args())
        assert result.drained and not result.blocked
        text = report(net, sim_cfg, result, elapsed)
        assert "avg network latency" in text
        assert "fault-tolerance mechanisms" not in text  # no faults

    def test_run_with_faults_reports_mechanisms(self):
        net, sim_cfg, result, _ = run(self._args("--faults", "6"))
        assert result.faults_injected == 6
        text = report(net, sim_cfg, result, 1.0)
        assert "secondary-path crossings" in text

    def test_app_traffic(self):
        _, _, result, _ = run(self._args("--app", "lu"))
        assert result.stats.packets_ejected > 0

    def test_west_first_routing(self):
        _, _, result, _ = run(self._args("--routing", "west_first"))
        assert result.drained

    def test_coherence_mix(self):
        _, _, result, _ = run(
            self._args("--vnets", "2", "--coherence-mix")
        )
        assert result.drained

    def test_baseline_router_choice(self):
        _, _, result, _ = run(self._args("--router", "baseline"))
        assert result.drained

    def test_main_exit_codes(self, capsys):
        code = main(
            ["--width", "3", "--height", "3", "--cycles", "300",
             "--warmup", "50", "--drain", "2000"]
        )
        assert code == 0
        assert "status" in capsys.readouterr().out

    def test_blocked_run_exits_2(self, capsys):
        # a baseline router with a fatal fault wedges -> exit code 2
        code = main(
            ["--width", "3", "--height", "3", "--cycles", "1500",
             "--warmup", "50", "--drain", "500", "--router", "baseline",
             "--faults", "4", "--allow-fatal-faults", "--rate", "0.15",
             "--watchdog", "400"]
        )
        out = capsys.readouterr().out
        assert code in (0, 2)  # fatal depends on the draw; report prints
        assert "status" in out
