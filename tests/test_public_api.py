"""Public-API smoke tests: every subpackage imports and exports cleanly."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.config",
    "repro.core",
    "repro.router",
    "repro.network",
    "repro.faults",
    "repro.reliability",
    "repro.reliability.network_level",
    "repro.reliability.spf_simulation",
    "repro.synthesis",
    "repro.synthesis.energy",
    "repro.comparison",
    "repro.traffic",
    "repro.experiments",
    "repro.experiments.charts",
    "repro.tools",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize(
    "name",
    [
        "repro",
        "repro.core",
        "repro.router",
        "repro.network",
        "repro.faults",
        "repro.reliability",
        "repro.synthesis",
        "repro.comparison",
        "repro.traffic",
    ],
)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol}"


def test_version():
    import repro

    assert repro.__version__


def test_public_entry_points_documented():
    """The headline classes carry docstrings (doc deliverable)."""
    from repro.core import ProtectedRouter
    from repro.network import NoCSimulator
    from repro.reliability import analyze_mttf, analyze_spf
    from repro.router import BaselineRouter

    for obj in (ProtectedRouter, NoCSimulator, BaselineRouter, analyze_mttf,
                analyze_spf):
        assert obj.__doc__ and len(obj.__doc__) > 20
