"""Public-API smoke tests: every subpackage imports and exports cleanly."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.config",
    "repro.core",
    "repro.router",
    "repro.network",
    "repro.faults",
    "repro.reliability",
    "repro.reliability.network_level",
    "repro.reliability.spf_simulation",
    "repro.synthesis",
    "repro.synthesis.energy",
    "repro.comparison",
    "repro.traffic",
    "repro.experiments",
    "repro.experiments.charts",
    "repro.tools",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize(
    "name",
    [
        "repro",
        "repro.core",
        "repro.router",
        "repro.network",
        "repro.faults",
        "repro.reliability",
        "repro.synthesis",
        "repro.comparison",
        "repro.traffic",
    ],
)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol}"


def test_version():
    import repro

    assert repro.__version__


class TestFacade:
    """The lazy top-level facade (see repro/__init__.py)."""

    def test_all_is_exact(self):
        import repro

        assert sorted(repro.__all__) == repro.__all__ or True  # order free
        # every name in __all__ resolves (lazily or eagerly)
        for symbol in repro.__all__:
            assert getattr(repro, symbol) is not None

    def test_lazy_names_resolve_to_canonical_objects(self):
        import repro
        from repro.experiments.parallel import PartialSweepError, run_sweep
        from repro.experiments.resilient import RetryPolicy, sweep_runtime
        from repro.network import NoCSimulator

        assert repro.run_sweep is run_sweep
        assert repro.sweep_runtime is sweep_runtime
        assert repro.RetryPolicy is RetryPolicy
        assert repro.PartialSweepError is PartialSweepError
        assert repro.NoCSimulator is NoCSimulator

    def test_dir_lists_facade(self):
        import repro

        listed = dir(repro)
        for symbol in ("NoCSimulator", "run_sweep", "sweep_runtime",
                       "CheckpointStore", "replace"):
            assert symbol in listed

    def test_deprecated_replace_warns_but_works(self):
        import dataclasses
        import importlib

        import repro
        from repro.config import RouterConfig, replace as config_replace

        repro = importlib.reload(repro)  # drop any cached attribute
        with pytest.warns(DeprecationWarning, match="repro.config.replace"):
            fn = repro.replace
        assert fn is config_replace
        cfg = RouterConfig()
        assert dataclasses.asdict(fn(cfg, num_vcs=8))["num_vcs"] == 8

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError, match="no attribute 'nonsense'"):
            repro.nonsense

    def test_unified_run_signature_everywhere(self):
        """Every experiment module exposes the unified entry point."""
        import inspect

        from repro.experiments.runner import EXPERIMENTS, ExperimentEntry

        for name, entry in EXPERIMENTS.items():
            assert isinstance(entry, ExperimentEntry), name
            sig = inspect.signature(entry.module.run)
            params = sig.parameters
            assert list(params)[0] == "config", name
            for kw in ("jobs", "seed", "out_dir", "resume"):
                assert kw in params, f"{name}.run lacks {kw}="
                assert params[kw].kind is inspect.Parameter.KEYWORD_ONLY, name

    def test_fault_schedule_facade_resolves_to_canonical_objects(self):
        import repro
        from repro.experiments import fault_campaign
        from repro.faults import FaultSchedule, FaultTimeline, make_schedule

        assert repro.FaultSchedule is FaultSchedule
        assert repro.FaultTimeline is FaultTimeline
        assert repro.make_schedule is make_schedule
        assert repro.CampaignConfig is fault_campaign.CampaignConfig
        assert repro.run_fault_campaign is fault_campaign.run

    def test_fault_schedule_api_signatures(self):
        """Pin the unified FaultSchedule surface (api redesign contract)."""
        import inspect

        from repro.faults import FaultSchedule, make_schedule

        sig = inspect.signature(make_schedule)
        assert list(sig.parameters) == ["spec", "config", "num_routers"]
        for kw in ("config", "num_routers"):
            assert (
                sig.parameters[kw].kind is inspect.Parameter.KEYWORD_ONLY
            )
        for method in ("events_at", "next_cycle", "fingerprint"):
            assert hasattr(FaultSchedule, method)

    def test_legacy_keywords_warn_and_unknown_raise(self):
        from repro.experiments import spf_sweep

        with pytest.warns(DeprecationWarning, match="deprecated"):
            res = spf_sweep.run(vc_counts=(2, 4))
        assert res.experiment == "spf_sweep"
        with pytest.raises(TypeError, match="unexpected keyword"):
            spf_sweep.run(vc_count=(2, 4))


def test_public_entry_points_documented():
    """The headline classes carry docstrings (doc deliverable)."""
    from repro.core import ProtectedRouter
    from repro.network import NoCSimulator
    from repro.reliability import analyze_mttf, analyze_spf
    from repro.router import BaselineRouter

    for obj in (ProtectedRouter, NoCSimulator, BaselineRouter, analyze_mttf,
                analyze_spf):
        assert obj.__doc__ and len(obj.__doc__) > 20
