"""Tests for the design-space and MTTF-sensitivity experiments."""

import pytest

from repro.experiments import design_space, mttf_sensitivity


class TestDesignSpace:
    @pytest.fixture(scope="class")
    def result(self):
        return design_space.run(
            vc_counts=(2, 4), buffer_depths=(2, 4), measure=800
        )

    def test_shape_claims_hold(self, result):
        assert result.row("deeper buffers never hurt latency").measured is True
        assert result.row("more VCs raise SPF").measured is True
        assert result.row(
            "bigger routers dilute the correction-area overhead"
        ).measured is True

    def test_every_point_measured(self, result):
        points = result.extras["points"]
        assert set(points) == {(2, 2), (2, 4), (4, 2), (4, 4)}
        for lat, spf, ovh in points.values():
            assert lat > 0 and spf > 0 and 0 < ovh < 1

    def test_four_vc_point_matches_paper_anchor(self, result):
        points = result.extras["points"]
        _, spf, _ = points[(4, 2)]
        assert spf == pytest.approx(11.4, abs=0.5)


class TestMTTFSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return mttf_sensitivity.run()

    def test_tddb_acceleration(self, result):
        assert result.row("hotter silicon fails sooner").measured is True
        assert result.row("higher voltage fails sooner").measured is True

    def test_ratio_invariance(self, result):
        assert result.row(
            "improvement ratio invariant across operating points"
        ).measured is True
        ratios = result.extras["ratios"]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)

    def test_ratio_matches_paper(self, result):
        assert result.row("improvement ratio").measured == pytest.approx(
            6.18, abs=0.05
        )

    def test_custom_operating_points(self):
        res = mttf_sensitivity.run(temps_k=(310.0, 350.0), vdds=(1.0,))
        assert res.row("MTTF baseline @ 310 K").measured > res.row(
            "MTTF baseline @ 350 K"
        ).measured
