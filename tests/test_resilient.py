"""Tests for the resilient sweep runtime (repro.experiments.resilient).

Covers the detect/contain/reroute loop (crashed and hung workers are
killed, replaced, and the point retried), graceful degradation to
:class:`PartialSweepError` / exit code 3, and the durability contract:
a sweep SIGKILLed mid-run resumes from its checkpoint directory
bit-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import runner
from repro.experiments.parallel import (
    PartialSweepError,
    PartialSweepReport,
    PointFailure,
    SweepTask,
    run_sweep,
)
from repro.experiments.resilient import (
    CheckpointStore,
    ResumeError,
    RetryPolicy,
    sweep_runtime,
)


@pytest.fixture(autouse=True)
def _reset_resilient():
    from repro.experiments import resilient

    resilient.reset()
    yield
    resilient.reset()


# ---------------------------------------------------------------------
# worker task functions (module level: pickled into worker processes)
def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom on {x}")


def _crash_once(x, marker_dir):
    """SIGKILL our own worker on the first attempt, succeed on retry."""
    marker = Path(marker_dir) / f"attempted-{x}"
    if not marker.exists():
        marker.write_text("1")
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def _hang(x):
    time.sleep(3600)


def _tasks(fn, n, **kwargs):
    return [
        SweepTask(index=i, fn=fn, args=(i,), kwargs=kwargs, label=f"p{i}")
        for i in range(n)
    ]


class TestRetryPolicy:
    def test_exponential_backoff_with_cap(self):
        p = RetryPolicy(
            max_attempts=5, backoff_s=0.5, backoff_factor=2.0,
            max_backoff_s=1.5,
        )
        assert p.delay(1) == 0.5
        assert p.delay(2) == 1.0
        assert p.delay(3) == 1.5  # capped
        assert p.delay(4) == 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)


class TestRetryAndContainment:
    def test_plain_sweep_unchanged_without_runtime(self):
        values, report = run_sweep(_tasks(_square, 4), jobs=2)
        assert values == [0, 1, 4, 9]
        assert report.resumed == 0 and report.retries == 0

    def test_crashed_worker_is_replaced_and_point_retried(self, tmp_path):
        tasks = _tasks(_crash_once, 4, marker_dir=str(tmp_path))
        with sweep_runtime(retry=RetryPolicy(max_attempts=3, backoff_s=0.01)):
            values, report = run_sweep(tasks, jobs=2)
        assert values == [0, 1, 4, 9]
        assert report.retries >= 1  # every point crashed its worker once

    def test_always_failing_point_degrades_to_partial(self):
        tasks = _tasks(_square, 4)
        tasks[2] = SweepTask(index=2, fn=_boom, args=(2,), label="p2")
        with sweep_runtime(retry=RetryPolicy(max_attempts=2, backoff_s=0.01)):
            with pytest.raises(PartialSweepError) as exc_info:
                run_sweep(tasks, jobs=2)
        exc = exc_info.value
        assert exc.values == [0, 1, None, 9]
        report = exc.report
        assert isinstance(report, PartialSweepReport)
        assert report.completed == (0, 1, 3)
        assert [f.index for f in report.failed] == [2]
        assert "boom on 2" in report.failed[0].error
        assert report.skipped == ()

    def test_hung_point_hits_watchdog(self):
        tasks = _tasks(_square, 3)
        tasks[1] = SweepTask(index=1, fn=_hang, args=(1,), label="hang")
        policy = RetryPolicy(max_attempts=2, backoff_s=0.01, timeout_s=0.3)
        with sweep_runtime(retry=policy):
            with pytest.raises(PartialSweepError) as exc_info:
                run_sweep(tasks, jobs=2)
        exc = exc_info.value
        assert exc.values == [0, None, 4]
        assert exc.report.timeouts == 2  # both attempts timed out
        assert "timed out" in exc.report.failed[0].error


class TestCheckpointStore:
    def test_refuses_existing_run_without_resume(self, tmp_path):
        CheckpointStore(tmp_path, resume=False).close()
        with pytest.raises(ResumeError, match="already holds a run"):
            CheckpointStore(tmp_path, resume=False)
        # resume=True continues it
        CheckpointStore(tmp_path, resume=True).close()

    def test_checkpoint_then_resume_runs_nothing(self, tmp_path):
        with sweep_runtime(out_dir=tmp_path):
            values, report = run_sweep(_tasks(_square, 5), jobs=2)
        assert values == [0, 1, 4, 9, 16]
        assert report.checkpointed == 5
        lines = (tmp_path / "sweep-000.jsonl").read_text().splitlines()
        assert len(lines) == 5

        with sweep_runtime(resume=tmp_path):
            values2, report2 = run_sweep(_tasks(_square, 5), jobs=2)
        assert values2 == values
        assert report2.resumed == 5
        assert report2.checkpointed == 0

    def test_resume_with_different_sweep_is_rejected(self, tmp_path):
        with sweep_runtime(out_dir=tmp_path):
            run_sweep(_tasks(_square, 3), jobs=1)
        with sweep_runtime(resume=tmp_path):
            with pytest.raises(ResumeError, match="different configuration"):
                run_sweep(_tasks(_square, 4), jobs=1)  # point count differs

    def test_torn_final_line_is_ignored(self, tmp_path):
        with sweep_runtime(out_dir=tmp_path):
            run_sweep(_tasks(_square, 4), jobs=1)
        path = tmp_path / "sweep-000.jsonl"
        text = path.read_text()
        path.write_text(text[: len(text) - 10])  # SIGKILL mid-write
        with sweep_runtime(resume=tmp_path):
            values, report = run_sweep(_tasks(_square, 4), jobs=1)
        assert values == [0, 1, 4, 9]
        assert report.resumed == 3  # torn point re-executed
        assert report.checkpointed == 1


#: driver executed as a subprocess so the kill test can SIGKILL the whole
#: process group; task fns resolve as __main__.* in every invocation, so
#: the checkpoint fingerprints line up between the killed and resumed run.
_DRIVER = """\
import json, sys, time

from repro.experiments.parallel import SweepTask, run_sweep
from repro.experiments.resilient import sweep_runtime

DELAY = float(sys.argv[4])


def slow_value(i, seed):
    import numpy as np

    time.sleep(DELAY)
    rng = np.random.default_rng(seed)
    return float(rng.random()) + i


def main():
    mode, run_dir, out_json = sys.argv[1:4]
    tasks = [
        SweepTask(index=i, fn=slow_value, args=(i, 1000 + i), label=f"p{i}")
        for i in range(10)
    ]
    kw = {"resume": run_dir} if mode == "resume" else {"out_dir": run_dir}
    with sweep_runtime(**kw):
        values, report = run_sweep(tasks, jobs=2)
    with open(out_json, "w") as fp:
        json.dump({"values": values, "resumed": report.resumed}, fp)


main()
"""


def _spawn_driver(script, mode, run_dir, out_json, delay, tmp_path):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, str(script), mode, str(run_dir), str(out_json),
         str(delay)],
        env=env,
        start_new_session=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestKillMidSweepGolden:
    """The acceptance pin: SIGKILL mid-sweep + --resume == uninterrupted."""

    def test_sigkill_resume_bit_identical(self, tmp_path):
        script = tmp_path / "driver.py"
        script.write_text(_DRIVER)

        # reference: uninterrupted run
        ref_json = tmp_path / "ref.json"
        proc = _spawn_driver(
            script, "run", tmp_path / "ref-run", ref_json, 0.0, tmp_path
        )
        assert proc.wait(timeout=120) == 0
        reference = json.loads(ref_json.read_text())
        assert len(reference["values"]) == 10

        # killed run: slow points, SIGKILL the process group once the
        # checkpoint holds at least one completed point
        run_dir = tmp_path / "killed-run"
        kill_json = tmp_path / "kill.json"
        proc = _spawn_driver(script, "run", run_dir, kill_json, 0.5, tmp_path)
        jsonl = run_dir / "sweep-000.jsonl"
        deadline = time.time() + 60
        while time.time() < deadline:
            if jsonl.exists() and len(jsonl.read_text().splitlines()) >= 1:
                break
            if proc.poll() is not None:
                pytest.fail("driver exited before it could be killed")
            time.sleep(0.01)
        else:
            pytest.fail("no checkpointed point appeared within 60s")
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        assert not kill_json.exists()  # it really died mid-run

        # resume: only the missing points re-execute; values identical
        resume_json = tmp_path / "resume.json"
        proc = _spawn_driver(
            script, "resume", run_dir, resume_json, 0.0, tmp_path
        )
        assert proc.wait(timeout=120) == 0
        resumed = json.loads(resume_json.read_text())
        assert resumed["values"] == reference["values"]
        assert 1 <= resumed["resumed"] <= 10


def _fault_sweep_quick(out_dir=None, resume=None, engine="event"):
    from repro.experiments import fault_sweep
    from repro.experiments.latency import QUICK_CONFIG

    cfg = QUICK_CONFIG
    # engine="event" checkpoints one record per point; the default
    # batched engine checkpoints per lane *chunk* (see
    # TestLaneChunkResume in tests/test_batched_engine.py)
    config = fault_sweep.FaultSweepConfig(
        fault_counts=(0, 8), latency=cfg, app="lu", engine=engine
    )
    return fault_sweep.run(config, out_dir=out_dir, resume=resume)


class TestSimulationResumeGolden:
    """Resume splices simulation results bit-identically into a real
    experiment (checkpoint truncated in-process instead of SIGKILL —
    cheaper than a subprocess, same reload path)."""

    def test_truncated_checkpoint_resume_matches(self, tmp_path):
        full = _fault_sweep_quick(out_dir=tmp_path / "run")
        # drop the last checkpointed point: simulates dying mid-sweep
        jsonl = tmp_path / "run" / "sweep-000.jsonl"
        lines = jsonl.read_text().splitlines()
        assert len(lines) == 2  # one point per fault count (0, 8)
        jsonl.write_text(lines[0] + "\n")

        resumed = _fault_sweep_quick(resume=tmp_path / "run")
        assert resumed.rows == full.rows
        assert resumed.extras["rows"] == full.extras["rows"]
        assert resumed.extras["sweep"].resumed == 1


class TestCLI:
    def test_partial_sweep_maps_to_exit_3(self, monkeypatch, capsys):
        def _partial(quick, jobs):
            report = PartialSweepReport(
                jobs=1, points=2, wall_time=0.0, shards=(),
                completed=(0,),
                failed=(
                    PointFailure(
                        index=1, label="p1", error="boom", traceback=""
                    ),
                ),
            )
            raise PartialSweepError(report, [42, None])

        monkeypatch.setitem(runner.EXPERIMENTS, "table1", _partial)
        rc = runner.main(["table1"])
        assert rc == 3
        err = capsys.readouterr().err
        assert "table1 PARTIAL" in err
        assert "1/2 points completed" in err
        assert "partially completed" in err

    def test_hard_failure_still_exits_1(self, monkeypatch, capsys):
        def _partial(quick, jobs):
            raise RuntimeError("hard failure")

        monkeypatch.setitem(runner.EXPERIMENTS, "table1", _partial)
        assert runner.main(["table1"]) == 1

    def test_out_dir_and_resume_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            runner.main([
                "table1", "--out-dir", str(tmp_path / "a"),
                "--resume", str(tmp_path / "b"),
            ])

    def test_retries_flag_configures_and_resets(self):
        from repro.experiments import resilient

        assert runner.main(["table1", "--retries", "4"]) == 0
        # reset() ran: the next sweep_runtime() with no args is a no-op
        assert resilient.active_runtime() is None
        with sweep_runtime() as rt:
            assert rt is None

    def test_out_dir_checkpoints_experiment(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        rc = runner.main([
            "table3", "--quick", "--jobs", "2", "--out-dir", str(run_dir),
        ])
        assert rc == 0
        assert (run_dir / "manifest.json").exists()
        out = capsys.readouterr().out
        assert "checkpointed" in out

        rc = runner.main([
            "table3", "--quick", "--jobs", "2", "--resume", str(run_dir),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint" in out
