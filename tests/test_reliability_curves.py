"""Tests for the reliability-curve experiment and mission-time maths."""

import numpy as np
import pytest

from repro.experiments.reliability_curves import mission_time, run
from repro.reliability.mttf import reliability_curve


class TestMissionTime:
    def test_exponential_closed_form(self):
        """For R(t)=exp(-l t), mission time at target p is -ln(p)/l."""
        fit = 2822.0
        lam = fit / 1e9
        hours = np.linspace(0, 2e6, 20000)
        r = reliability_curve(fit, hours)
        for p in (0.99, 0.9, 0.5):
            expected = -np.log(p) / lam
            assert mission_time(r, hours, p) == pytest.approx(
                expected, rel=0.01
            )

    def test_target_validation(self):
        hours = np.linspace(0, 10, 5)
        r = reliability_curve(1000.0, hours)
        with pytest.raises(ValueError):
            mission_time(r, hours, 0.0)
        with pytest.raises(ValueError):
            mission_time(r, hours, 1.0)

    def test_unreachable_target_clamps_to_horizon(self):
        hours = np.linspace(0, 100.0, 10)
        r = reliability_curve(1.0, hours)  # barely decays over 100 h
        assert mission_time(r, hours, 0.5) == pytest.approx(100.0)


class TestExperiment:
    def test_multipliers_exceed_mttf_ratio_at_high_targets(self):
        """At stringent targets the parallel system's advantage exceeds
        the ~6x MTTF ratio (redundancy crushes the early-failure tail)."""
        res = run()
        assert res.row("mission-time multiplier @ R>=0.99").measured > 6.0

    def test_multiplier_decreases_with_laxer_targets(self):
        res = run()
        m99 = res.row("mission-time multiplier @ R>=0.99").measured
        m90 = res.row("mission-time multiplier @ R>=0.9").measured
        assert m99 > m90

    def test_protected_curve_dominates(self):
        res = run()
        assert np.all(res.extras["protected"] >= res.extras["baseline"] - 1e-12)

    def test_yearly_survival_rows(self):
        res = run()
        assert res.row("R(protected) after 1y").measured >= res.row(
            "R(baseline) after 1y"
        ).measured
