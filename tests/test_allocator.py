"""Direct unit tests of the two-stage separable VA and SA allocators."""

import pytest

from repro.config import PORT_EAST, PORT_NORTH, PORT_SOUTH, PORT_WEST
from repro.faults.sites import FaultSite, FaultUnit
from repro.router.flit import Packet
from repro.router.vc import VCState

from conftest import SingleRouterHarness


def waiting_vc(h, port, wire, dest=5):
    """Put a head flit into (port, wire) and advance it to WAITING_VA."""
    h.inject(port, wire, Packet(src=3, dest=dest, size_flits=1))
    vc = h.router.in_ports[port].by_wire(wire)
    vc.state = VCState.WAITING_VA
    vc.route = h.router.routing.output_port(h.router.node, dest)
    return vc


class TestVAUnit:
    def test_single_requester_granted(self, harness):
        vc = waiting_vc(harness, PORT_WEST, 0)
        grants = harness.router.va_unit.allocate(0)
        assert len(grants) == 1
        assert grants[0].in_port == PORT_WEST
        assert vc.state == VCState.ACTIVE
        assert harness.router.out_ports[PORT_EAST].allocated[vc.out_vc] == vc.packet_id

    def test_conflicting_requests_one_winner(self, harness):
        """Two VCs proposing the same downstream VC: stage 2 picks one."""
        a = waiting_vc(harness, PORT_WEST, 0)
        b = waiting_vc(harness, PORT_NORTH, 0)
        grants = harness.router.va_unit.allocate(0)
        # both target EAST; their stage-1 arbiters both start at dvc 0
        assert len(grants) == 1
        states = {a.state, b.state}
        assert states == {VCState.ACTIVE, VCState.WAITING_VA}

    def test_loser_retries_next_cycle(self, harness):
        a = waiting_vc(harness, PORT_WEST, 0)
        b = waiting_vc(harness, PORT_NORTH, 0)
        harness.router.va_unit.allocate(0)
        grants = harness.router.va_unit.allocate(1)
        assert len(grants) == 1
        assert a.state == VCState.ACTIVE and b.state == VCState.ACTIVE
        assert a.out_vc != b.out_vc

    def test_no_free_downstream_vc_blocks(self, harness):
        out = harness.router.out_ports[PORT_EAST]
        for d in range(4):
            out.allocated[d] = 999  # all downstream VCs taken
        vc = waiting_vc(harness, PORT_WEST, 0)
        grants = harness.router.va_unit.allocate(0)
        assert grants == []
        assert vc.state == VCState.WAITING_VA
        assert harness.router.stats.va_no_free_vc_cycles == 1

    def test_vnet_partition_respected(self):
        h = SingleRouterHarness(num_vcs=4, num_vnets=2)
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1, vnet=0))
        vc = h.router.in_ports[PORT_WEST].by_wire(0)
        vc.state = VCState.WAITING_VA
        vc.route = PORT_EAST
        h.router.va_unit.allocate(0)
        assert vc.out_vc in (0, 1)  # vnet 0's downstream VCs only

    def test_faulty_stage1_blocks_in_baseline(self, harness):
        harness.router.inject_fault(
            FaultSite(4, FaultUnit.VA1_ARBITER_SET, PORT_WEST, 0)
        )
        vc = waiting_vc(harness, PORT_WEST, 0)
        assert harness.router.va_unit.allocate(0) == []
        assert vc.state == VCState.WAITING_VA
        assert harness.router.stats.va_blocked_cycles == 1


class TestSAUnit:
    def _active_vc(self, h, port, wire, route=PORT_EAST, out_vc=0):
        h.inject(port, wire, Packet(src=3, dest=5, size_flits=1))
        vc = h.router.in_ports[port].by_wire(wire)
        vc.state = VCState.ACTIVE
        vc.route = route
        vc.out_vc = out_vc
        return vc

    def test_single_active_vc_granted(self, harness):
        vc = self._active_vc(harness, PORT_WEST, 0)
        grants = harness.router.sa_unit.allocate(0)
        assert len(grants) == 1
        assert grants[0].vc is vc
        assert harness.router.out_ports[PORT_EAST].credits[0] == 3

    def test_no_credit_no_grant(self, harness):
        vc = self._active_vc(harness, PORT_WEST, 0)
        harness.router.out_ports[PORT_EAST].credits[0] = 0
        assert harness.router.sa_unit.allocate(0) == []
        del vc

    def test_empty_buffer_no_grant(self, harness):
        vc = self._active_vc(harness, PORT_WEST, 0)
        vc.buffer.clear()
        assert harness.router.sa_unit.allocate(0) == []

    def test_output_port_conflict_one_winner(self, harness):
        self._active_vc(harness, PORT_WEST, 0, out_vc=0)
        self._active_vc(harness, PORT_NORTH, 0, out_vc=1)
        grants = harness.router.sa_unit.allocate(0)
        assert len(grants) == 1  # both want EAST's mux

    def test_distinct_outputs_parallel_grants(self, harness):
        self._active_vc(harness, PORT_WEST, 0, route=PORT_EAST)
        self._active_vc(harness, PORT_EAST, 0, route=PORT_WEST)
        grants = harness.router.sa_unit.allocate(0)
        assert len(grants) == 2

    def test_one_grant_per_input_port(self, harness):
        self._active_vc(harness, PORT_WEST, 0, route=PORT_EAST, out_vc=0)
        self._active_vc(harness, PORT_WEST, 1, route=PORT_SOUTH, out_vc=0)
        grants = harness.router.sa_unit.allocate(0)
        assert len(grants) == 1  # stage 1 picks one VC per port

    def test_round_robin_across_ports(self, harness):
        a = self._active_vc(harness, PORT_WEST, 0, out_vc=0)
        b = self._active_vc(harness, PORT_NORTH, 0, out_vc=1)
        w1 = harness.router.sa_unit.allocate(0)[0].in_port
        # refill what the grant consumed so both stay eligible
        harness.router.out_ports[PORT_EAST].credits = [4, 4, 4, 4]
        w2 = harness.router.sa_unit.allocate(1)[0].in_port
        assert {w1, w2} == {PORT_WEST, PORT_NORTH}
        del a, b

    def test_faulty_stage1_blocks_port_in_baseline(self, harness):
        self._active_vc(harness, PORT_WEST, 0)
        harness.router.inject_fault(FaultSite(4, FaultUnit.SA1_ARBITER, PORT_WEST))
        assert harness.router.sa_unit.allocate(0) == []
        assert harness.router.stats.sa_blocked_cycles == 1

    def test_unreachable_route_not_ready(self, harness):
        self._active_vc(harness, PORT_WEST, 0, route=PORT_EAST)
        harness.router.inject_fault(FaultSite(4, FaultUnit.XB_MUX, PORT_EAST))
        assert harness.router.sa_unit.allocate(0) == []
