"""Tests for round-robin and matrix arbiters, including fairness properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.router.arbiter import (
    MatrixArbiter,
    RoundRobinArbiter,
    make_arbiter,
)


class TestRoundRobin:
    def test_single_requester_wins(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([2]) == 2

    def test_no_request_no_grant(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([]) is None

    def test_priority_rotates_after_grant(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([0, 1, 2, 3]) == 0
        assert arb.grant([0, 1, 2, 3]) == 1
        assert arb.grant([0, 1, 2, 3]) == 2
        assert arb.grant([0, 1, 2, 3]) == 3
        assert arb.grant([0, 1, 2, 3]) == 0

    def test_skips_non_requesters(self):
        arb = RoundRobinArbiter(4)
        arb.grant([0])  # priority now 1
        assert arb.grant([0, 3]) == 3  # 3 is cyclically closer to 1

    def test_faulty_never_grants(self):
        arb = RoundRobinArbiter(4)
        arb.faulty = True
        assert arb.grant([0, 1, 2, 3]) is None

    def test_priority_frozen_without_grant(self):
        arb = RoundRobinArbiter(4)
        arb.grant([])
        assert arb.priority == 0

    def test_out_of_range_requester_rejected(self):
        arb = RoundRobinArbiter(4)
        with pytest.raises(ValueError):
            arb.grant([4])
        with pytest.raises(ValueError):
            arb.grant([-1])

    def test_reset(self):
        arb = RoundRobinArbiter(4)
        arb.grant([2])
        arb.reset()
        assert arb.priority == 0

    def test_rejects_empty_arbiter(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)


class TestMatrix:
    def test_least_recently_served_wins(self):
        arb = MatrixArbiter(3)
        assert arb.grant([0, 1, 2]) == 0
        assert arb.grant([0, 1, 2]) == 1
        assert arb.grant([0, 2]) == 2
        # 0 was served longest ago among {0}
        assert arb.grant([0, 1]) == 0

    def test_faulty_never_grants(self):
        arb = MatrixArbiter(3)
        arb.faulty = True
        assert arb.grant([0, 1]) is None

    def test_no_request_no_grant(self):
        arb = MatrixArbiter(3)
        assert arb.grant([]) is None

    def test_out_of_range_rejected(self):
        arb = MatrixArbiter(3)
        with pytest.raises(ValueError):
            arb.grant([3])

    def test_reset_restores_order(self):
        arb = MatrixArbiter(3)
        arb.grant([2])
        arb.reset()
        assert arb.order == (0, 1, 2)


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_arbiter(4, "round_robin"), RoundRobinArbiter)
        assert isinstance(make_arbiter(4, "matrix"), MatrixArbiter)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_arbiter(4, "tournament")


@st.composite
def request_sequences(draw):
    size = draw(st.integers(min_value=1, max_value=8))
    n_rounds = draw(st.integers(min_value=1, max_value=50))
    rounds = [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=size - 1),
                unique=True,
                max_size=size,
            )
        )
        for _ in range(n_rounds)
    ]
    return size, rounds


class TestArbiterProperties:
    @given(request_sequences(), st.sampled_from(["round_robin", "matrix"]))
    @settings(max_examples=60, deadline=None)
    def test_grant_is_always_a_requester(self, seq, kind):
        size, rounds = seq
        arb = make_arbiter(size, kind)
        for reqs in rounds:
            g = arb.grant(reqs)
            if reqs:
                assert g in reqs
            else:
                assert g is None

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=10, max_value=200),
        st.sampled_from(["round_robin", "matrix"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_starvation_freedom_under_full_load(self, size, rounds, kind):
        """With all requesters always active, grants are perfectly fair."""
        arb = make_arbiter(size, kind)
        counts = [0] * size
        for _ in range(rounds):
            counts[arb.grant(list(range(size)))] += 1
        assert max(counts) - min(counts) <= 1

    @given(
        st.integers(min_value=2, max_value=8),
        st.sampled_from(["round_robin", "matrix"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_persistent_requester_eventually_wins(self, size, kind):
        """Requester 0 competing against everyone wins within `size` rounds."""
        arb = make_arbiter(size, kind)
        for _ in range(size):
            if arb.grant(list(range(size))) == 0:
                return
        pytest.fail("requester 0 starved")
