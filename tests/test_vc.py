"""Tests for virtual-channel state machines and buffers."""

import pytest

from repro.router.flit import Packet
from repro.router.vc import VCState, VirtualChannel


def flits_of(src=0, dest=1, n=3, **kw):
    return list(Packet(src=src, dest=dest, size_flits=n, **kw).flits())


class TestBuffer:
    def test_starts_idle_and_empty(self):
        vc = VirtualChannel(0, 0, 4)
        assert vc.state == VCState.IDLE
        assert vc.is_empty
        assert vc.free_slots == 4

    def test_enqueue_dequeue_fifo(self):
        vc = VirtualChannel(0, 0, 4)
        fl = flits_of(n=3)
        for f in fl:
            vc.enqueue(f)
        assert vc.occupancy == 3
        assert [vc.dequeue() for _ in range(3)] == fl

    def test_overflow_raises(self):
        vc = VirtualChannel(0, 0, 2)
        fl = flits_of(n=3)
        vc.enqueue(fl[0])
        vc.enqueue(fl[1])
        with pytest.raises(OverflowError):
            vc.enqueue(fl[2])

    def test_dequeue_empty_raises(self):
        vc = VirtualChannel(0, 0, 4)
        with pytest.raises(IndexError):
            vc.dequeue()

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            VirtualChannel(0, 0, 0)


class TestStateMachine:
    def test_head_arrival_starts_routing(self):
        vc = VirtualChannel(0, 0, 4)
        vc.enqueue(flits_of(n=2)[0])
        assert vc.state == VCState.ROUTING
        assert vc.packet_id is not None

    def test_body_at_idle_vc_asserts(self):
        vc = VirtualChannel(0, 0, 4)
        body = flits_of(n=3)[1]
        with pytest.raises(AssertionError):
            vc.enqueue(body)

    def test_tail_departure_resets(self):
        vc = VirtualChannel(0, 0, 4)
        for f in flits_of(n=2):
            vc.enqueue(f)
        vc.state = VCState.ACTIVE
        vc.route = 2
        vc.out_vc = 1
        vc.dequeue()  # head
        assert vc.state == VCState.ACTIVE  # mid-packet
        vc.dequeue()  # tail
        assert vc.state == VCState.IDLE
        assert vc.route is None
        assert vc.out_vc is None
        assert vc.packet_id is None

    def test_back_to_back_packets_restart_pipeline(self):
        """A second packet queued behind the first starts ROUTING when the
        first one's tail leaves."""
        vc = VirtualChannel(0, 0, 8)
        p1 = flits_of(n=2)
        p2 = flits_of(n=2, dest=2)
        for f in p1 + p2:
            vc.enqueue(f)
        vc.state = VCState.ACTIVE
        vc.dequeue()
        vc.dequeue()  # tail of p1
        assert vc.state == VCState.ROUTING
        assert vc.packet_id == p2[0].packet_id

    def test_single_flit_packet_lifecycle(self):
        vc = VirtualChannel(0, 0, 4)
        [f] = flits_of(n=1)
        vc.enqueue(f)
        assert vc.state == VCState.ROUTING
        vc.state = VCState.ACTIVE
        vc.dequeue()
        assert vc.state == VCState.IDLE


class TestFTFields:
    def test_borrow_fields_reset(self):
        vc = VirtualChannel(0, 0, 4)
        vc.r2 = 3
        vc.vf = True
        vc.borrower_id = 2
        vc.clear_borrow_request()
        assert vc.r2 is None and not vc.vf and vc.borrower_id is None

    def test_new_packet_clears_sp_fsp(self):
        vc = VirtualChannel(0, 0, 4)
        for f in flits_of(n=1):
            vc.enqueue(f)
        vc.sp = 2
        vc.fsp = True
        vc.state = VCState.ACTIVE
        vc.dequeue()
        vc.enqueue(flits_of(n=1, dest=2)[0])
        assert vc.sp is None and vc.fsp is False

    def test_state_snapshot_roundtrip(self):
        vc = VirtualChannel(0, 1, 4)
        for f in flits_of(n=2):
            vc.enqueue(f)
        vc.state = VCState.ACTIVE
        vc.route = 3
        vc.out_vc = 2
        vc.sp = 1
        vc.fsp = True
        snap = vc.snapshot_state()
        other = VirtualChannel(0, 2, 4)
        other.adopt_state(snap)
        assert other.state == VCState.ACTIVE
        assert other.route == 3
        assert other.out_vc == 2
        assert other.sp == 1
        assert other.fsp is True
        assert other.packet_id == vc.packet_id

    def test_va_excluded_cleared_between_packets(self):
        vc = VirtualChannel(0, 0, 4)
        vc.enqueue(flits_of(n=1)[0])
        vc.va_excluded = {1, 2}
        vc.state = VCState.ACTIVE
        vc.dequeue()
        assert vc.va_excluded is None
