"""Tests for the baseline crossbar and the secondary-path crossbar."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RouterConfig
from repro.core.ft_crossbar import (
    SecondaryPathCrossbar,
    demux_fanouts,
    max_tolerable_mux_faults,
    reachable_outputs_exact,
    secondary_source,
)
from repro.faults.sites import FaultSite, FaultUnit, RouterFaultState
from repro.router.crossbar import Crossbar


def faults5():
    return RouterFaultState(RouterConfig())


class TestBaselineCrossbar:
    def test_all_reachable_when_healthy(self):
        xb = Crossbar(5, faults5())
        assert xb.reachable_outputs() == [0, 1, 2, 3, 4]

    def test_normal_plan(self):
        xb = Crossbar(5, faults5())
        plan = xb.plan_path(3)
        assert (plan.arb_port, plan.mux, plan.dest) == (3, 3, 3)
        assert not plan.secondary

    def test_mux_fault_kills_output(self):
        f = faults5()
        xb = Crossbar(5, f)
        f.inject(FaultSite(0, FaultUnit.XB_MUX, 2))
        xb.notify_fault_change()
        assert xb.plan_path(2) is None
        assert xb.reachable_outputs() == [0, 1, 3, 4]

    def test_sa2_fault_kills_output(self):
        f = faults5()
        xb = Crossbar(5, f)
        f.inject(FaultSite(0, FaultUnit.SA2_ARBITER, 4))
        xb.notify_fault_change()
        assert xb.plan_path(4) is None

    def test_plan_cache_invalidation(self):
        f = faults5()
        xb = Crossbar(5, f)
        assert xb.plan_path(1) is not None  # populates cache
        f.inject(FaultSite(0, FaultUnit.XB_MUX, 1))
        xb.notify_fault_change()
        assert xb.plan_path(1) is None

    def test_out_of_range_rejected(self):
        xb = Crossbar(5, faults5())
        with pytest.raises(ValueError):
            xb.plan_path(5)


class TestSecondarySourceMap:
    def test_paper_mapping_0based(self):
        # paper (1-based): secondary(out_k)=M_{k-1} for k>=2, secondary(out_1)=M_2
        assert secondary_source(0, 5) == 1
        assert secondary_source(1, 5) == 0
        assert secondary_source(2, 5) == 1
        assert secondary_source(3, 5) == 2
        assert secondary_source(4, 5) == 3

    def test_demux_inventory_matches_paper(self):
        """Section V-D: one 1:3 demux, three 1:2 demuxes for a 5x5 crossbar."""
        fan = demux_fanouts(5)
        sizes = sorted(fan.values())
        assert sizes == [1, 2, 2, 2, 3]
        # mux 1 (paper's M2) carries its own output + two secondaries
        assert fan[1] == 3
        # mux 4 (paper's M5) feeds nothing extra
        assert fan[4] == 1

    def test_two_ports(self):
        assert secondary_source(0, 2) == 1
        assert secondary_source(1, 2) == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            secondary_source(0, 1)
        with pytest.raises(ValueError):
            secondary_source(5, 5)


class TestSecondaryPathCrossbar:
    def test_fault_free_behaves_like_baseline(self):
        """Section V-D: 'In the fault-free scenario, the protected crossbar
        behaves just like the baseline crossbar.'"""
        f = faults5()
        prot = SecondaryPathCrossbar(5, f)
        base = Crossbar(5, faults5())
        for k in range(5):
            assert prot.plan_path(k) == base.plan_path(k)

    def test_paper_example_out3_via_m2(self):
        """Paper example: M3 faulty -> out 3 reached through M2."""
        f = faults5()
        xb = SecondaryPathCrossbar(5, f)
        # paper out3 == 0-based port 2; its mux is 2, secondary source is 1
        f.inject(FaultSite(0, FaultUnit.XB_MUX, 2))
        xb.notify_fault_change()
        plan = xb.plan_path(2)
        assert plan is not None
        assert plan.secondary
        assert plan.arb_port == 1
        assert plan.mux == 1
        assert plan.dest == 2

    def test_sa2_fault_redirects_to_secondary(self):
        """Section V-C2: a faulty output arbiter is tolerated by arbitrating
        for the secondary-source port."""
        f = faults5()
        xb = SecondaryPathCrossbar(5, f)
        f.inject(FaultSite(0, FaultUnit.SA2_ARBITER, 3))
        xb.notify_fault_change()
        plan = xb.plan_path(3)
        assert plan.secondary and plan.arb_port == 2

    def test_double_fault_normal_and_secondary_kills_output(self):
        f = faults5()
        xb = SecondaryPathCrossbar(5, f)
        f.inject(FaultSite(0, FaultUnit.XB_MUX, 3))
        f.inject(FaultSite(0, FaultUnit.XB_MUX, 2))  # secondary source of 3
        xb.notify_fault_change()
        assert xb.plan_path(3) is None

    def test_secondary_circuitry_fault(self):
        f = faults5()
        xb = SecondaryPathCrossbar(5, f)
        f.inject(FaultSite(0, FaultUnit.XB_MUX, 3))
        f.inject(FaultSite(0, FaultUnit.XB_SECONDARY, 3))
        xb.notify_fault_change()
        assert xb.plan_path(3) is None

    def test_paper_m2_m4_tolerable(self):
        """Section VIII-D: M2 and M4 (0-based muxes 1 and 3) faulty is
        tolerable."""
        reach = reachable_outputs_exact(5, mux_faults=frozenset({1, 3}))
        assert all(reach)

    def test_paper_third_fault_fatal(self):
        """With M2, M4 dead, a further fault in M1, M3 or M5 is fatal."""
        for extra in (0, 2, 4):
            reach = reachable_outputs_exact(
                5, mux_faults=frozenset({1, 3, extra})
            )
            assert not all(reach), f"extra mux fault {extra} should be fatal"

    def test_exact_max_exceeds_paper_conservative_two(self):
        """DESIGN.md item 4: exact analysis finds a tolerable 3-fault set
        ({M1, M3, M5}), so the exact max is 3 vs the paper's stated 2."""
        assert max_tolerable_mux_faults(5) == 3
        reach = reachable_outputs_exact(5, mux_faults=frozenset({0, 2, 4}))
        assert all(reach)


class TestReachabilityProperties:
    @given(
        st.frozensets(st.integers(0, 4), max_size=5),
        st.frozensets(st.integers(0, 4), max_size=5),
        st.frozensets(st.integers(0, 4), max_size=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_exact_matches_plan_path(self, muxes, secondaries, sa2s):
        """The standalone reachability analysis and the live crossbar's
        plan computation must always agree."""
        f = faults5()
        for m in muxes:
            f.inject(FaultSite(0, FaultUnit.XB_MUX, m))
        for s in secondaries:
            f.inject(FaultSite(0, FaultUnit.XB_SECONDARY, s))
        for a in sa2s:
            f.inject(FaultSite(0, FaultUnit.SA2_ARBITER, a))
        xb = SecondaryPathCrossbar(5, f)
        expected = reachable_outputs_exact(
            5,
            mux_faults=muxes,
            secondary_faults=secondaries,
            sa2_faults=sa2s,
        )
        assert [xb.plan_path(k) is not None for k in range(5)] == expected

    @given(st.integers(2, 9))
    @settings(max_examples=20, deadline=None)
    def test_secondary_source_never_self(self, num_ports):
        for k in range(num_ports):
            assert secondary_source(k, num_ports) != k

    @given(st.integers(2, 9))
    @settings(max_examples=20, deadline=None)
    def test_single_mux_fault_always_tolerated(self, num_ports):
        for m in range(num_ports):
            reach = reachable_outputs_exact(num_ports, mux_faults=frozenset({m}))
            assert all(reach)
