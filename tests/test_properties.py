"""Property-based integration tests over the whole simulator.

Hypothesis drives random network shapes, traffic levels, and fault
scenarios through end-to-end simulations, checking the global invariants:

* flit conservation (everything injected is buffered, in flight, or
  ejected — and after a drain, fully ejected),
* no misrouting (the destination NIC asserts on wrong deliveries),
* credit sanity (counters never exceed buffer depth — asserted inside
  the router), wire/physical VC indirection stays a permutation,
* protected routers never deadlock under *tolerable* fault sets,
* fault-free protected == baseline latency (mechanism inertness).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.core.protected_router import protected_router_factory
from repro.faults.injector import RandomFaultSchedule
from repro.network.simulator import NoCSimulator, baseline_router_factory
from repro.traffic.generator import SyntheticTraffic

SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def network_configs(draw):
    width = draw(st.integers(2, 4))
    height = draw(st.integers(2, 4))
    num_vnets = draw(st.sampled_from([1, 2]))
    vcs_per_vnet = draw(st.integers(1, 2))
    return NetworkConfig(
        width=width,
        height=height,
        topology=draw(st.sampled_from(["mesh", "torus"])),
        router=RouterConfig(
            num_vcs=num_vnets * vcs_per_vnet * draw(st.integers(1, 2)),
            num_vnets=num_vnets,
            buffer_depth=draw(st.integers(2, 5)),
        ),
    )


def build_sim(net, seed, rate, protected=False, fault_schedule=None,
              measure=800):
    factory = (
        protected_router_factory(net) if protected else baseline_router_factory(net)
    )
    return NoCSimulator(
        net,
        SimulationConfig(
            warmup_cycles=100,
            measure_cycles=measure,
            drain_cycles=6000,
            seed=seed,
            watchdog_cycles=4000,
        ),
        SyntheticTraffic(net, injection_rate=rate, rng=seed),
        router_factory=factory,
        fault_schedule=fault_schedule,
    )


class TestConservationProperties:
    @given(network_configs(), st.integers(0, 1000), st.floats(0.01, 0.12))
    @settings(**SETTINGS)
    def test_all_packets_delivered_and_conserved(self, net, seed, rate):
        sim = build_sim(net, seed, rate)
        res = sim.run()
        assert not res.blocked
        assert res.drained
        assert res.stats.packets_ejected == res.stats.packets_created
        assert res.stats.flits_ejected == res.stats.flits_injected
        assert sim.flits_in_network == 0
        sim.check_invariants()

    @given(network_configs(), st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_mid_run_invariants(self, net, seed):
        """Invariants hold at arbitrary points mid-simulation, not just at
        the end."""
        sim = build_sim(net, seed, 0.08)
        for cycle in range(300):
            sim._step(cycle, inject_traffic=True)
            if cycle % 50 == 17:
                sim.check_invariants()

    @given(network_configs(), st.integers(0, 500), st.floats(0.01, 0.1))
    @settings(**SETTINGS)
    def test_protected_equals_baseline_fault_free(self, net, seed, rate):
        """The FT machinery is inert without faults: identical results."""
        r1 = build_sim(net, seed, rate, protected=False).run()
        r2 = build_sim(net, seed, rate, protected=True).run()
        assert r1.stats.packets_ejected == r2.stats.packets_ejected
        assert r1.avg_network_latency == r2.avg_network_latency
        assert r2.router_stats.sa_bypass_grants == 0
        assert r2.router_stats.secondary_path_grants == 0
        assert r2.router_stats.va_borrowed_grants == 0


class TestFaultToleranceProperties:
    @given(
        st.integers(0, 300),
        st.integers(1, 20),
    )
    @settings(**SETTINGS)
    def test_tolerable_faults_never_wedge_protected_network(self, seed, nfaults):
        net = NetworkConfig(width=3, height=3, router=RouterConfig())
        inj = RandomFaultSchedule(
            net.router,
            net.num_nodes,
            mean_interval=20,
            num_faults=nfaults,
            rng=seed,
            first_fault_at=0,
            avoid_failure=True,
        )
        sim = build_sim(net, seed, 0.06, protected=True, fault_schedule=inj)
        res = sim.run()
        assert not res.blocked
        assert res.stats.packets_ejected == res.stats.packets_created
        for router in sim.routers:
            assert not router.failed
            router.check_invariants()

    @given(st.integers(0, 300))
    @settings(**SETTINGS)
    def test_faults_never_cause_misroute(self, seed):
        """Every ejected flit reached its true destination (the NIC asserts
        internally; this test also cross-checks the samples)."""
        net = NetworkConfig(width=3, height=3, router=RouterConfig())
        inj = RandomFaultSchedule(
            net.router, net.num_nodes, mean_interval=15, num_faults=12,
            rng=seed, first_fault_at=0, avoid_failure=True,
        )
        sim = NoCSimulator(
            net,
            SimulationConfig(warmup_cycles=50, measure_cycles=600,
                             drain_cycles=5000, seed=seed,
                             watchdog_cycles=4000),
            SyntheticTraffic(net, injection_rate=0.06, rng=seed),
            router_factory=protected_router_factory(net),
            fault_schedule=inj,
            keep_samples=True,
        )
        res = sim.run()
        for s in res.stats.samples:
            assert s.src != s.dest
            assert 0 <= s.dest < net.num_nodes
            assert s.network_latency >= 5  # at least one router + link

    @given(st.integers(0, 200), st.floats(0.02, 0.1))
    @settings(**SETTINGS)
    def test_faulty_latency_never_better(self, seed, rate):
        net = NetworkConfig(width=3, height=3, router=RouterConfig())
        base = build_sim(net, seed, rate, protected=True).run()
        inj = RandomFaultSchedule(
            net.router, net.num_nodes, mean_interval=10, num_faults=15,
            rng=seed, first_fault_at=0, avoid_failure=True,
        )
        faulty = build_sim(net, seed, rate, protected=True,
                           fault_schedule=inj).run()
        assert faulty.avg_network_latency >= base.avg_network_latency - 0.5
