"""Aggregation semantics of :mod:`repro.network.stats`: latency histogram
bucket edges (upper-inclusive ``le`` convention), overflow behaviour,
per-virtual-network breakdowns, measurement-window filtering, and the
summary surface the experiment reports consume."""

import math

import pytest

from repro.network.stats import LATENCY_EDGES, LatencySample, NetworkStats
from repro.observability.metrics import Histogram, merge_snapshots


def sample(
    *,
    packet_id=0,
    src=0,
    dest=5,
    vnet=0,
    size_flits=1,
    creation=0,
    injection=0,
    ejection=10,
    hops=2,
):
    return LatencySample(
        packet_id=packet_id,
        src=src,
        dest=dest,
        vnet=vnet,
        size_flits=size_flits,
        creation_cycle=creation,
        injection_cycle=injection,
        ejection_cycle=ejection,
        hops=hops,
    )


class TestHistogramEdges:
    def test_value_on_edge_lands_upper_inclusive(self):
        h = Histogram((4, 8, 16))
        h.observe(4)  # == first edge -> bucket 0 (le 4)
        h.observe(5)  # -> bucket 1 (le 8)
        h.observe(8)  # == second edge -> bucket 1
        h.observe(16)  # == last edge -> bucket 2
        assert h.counts == [1, 2, 1, 0]

    def test_overflow_bucket(self):
        h = Histogram((4, 8))
        h.observe(9)
        h.observe(10_000)
        assert h.counts == [0, 0, 2]
        assert h.bucket_of(10_000) == len(h.edges)

    def test_mean_survives_bucketing(self):
        h = Histogram((4, 8))
        h.observe(3)
        h.observe(7)
        assert h.mean == pytest.approx(5.0)

    def test_latency_edges_are_sorted_and_fixed(self):
        assert list(LATENCY_EDGES) == sorted(LATENCY_EDGES)
        # fixed edges are the merge contract: every shard's histogram
        # must share them bucket-for-bucket
        a = NetworkStats().latency_hist
        b = NetworkStats().latency_hist
        assert a.edges == b.edges == list(LATENCY_EDGES)


class TestRecordPacket:
    def test_latency_lands_in_correct_bucket(self):
        ns = NetworkStats()
        ns.record_packet(sample(injection=0, ejection=12))  # latency 12
        hist = ns.latency_histogram()
        bucket = ns.latency_hist.bucket_of(12)
        assert hist["counts"][bucket] == 1
        assert hist["count"] == 1
        assert LATENCY_EDGES[bucket] == 12  # upper-inclusive: on the edge

    def test_window_filtering(self):
        ns = NetworkStats()
        ns.set_window(100, 200)
        ns.record_packet(sample(creation=50, injection=50, ejection=70))
        ns.record_packet(sample(creation=150, injection=150, ejection=170))
        ns.record_packet(sample(creation=200, injection=200, ejection=220))
        # all three ejected, only the in-window creation is measured
        assert ns.packets_ejected == 3
        assert ns.measured_packets == 1
        assert ns.latency_hist.count == 1
        assert ns.avg_network_latency == 20.0

    def test_vnet_breakdown_per_class(self):
        ns = NetworkStats()
        ns.record_packet(sample(vnet=0, injection=0, ejection=10))
        ns.record_packet(sample(vnet=0, injection=0, ejection=20))
        ns.record_packet(sample(vnet=1, injection=0, ejection=40))
        bd = ns.vnet_breakdown()
        assert bd[0] == {"packets": 2, "avg_network_latency": 15.0}
        assert bd[1] == {"packets": 1, "avg_network_latency": 40.0}
        assert list(bd) == [0, 1]  # sorted by vnet

    def test_max_and_hops(self):
        ns = NetworkStats()
        ns.record_packet(sample(injection=0, ejection=30, hops=3))
        ns.record_packet(sample(injection=0, ejection=10, hops=1))
        assert ns.max_network_latency == 30
        assert ns.avg_hops == 2.0

    def test_empty_stats_are_nan(self):
        ns = NetworkStats()
        assert math.isnan(ns.avg_network_latency)
        assert math.isnan(ns.avg_total_latency)

    def test_percentile_requires_kept_samples(self):
        ns = NetworkStats()
        ns.record_packet(sample())
        with pytest.raises(ValueError):
            ns.latency_percentile(50)
        kept = NetworkStats(keep_samples=True)
        kept.record_packet(sample(injection=0, ejection=10))
        assert kept.latency_percentile(50) == 10.0


class TestSummarySurface:
    def test_summary_includes_latency_histogram(self):
        ns = NetworkStats()
        ns.record_packet(sample(injection=0, ejection=10))
        s = ns.summary()
        assert s["latency_histogram"]["count"] == 1
        assert s["measured_packets"] == 1
        assert s["avg_network_latency"] == 10.0

    def test_shard_histograms_merge_exactly(self):
        # two "shards" recording disjoint packets must merge to the same
        # histogram one shard recording everything would produce
        whole = NetworkStats()
        part_a = NetworkStats()
        part_b = NetworkStats()
        for i, lat in enumerate((3, 12, 12, 700, 5000)):
            s = sample(packet_id=i, injection=0, ejection=lat)
            whole.record_packet(s)
            (part_a if i % 2 == 0 else part_b).record_packet(s)
        merged = merge_snapshots(
            [
                {"histograms": {"lat": part_a.latency_histogram()}},
                {"histograms": {"lat": part_b.latency_histogram()}},
            ]
        )["histograms"]["lat"]
        assert merged == whole.latency_histogram()
