"""Online fault-injection campaigns (:mod:`repro.experiments.fault_campaign`).

Covers the tentpole contract: timelines as resilient sweep points
(checkpointed, resumable — truncated-checkpoint and SIGKILL flavours),
recovery metrics measured per router kind, the batched-engine decline
for fabric-mutating schedules, and the degradation-over-lifetime report
joining the FIT model with measured recovery.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.core.protected_router import protected_router_factory
from repro.experiments import fault_campaign
from repro.experiments.fault_campaign import CampaignConfig
from repro.experiments.latency import LatencyConfig
from repro.faults import TimelineSpec, make_schedule
from repro.network.simulator import NoCSimulator
from repro.router.flit import reset_packet_ids
from repro.traffic.generator import SyntheticTraffic

QUICK_LATENCY = LatencyConfig(
    width=4, height=4,
    warmup_cycles=200, measure_cycles=800, drain_cycles=2000, seed=5,
)

QUICK_CAMPAIGN = CampaignConfig(
    timelines=2,
    router_kinds=("baseline", "protected"),
    timeline=TimelineSpec(events=3, mean_interval=150.0),
    latency=QUICK_LATENCY,
    app="lu",
)


def _run(config=QUICK_CAMPAIGN, **kw):
    return fault_campaign.run(config, jobs=kw.pop("jobs", 1), **kw)


class TestCampaignRun:
    @pytest.fixture(scope="class")
    def result(self):
        return _run()

    def test_recovery_metrics_measured(self, result):
        rows = {r["kind"]: r for r in result.extras["rows"]}
        assert set(rows) == {"baseline", "protected"}
        for row in rows.values():
            assert row["runs"] == 2
            assert row["events"] > 0
            assert 0.0 <= row["recovered_frac"] <= 1.0
            assert row["exposed_flits"] >= 0

    def test_timeline_points_fall_back_to_event_engine(self, result):
        sweep = result.extras["sweep"]
        reasons = {
            reason
            for shard in sweep.shards
            for reason in shard.fallback_reasons
        }
        assert any("mutates the fabric" in r for r in reasons)
        # 2 kinds x (1 reference + 2 timelines): every point fell back
        # (references are singleton structural groups below the lane
        # batching threshold)
        assert sum(s.fallbacks for s in sweep.shards) == 6

    def test_degradation_report_joins_fit_model(self, result):
        deg = result.extras["degradation"]
        for row in deg["simulated"]:
            assert row["fit_per_router"] > 0
            assert row["network_mtbf_hours"] > 0
            assert row["events_per_year"] == pytest.approx(
                8760.0 / row["network_mtbf_hours"]
            )
        kinds = {r["kind"] for r in deg["analytic"]}
        assert kinds == {"bulletproof", "vicis"}
        for row in deg["analytic"]:
            assert row["analytic"] is True
            assert row["mean_faults_to_failure"] > 1.0
            assert row["expected_years_to_failure"] > 0

    def test_structural_checks_pass(self, result):
        by_label = {r.label: r.measured for r in result.rows}
        assert by_label["fault-free references carry no recovery log"] is True
        assert by_label["every timeline produced a recovery log"] is True
        assert by_label["campaign delivered fault events"] is True

    def test_serial_equals_parallel(self, result):
        parallel = _run(jobs=2)
        assert parallel.extras["rows"] == result.extras["rows"]


class TestCampaignConfigValidation:
    def test_bad_config_rejected(self):
        with pytest.raises(ValueError, match="timelines"):
            _run(CampaignConfig(timelines=0, latency=QUICK_LATENCY))
        with pytest.raises(ValueError, match="router_kinds"):
            _run(
                CampaignConfig(router_kinds=(), latency=QUICK_LATENCY)
            )

    def test_legacy_keywords_warn(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            res = fault_campaign.run(
                QUICK_CAMPAIGN, timelines=1, jobs=1
            )
        assert res.experiment == "fault_campaign"


class TestRecoveryDeterminism:
    """A timeline run is a pure function of its spec + traffic seed."""

    def _one(self):
        net = NetworkConfig(width=4, height=4)
        spec = TimelineSpec(events=3, mean_interval=120.0, seed=17)
        schedule = make_schedule(
            spec, config=net.router, num_routers=net.num_nodes
        )
        reset_packet_ids()
        sim = NoCSimulator(
            net,
            SimulationConfig(
                warmup_cycles=150, measure_cycles=500, drain_cycles=1500,
                seed=11, watchdog_cycles=5000,
            ),
            SyntheticTraffic(net, injection_rate=0.05, rng=11),
            router_factory=protected_router_factory(net),
            fault_schedule=schedule,
        )
        return sim.run()

    def test_recovery_log_bit_identical(self):
        a, b = self._one(), self._one()
        assert a.recovery is not None
        assert a.recovery == b.recovery
        assert a.recovery["events"] == 3
        assert a.stats.summary() == b.stats.summary()

    def test_recovery_counters_reach_network_stats(self):
        res = self._one()
        assert res.stats.fault_events == 3
        summary = res.stats.summary()
        assert summary["recovery"]["fault_events"] == 3

    def test_fault_free_summary_untouched(self):
        net = NetworkConfig(width=3, height=3)
        reset_packet_ids()
        sim = NoCSimulator(
            net,
            SimulationConfig(
                warmup_cycles=50, measure_cycles=200, drain_cycles=800,
                seed=2, watchdog_cycles=3000,
            ),
            SyntheticTraffic(net, injection_rate=0.05, rng=2),
        )
        res = sim.run()
        assert res.recovery is None
        assert "recovery" not in res.stats.summary()


class TestCampaignResumeGolden:
    """Resume splices checkpointed timelines bit-identically."""

    def test_truncated_checkpoint_resume_matches(self, tmp_path):
        full = _run(out_dir=tmp_path / "run")
        jsonl = tmp_path / "run" / "sweep-000.jsonl"
        lines = jsonl.read_text().splitlines()
        assert len(lines) == 6  # 2 kinds x (1 reference + 2 timelines)
        jsonl.write_text("\n".join(lines[:3]) + "\n")

        resumed = _run(resume=tmp_path / "run")
        assert resumed.rows == full.rows
        assert resumed.extras["rows"] == full.extras["rows"]
        assert resumed.extras["sweep"].resumed == 3


#: subprocess driver: SIGKILL the whole process group mid-campaign, then
#: resume from the same run directory (timeline-granularity checkpoints)
_DRIVER = """\
import json, sys

from repro.experiments.fault_campaign import CampaignConfig, run
from repro.experiments.latency import LatencyConfig
from repro.faults import TimelineSpec

mode, run_dir, out_json, measure = sys.argv[1:5]

config = CampaignConfig(
    timelines=3,
    router_kinds=("protected",),
    timeline=TimelineSpec(events=3, mean_interval=150.0),
    latency=LatencyConfig(
        width=4, height=4, warmup_cycles=200,
        measure_cycles=int(measure), drain_cycles=2000, seed=5,
    ),
    app="lu",
)
kw = {"resume": run_dir} if mode == "resume" else {"out_dir": run_dir}
res = run(config, jobs=2, **kw)
with open(out_json, "w") as fp:
    json.dump(
        {
            "rows": res.extras["rows"],
            "resumed": res.extras["sweep"].resumed,
        },
        fp,
    )
"""


def _spawn(script, mode, run_dir, out_json, measure):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, str(script), mode, str(run_dir), str(out_json),
         str(measure)],
        env=env,
        start_new_session=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestKillMidCampaign:
    def test_sigkill_resume_bit_identical(self, tmp_path):
        script = tmp_path / "driver.py"
        script.write_text(_DRIVER)

        # one measure window everywhere: the resilient runtime pins the
        # resumed configuration to the checkpointed one, and the window
        # is long enough (~2 s per point) that the kill lands mid-run
        measure = 12_000
        ref_json = tmp_path / "ref.json"
        proc = _spawn(script, "run", tmp_path / "ref-run", ref_json, measure)
        assert proc.wait(timeout=300) == 0
        reference = json.loads(ref_json.read_text())

        run_dir = tmp_path / "killed-run"
        kill_json = tmp_path / "kill.json"
        proc = _spawn(script, "run", run_dir, kill_json, measure)
        jsonl = run_dir / "sweep-000.jsonl"
        deadline = time.time() + 120
        while time.time() < deadline:
            if jsonl.exists() and len(jsonl.read_text().splitlines()) >= 1:
                break
            if proc.poll() is not None:
                pytest.fail("driver exited before it could be killed")
            time.sleep(0.02)
        else:
            pytest.fail("no checkpointed timeline appeared within 120s")
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        assert not kill_json.exists()

        resume_json = tmp_path / "resume.json"
        proc = _spawn(script, "resume", run_dir, resume_json, measure)
        assert proc.wait(timeout=300) == 0
        resumed = json.loads(resume_json.read_text())
        assert resumed["rows"] == reference["rows"]
        assert 1 <= resumed["resumed"] <= 4
