"""Single-router pipeline tests: stage timing, credits, wormhole order.

Uses the SingleRouterHarness (a lone router at the centre of a 3x3 mesh,
node 4) so stage-by-stage behaviour is observable without a fabric.
"""

import pytest

from repro.config import PORT_EAST, PORT_LOCAL, PORT_NORTH, PORT_WEST
from repro.router.flit import Packet
from repro.router.vc import VCState

from conftest import SingleRouterHarness


class TestStageTiming:
    def test_head_takes_four_stages(self, harness):
        """Head flit: RC at t+1, VA at t+2, SA at t+3, XB at t+4."""
        vc = harness.router.in_ports[PORT_WEST].by_wire(0)
        harness.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        assert vc.state == VCState.ROUTING
        harness.step()  # RC
        assert vc.state == VCState.WAITING_VA
        assert vc.route == PORT_EAST
        harness.step()  # VA
        assert vc.state == VCState.ACTIVE
        assert vc.out_vc is not None
        harness.step()  # SA
        assert len(harness.router.pending_grants()) == 1
        assert not harness.sched.delivered
        harness.step()  # XB
        assert len(harness.sched.delivered) == 1
        assert vc.state == VCState.IDLE

    def test_body_flits_pipeline_behind_head(self, harness):
        """A 3-flit packet leaves in 3 consecutive cycles after the head's
        4-cycle pipeline."""
        harness.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=3))
        harness.step(4)
        assert len(harness.sched.delivered) == 1
        harness.step()
        assert len(harness.sched.delivered) == 2
        harness.step()
        assert len(harness.sched.delivered) == 3

    def test_local_delivery_routes_to_local_port(self, harness):
        harness.inject(PORT_WEST, 0, Packet(src=3, dest=4, size_flits=1))
        assert harness.run_until_delivered(1)
        _, out_port, _, flit = harness.sched.delivered[0]
        assert out_port == PORT_LOCAL
        assert flit.dest == 4

    def test_xy_route_computed(self, harness):
        # node 4 = (1,1); dest 2 = (2,0): X first -> EAST
        harness.inject(PORT_LOCAL, 0, Packet(src=4, dest=2, size_flits=1))
        assert harness.run_until_delivered(1)
        assert harness.sched.delivered[0][1] == PORT_EAST

    def test_hops_incremented(self, harness):
        harness.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        assert harness.run_until_delivered(1)
        assert harness.sched.delivered[0][3].hops == 1


class TestCredits:
    def test_credit_returned_per_flit(self, harness):
        harness.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=2))
        assert harness.run_until_delivered(2)
        assert harness.sched.credits == [
            (4, PORT_WEST, 0),
            (4, PORT_WEST, 0),
        ]

    def test_output_credits_consumed_and_capped(self, harness):
        """With no credits returned, at most buffer_depth flits leave on
        one output VC."""
        router = harness.router
        depth = router.config.buffer_depth
        harness.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=6))
        # 6-flit packet, buffer depth 4: inject refills as slots free
        harness.step(40)
        out = router.out_ports[PORT_EAST]
        sent = len(harness.sched.delivered)
        assert sent == depth  # stalls once downstream credits exhausted
        assert out.credits[harness.sched.delivered[0][2]] == 0

    def test_credit_restores_flow(self, harness):
        harness.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=6))
        harness.step(40)
        stalled = len(harness.sched.delivered)
        # hand back one credit on the allocated out VC
        out_vc = harness.sched.delivered[0][2]
        harness.router.receive_credit(PORT_EAST, out_vc)
        harness.step(3)
        assert len(harness.sched.delivered) == stalled + 1

    def test_credit_overflow_detected(self, harness):
        with pytest.raises(AssertionError):
            harness.router.receive_credit(PORT_EAST, 0)


class TestVAOutputState:
    def test_downstream_vc_reserved_until_tail(self, harness):
        router = harness.router
        harness.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=2))
        harness.step(3)  # RC, VA, SA
        vc = router.in_ports[PORT_WEST].by_wire(0)
        dvc = vc.out_vc
        assert router.out_ports[PORT_EAST].allocated[dvc] == vc.packet_id
        harness.step(2)  # head XB, tail SA... keep going until tail leaves
        assert harness.run_until_delivered(2)
        assert router.out_ports[PORT_EAST].allocated[dvc] is None

    def test_two_packets_get_distinct_downstream_vcs(self, harness):
        harness.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=4))
        harness.inject(PORT_NORTH, 1, Packet(src=1, dest=5, size_flits=4))
        # Both stage-1 arbiters may propose the same downstream VC; the
        # loser retries the following cycle, so allow 3 cycles for VA.
        harness.step(3)
        vc_a = harness.router.in_ports[PORT_WEST].by_wire(0)
        vc_b = harness.router.in_ports[PORT_NORTH].by_wire(1)
        assert vc_a.state == VCState.ACTIVE
        assert vc_b.state == VCState.ACTIVE
        assert vc_a.out_vc != vc_b.out_vc

    def test_wormhole_no_interleaving_on_one_output_vc(self, harness):
        """Flits delivered on one output VC must be contiguous per packet."""
        harness.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=3))
        harness.inject(PORT_NORTH, 0, Packet(src=1, dest=5, size_flits=3))
        assert harness.run_until_delivered(6)
        per_outvc: dict[int, list] = {}
        for _, _, out_vc, flit in harness.sched.delivered:
            per_outvc.setdefault(out_vc, []).append(flit.packet_id)
        for pids in per_outvc.values():
            # contiguous runs: packet id changes at most once per packet
            changes = sum(1 for a, b in zip(pids, pids[1:]) if a != b)
            assert changes <= len(set(pids)) - 1


class TestContention:
    def test_one_flit_per_output_per_cycle(self, harness):
        """Two ports competing for EAST: deliveries never exceed 1/cycle."""
        harness.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=4))
        harness.inject(PORT_NORTH, 0, Packet(src=1, dest=5, size_flits=4))
        seen_cycles = []
        for _ in range(30):
            before = len(harness.sched.delivered)
            harness.step()
            got = len(harness.sched.delivered) - before
            assert got <= 1
            if got:
                seen_cycles.append(harness.cycle)
        assert len(harness.sched.delivered) == 8

    def test_different_outputs_in_parallel(self, harness):
        """EAST-bound and WEST-bound traffic crosses the XB the same cycle."""
        harness.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=2))
        harness.inject(PORT_EAST, 0, Packet(src=5, dest=3, size_flits=2))
        harness.step(5)
        # both packets fully delivered in the minimum time (4 + 1 cycles)
        assert len(harness.sched.delivered) == 4


class TestBusyFlag:
    def test_idle_router_not_busy(self, harness):
        assert not harness.router.busy

    def test_busy_while_flits_buffered(self, harness):
        harness.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        assert harness.router.busy
        assert harness.run_until_delivered(1)
        assert not harness.router.busy

    def test_invariants_hold_throughout(self, harness):
        harness.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=3))
        harness.inject(PORT_NORTH, 2, Packet(src=1, dest=7, size_flits=2))
        for _ in range(12):
            harness.step()
            harness.router.check_invariants()
