"""Behavioural tests of each protected-router mechanism (paper Section V).

Each test injects one class of fault into a single protected router and
checks both that traffic keeps flowing and that the *specific* mechanism
(duplicate RC, arbiter borrowing, bypass, transfer, secondary path) did
the work, via the router's statistics counters.
"""

import pytest

from repro.config import PORT_EAST, PORT_LOCAL, PORT_NORTH, PORT_SOUTH, PORT_WEST
from repro.faults.sites import FaultSite, FaultUnit
from repro.router.flit import Packet
from repro.router.vc import VCState

from conftest import SingleRouterHarness


@pytest.fixture
def h():
    return SingleRouterHarness(protected=True)


class TestDuplicateRC:
    def test_primary_fault_uses_duplicate(self, h):
        h.router.inject_fault(FaultSite(4, FaultUnit.RC_PRIMARY, PORT_WEST))
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        assert h.run_until_delivered(1)
        assert h.router.stats.rc_duplicate_computations >= 1
        assert h.sched.delivered[0][1] == PORT_EAST  # correct route

    def test_no_latency_penalty(self, h):
        """Spatial redundancy: same 4-cycle head pipeline as fault-free."""
        h.router.inject_fault(FaultSite(4, FaultUnit.RC_PRIMARY, PORT_WEST))
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        h.step(4)
        assert len(h.sched.delivered) == 1

    def test_both_units_dead_blocks_port(self, h):
        h.router.inject_fault(FaultSite(4, FaultUnit.RC_PRIMARY, PORT_WEST))
        h.router.inject_fault(FaultSite(4, FaultUnit.RC_DUPLICATE, PORT_WEST))
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        h.step(20)
        assert not h.sched.delivered
        assert h.router.stats.rc_blocked_cycles > 0
        assert h.router.failed and "RC" in h.router.failed_stages

    def test_other_ports_unaffected(self, h):
        h.router.inject_fault(FaultSite(4, FaultUnit.RC_PRIMARY, PORT_WEST))
        h.router.inject_fault(FaultSite(4, FaultUnit.RC_DUPLICATE, PORT_WEST))
        h.inject(PORT_NORTH, 0, Packet(src=1, dest=5, size_flits=1))
        assert h.run_until_delivered(1)


class TestVAArbiterSharing:
    def test_borrowing_allows_allocation(self, h):
        h.router.inject_fault(FaultSite(4, FaultUnit.VA1_ARBITER_SET, PORT_WEST, 0))
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        assert h.run_until_delivered(1)
        assert h.router.stats.va_borrowed_grants >= 1

    def test_scenario1_same_cycle_when_lender_idle(self, h):
        """Lender idle: allocation completes with no extra cycles (4-stage
        head pipeline preserved)."""
        h.router.inject_fault(FaultSite(4, FaultUnit.VA1_ARBITER_SET, PORT_WEST, 0))
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        h.step(4)
        assert len(h.sched.delivered) == 1

    def test_scenario2_waits_for_busy_lender(self, h):
        """Every healthy sibling is itself in VA the same cycle: the
        borrower must wait (lenders allocate first, Section V-B1)."""
        h.router.inject_fault(FaultSite(4, FaultUnit.VA1_ARBITER_SET, PORT_WEST, 0))
        # heads on all four VCs of the port arrive together: VC1..VC3 are
        # healthy and enter VA simultaneously, leaving VC0 nothing to borrow
        for v in range(4):
            h.inject(PORT_WEST, v, Packet(src=3, dest=5, size_flits=1))
        h.step(15)
        assert len(h.sched.delivered) == 4
        assert h.router.stats.va_borrow_wait_cycles >= 1
        assert h.router.stats.va_borrowed_grants >= 1

    def test_borrow_fields_used_and_cleared(self, h):
        h.router.inject_fault(FaultSite(4, FaultUnit.VA1_ARBITER_SET, PORT_WEST, 0))
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        h.step(1)  # RC done; VA happens next step
        h.step(1)
        # after the allocation cycle the lender's fields are cleared
        for vc in h.router.in_ports[PORT_WEST]:
            assert vc.vf is False
            assert vc.r2 is None
            assert vc.borrower_id is None

    def test_all_sets_faulty_blocks_port(self, h):
        for v in range(4):
            h.router.inject_fault(
                FaultSite(4, FaultUnit.VA1_ARBITER_SET, PORT_WEST, v)
            )
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        h.step(20)
        assert not h.sched.delivered
        assert h.router.failed and "VA" in h.router.failed_stages

    def test_three_faulty_sets_still_work(self, h):
        """Section VIII-B: 3 faults per port are tolerated."""
        for v in range(3):
            h.router.inject_fault(
                FaultSite(4, FaultUnit.VA1_ARBITER_SET, PORT_WEST, v)
            )
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        assert h.run_until_delivered(1)
        assert not h.router.failed


class TestVAStage2Retry:
    def test_retry_picks_other_downstream_vc(self, h):
        h.router.inject_fault(FaultSite(4, FaultUnit.VA2_ARBITER, PORT_EAST, 0))
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        assert h.run_until_delivered(1)
        vc_used = h.sched.delivered[0][2]
        assert vc_used != 0
        assert h.router.stats.va_stage2_fault_retries >= 0  # may pick 1 first

    def test_forced_retry_costs_one_cycle(self, h):
        """Force the stage-1 arbiter to pick the faulty downstream VC first:
        head needs exactly one extra cycle (Section V-B3)."""
        h.router.inject_fault(FaultSite(4, FaultUnit.VA2_ARBITER, PORT_EAST, 0))
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        h.step(4)  # would have delivered in a fault-free run...
        delivered_at_4 = len(h.sched.delivered)
        h.step(1)
        # stage-1 round-robin starts at dvc 0 (the faulty one), so the
        # first attempt failed and the retry added exactly one cycle.
        assert delivered_at_4 == 0
        assert len(h.sched.delivered) == 1
        assert h.router.stats.va_stage2_fault_retries == 1

    def test_exclusion_prevents_livelock(self, h):
        """With every dvc arbiter except one faulty, allocation still
        converges (exclusion set skips known-bad arbiters)."""
        for d in range(3):
            h.router.inject_fault(FaultSite(4, FaultUnit.VA2_ARBITER, PORT_EAST, d))
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        assert h.run_until_delivered(1, max_cycles=30)
        assert h.sched.delivered[0][2] == 3


class TestSABypass:
    def test_bypass_keeps_port_flowing(self, h):
        h.router.inject_fault(FaultSite(4, FaultUnit.SA1_ARBITER, PORT_WEST))
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=2))
        assert h.run_until_delivered(2, max_cycles=100)
        assert h.router.stats.sa_bypass_grants >= 1

    def test_transfer_moves_flits_to_default_slot(self, h):
        """Flits in a non-default VC get transferred (slot swap) and then
        flow via the bypass."""
        h.router.inject_fault(FaultSite(4, FaultUnit.SA1_ARBITER, PORT_WEST))
        h.inject(PORT_WEST, 3, Packet(src=3, dest=5, size_flits=2))
        assert h.run_until_delivered(2, max_cycles=100)
        assert h.router.stats.vc_transfers >= 1

    def test_arbiter_and_bypass_dead_blocks_port(self, h):
        h.router.inject_fault(FaultSite(4, FaultUnit.SA1_ARBITER, PORT_WEST))
        h.router.inject_fault(FaultSite(4, FaultUnit.SA1_BYPASS, PORT_WEST))
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        h.step(30)
        assert not h.sched.delivered
        assert h.router.failed and "SA" in h.router.failed_stages

    def test_rotation_serves_multiple_vcs(self):
        """With the arbiter bypassed, traffic on two VCs still both drain
        thanks to default-winner rotation + transfers."""
        h = SingleRouterHarness(protected=True, bypass_rotation_period=4)
        h.router.inject_fault(FaultSite(4, FaultUnit.SA1_ARBITER, PORT_WEST))
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=2))
        h.inject(PORT_WEST, 1, Packet(src=3, dest=7, size_flits=2))
        assert h.run_until_delivered(4, max_cycles=200)

    def test_fault_free_protected_router_never_bypasses(self, h):
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=3))
        assert h.run_until_delivered(3)
        assert h.router.stats.sa_bypass_grants == 0
        assert h.router.stats.vc_transfers == 0


class TestXBSecondaryPath:
    def test_mux_fault_uses_secondary(self, h):
        h.router.inject_fault(FaultSite(4, FaultUnit.XB_MUX, PORT_EAST))
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=2))
        assert h.run_until_delivered(2)
        assert h.router.stats.secondary_path_grants >= 2
        # flits still arrive on the EAST link
        assert all(d[1] == PORT_EAST for d in h.sched.delivered)

    def test_sp_fsp_fields_set(self, h):
        h.router.inject_fault(FaultSite(4, FaultUnit.XB_MUX, PORT_EAST))
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=1))
        h.step(1)  # RC
        vc = h.router.in_ports[PORT_WEST].by_wire(0)
        assert vc.fsp is True
        assert vc.sp == PORT_EAST - 1  # secondary source port

    def test_secondary_contends_with_host_port_traffic(self, h):
        """Traffic redirected through mux j competes with native traffic to
        output j: both still drain, one flit per mux per cycle."""
        h.router.inject_fault(FaultSite(4, FaultUnit.XB_MUX, PORT_SOUTH))
        # native traffic to the secondary-source port (SOUTH-1 == EAST)
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=3))
        # traffic to SOUTH, which must borrow EAST's mux
        h.inject(PORT_NORTH, 0, Packet(src=1, dest=7, size_flits=3))
        assert h.run_until_delivered(6, max_cycles=100)
        east = [d for d in h.sched.delivered if d[1] == PORT_EAST]
        south = [d for d in h.sched.delivered if d[1] == PORT_SOUTH]
        assert len(east) == 3 and len(south) == 3

    def test_normal_plus_secondary_dead_blocks_output(self, h):
        h.router.inject_fault(FaultSite(4, FaultUnit.XB_MUX, PORT_SOUTH))
        h.router.inject_fault(FaultSite(4, FaultUnit.XB_MUX, PORT_SOUTH - 1))
        h.inject(PORT_NORTH, 0, Packet(src=1, dest=7, size_flits=1))
        h.step(30)
        assert not h.sched.delivered
        assert h.router.stats.unreachable_output_cycles > 0
        assert h.router.failed and "XB" in h.router.failed_stages


class TestMultiStageFaults:
    def test_one_fault_per_stage_tolerated(self, h):
        """The paper's headline: one fault in each stage (4 total) is
        tolerated simultaneously."""
        h.router.inject_fault(FaultSite(4, FaultUnit.RC_PRIMARY, PORT_WEST))
        h.router.inject_fault(FaultSite(4, FaultUnit.VA1_ARBITER_SET, PORT_WEST, 0))
        h.router.inject_fault(FaultSite(4, FaultUnit.SA1_ARBITER, PORT_WEST))
        h.router.inject_fault(FaultSite(4, FaultUnit.XB_MUX, PORT_EAST))
        assert not h.router.failed
        h.inject(PORT_WEST, 0, Packet(src=3, dest=5, size_flits=3))
        assert h.run_until_delivered(3, max_cycles=200)

    def test_max_tolerated_faults_27(self, h):
        """Section VIII-E: 5 (RC) + 15 (VA) + 5 (SA) + 2 (XB) = 27 faults
        tolerated simultaneously (paper accounting for XB)."""
        r = h.router
        for p in range(5):
            r.inject_fault(FaultSite(4, FaultUnit.RC_PRIMARY, p))
        for p in range(5):
            for v in range(3):  # 3 of 4 arbiter sets per port
                r.inject_fault(FaultSite(4, FaultUnit.VA1_ARBITER_SET, p, v))
        for p in range(5):
            r.inject_fault(FaultSite(4, FaultUnit.SA1_ARBITER, p))
        # paper's tolerable XB pair: M2 and M4 (0-based 1 and 3)
        r.inject_fault(FaultSite(4, FaultUnit.XB_MUX, 1))
        r.inject_fault(FaultSite(4, FaultUnit.XB_MUX, 3))
        assert r.faults.num_faults == 27
        assert not r.failed
        # traffic still flows end to end
        h.inject(PORT_WEST, 3, Packet(src=3, dest=5, size_flits=2))
        assert h.run_until_delivered(2, max_cycles=300)
