"""Unit tests for the network interface and the statistics module."""

import math

import pytest

from repro.config import NetworkConfig, PORT_LOCAL, RouterConfig
from repro.network.nic import NetworkInterface
from repro.network.stats import LatencySample, NetworkStats
from repro.router.flit import Packet
from repro.router.router import BaselineRouter
from repro.router.routing import XYRouting


class _NullSched:
    def __init__(self):
        self.nic_credits = []

    def return_nic_credit(self, node, wire_vc):
        self.nic_credits.append((node, wire_vc))


def make_nic(num_vcs=4, num_vnets=1):
    net = NetworkConfig(
        width=3, height=3, router=RouterConfig(num_vcs=num_vcs, num_vnets=num_vnets)
    )
    stats = NetworkStats()
    router = BaselineRouter(4, net.router, XYRouting(net))
    nic = NetworkInterface(4, router, net.router, stats)
    return nic, router, stats


class TestInjection:
    def test_rejects_foreign_packet(self):
        nic, _, _ = make_nic()
        with pytest.raises(ValueError):
            nic.enqueue(Packet(src=0, dest=1, size_flits=1))

    def test_rejects_bad_vnet(self):
        nic, _, _ = make_nic(num_vnets=1)
        with pytest.raises(ValueError):
            nic.enqueue(Packet(src=4, dest=1, size_flits=1, vnet=3))

    def test_one_flit_per_cycle(self):
        nic, router, stats = make_nic()
        nic.enqueue(Packet(src=4, dest=1, size_flits=3))
        nic.step(0)
        assert stats.flits_injected == 1
        nic.step(1)
        nic.step(2)
        assert stats.flits_injected == 3
        assert router.in_ports[PORT_LOCAL].by_wire(0).occupancy == 3

    def test_vc_allocated_per_packet_released_on_tail(self):
        nic, _, _ = make_nic()
        nic.enqueue(Packet(src=4, dest=1, size_flits=2))
        nic.step(0)
        assert nic.allocated[0] is not None
        nic.step(1)  # tail leaves the NIC
        assert nic.allocated[0] is None

    def test_credit_limits_injection(self):
        nic, router, stats = make_nic()
        nic.enqueue(Packet(src=4, dest=1, size_flits=8))
        for c in range(10):
            nic.step(c)
        # buffer depth 4: only 4 flits can enter without credits back
        assert stats.flits_injected == 4
        # a flit leaves the router buffer -> slot frees -> credit to NIC
        router.in_ports[PORT_LOCAL].by_wire(0).dequeue()
        nic.receive_credit(0)
        nic.step(11)
        assert stats.flits_injected == 5

    def test_credit_overflow_detected(self):
        nic, _, _ = make_nic()
        with pytest.raises(AssertionError):
            nic.receive_credit(0)

    def test_two_vnet_round_robin(self):
        nic, router, stats = make_nic(num_vcs=4, num_vnets=2)
        nic.enqueue(Packet(src=4, dest=1, size_flits=2, vnet=0))
        nic.enqueue(Packet(src=4, dest=2, size_flits=2, vnet=1))
        for c in range(4):
            nic.step(c)
        assert stats.flits_injected == 4
        # vnet 0 lands in VCs 0-1, vnet 1 in VCs 2-3
        assert router.in_ports[PORT_LOCAL].by_wire(0).occupancy == 2
        assert router.in_ports[PORT_LOCAL].by_wire(2).occupancy == 2

    def test_packets_injected_requires_head_entering_router(self):
        """Regression: under zero-credit backpressure a packet may win
        NIC-side VC allocation long before its head flit enters the
        router; ``packets_injected`` must count the latter event."""
        nic, router, stats = make_nic(num_vcs=1)
        # packet A consumes all 4 credits of the single wire VC; its tail
        # frees the VC so packet B gets allocated with zero credits left
        nic.enqueue(Packet(src=4, dest=1, size_flits=4))
        nic.enqueue(Packet(src=4, dest=1, size_flits=1))
        for c in range(6):
            nic.step(c)
        assert stats.flits_injected == 4
        assert stats.packets_injected == 1  # B has not entered the router
        # a slot frees downstream -> credit -> B's head really injects
        router.in_ports[PORT_LOCAL].by_wire(0).dequeue()
        nic.receive_credit(0)
        nic.step(6)
        assert stats.flits_injected == 5
        assert stats.packets_injected == 2

    def test_queued_packets_counts_active(self):
        nic, _, _ = make_nic()
        nic.enqueue(Packet(src=4, dest=1, size_flits=3))
        nic.enqueue(Packet(src=4, dest=2, size_flits=1))
        assert nic.queued_packets == 2
        nic.step(0)
        assert nic.queued_packets == 2  # one active, one waiting
        for c in range(1, 6):
            nic.step(c)
        assert nic.queued_packets == 0


class TestEjection:
    def test_misroute_asserts(self):
        nic, _, _ = make_nic()
        flit = next(Packet(src=0, dest=5, size_flits=1).flits())
        with pytest.raises(AssertionError):
            nic.eject(flit, 0, 10, _NullSched())

    def test_ejection_returns_credit_and_records(self):
        nic, _, stats = make_nic()
        sched = _NullSched()
        pkt = Packet(src=0, dest=4, size_flits=2, creation_cycle=0)
        flits = list(pkt.flits())
        for i, f in enumerate(flits):
            f.injection_cycle = 1
            f.hops = 3
            nic.eject(f, 1, 20 + i, sched)
        assert sched.nic_credits == [(4, 1), (4, 1)]
        assert stats.packets_ejected == 1
        assert stats.flits_ejected == 2


class TestNetworkStats:
    def sample(self, create=0, inject=2, eject=30, **kw):
        return LatencySample(
            packet_id=kw.get("pid", 1),
            src=0,
            dest=5,
            vnet=0,
            size_flits=1,
            creation_cycle=create,
            injection_cycle=inject,
            ejection_cycle=eject,
            hops=4,
        )

    def test_window_filtering(self):
        st = NetworkStats()
        st.set_window(100, 200)
        st.record_packet(self.sample(create=50))
        st.record_packet(self.sample(create=150))
        st.record_packet(self.sample(create=250))
        assert st.packets_ejected == 3
        assert st.measured_packets == 1

    def test_latency_aggregates(self):
        st = NetworkStats()
        st.record_packet(self.sample(create=0, inject=2, eject=30))
        st.record_packet(self.sample(create=0, inject=4, eject=20))
        assert st.avg_network_latency == pytest.approx((28 + 16) / 2)
        assert st.avg_total_latency == pytest.approx((30 + 20) / 2)
        assert st.max_network_latency == 28
        assert st.avg_hops == 4

    def test_empty_stats_are_nan(self):
        st = NetworkStats()
        assert math.isnan(st.avg_network_latency)
        assert math.isnan(st.avg_total_latency)

    def test_percentiles_require_samples(self):
        st = NetworkStats()
        with pytest.raises(ValueError):
            st.latency_percentile(99)
        st2 = NetworkStats(keep_samples=True)
        st2.record_packet(self.sample())
        assert st2.latency_percentile(50) == 28

    def test_throughput(self):
        st = NetworkStats()
        st.flits_ejected = 640
        assert st.throughput(100, 64) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            st.throughput(0, 64)

    def test_summary_keys(self):
        st = NetworkStats()
        s = st.summary()
        assert "avg_network_latency" in s and "measured_packets" in s
