"""Tests for the west-first adaptive routing extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    NetworkConfig,
    PORT_EAST,
    PORT_LOCAL,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_WEST,
)
from repro.faults.injector import ExplicitFaultSchedule
from repro.faults.sites import FaultSite, FaultUnit
from repro.router.routing import WestFirstRouting, XYRouting, _neighbour, make_routing

from conftest import make_network_config, make_sim


@pytest.fixture
def net():
    return NetworkConfig(width=8, height=8)


class TestWestFirstTurnModel:
    def test_west_destinations_forced_west(self, net):
        r = WestFirstRouting(net)
        centre = net.node_id(4, 4)
        # destination to the north-west: must go west first, no choice
        assert r.candidate_ports(centre, net.node_id(2, 2)) == [PORT_WEST]

    def test_eastward_destinations_adaptive(self, net):
        r = WestFirstRouting(net)
        centre = net.node_id(4, 4)
        cands = r.candidate_ports(centre, net.node_id(6, 6))
        assert sorted(cands) == sorted([PORT_EAST, PORT_SOUTH])

    def test_straight_line_single_candidate(self, net):
        r = WestFirstRouting(net)
        centre = net.node_id(4, 4)
        assert r.candidate_ports(centre, net.node_id(6, 4)) == [PORT_EAST]
        assert r.candidate_ports(centre, net.node_id(4, 2)) == [PORT_NORTH]

    def test_local_delivery(self, net):
        r = WestFirstRouting(net)
        assert r.candidate_ports(5, 5) == [PORT_LOCAL]
        assert r.output_port(5, 5) == PORT_LOCAL

    def test_requires_mesh(self):
        with pytest.raises(ValueError):
            WestFirstRouting(NetworkConfig(width=4, height=4, topology="torus"))

    def test_factory(self, net):
        assert isinstance(make_routing(net, "west_first"), WestFirstRouting)
        assert make_routing(net, "west_first").adaptive
        assert not make_routing(net, "xy").adaptive

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=100, deadline=None)
    def test_candidates_always_productive(self, src, dst):
        """Every candidate strictly reduces Manhattan distance, so any
        adaptive choice still delivers in minimal hops."""
        net = NetworkConfig(width=8, height=8)
        r = WestFirstRouting(net)
        if src == dst:
            return

        def manhattan(a, b):
            ax, ay = net.coords(a)
            bx, by = net.coords(b)
            return abs(ax - bx) + abs(ay - by)

        for port in r.candidate_ports(src, dst):
            nxt = _neighbour(net, src, port)
            assert manhattan(nxt, dst) == manhattan(src, dst) - 1

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=100, deadline=None)
    def test_no_turns_into_west(self, src, dst):
        """The west-first invariant that guarantees deadlock freedom:
        once a non-west move is made, west never reappears."""
        net = NetworkConfig(width=8, height=8)
        r = WestFirstRouting(net)
        cur, moved_non_west = src, False
        for _ in range(20):
            cands = r.candidate_ports(cur, dst)
            if cands == [PORT_LOCAL]:
                break
            if moved_non_west:
                assert PORT_WEST not in cands
            port = cands[-1]  # stress the least-preferred choice
            if port != PORT_WEST:
                moved_non_west = True
            cur = _neighbour(net, cur, port)
        assert cur == dst

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=60, deadline=None)
    def test_minimal_hop_count_matches_xy(self, src, dst):
        net = NetworkConfig(width=8, height=8)
        if src == dst:
            return
        assert (
            WestFirstRouting(net).hop_count(src, dst)
            == XYRouting(net).hop_count(src, dst)
        )


class TestAdaptiveSimulation:
    def test_network_delivers_with_west_first(self):
        net = make_network_config(4, 4)
        sim = make_sim(net, injection_rate=0.08, measure=1200,
                       routing_kind="west_first")
        res = sim.run()
        assert res.drained and not res.blocked
        assert res.stats.packets_ejected == res.stats.packets_created

    def test_protected_west_first_under_faults(self):
        net = make_network_config(4, 4)
        from repro.faults.injector import RandomFaultSchedule

        inj = RandomFaultSchedule(
            net.router, net.num_nodes, mean_interval=20, num_faults=12,
            rng=3, first_fault_at=0, avoid_failure=True,
        )
        sim = make_sim(net, protected=True, injection_rate=0.08,
                       measure=1500, routing_kind="west_first",
                       fault_schedule=inj)
        res = sim.run()
        assert res.drained and not res.blocked

    def test_adaptive_routes_around_dead_output(self):
        """Fault-aware routing: with XY a dead east output on the path
        strands south-east-bound packets; west-first detours south."""
        net = make_network_config(4, 4)
        victim = net.node_id(1, 1)
        # kill the east output entirely: normal mux + secondary circuitry
        faults = ExplicitFaultSchedule([
            (0, FaultSite(victim, FaultUnit.XB_MUX, PORT_EAST)),
            (0, FaultSite(victim, FaultUnit.XB_SECONDARY, PORT_EAST)),
        ])
        from repro.router.flit import Packet
        from repro.traffic.generator import TraceTraffic

        # packets from (0,1) to (3,2): XY would cross the victim eastward
        pkts = [
            Packet(src=net.node_id(0, 1), dest=net.node_id(3, 2),
                   size_flits=1, creation_cycle=10 + i)
            for i in range(20)
        ]

        def run(kind):
            sim = make_sim(
                net, protected=True, traffic=TraceTraffic(list(pkts)),
                warmup=0, measure=400, drain=3000, watchdog=1000,
                fault_schedule=ExplicitFaultSchedule(list(faults.planned)),
                routing_kind=kind,
            )
            return sim.run()

        import repro.router.flit as flit_mod

        xy = run("xy")
        # re-create identical packets (ids differ, timing identical)
        pkts = [
            Packet(src=net.node_id(0, 1), dest=net.node_id(3, 2),
                   size_flits=1, creation_cycle=10 + i)
            for i in range(20)
        ]
        wf = run("west_first")
        # XY strands the packets at the dead output
        assert xy.blocked or xy.stats.packets_ejected < xy.stats.packets_created
        # west-first delivers them all by detouring
        assert not wf.blocked
        assert wf.stats.packets_ejected == wf.stats.packets_created
        del flit_mod

    def test_adaptive_prefers_credit_rich_outputs(self):
        """Direct unit check: with equal plans, the RC unit picks the
        candidate with more downstream credits."""
        from conftest import SingleRouterHarness
        from repro.router.flit import Flit, FlitType

        h = SingleRouterHarness(protected=True)
        h.router.routing = WestFirstRouting(h.net)
        # dest south-east of node 4 (centre of 3x3): candidates E and S
        dest = 8  # (2,2)
        flit = Flit(FlitType.HEAD_TAIL, 0, 4, dest)
        # drain east credits so south looks better
        for d in range(h.net.router.num_vcs):
            h.router.out_ports[PORT_EAST].credits[d] = 0
        assert h.router.rc_unit.select_route(flit) == PORT_SOUTH
