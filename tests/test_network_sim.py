"""End-to-end network simulation tests: delivery, latency, conservation."""

import pytest

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.faults.injector import RandomFaultSchedule, ExplicitFaultSchedule
from repro.faults.sites import FaultSite, FaultUnit
from repro.network.simulator import NoCSimulator
from repro.router.flit import Packet
from repro.traffic.generator import (
    COHERENCE_MIX,
    SyntheticTraffic,
    TraceTraffic,
)
from repro.traffic.patterns import Transpose

from conftest import make_network_config, make_sim


class TestBasicDelivery:
    def test_every_packet_delivered(self):
        net = make_network_config(4, 4)
        sim = make_sim(net, injection_rate=0.05, measure=1000)
        res = sim.run()
        assert res.drained and not res.blocked
        assert res.stats.packets_ejected == res.stats.packets_created
        sim.check_invariants()

    def test_single_packet_zero_load_latency(self):
        """One 1-flit packet, one router-to-router hop: each hop costs the
        4 pipeline stages + 1 link cycle, and the final link delivers into
        the destination NIC — 2 routers x 5 cycles = 10."""
        net = make_network_config(4, 4)
        pkt = Packet(src=0, dest=1, size_flits=1, creation_cycle=10)
        sim = make_sim(net, traffic=TraceTraffic([pkt]), warmup=0, measure=50)
        res = sim.run()
        assert res.stats.measured_packets == 1
        assert res.stats.avg_network_latency == 10.0

    def test_multi_flit_serialisation_latency(self):
        """A packet that fits in one VC buffer serialises at 1 flit/cycle:
        the 4-flit tail trails the head by exactly 3 cycles."""
        net = make_network_config(4, 4)
        p1 = Packet(src=0, dest=1, size_flits=1, creation_cycle=10)
        sim1 = make_sim(net, traffic=TraceTraffic([p1]), warmup=0, measure=50)
        lat1 = sim1.run().stats.avg_network_latency
        p4 = Packet(src=0, dest=1, size_flits=4, creation_cycle=10)
        sim4 = make_sim(net, traffic=TraceTraffic([p4]), warmup=0, measure=50)
        lat4 = sim4.run().stats.avg_network_latency
        assert lat4 == lat1 + 3

    def test_packet_longer_than_buffer_pays_credit_stall(self):
        """A 5-flit packet in 4-deep VCs: the 5th flit waits for the credit
        round trip (XB + 1-cycle credit link), adding 2 cycles beyond pure
        serialisation."""
        net = make_network_config(4, 4)
        p1 = Packet(src=0, dest=1, size_flits=1, creation_cycle=10)
        lat1 = make_sim(net, traffic=TraceTraffic([p1]), warmup=0,
                        measure=50).run().stats.avg_network_latency
        p5 = Packet(src=0, dest=1, size_flits=5, creation_cycle=10)
        lat5 = make_sim(net, traffic=TraceTraffic([p5]), warmup=0,
                        measure=50).run().stats.avg_network_latency
        assert lat5 == lat1 + 4 + 2

    def test_latency_grows_with_distance(self):
        net = make_network_config(8, 8)
        lats = []
        for dest in (1, 9, 63):  # 1, 2, 14 hops
            pkt = Packet(src=0, dest=dest, size_flits=1, creation_cycle=0)
            sim = make_sim(net, traffic=TraceTraffic([pkt]), warmup=0, measure=10)
            lats.append(sim.run().stats.avg_network_latency)
        assert lats[0] < lats[1] < lats[2]
        # 5 cycles per router traversed: 14 hops -> 15 routers on the path
        assert lats[2] == 15 * 5

    def test_hops_match_manhattan_distance(self):
        net = make_network_config(6, 6)
        pkt = Packet(src=0, dest=35, size_flits=1, creation_cycle=0)
        sim = make_sim(net, traffic=TraceTraffic([pkt]), warmup=0, measure=10,
                       keep_samples=True)
        res = sim.run()
        # ``hops`` counts router (crossbar) traversals: Manhattan distance
        # (10 links) + the destination router = 11
        assert res.stats.samples[0].hops == 11


class TestLoadBehaviour:
    def test_latency_increases_with_load(self):
        net = make_network_config(4, 4)
        lat = []
        for rate in (0.02, 0.20):
            sim = make_sim(net, injection_rate=rate, measure=1500, seed=3)
            res = sim.run()
            assert not res.blocked
            lat.append(res.stats.avg_network_latency)
        assert lat[1] > lat[0]

    def test_throughput_matches_offered_load_below_saturation(self):
        net = make_network_config(4, 4)
        sim = make_sim(net, injection_rate=0.1, measure=3000, drain=4000, seed=5)
        res = sim.run()
        measured_cycles = 3000
        thr = res.stats.flits_ejected / (measured_cycles * net.num_nodes)
        assert thr == pytest.approx(0.1, rel=0.15)

    def test_coherence_mix_two_vnets(self):
        net = make_network_config(4, 4, num_vcs=4, num_vnets=2)
        traffic = SyntheticTraffic(
            net, injection_rate=0.08, mix=COHERENCE_MIX, rng=9
        )
        sim = make_sim(net, traffic=traffic, measure=1500)
        res = sim.run()
        assert res.drained and not res.blocked
        assert res.stats.packets_ejected == res.stats.packets_created

    def test_transpose_pattern_delivers(self):
        net = make_network_config(4, 4)
        traffic = SyntheticTraffic(
            net, injection_rate=0.05, pattern=Transpose(net), rng=2
        )
        sim = make_sim(net, traffic=traffic, measure=1000)
        res = sim.run()
        assert res.drained
        assert res.stats.packets_ejected == res.stats.packets_created

    def test_bursty_traffic_delivers(self):
        net = make_network_config(4, 4)
        traffic = SyntheticTraffic(
            net, injection_rate=0.05, rng=2, burstiness=0.6
        )
        sim = make_sim(net, traffic=traffic, measure=1500)
        res = sim.run()
        assert res.drained
        assert res.stats.packets_ejected == res.stats.packets_created


class TestProtectedNetwork:
    def test_protected_matches_baseline_when_fault_free(self):
        """Cycle-identical behaviour without faults (Section V-D)."""
        net = make_network_config(4, 4)
        r1 = make_sim(net, protected=False, measure=1200, seed=11).run()
        r2 = make_sim(net, protected=True, measure=1200, seed=11).run()
        assert r1.stats.avg_network_latency == r2.stats.avg_network_latency
        assert r1.stats.packets_ejected == r2.stats.packets_ejected

    def test_network_survives_scattered_faults(self):
        net = make_network_config(4, 4)
        inj = RandomFaultSchedule(
            net.router, net.num_nodes, mean_interval=200, num_faults=10,
            rng=4, first_fault_at=100, avoid_failure=True,
        )
        sim = make_sim(net, protected=True, fault_schedule=inj, measure=2000,
                       drain=4000)
        res = sim.run()
        assert res.faults_injected == 10
        assert not res.blocked
        assert res.stats.packets_ejected == res.stats.packets_created

    def test_faulty_latency_not_less_than_fault_free(self):
        net = make_network_config(4, 4)
        base = make_sim(net, protected=True, measure=2500, seed=21,
                        injection_rate=0.1).run()
        inj = RandomFaultSchedule(
            net.router, net.num_nodes, mean_interval=100, num_faults=12,
            rng=8, first_fault_at=50, avoid_failure=True,
        )
        faulty = make_sim(net, protected=True, fault_schedule=inj,
                          measure=2500, seed=21, injection_rate=0.1).run()
        assert (
            faulty.stats.avg_network_latency
            >= base.stats.avg_network_latency * 0.99
        )


class TestBaselineUnderFaults:
    def test_baseline_blocks_on_sa_fault(self):
        """An unprotected router with a faulty SA arbiter blocks traffic;
        the watchdog detects the stall."""
        net = make_network_config(4, 4)
        # SA arbiter of the west input port of a central router
        inj = ExplicitFaultSchedule(
            [(50, FaultSite(5, FaultUnit.SA1_ARBITER, 4))]
        )
        sim = make_sim(
            net, protected=False, fault_schedule=inj,
            injection_rate=0.1, measure=2000, drain=1500, watchdog=800,
        )
        res = sim.run()
        assert res.blocked or not res.drained

    def test_protected_survives_same_fault(self):
        net = make_network_config(4, 4)
        inj = ExplicitFaultSchedule(
            [(50, FaultSite(5, FaultUnit.SA1_ARBITER, 4))]
        )
        sim = make_sim(
            net, protected=True, fault_schedule=inj,
            injection_rate=0.1, measure=2000, drain=3000, watchdog=800,
        )
        res = sim.run()
        assert res.drained and not res.blocked


class TestWatchdogAndEdges:
    def test_empty_traffic_finishes_immediately(self):
        from repro.traffic.generator import NullTraffic

        net = make_network_config(3, 3)
        sim = make_sim(net, traffic=NullTraffic(), warmup=0, measure=100,
                       drain=100)
        res = sim.run()
        assert res.drained
        assert res.stats.packets_created == 0

    def test_torus_topology_runs(self):
        net = NetworkConfig(width=4, height=4, topology="torus",
                            router=RouterConfig())
        sim = make_sim(net, injection_rate=0.05, measure=800)
        res = sim.run()
        assert res.drained
        assert res.stats.packets_ejected == res.stats.packets_created

    def test_rectangular_mesh_runs(self):
        net = make_network_config(6, 2)
        sim = make_sim(net, injection_rate=0.05, measure=800)
        res = sim.run()
        assert res.drained
        assert res.stats.packets_ejected == res.stats.packets_created

    def test_small_buffers_and_vcs(self):
        net = make_network_config(3, 3, num_vcs=2, buffer_depth=2)
        sim = make_sim(net, injection_rate=0.05, measure=800)
        res = sim.run()
        assert res.drained
        assert res.stats.packets_ejected == res.stats.packets_created
