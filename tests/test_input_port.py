"""Tests for input ports and the wire/physical VC indirection."""

import pytest

from repro.router.flit import Packet
from repro.router.input_port import InputPort
from repro.router.vc import VCState


def port4():
    return InputPort(port=1, num_vcs=4, buffer_depth=4)


class TestIndirection:
    def test_initial_identity_mapping(self):
        ip = port4()
        for w in range(4):
            assert ip.by_wire(w) is ip.by_slot(w)
            assert ip.phys_of_wire(w) == w
        ip.check_invariants()

    def test_swap_moves_contents(self):
        ip = port4()
        flit = next(Packet(src=0, dest=1, size_flits=1).flits())
        ip.by_wire(0).enqueue(flit)
        ip.swap_slots(0, 2)
        # the flit now physically sits in slot 2
        assert ip.by_slot(2).occupancy == 1
        assert ip.by_slot(0).occupancy == 0
        # but wire 0 still reaches it
        assert ip.by_wire(0).occupancy == 1
        ip.check_invariants()

    def test_swap_is_involution(self):
        ip = port4()
        ip.swap_slots(1, 3)
        ip.swap_slots(1, 3)
        for w in range(4):
            assert ip.phys_of_wire(w) == w
        ip.check_invariants()

    def test_self_swap_is_noop(self):
        ip = port4()
        ip.swap_slots(2, 2)
        assert ip.phys_of_wire(2) == 2

    def test_arrivals_after_swap_follow_wire(self):
        """Mid-packet transfer: later flits of the packet land in the same
        VC object even though it moved slots."""
        ip = port4()
        flits = list(Packet(src=0, dest=1, size_flits=3).flits())
        ip.by_wire(1).enqueue(flits[0])
        ip.swap_slots(ip.phys_of_wire(1), 3)
        ip.by_wire(1).enqueue(flits[1])
        ip.by_wire(1).enqueue(flits[2])
        vc = ip.by_slot(3)
        assert vc.occupancy == 3
        assert [f.flit_index for f in vc.buffer] == [0, 1, 2]

    def test_wire_ids_are_stable_on_objects(self):
        ip = port4()
        ip.swap_slots(0, 1)
        assert ip.by_slot(0).index == 1
        assert ip.by_slot(1).index == 0


class TestDiagnostics:
    def test_total_occupancy(self):
        ip = port4()
        for f in Packet(src=0, dest=1, size_flits=2).flits():
            ip.by_wire(0).enqueue(f)
        for f in Packet(src=0, dest=2, size_flits=1).flits():
            ip.by_wire(2).enqueue(f)
        assert ip.total_occupancy == 3

    def test_idle(self):
        ip = port4()
        assert ip.idle()
        for f in Packet(src=0, dest=1, size_flits=1).flits():
            ip.by_wire(0).enqueue(f)
        assert not ip.idle()

    def test_iteration_yields_slots(self):
        ip = port4()
        assert len(list(ip)) == 4
        assert all(vc.state == VCState.IDLE for vc in ip)
