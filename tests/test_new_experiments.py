"""Tests for the detection-latency and fault-sweep experiments."""

import pytest

from repro.experiments import detection_latency, fault_sweep
from repro.experiments.latency import QUICK_CONFIG


class TestDetectionLatency:
    def test_accounting_closes(self):
        res = detection_latency.run(measure_cycles=1200, num_faults=16, seed=2)
        injected = res.row("faults injected").measured
        latent_spares = res.row("latent-spare injections (unobservable)").measured
        detected = res.row("observable faults detected").measured
        still_latent = res.row("still-latent at end of run").measured
        assert injected == latent_spares + detected + still_latent

    def test_detection_latencies_positive(self):
        res = detection_latency.run(measure_cycles=1200, num_faults=16, seed=2)
        assert res.row("every observed detection after injection").measured is True
        if res.extras["events"]:
            assert res.row("mean detection latency").measured > 0

    def test_higher_load_detects_faster(self):
        slow = detection_latency.run(
            measure_cycles=2500, num_faults=16, injection_rate=0.02, seed=3
        )
        fast = detection_latency.run(
            measure_cycles=2500, num_faults=16, injection_rate=0.15, seed=3
        )
        # more traffic exercises faulty components sooner (or detects at
        # least as many)
        assert (
            fast.row("observable faults detected").measured
            >= slow.row("observable faults detected").measured
        )


class TestFaultSweep:
    def test_shape(self):
        res = fault_sweep.run(fault_counts=(0, 8, 24), app="lu",
                              cfg=QUICK_CONFIG)
        assert res.row("zero faults costs nothing").measured is True
        assert res.row("overhead non-decreasing in fault count").measured is True
        assert "chart" in res.extras

    def test_zero_prepended(self):
        res = fault_sweep.run(fault_counts=(8,), app="lu", cfg=QUICK_CONFIG)
        rows = res.extras["rows"]
        assert rows[0][0] == 0 and rows[1][0] == 8

    def test_latencies_positive(self):
        res = fault_sweep.run(fault_counts=(0, 16), app="fft",
                              cfg=QUICK_CONFIG)
        for n, lat in res.extras["rows"]:
            assert lat > 0
