"""Tests for configuration objects and port geometry."""

import dataclasses

import pytest

from repro.config import (
    NetworkConfig,
    OPPOSITE_PORT,
    PORT_DELTAS,
    PORT_EAST,
    PORT_LOCAL,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_WEST,
    RouterConfig,
    SimulationConfig,
    port_name,
    replace,
)


class TestRouterConfig:
    def test_defaults_match_paper(self):
        cfg = RouterConfig()
        assert cfg.num_ports == 5
        assert cfg.num_vcs == 4
        assert cfg.buffer_depth == 4

    def test_rejects_too_few_ports(self):
        with pytest.raises(ValueError):
            RouterConfig(num_ports=1)

    def test_rejects_zero_vcs(self):
        with pytest.raises(ValueError):
            RouterConfig(num_vcs=0)

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            RouterConfig(buffer_depth=0)

    def test_rejects_indivisible_vnets(self):
        with pytest.raises(ValueError):
            RouterConfig(num_vcs=4, num_vnets=3)

    def test_rejects_zero_rotation(self):
        with pytest.raises(ValueError):
            RouterConfig(bypass_rotation_period=0)

    def test_vnet_partition(self):
        cfg = RouterConfig(num_vcs=4, num_vnets=2)
        assert cfg.vcs_per_vnet == 2
        assert list(cfg.vcs_of_vnet(0)) == [0, 1]
        assert list(cfg.vcs_of_vnet(1)) == [2, 3]
        assert cfg.vnet_of_vc(0) == 0
        assert cfg.vnet_of_vc(3) == 1

    def test_vnet_partition_is_exhaustive(self):
        cfg = RouterConfig(num_vcs=8, num_vnets=4)
        seen = []
        for vn in range(cfg.num_vnets):
            seen.extend(cfg.vcs_of_vnet(vn))
        assert seen == list(range(8))

    def test_frozen(self):
        cfg = RouterConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.num_vcs = 2


class TestNetworkConfig:
    def test_defaults_match_paper(self):
        net = NetworkConfig()
        assert (net.width, net.height) == (8, 8)
        assert net.num_nodes == 64
        assert net.topology == "mesh"

    def test_node_coords_roundtrip(self):
        net = NetworkConfig(width=5, height=3)
        for node in range(net.num_nodes):
            x, y = net.coords(node)
            assert net.node_id(x, y) == node

    def test_row_major_numbering(self):
        net = NetworkConfig(width=4, height=4)
        assert net.node_id(0, 0) == 0
        assert net.node_id(3, 0) == 3
        assert net.node_id(0, 1) == 4

    def test_rejects_bad_topology(self):
        with pytest.raises(ValueError):
            NetworkConfig(topology="hypercube")

    def test_rejects_out_of_range_coords(self):
        net = NetworkConfig(width=2, height=2)
        with pytest.raises(ValueError):
            net.node_id(2, 0)
        with pytest.raises(ValueError):
            net.coords(4)

    def test_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            NetworkConfig(link_latency=0)


class TestSimulationConfig:
    def test_total_cycles(self):
        sc = SimulationConfig(warmup_cycles=10, measure_cycles=20, drain_cycles=5)
        assert sc.total_cycles == 35

    def test_rejects_zero_measure(self):
        with pytest.raises(ValueError):
            SimulationConfig(measure_cycles=0)

    def test_rejects_negative_warmup(self):
        with pytest.raises(ValueError):
            SimulationConfig(warmup_cycles=-1)


class TestPortGeometry:
    def test_opposite_ports_are_involutions(self):
        for p, q in OPPOSITE_PORT.items():
            assert OPPOSITE_PORT[q] == p

    def test_deltas_cancel_for_opposites(self):
        for p, (dx, dy) in PORT_DELTAS.items():
            ox, oy = PORT_DELTAS[OPPOSITE_PORT[p]]
            assert (dx + ox, dy + oy) == (0, 0)

    def test_port_names(self):
        assert port_name(PORT_LOCAL) == "local"
        assert port_name(PORT_NORTH) == "north"
        assert port_name(PORT_EAST) == "east"
        assert port_name(PORT_SOUTH) == "south"
        assert port_name(PORT_WEST) == "west"
        assert port_name(7) == "port7"

    def test_replace_helper(self):
        cfg = RouterConfig()
        cfg2 = replace(cfg, num_vcs=8)
        assert cfg2.num_vcs == 8
        assert cfg.num_vcs == 4
