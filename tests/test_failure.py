"""Tests for the Section VIII failure predicates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RouterConfig
from repro.core.failure import (
    baseline_router_failed,
    failed_stages,
    protected_router_failed,
    rc_port_failed,
    sa_port_failed,
    va2_output_failed,
    va_port_failed,
    xb_output_failed,
)
from repro.faults.sites import FaultSite, FaultUnit, RouterFaultState, enumerate_sites


def fs(**router_kwargs):
    return RouterFaultState(RouterConfig(**router_kwargs))


class TestPerStagePredicates:
    def test_rc_needs_both_units(self):
        f = fs()
        f.inject(FaultSite(0, FaultUnit.RC_PRIMARY, 2))
        assert not rc_port_failed(f, 2)
        f.inject(FaultSite(0, FaultUnit.RC_DUPLICATE, 2))
        assert rc_port_failed(f, 2)

    def test_rc_different_ports_not_failure(self):
        """Section VIII-A: max 5 faults tolerated, one per port."""
        f = fs()
        for p in range(5):
            f.inject(FaultSite(0, FaultUnit.RC_PRIMARY, p))
        assert not any(rc_port_failed(f, p) for p in range(5))
        assert not protected_router_failed(f)

    def test_va_needs_all_sets(self):
        f = fs()
        for v in range(3):
            f.inject(FaultSite(0, FaultUnit.VA1_ARBITER_SET, 1, v))
        assert not va_port_failed(f, 1)
        f.inject(FaultSite(0, FaultUnit.VA1_ARBITER_SET, 1, 3))
        assert va_port_failed(f, 1)

    def test_va_fifteen_spread_faults_tolerated(self):
        """Section VIII-B: 3 faults x 5 ports = 15 tolerated."""
        f = fs()
        for p in range(5):
            for v in range(3):
                f.inject(FaultSite(0, FaultUnit.VA1_ARBITER_SET, p, v))
        assert not protected_router_failed(f)

    def test_sa_needs_arbiter_and_bypass(self):
        f = fs()
        f.inject(FaultSite(0, FaultUnit.SA1_ARBITER, 3))
        assert not sa_port_failed(f, 3)
        f.inject(FaultSite(0, FaultUnit.SA1_BYPASS, 3))
        assert sa_port_failed(f, 3)

    def test_xb_needs_both_paths(self):
        f = fs()
        f.inject(FaultSite(0, FaultUnit.XB_MUX, 3))
        assert not xb_output_failed(f, 3)
        f.inject(FaultSite(0, FaultUnit.XB_MUX, 2))  # secondary source
        assert xb_output_failed(f, 3)

    def test_va2_exact_extension(self):
        f = fs(num_vcs=4, num_vnets=2)
        f.inject(FaultSite(0, FaultUnit.VA2_ARBITER, 2, 0))
        assert not va2_output_failed(f, 2)
        f.inject(FaultSite(0, FaultUnit.VA2_ARBITER, 2, 1))
        # vnet 0 (VCs 0,1) fully dead
        assert va2_output_failed(f, 2)
        assert protected_router_failed(f, exact=True)
        assert not protected_router_failed(f, exact=False)


class TestRouterLevel:
    def test_healthy_router_not_failed(self):
        assert not protected_router_failed(fs())

    def test_baseline_fails_on_first_fault(self):
        f = fs()
        assert not baseline_router_failed(f)
        f.inject(FaultSite(0, FaultUnit.SA1_ARBITER, 0))
        assert baseline_router_failed(f)

    def test_failed_stages_names(self):
        f = fs()
        f.inject(FaultSite(0, FaultUnit.RC_PRIMARY, 0))
        f.inject(FaultSite(0, FaultUnit.RC_DUPLICATE, 0))
        f.inject(FaultSite(0, FaultUnit.SA1_ARBITER, 1))
        f.inject(FaultSite(0, FaultUnit.SA1_BYPASS, 1))
        assert failed_stages(f) == ["RC", "SA"]

    def test_min_faults_to_failure_is_two(self):
        """Section VIII-E: the minimum over stages is 2 (RC, SA, or XB)."""
        # RC pair
        f = fs()
        f.inject(FaultSite(0, FaultUnit.RC_PRIMARY, 0))
        f.inject(FaultSite(0, FaultUnit.RC_DUPLICATE, 0))
        assert protected_router_failed(f)
        # SA pair
        f = fs()
        f.inject(FaultSite(0, FaultUnit.SA1_ARBITER, 0))
        f.inject(FaultSite(0, FaultUnit.SA1_BYPASS, 0))
        assert protected_router_failed(f)
        # XB pair (normal + secondary circuitry)
        f = fs()
        f.inject(FaultSite(0, FaultUnit.XB_MUX, 0))
        f.inject(FaultSite(0, FaultUnit.XB_SECONDARY, 0))
        assert protected_router_failed(f)

    def test_no_single_fault_fails_protected_router(self):
        """Every single fault site, alone, is tolerated."""
        for site in enumerate_sites(RouterConfig()):
            f = fs()
            f.inject(site)
            assert not protected_router_failed(f, exact=True), site.describe()

    @given(st.lists(st.integers(0, 74), unique=True, max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_failure_is_monotone(self, idxs):
        """Adding faults can never un-fail a router."""
        all_sites = list(enumerate_sites(RouterConfig()))
        f = fs()
        prev = False
        for i in idxs:
            f.inject(all_sites[i])
            now = protected_router_failed(f, exact=True)
            assert now or not prev
            prev = now
