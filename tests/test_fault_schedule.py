"""The unified ``FaultSchedule`` API (:mod:`repro.faults.schedule`).

Pins the api-redesign contract: the runtime-checkable protocol, the
frozen spec dataclasses and their ``make_schedule`` registry, stable
content fingerprints, the JSON side-door used by the service, the
legacy ``*FaultInjector`` shims, and the warm-pool key regression
(schedule fingerprints must be part of the pool key).
"""

import dataclasses

import pytest

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.faults import (
    ExplicitFaultSchedule,
    FaultSchedule,
    FaultSite,
    FaultTimeline,
    FaultUnit,
    NullFaultSchedule,
    NullSpec,
    RandomFaultSchedule,
    RandomSpec,
    ScheduledSpec,
    TimelineSpec,
    TransientFaultSchedule,
    TransientSpec,
    make_schedule,
    schedule_spec,
    site_from_tuple,
    site_tuple,
    spec_name,
)
from repro.faults.schedule import SCHEDULE_SPECS

CFG = RouterConfig()
SITE = FaultSite(3, FaultUnit.RC_PRIMARY, 0)


def _one_of_each():
    return [
        make_schedule(ScheduledSpec(events=((10, 3, "rc_primary", 0, -1),))),
        make_schedule(RandomSpec(num_faults=2, seed=5), config=CFG, num_routers=9),
        make_schedule(NullSpec()),
        make_schedule(
            TransientSpec(rate_per_cycle=0.01, cycles=100, seed=3),
            config=CFG,
            num_routers=9,
        ),
        make_schedule(
            TimelineSpec(events=3, mean_interval=100.0, seed=2),
            config=CFG,
            num_routers=9,
        ),
    ]


class TestProtocol:
    def test_every_schedule_satisfies_the_protocol(self):
        for sched in _one_of_each():
            assert isinstance(sched, FaultSchedule), type(sched).__name__

    def test_legacy_due_alias_is_events_at(self):
        sched = ExplicitFaultSchedule([(5, SITE)])
        assert list(sched.due(4)) == []
        assert list(sched.due(5)) == [SITE]

    def test_registry_names(self):
        assert set(SCHEDULE_SPECS) == {
            "scheduled", "random", "none", "transient", "timeline",
        }
        assert spec_name(RandomSpec()) == "random"
        assert spec_name(object()) is None


class TestFingerprints:
    def test_stable_and_consumption_independent(self):
        for build in (
            lambda: make_schedule(
                RandomSpec(num_faults=3, seed=11), config=CFG, num_routers=9
            ),
            lambda: make_schedule(
                TimelineSpec(events=3, mean_interval=50.0, seed=1),
                config=CFG,
                num_routers=9,
            ),
        ):
            a, b = build(), build()
            fp = a.fingerprint()
            assert fp == b.fingerprint()
            # consuming events must not change the identity of the plan
            list(a.events_at(10**9))
            assert a.fingerprint() == fp

    def test_kind_prefix_and_content_sensitivity(self):
        fp1 = make_schedule(
            RandomSpec(num_faults=2, seed=1), config=CFG, num_routers=9
        ).fingerprint()
        fp2 = make_schedule(
            RandomSpec(num_faults=2, seed=2), config=CFG, num_routers=9
        ).fingerprint()
        assert fp1 != fp2
        assert NullFaultSchedule().fingerprint() == "none:0"
        tl = make_schedule(
            TimelineSpec(events=2, mean_interval=40.0, seed=0),
            config=CFG,
            num_routers=9,
        )
        assert tl.fingerprint().startswith("timeline:")

    def test_transient_duration_in_fingerprint(self):
        from repro.faults import TransientFault

        a = TransientFaultSchedule([TransientFault(10, SITE, duration=4)])
        b = TransientFaultSchedule([TransientFault(10, SITE, duration=9)])
        assert a.fingerprint() != b.fingerprint()


class TestJSONSideDoor:
    def test_schedule_spec_coerces_lists(self):
        spec = schedule_spec(
            "scheduled", {"events": [[10, 3, "rc_primary", 0, -1]]}
        )
        assert spec == ScheduledSpec(events=((10, 3, "rc_primary", 0, -1),))
        sched = make_schedule(spec)
        assert list(sched.events_at(10)) == [SITE]

    def test_unknown_name_and_field_raise(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            schedule_spec("cosmic_rays")
        with pytest.raises(TypeError):
            schedule_spec("random", {"num_fault": 3})

    def test_site_tuple_round_trip(self):
        assert site_from_tuple(site_tuple(SITE)) == SITE

    def test_geometry_required_for_drawing_specs(self):
        with pytest.raises(ValueError, match="config"):
            make_schedule(RandomSpec(num_faults=1))
        with pytest.raises(TypeError, match="not a registered"):
            make_schedule(object())


class TestServiceRoundTrip:
    """Campaign configs are JSON-submittable and cache-key soundly."""

    def test_build_config_nested_timeline_spec(self):
        from repro.service.fingerprint import build_config

        cfg = build_config(
            "fault_campaign",
            {
                "timelines": 4,
                "router_kinds": ["protected"],
                "timeline": {"events": 2, "mean_interval": 250.0, "seed": 9},
            },
        )
        assert cfg.timelines == 4
        assert cfg.router_kinds == ("protected",)
        assert cfg.timeline == TimelineSpec(
            events=2, mean_interval=250.0, seed=9
        )

    def test_fingerprint_stable_across_spellings(self):
        from repro.service.fingerprint import (
            effective_config,
            request_fingerprint,
        )

        spelled, seed1 = effective_config(
            "fault_campaign",
            {"timeline": {"events": 8, "mean_interval": 2000.0}},
        )
        defaulted, seed2 = effective_config("fault_campaign", {})
        assert request_fingerprint(
            "fault_campaign", spelled, seed=seed1
        ) == request_fingerprint("fault_campaign", defaulted, seed=seed2)
        changed, seed3 = effective_config(
            "fault_campaign", {"timeline": {"events": 9}}
        )
        assert request_fingerprint(
            "fault_campaign", changed, seed=seed3
        ) != request_fingerprint("fault_campaign", defaulted, seed=seed2)

    def test_canonical_handles_timeline_spec(self):
        from repro.service.fingerprint import canonical

        out = canonical(TimelineSpec())
        assert out["__config__"] == "TimelineSpec"
        assert out["events"] == 8


class TestLegacyShims:
    def test_constructors_warn_but_work(self):
        from repro.faults import (
            NullFaultInjector,
            RandomFaultInjector,
            ScheduledFaultInjector,
            TransientFaultInjector,
        )
        from repro.faults.transient import TransientFault

        with pytest.warns(DeprecationWarning, match="ExplicitFaultSchedule"):
            s = ScheduledFaultInjector([(5, SITE)])
        assert isinstance(s, ExplicitFaultSchedule)
        with pytest.warns(DeprecationWarning, match="RandomFaultSchedule"):
            r = RandomFaultInjector(
                CFG, 9, mean_interval=50, num_faults=1, rng=0
            )
        assert isinstance(r, RandomFaultSchedule)
        with pytest.warns(DeprecationWarning, match="NullFaultSchedule"):
            n = NullFaultInjector()
        assert isinstance(n, NullFaultSchedule)
        with pytest.warns(DeprecationWarning, match="TransientFaultSchedule"):
            t = TransientFaultInjector([TransientFault(3, SITE)])
        assert isinstance(t, TransientFaultSchedule)

    def test_shim_error_paths_still_raise(self):
        from repro.faults import RandomFaultInjector

        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="mean_interval"):
                RandomFaultInjector(CFG, 9, mean_interval=0, num_faults=1)


class TestWarmPoolFingerprintKey:
    """Regression: the schedule fingerprint is part of the pool key."""

    def _fixture(self):
        from repro.core.protected_router import protected_router_factory
        from repro.traffic.generator import SyntheticTraffic

        net = NetworkConfig(width=3, height=3)
        sim_cfg = SimulationConfig(
            warmup_cycles=20, measure_cycles=50, drain_cycles=500,
            seed=3, watchdog_cycles=2000,
        )
        traffic = lambda seed: SyntheticTraffic(  # noqa: E731
            net, injection_rate=0.02, rng=seed
        )
        return net, sim_cfg, traffic, protected_router_factory(net)

    def test_fingerprint_is_in_the_key(self):
        from repro.network import warm

        warm.clear_pool()
        try:
            net, sim_cfg, traffic, factory = self._fixture()
            sched = make_schedule(
                TransientSpec(rate_per_cycle=0.05, cycles=40, seed=1),
                config=net.router,
                num_routers=net.num_nodes,
            )
            a = warm.acquire(net, sim_cfg, traffic(1), factory, sched)
            key_a = next(iter(warm._POOL))
            assert key_a[-1] == sched.fingerprint()
            # same structure, no schedule: fabric recycles under a new key
            b = warm.acquire(net, sim_cfg, traffic(2), factory, None)
            assert b is a, "structural match should recycle the fabric"
            assert warm.pool_size() == 1
            (key_b,) = warm._POOL
            assert key_b[-1] == "none"
            assert key_b != key_a
        finally:
            warm.clear_pool()

    def test_unfingerprintable_schedule_key_never_reused(self):
        from repro.network import warm

        class Opaque:
            def due(self, cycle):
                return iter(())

        warm.clear_pool()
        try:
            net, sim_cfg, traffic, factory = self._fixture()
            warm.acquire(net, sim_cfg, traffic(1), factory, Opaque())
            (key1,) = warm._POOL
            warm.acquire(net, sim_cfg, traffic(2), factory, Opaque())
            (key2,) = warm._POOL
            assert key1 != key2, "anonymous schedules must never alias"
            assert warm.pool_size() == 1
        finally:
            warm.clear_pool()

    def test_stale_transient_step_wrapper_cleared_on_reset(self):
        """A pooled fabric must not retain a previous schedule's wrapper."""
        from repro.network import warm

        warm.clear_pool()
        try:
            net, sim_cfg, traffic, factory = self._fixture()
            sched = make_schedule(
                TransientSpec(rate_per_cycle=0.05, cycles=40, seed=1),
                config=net.router,
                num_routers=net.num_nodes,
            )
            sim = warm.acquire(net, sim_cfg, traffic(1), factory, sched)
            sched.attach(sim)
            assert "_step" in sim.__dict__
            again = warm.acquire(net, sim_cfg, traffic(2), factory, None)
            assert again is sim
            assert "_step" not in sim.__dict__, (
                "reset must drop the per-instance step wrapper"
            )
        finally:
            warm.clear_pool()


class TestSpecFreezing:
    def test_specs_are_frozen_and_hashable(self):
        for spec in (
            ScheduledSpec(events=((1, 0, "rc_primary", 0, -1),)),
            RandomSpec(),
            NullSpec(),
            TransientSpec(),
            TimelineSpec(),
        ):
            hash(spec)
            with pytest.raises(dataclasses.FrozenInstanceError):
                spec.name = "other"
