"""Tests for the FORC/FIT/SOFR/MTTF reliability stack (paper Section VII)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability.components import (
    Component,
    arbiter,
    comparator,
    demux,
    dff,
    mux,
)
from repro.reliability.forc import (
    DEFAULT_TDDB,
    PAPER_FIT_PER_FET,
    PAPER_TEMP_K,
    PAPER_VDD,
    calibrated_parameters,
    fit_per_fet,
)
from repro.reliability.mttf import (
    analyze_mttf,
    monte_carlo_mttf,
    mttf_from_fit,
    mttf_two_component_exact,
    mttf_two_component_paper,
    protected_reliability_curve,
    reliability_curve,
)
from repro.reliability.stages import (
    RouterGeometry,
    baseline_stages,
    correction_stages,
    total_fit,
)


class TestFORC:
    def test_calibration_reproduces_target(self):
        assert fit_per_fet() == pytest.approx(PAPER_FIT_PER_FET)

    def test_duty_cycle_scales_linearly(self):
        assert fit_per_fet(duty_cycle=0.5) == pytest.approx(
            0.5 * fit_per_fet(duty_cycle=1.0)
        )

    def test_higher_temperature_raises_fit(self):
        """TDDB accelerates with temperature."""
        assert fit_per_fet(temp_k=360.0) > fit_per_fet(temp_k=300.0)

    def test_higher_voltage_raises_fit(self):
        assert fit_per_fet(vdd=1.1) > fit_per_fet(vdd=1.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            fit_per_fet(vdd=0)
        with pytest.raises(ValueError):
            fit_per_fet(temp_k=-10)
        with pytest.raises(ValueError):
            fit_per_fet(duty_cycle=1.5)

    def test_custom_calibration(self):
        params = calibrated_parameters(fit_per_fet=0.25)
        assert fit_per_fet(params=params) == pytest.approx(0.25)

    @given(st.floats(0.7, 1.3), st.floats(270.0, 400.0))
    @settings(max_examples=50, deadline=None)
    def test_forc_always_positive_and_finite(self, vdd, temp):
        v = DEFAULT_TDDB.forc(vdd, temp)
        assert v > 0 and math.isfinite(v)


class TestComponents:
    def test_paper_component_fits(self):
        """Table I component column."""
        assert comparator(6).fit() == pytest.approx(11.7)
        assert arbiter(4).fit() == pytest.approx(7.4)
        assert arbiter(20).fit() == pytest.approx(36.7)
        assert arbiter(5).fit() == pytest.approx(9.3)
        assert mux(4, 1).fit() == pytest.approx(4.8)
        assert mux(5, 32).fit() == pytest.approx(204.8)

    def test_dff_fit_half_per_bit(self):
        """Table II: 0.5 FIT per DFF bit (25 T @ 20 % duty)."""
        assert dff(1).fit() == pytest.approx(0.5)
        assert dff(3).fit() == pytest.approx(1.5)

    def test_table2_mux_demux_fits(self):
        assert mux(2, 32).fit() == pytest.approx(25.6)
        assert demux(2, 32).fit() == pytest.approx(64.0)
        assert demux(3, 32).fit() == pytest.approx(96.0)

    def test_fallback_formulas_scale(self):
        assert arbiter(8).transistors == round(18.5 * 8)
        assert comparator(7).transistors == round(19.5 * 7)
        assert demux(2, 16).transistors == 20 * 16

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            arbiter(0)
        with pytest.raises(ValueError):
            comparator(0)
        with pytest.raises(ValueError):
            mux(1, 4)
        with pytest.raises(ValueError):
            demux(1)
        with pytest.raises(ValueError):
            dff(0)

    def test_component_validation(self):
        with pytest.raises(ValueError):
            Component("x", 0)
        with pytest.raises(ValueError):
            Component("x", 10, duty_cycle=0.0)


class TestStageInventories:
    def test_table1_values(self):
        stages = baseline_stages()
        assert stages["RC"].fit() == pytest.approx(117.0)
        assert stages["VA"].fit() == pytest.approx(1474.0)
        assert stages["SA"].fit() == pytest.approx(203.5)
        assert stages["XB"].fit() == pytest.approx(1024.0)
        # paper prints 2822 (its VA row is internally inconsistent by 4)
        assert total_fit(stages) == pytest.approx(2818.5)

    def test_table2_values_exact(self):
        stages = correction_stages()
        assert stages["RC"].fit() == pytest.approx(117.0)
        assert stages["VA"].fit() == pytest.approx(60.0)
        assert stages["SA"].fit() == pytest.approx(53.0)
        assert stages["XB"].fit() == pytest.approx(416.0)
        assert total_fit(stages) == pytest.approx(646.0)

    def test_component_counts_match_paper(self):
        """Table I: 10 comparators, 100+20 arbiters, 25+5+5 SA parts."""
        stages = baseline_stages()
        rc = dict((c.name, n) for c, n in stages["RC"].entries)
        assert rc["6-bit comparator"] == 10
        va = dict((c.name, n) for c, n in stages["VA"].entries)
        assert va["4:1 arbiter"] == 100
        assert va["20:1 arbiter"] == 20
        sa = dict((c.name, n) for c, n in stages["SA"].entries)
        assert sa["1-bit 4:1 mux"] == 25
        assert sa["4:1 arbiter"] == 5
        assert sa["5:1 arbiter"] == 5
        xb = dict((c.name, n) for c, n in stages["XB"].entries)
        assert xb["32-bit 5:1 mux"] == 5

    def test_correction_counts_match_paper(self):
        """Table II: 20 of each VA DFF; 5 muxes + demux set in XB."""
        stages = correction_stages()
        va = dict((c.name, n) for c, n in stages["VA"].entries)
        assert va["3-bit DFF"] == 20  # R2
        assert va["1-bit DFF"] == 20  # VF
        assert va["2-bit DFF"] == 20  # ID
        xb = dict((c.name, n) for c, n in stages["XB"].entries)
        assert xb["32-bit 2:1 mux"] == 5
        assert xb["32-bit 1:2 demux"] == 3
        assert xb["32-bit 1:3 demux"] == 1

    def test_geometry_scaling(self):
        small = RouterGeometry(num_vcs=2)
        assert total_fit(baseline_stages(small)) < total_fit(baseline_stages())

    def test_geometry_from_mesh(self):
        g = RouterGeometry.from_mesh(64)
        assert g.dest_bits == 6
        g = RouterGeometry.from_mesh(256)
        assert g.dest_bits == 8

    def test_fit_scales_with_temperature(self):
        stages = baseline_stages()
        assert total_fit(stages, temp_k=350.0) > total_fit(stages)


class TestMTTF:
    def test_paper_equation4(self):
        """MTTF_baseline ~ 354,358 h (paper uses FIT 2822)."""
        assert mttf_from_fit(2822.0) == pytest.approx(354_358, rel=1e-3)

    def test_paper_equation6(self):
        """Paper Eq. 5/6: 2,190,696 h with the printed '+' convention."""
        assert mttf_two_component_paper(2822.0, 646.0) == pytest.approx(
            2_190_696, rel=1e-3
        )

    def test_paper_equation7_ratio(self):
        ratio = mttf_two_component_paper(2822.0, 646.0) / mttf_from_fit(2822.0)
        assert ratio == pytest.approx(6.18, abs=0.05)

    def test_exact_formula_smaller_than_paper(self):
        assert mttf_two_component_exact(2822.0, 646.0) < mttf_two_component_paper(
            2822.0, 646.0
        )

    def test_monte_carlo_validates_exact_formula(self):
        exact = mttf_two_component_exact(2822.0, 646.0)
        mc = monte_carlo_mttf(2822.0, 646.0, samples=200_000, rng=42)
        assert mc == pytest.approx(exact, rel=0.02)

    def test_monte_carlo_batched_equals_scalar_reference(self):
        """The batched sampler consumes the identical RNG stream as the
        one-draw-per-call oracle — bit-equal means, not approximately."""
        from repro.reliability.mttf import monte_carlo_mttf_reference

        for seed in (7, 42, 1234):
            fast = monte_carlo_mttf(2822.0, 646.0, samples=4000, rng=seed)
            ref = monte_carlo_mttf_reference(
                2822.0, 646.0, samples=4000, rng=seed
            )
            assert fast == ref

    def test_analyze_mttf_end_to_end(self):
        rep = analyze_mttf()
        assert rep.mttf_baseline_hours == pytest.approx(354_358, rel=0.01)
        assert rep.mttf_protected_hours == pytest.approx(2_190_696, rel=0.01)
        assert rep.improvement == pytest.approx(6.18, abs=0.1)

    def test_reliability_curves(self):
        hours = np.array([0.0, 1e5, 1e6])
        r = reliability_curve(2822.0, hours)
        assert r[0] == pytest.approx(1.0)
        assert np.all(np.diff(r) < 0)
        rp = protected_reliability_curve(2822.0, 646.0, hours)
        assert np.all(rp >= r - 1e-12)  # redundancy never hurts

    def test_rejects_nonpositive_fit(self):
        with pytest.raises(ValueError):
            mttf_from_fit(0)
        with pytest.raises(ValueError):
            mttf_two_component_paper(-1, 5)

    @given(st.floats(10.0, 1e5), st.floats(10.0, 1e5))
    @settings(max_examples=50, deadline=None)
    def test_parallel_always_beats_single(self, l1, l2):
        single = mttf_from_fit(l1)
        assert mttf_two_component_exact(l1, l2) > single
        assert mttf_two_component_paper(l1, l2) > single
