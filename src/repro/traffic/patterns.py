"""Synthetic spatial traffic patterns.

Classic NoC destination distributions used by the examples, tests, and
ablation benches.  Each pattern maps a source node to either a fixed
destination (permutation patterns) or a distribution over destinations
(uniform/hotspot).  All patterns operate on a ``width x height`` mesh with
row-major node numbering.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import NetworkConfig


class TrafficPattern:
    """Interface: draw destination nodes for given source nodes."""

    name = "abstract"

    def __init__(self, config: NetworkConfig) -> None:
        self.config = config

    def destinations(
        self, sources: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Destination node for each source in ``sources`` (vectorised)."""
        raise NotImplementedError


class UniformRandom(TrafficPattern):
    """Every other node is an equally likely destination."""

    name = "uniform_random"

    def destinations(self, sources: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = self.config.num_nodes
        if n < 2:
            raise ValueError("uniform traffic needs at least two nodes")
        dests = rng.integers(0, n - 1, size=len(sources))
        # shift so a node never targets itself
        dests = np.where(dests >= sources, dests + 1, dests)
        return dests


class _PermutationPattern(TrafficPattern):
    """Fixed source->destination permutation; self-targets fall back to
    a uniform draw so every source can still inject."""

    def _permute(self, sources: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def destinations(self, sources: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        dests = self._permute(np.asarray(sources))
        selfed = dests == sources
        if np.any(selfed):
            n = self.config.num_nodes
            repl = rng.integers(0, n - 1, size=int(selfed.sum()))
            src_self = sources[selfed]
            repl = np.where(repl >= src_self, repl + 1, repl)
            dests = dests.copy()
            dests[selfed] = repl
        return dests


class Transpose(_PermutationPattern):
    """(x, y) -> (y, x).  Requires a square mesh."""

    name = "transpose"

    def __init__(self, config: NetworkConfig) -> None:
        super().__init__(config)
        if config.width != config.height:
            raise ValueError("transpose needs a square mesh")

    def _permute(self, sources: np.ndarray) -> np.ndarray:
        w = self.config.width
        x, y = sources % w, sources // w
        return x * w + y


class BitComplement(_PermutationPattern):
    """Node i -> (N-1) - i."""

    name = "bit_complement"

    def _permute(self, sources: np.ndarray) -> np.ndarray:
        return (self.config.num_nodes - 1) - sources


class BitReverse(_PermutationPattern):
    """Node i -> bit-reversed(i).  Requires a power-of-two node count."""

    name = "bit_reverse"

    def __init__(self, config: NetworkConfig) -> None:
        super().__init__(config)
        n = config.num_nodes
        if n & (n - 1):
            raise ValueError("bit_reverse needs a power-of-two node count")
        self._bits = n.bit_length() - 1
        table = np.arange(n)
        rev = np.zeros(n, dtype=np.int64)
        for b in range(self._bits):
            rev |= ((table >> b) & 1) << (self._bits - 1 - b)
        self._table = rev

    def _permute(self, sources: np.ndarray) -> np.ndarray:
        return self._table[sources]


class Tornado(_PermutationPattern):
    """(x, y) -> (x + ceil(w/2) - 1 mod w, y): stresses one direction."""

    name = "tornado"

    def _permute(self, sources: np.ndarray) -> np.ndarray:
        w = self.config.width
        x, y = sources % w, sources // w
        nx_ = (x + (w + 1) // 2 - 1) % w
        return y * w + nx_


class Neighbor(_PermutationPattern):
    """(x, y) -> (x+1 mod w, y): minimal-distance reference pattern."""

    name = "neighbor"

    def _permute(self, sources: np.ndarray) -> np.ndarray:
        w = self.config.width
        x, y = sources % w, sources // w
        return y * w + (x + 1) % w


class Hotspot(TrafficPattern):
    """A fraction of traffic targets a small set of hotspot nodes.

    Models directory/memory-controller hotspotting: with probability
    ``fraction`` a packet goes to a (uniformly chosen) hotspot node,
    otherwise to a uniform-random node.
    """

    name = "hotspot"

    def __init__(
        self,
        config: NetworkConfig,
        hotspots: Optional[list[int]] = None,
        fraction: float = 0.2,
    ) -> None:
        super().__init__(config)
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if hotspots is None:
            # default: the four centre-ish nodes
            w, h = config.width, config.height
            hotspots = [
                config.node_id(w // 2, h // 2),
                config.node_id(max(w // 2 - 1, 0), h // 2),
                config.node_id(w // 2, max(h // 2 - 1, 0)),
                config.node_id(max(w // 2 - 1, 0), max(h // 2 - 1, 0)),
            ]
        self.hotspots = sorted(set(hotspots))
        if not self.hotspots:
            raise ValueError("need at least one hotspot node")
        for hs in self.hotspots:
            if not 0 <= hs < config.num_nodes:
                raise ValueError(f"hotspot {hs} outside the mesh")
        self.fraction = fraction
        self._uniform = UniformRandom(config)

    def destinations(self, sources: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        dests = self._uniform.destinations(sources, rng)
        hot = rng.random(len(sources)) < self.fraction
        if np.any(hot):
            hs = rng.choice(self.hotspots, size=int(hot.sum()))
            dests = dests.copy()
            dests[hot] = hs
            # a hotspot node may have drawn itself; redirect those uniformly
            selfed = dests == sources
            if np.any(selfed):
                n = self.config.num_nodes
                repl = rng.integers(0, n - 1, size=int(selfed.sum()))
                src_self = sources[selfed]
                repl = np.where(repl >= src_self, repl + 1, repl)
                dests[selfed] = repl
        return dests


_PATTERNS = {
    cls.name: cls
    for cls in (
        UniformRandom,
        Transpose,
        BitComplement,
        BitReverse,
        Tornado,
        Neighbor,
        Hotspot,
    )
}


def make_pattern(name: str, config: NetworkConfig, **kwargs) -> TrafficPattern:
    """Construct a pattern by name (see ``available_patterns``)."""
    try:
        cls = _PATTERNS[name]
    except KeyError:
        raise ValueError(
            f"unknown pattern {name!r}; available: {sorted(_PATTERNS)}"
        ) from None
    return cls(config, **kwargs)


def available_patterns() -> list[str]:
    return sorted(_PATTERNS)
