"""Packet-trace record/replay.

A trace is a sequence of packet records, one per line (JSONL), sorted by
creation cycle.  Traces decouple workload generation from simulation:
record a synthetic/app source once, replay it against baseline vs
protected routers, or across fault schedules, with identical offered
traffic.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from ..router.flit import Packet


TRACE_FIELDS = ("cycle", "src", "dest", "size", "vnet")


def packet_to_record(packet: Packet) -> dict:
    """Serializable record of one packet."""
    return {
        "cycle": packet.creation_cycle,
        "src": packet.src,
        "dest": packet.dest,
        "size": packet.size_flits,
        "vnet": packet.vnet,
    }


def record_to_packet(record: dict) -> Packet:
    """Rebuild a packet from a trace record (fresh packet id)."""
    missing = [f for f in TRACE_FIELDS if f not in record]
    if missing:
        raise ValueError(f"trace record missing fields: {missing}")
    return Packet(
        src=int(record["src"]),
        dest=int(record["dest"]),
        size_flits=int(record["size"]),
        vnet=int(record["vnet"]),
        creation_cycle=int(record["cycle"]),
    )


def save_trace(packets: Iterable[Packet], path: str | Path) -> int:
    """Write packets to a JSONL trace file; returns the record count."""
    path = Path(path)
    n = 0
    with path.open("w") as fh:
        for pkt in sorted(packets, key=lambda p: p.creation_cycle):
            fh.write(json.dumps(packet_to_record(pkt)) + "\n")
            n += 1
    return n


def load_trace(path: str | Path) -> list[Packet]:
    """Read a JSONL trace file back into packets."""
    path = Path(path)
    packets = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: bad JSON: {exc}") from exc
            packets.append(record_to_packet(record))
    return packets


def bucket_by_cycle(
    packets: Iterable[Packet],
) -> tuple[list[int], dict[int, list[Packet]]]:
    """Group packets by creation cycle, preserving trace order in-cycle.

    Returns ``(sorted distinct creation cycles, cycle -> packets)``.
    Replay walks the cycle list with a cursor and touches each bucket
    exactly once, so a whole run costs O(cycles + packets) instead of
    re-scanning a flat sorted packet list every simulated cycle.
    """
    buckets: dict[int, list[Packet]] = {}
    for p in sorted(packets, key=lambda p: p.creation_cycle):
        buckets.setdefault(p.creation_cycle, []).append(p)
    return sorted(buckets), buckets


def record_source(source, cycles: int) -> list[Packet]:
    """Materialise ``cycles`` worth of a generator's output as a trace."""
    if cycles < 1:
        raise ValueError("need at least one cycle")
    out: list[Packet] = []
    for cycle in range(cycles):
        out.extend(source.generate(cycle))
    return out
