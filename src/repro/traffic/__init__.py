"""Workloads: synthetic patterns, traffic processes, app surrogates."""

from .apps import (
    AppProfile,
    PARSEC_PROFILES,
    SPLASH2_PROFILES,
    app_profile,
    directory_home_nodes,
    make_app_traffic,
    suite_profiles,
)
from .trace import (
    load_trace,
    packet_to_record,
    record_source,
    record_to_packet,
    save_trace,
)
from .generator import (
    COHERENCE_MIX,
    NullTraffic,
    PacketClass,
    SINGLE_FLIT_MIX,
    SyntheticTraffic,
    TraceTraffic,
)
from .patterns import (
    BitComplement,
    BitReverse,
    Hotspot,
    Neighbor,
    Tornado,
    TrafficPattern,
    Transpose,
    UniformRandom,
    available_patterns,
    make_pattern,
)

__all__ = [
    "AppProfile",
    "PARSEC_PROFILES",
    "SPLASH2_PROFILES",
    "app_profile",
    "directory_home_nodes",
    "load_trace",
    "make_app_traffic",
    "packet_to_record",
    "record_source",
    "record_to_packet",
    "save_trace",
    "suite_profiles",
    "BitComplement",
    "BitReverse",
    "COHERENCE_MIX",
    "Hotspot",
    "Neighbor",
    "NullTraffic",
    "PacketClass",
    "SINGLE_FLIT_MIX",
    "SyntheticTraffic",
    "Tornado",
    "TraceTraffic",
    "TrafficPattern",
    "Transpose",
    "UniformRandom",
    "available_patterns",
    "make_pattern",
]
