"""Traffic sources: temporal injection processes on top of spatial patterns.

The generator is vectorised with NumPy per the hpc-parallel guides: one RNG
call decides which of the N nodes inject, rather than N Python-level draws
— and the per-cycle Bernoulli draws are additionally *chunked*: quiet
stretches prefetch a ``(chunk, n_nodes)`` matrix in one call and consume
it row by row.  ``Generator.random`` fills C-order arrays row-major from
the same bitstream as successive per-cycle calls, so the consumed stream
is identical to per-cycle draws; a cycle that does start packets rewinds
the bit generator and re-draws exactly the consumed rows, leaving the
stream positioned precisely where the per-cycle code would be before the
destination/class draws.  Chunking is therefore invisible in the results
(pinned by ``tests/test_traffic.py``) — it only amortises call overhead.

* :class:`SyntheticTraffic` — Bernoulli (or bursty ON/OFF Markov) injection
  at a given rate in flits/node/cycle, with a configurable packet-size mix
  (e.g. coherence-style 1-flit control + 5-flit data packets on separate
  virtual networks).
* :class:`TraceTraffic` — replays an explicit packet trace
  (see :mod:`repro.traffic.trace`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from ..config import NetworkConfig
from ..router.flit import Packet
from .patterns import TrafficPattern, UniformRandom
from .trace import bucket_by_cycle

#: adaptive chunk growth stops here (cycles of Bernoulli draws per RNG call)
_MAX_CHUNK_CYCLES = 64


@dataclass(frozen=True)
class PacketClass:
    """One packet species in the traffic mix.

    ``weight`` is the relative probability of this class; ``size_flits``
    its length; ``vnet`` the virtual network it travels on (request/reply
    separation for coherence-style traffic).
    """

    size_flits: int
    vnet: int = 0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.size_flits < 1:
            raise ValueError("packets need at least one flit")
        if self.weight <= 0:
            raise ValueError("class weight must be positive")


#: GEM5 MOESI-style mix: 1-flit requests/control, 5-flit data replies.
COHERENCE_MIX = (
    PacketClass(size_flits=1, vnet=0, weight=0.6),
    PacketClass(size_flits=5, vnet=1, weight=0.4),
)

#: Single-class mix used by simple synthetic experiments.
SINGLE_FLIT_MIX = (PacketClass(size_flits=1, vnet=0, weight=1.0),)


class SyntheticTraffic:
    """Random traffic: spatial pattern x temporal process x packet mix.

    ``injection_rate`` is in *flits* per node per cycle (the standard NoC
    load metric); the per-cycle packet-start probability is derived from
    the mix's mean packet length.

    With ``burstiness`` > 0 the source follows a two-state ON/OFF Markov
    process with the same average rate but bursty arrivals (real
    application traffic — SPLASH-2/PARSEC — is bursty; the app surrogates
    in :mod:`repro.traffic.apps` build on this).
    """

    def __init__(
        self,
        config: NetworkConfig,
        injection_rate: float,
        pattern: Optional[TrafficPattern] = None,
        mix: Sequence[PacketClass] = SINGLE_FLIT_MIX,
        rng: np.random.Generator | int | None = None,
        burstiness: float = 0.0,
        nodes: Optional[Sequence[int]] = None,
    ) -> None:
        if injection_rate < 0:
            raise ValueError("injection rate must be >= 0")
        if not mix:
            raise ValueError("need at least one packet class")
        if not 0.0 <= burstiness < 1.0:
            raise ValueError("burstiness must be in [0, 1)")
        self.config = config
        self.injection_rate = injection_rate
        self.pattern = pattern or UniformRandom(config)
        self.mix = tuple(mix)
        self.rng = np.random.default_rng(rng)
        self.burstiness = burstiness

        weights = np.array([c.weight for c in self.mix], dtype=float)
        self._class_prob = weights / weights.sum()
        self._mean_len = float(
            sum(c.size_flits * p for c, p in zip(self.mix, self._class_prob))
        )
        #: probability a node starts a packet in a cycle
        self.packet_rate = injection_rate / self._mean_len
        if self.packet_rate > 1.0:
            raise ValueError(
                f"injection rate {injection_rate} flits/node/cycle exceeds "
                f"1 packet/node/cycle for mean length {self._mean_len}"
            )
        self._nodes = np.asarray(
            nodes if nodes is not None else np.arange(config.num_nodes)
        )
        self._n = len(self._nodes)
        # ON/OFF process state: start all-ON for burstiness == 0
        self._on = np.ones(self._n, dtype=bool)
        if burstiness > 0.0:
            # Mean burst length grows with burstiness; duty cycle 50 %,
            # so the ON-state rate is doubled to preserve the average.
            self._p_exit = (1.0 - burstiness) * 0.1
            self._on = self.rng.random(self._n) < 0.5
        else:
            self._p_exit = 0.0
        #: constant per-node start probability (hoisted: the per-cycle
        #: ``np.full`` allocation was measurable at 10k+ cycles/run)
        self._flat_rate = np.full(self._n, self.packet_rate)
        # ---- chunked-draw state (see module docstring) ----
        #: rows of the Bernoulli matrix one cycle consumes (the bursty
        #: process draws an extra ON/OFF-flip row per cycle)
        self._rows_per_cycle = 2 if burstiness > 0.0 else 1
        self._chunk: Optional[np.ndarray] = None
        self._chunk_pos = 0
        self._chunk_state: Optional[dict] = None
        #: adaptive: cycles prefetched per chunk (1 = plain per-cycle
        #: draws; doubled over quiet stretches, reset on a packet start)
        self._chunk_cycles = 1
        self._quiet_streak = 0

    # ------------------------------------------------------------------
    def _effective_rate(self) -> np.ndarray:
        if self.burstiness == 0.0:
            return self._flat_rate
        rate = np.where(self._on, 2.0 * self.packet_rate, 0.0)
        return np.minimum(rate, 1.0)

    def _advance_onoff(self) -> None:
        if self.burstiness == 0.0:
            return
        flips = self.rng.random(self._n) < self._p_exit
        self._on = np.where(flips, ~self._on, self._on)

    def generate(self, cycle: int) -> Iterator[Packet]:
        """Packets created at ``cycle`` (TrafficSource protocol)."""
        rng = self.rng
        n = self._n
        rpc = self._rows_per_cycle
        chunk = self._chunk
        if chunk is not None and self._chunk_pos >= len(chunk):
            chunk = self._chunk = None
        if chunk is None and self._chunk_cycles > 1:
            # prefetch: save the bit-generator state first so a cycle
            # that starts packets can rewind to the per-cycle position
            self._chunk_state = rng.bit_generator.state
            chunk = self._chunk = rng.random((self._chunk_cycles * rpc, n))
            self._chunk_pos = 0
        if chunk is None:
            # chunk length 1: draw per cycle, no rewind bookkeeping
            self._advance_onoff()
            starts = rng.random(n) < self._effective_rate()
        else:
            pos = self._chunk_pos
            self._chunk_pos = pos + rpc
            if rpc == 2:
                flips = chunk[pos] < self._p_exit
                self._on = np.where(flips, ~self._on, self._on)
                starts = chunk[pos + 1] < self._effective_rate()
            else:
                starts = chunk[pos] < self._flat_rate
        if not np.any(starts):
            self._quiet_streak += 1
            if (
                self._quiet_streak >= self._chunk_cycles
                and self._chunk_cycles < _MAX_CHUNK_CYCLES
            ):
                self._chunk_cycles *= 2
            return
        if chunk is not None:
            # Rewind and burn exactly the rows consumed so far: row-major
            # fill makes the redraw bit-identical to the prefetched rows,
            # so the stream now sits exactly where per-cycle draws would —
            # the destination/class draws below match the reference.
            rng.bit_generator.state = self._chunk_state
            rng.random((self._chunk_pos, n))
            self._chunk = None
            self._chunk_cycles = 1
        self._quiet_streak = 0
        sources = self._nodes[starts]
        dests = self.pattern.destinations(sources, rng)
        classes = rng.choice(
            len(self.mix), size=len(sources), p=self._class_prob
        )
        for src, dst, ci in zip(sources, dests, classes):
            cls = self.mix[int(ci)]
            yield Packet(
                src=int(src),
                dest=int(dst),
                size_flits=cls.size_flits,
                vnet=cls.vnet,
                creation_cycle=cycle,
            )


class TraceTraffic:
    """Replays packets bucketed by creation cycle.

    ``generate(cycle)`` yields every not-yet-replayed packet created at
    or before ``cycle`` (catch-up semantics: a replay that starts late or
    skips cycles still delivers everything, in creation order).  Packets
    are grouped once up front (:func:`repro.traffic.trace.bucket_by_cycle`)
    so a full replay is O(cycles + packets); the common mid-replay call
    with nothing due is a single integer comparison.
    """

    def __init__(self, packets: Iterable[Packet]) -> None:
        self._cycles, self._buckets = bucket_by_cycle(packets)
        self._ci = 0
        self._remaining = sum(len(b) for b in self._buckets.values())

    def generate(self, cycle: int) -> Iterator[Packet]:
        cycles = self._cycles
        ci = self._ci
        if ci >= len(cycles) or cycles[ci] > cycle:
            return
        while ci < len(cycles) and cycles[ci] <= cycle:
            bucket = self._buckets[cycles[ci]]
            ci += 1
            self._ci = ci
            for p in bucket:
                self._remaining -= 1
                yield p

    @property
    def remaining(self) -> int:
        return self._remaining


class NullTraffic:
    """No traffic at all (used by fault-behaviour unit tests)."""

    def generate(self, cycle: int) -> Iterator[Packet]:
        return iter(())
