"""Traffic sources: temporal injection processes on top of spatial patterns.

The generator is vectorised with NumPy per the hpc-parallel guides: one RNG
call decides which of the N nodes inject, rather than N Python-level draws
— and the per-cycle Bernoulli draws are additionally *chunked*: quiet
stretches prefetch a ``(chunk, n_nodes)`` matrix in one call and consume
it row by row.  ``Generator.random`` fills C-order arrays row-major from
the same bitstream as successive per-cycle calls, so the consumed stream
is identical to per-cycle draws; a cycle that does start packets rewinds
the bit generator and re-draws exactly the consumed rows, leaving the
stream positioned precisely where the per-cycle code would be before the
destination/class draws.  Chunking is therefore invisible in the results
(pinned by ``tests/test_traffic.py``) — it only amortises call overhead.

* :class:`SyntheticTraffic` — Bernoulli (or bursty ON/OFF Markov) injection
  at a given rate in flits/node/cycle, with a configurable packet-size mix
  (e.g. coherence-style 1-flit control + 5-flit data packets on separate
  virtual networks).
* :class:`TraceTraffic` — replays an explicit packet trace
  (see :mod:`repro.traffic.trace`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from ..config import NetworkConfig
from ..router.flit import Packet
from .patterns import TrafficPattern, UniformRandom
from .trace import bucket_by_cycle

#: adaptive chunk growth stops here (cycles of Bernoulli draws per RNG call)
_MAX_CHUNK_CYCLES = 64

#: rows per RNG call in the ``next_injection`` lookahead scan.  Chunk
#: partitioning is invisible in the consumed stream (rewind-and-burn on a
#: hit, full consumption when quiet), so the lookahead may use far larger
#: chunks than the per-cycle path without affecting results.
_LOOKAHEAD_CHUNK_CYCLES = 1024


@dataclass(frozen=True)
class PacketClass:
    """One packet species in the traffic mix.

    ``weight`` is the relative probability of this class; ``size_flits``
    its length; ``vnet`` the virtual network it travels on (request/reply
    separation for coherence-style traffic).
    """

    size_flits: int
    vnet: int = 0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.size_flits < 1:
            raise ValueError("packets need at least one flit")
        if self.weight <= 0:
            raise ValueError("class weight must be positive")


#: GEM5 MOESI-style mix: 1-flit requests/control, 5-flit data replies.
COHERENCE_MIX = (
    PacketClass(size_flits=1, vnet=0, weight=0.6),
    PacketClass(size_flits=5, vnet=1, weight=0.4),
)

#: Single-class mix used by simple synthetic experiments.
SINGLE_FLIT_MIX = (PacketClass(size_flits=1, vnet=0, weight=1.0),)


class SyntheticTraffic:
    """Random traffic: spatial pattern x temporal process x packet mix.

    ``injection_rate`` is in *flits* per node per cycle (the standard NoC
    load metric); the per-cycle packet-start probability is derived from
    the mix's mean packet length.

    With ``burstiness`` > 0 the source follows a two-state ON/OFF Markov
    process with the same average rate but bursty arrivals (real
    application traffic — SPLASH-2/PARSEC — is bursty; the app surrogates
    in :mod:`repro.traffic.apps` build on this).
    """

    def __init__(
        self,
        config: NetworkConfig,
        injection_rate: float,
        pattern: Optional[TrafficPattern] = None,
        mix: Sequence[PacketClass] = SINGLE_FLIT_MIX,
        rng: np.random.Generator | int | None = None,
        burstiness: float = 0.0,
        nodes: Optional[Sequence[int]] = None,
    ) -> None:
        if injection_rate < 0:
            raise ValueError("injection rate must be >= 0")
        if not mix:
            raise ValueError("need at least one packet class")
        if not 0.0 <= burstiness < 1.0:
            raise ValueError("burstiness must be in [0, 1)")
        self.config = config
        self.injection_rate = injection_rate
        self.pattern = pattern or UniformRandom(config)
        self.mix = tuple(mix)
        self.rng = np.random.default_rng(rng)
        self.burstiness = burstiness

        weights = np.array([c.weight for c in self.mix], dtype=float)
        self._class_prob = weights / weights.sum()
        self._mean_len = float(
            sum(c.size_flits * p for c, p in zip(self.mix, self._class_prob))
        )
        #: probability a node starts a packet in a cycle
        self.packet_rate = injection_rate / self._mean_len
        if self.packet_rate > 1.0:
            raise ValueError(
                f"injection rate {injection_rate} flits/node/cycle exceeds "
                f"1 packet/node/cycle for mean length {self._mean_len}"
            )
        self._nodes = np.asarray(
            nodes if nodes is not None else np.arange(config.num_nodes)
        )
        self._n = len(self._nodes)
        # ON/OFF process state: start all-ON for burstiness == 0
        self._on = np.ones(self._n, dtype=bool)
        if burstiness > 0.0:
            # Mean burst length grows with burstiness; duty cycle 50 %,
            # so the ON-state rate is doubled to preserve the average.
            self._p_exit = (1.0 - burstiness) * 0.1
            self._on = self.rng.random(self._n) < 0.5
        else:
            self._p_exit = 0.0
        #: constant per-node start probability (hoisted: the per-cycle
        #: ``np.full`` allocation was measurable at 10k+ cycles/run)
        self._flat_rate = np.full(self._n, self.packet_rate)
        # ---- chunked-draw state (see module docstring) ----
        #: rows of the Bernoulli matrix one cycle consumes (the bursty
        #: process draws an extra ON/OFF-flip row per cycle)
        self._rows_per_cycle = 2 if burstiness > 0.0 else 1
        self._chunk: Optional[np.ndarray] = None
        self._chunk_pos = 0
        self._chunk_state: Optional[dict] = None
        #: adaptive: cycles prefetched per chunk (1 = plain per-cycle
        #: draws; doubled over quiet stretches, reset on a packet start)
        self._chunk_cycles = 1
        self._quiet_streak = 0
        # ---- lookahead state (event-driven engine, see next_injection) ----
        #: starts row drawn ahead by :meth:`next_injection`, waiting for
        #: the matching ``generate(self._stash_cycle)`` call
        self._stash: Optional[np.ndarray] = None
        self._stash_cycle = -1
        #: cycles below this are proven quiet and their randomness is
        #: already consumed — ``generate`` must not redraw for them
        self._skip_until = -1

    # ------------------------------------------------------------------
    @classmethod
    def spawn_lanes(
        cls,
        config: NetworkConfig,
        injection_rates: Sequence[float],
        rng: np.random.Generator | np.random.SeedSequence | int | None = None,
        pattern: Optional[TrafficPattern] = None,
        mix: Sequence[PacketClass] = SINGLE_FLIT_MIX,
        burstiness: float = 0.0,
        nodes: Optional[Sequence[int]] = None,
    ) -> "list[SyntheticTraffic]":
        """One traffic source per lane — the lane axis over chunked draws.

        The batched engine (:mod:`repro.network.batched`) steps N
        sweep-point fabrics at once but must keep each lane's random
        stream identical to its serial run; vectorising the Bernoulli
        draws *across* lanes would interleave their bitstreams.  Instead
        the lane axis lives here: each lane gets its own generator seeded
        from :meth:`numpy.random.SeedSequence.spawn` (the same derivation
        sweep points use), and each keeps its own chunked-draw state, so
        lane ``i``'s consumed stream depends only on the root entropy and
        ``i`` — not on lane grouping, worker layout, or engine choice.
        Chunking still amortises RNG-call overhead within each lane
        exactly as in the serial engine.
        """
        if isinstance(rng, np.random.Generator):
            seq = rng.bit_generator.seed_seq
        elif isinstance(rng, np.random.SeedSequence):
            seq = rng
        else:
            seq = np.random.SeedSequence(rng)
        return [
            cls(
                config,
                injection_rate=rate,
                pattern=pattern,
                mix=mix,
                rng=np.random.default_rng(child),
                burstiness=burstiness,
                nodes=nodes,
            )
            for rate, child in zip(injection_rates, seq.spawn(len(injection_rates)))
        ]

    # ------------------------------------------------------------------
    def _effective_rate(self) -> np.ndarray:
        if self.burstiness == 0.0:
            return self._flat_rate
        rate = np.where(self._on, 2.0 * self.packet_rate, 0.0)
        return np.minimum(rate, 1.0)

    def _advance_onoff(self) -> None:
        if self.burstiness == 0.0:
            return
        flips = self.rng.random(self._n) < self._p_exit
        self._on = np.where(flips, ~self._on, self._on)

    def _draw_starts(self) -> Optional[np.ndarray]:
        """Draw one cycle's packet-start decisions; ``None`` when quiet.

        All chunk bookkeeping lives here — prefetch, row consumption,
        quiet-streak growth, and the rewind-and-burn on a hit — so after
        a non-``None`` return the bit stream sits exactly where plain
        per-cycle draws would, ready for the destination/class draws.
        Shared by :meth:`generate` and the :meth:`next_injection`
        lookahead, which is what keeps skip-ahead bit-identical.
        """
        rng = self.rng
        n = self._n
        rpc = self._rows_per_cycle
        chunk = self._chunk
        if chunk is not None and self._chunk_pos >= len(chunk):
            chunk = self._chunk = None
        if chunk is None and self._chunk_cycles > 1:
            # prefetch: save the bit-generator state first so a cycle
            # that starts packets can rewind to the per-cycle position
            self._chunk_state = rng.bit_generator.state
            chunk = self._chunk = rng.random((self._chunk_cycles * rpc, n))
            self._chunk_pos = 0
        if chunk is None:
            # chunk length 1: draw per cycle, no rewind bookkeeping
            self._advance_onoff()
            starts = rng.random(n) < self._effective_rate()
        else:
            pos = self._chunk_pos
            self._chunk_pos = pos + rpc
            if rpc == 2:
                flips = chunk[pos] < self._p_exit
                self._on = np.where(flips, ~self._on, self._on)
                starts = chunk[pos + 1] < self._effective_rate()
            else:
                starts = chunk[pos] < self._flat_rate
        if not np.any(starts):
            self._quiet_streak += 1
            if (
                self._quiet_streak >= self._chunk_cycles
                and self._chunk_cycles < _MAX_CHUNK_CYCLES
            ):
                self._chunk_cycles *= 2
            return None
        if chunk is not None:
            # Rewind and burn exactly the rows consumed so far: row-major
            # fill makes the redraw bit-identical to the prefetched rows,
            # so the stream now sits exactly where per-cycle draws would —
            # the destination/class draws that follow match the reference.
            rng.bit_generator.state = self._chunk_state
            rng.random((self._chunk_pos, n))
            self._chunk = None
            self._chunk_cycles = 1
        self._quiet_streak = 0
        return starts

    def next_injection(self, cycle: int, horizon: int) -> Optional[int]:
        """Earliest cycle in ``[cycle, horizon)`` that starts a packet.

        Lookahead for the event-driven engine: draws the same per-cycle
        rows :meth:`generate` would, so the consumed random stream is
        identical to stepping every cycle.  A hit row is stashed and
        handed to the matching ``generate`` call; cycles proven quiet
        become no-ops there (their randomness is already spent).  Returns
        ``None`` when the whole window is quiet.
        """
        if self._stash is not None:
            # a previous lookahead already found (and drew) the next hit
            return self._stash_cycle if self._stash_cycle < horizon else None
        c = max(cycle, self._skip_until)
        if self.burstiness == 0.0:
            return self._next_injection_flat(c, horizon)
        # bursty: the ON/OFF state evolves row by row, so scan per cycle
        while c < horizon:
            starts = self._draw_starts()
            if starts is not None:
                self._stash = starts
                self._stash_cycle = c
                self._skip_until = c
                return c
            c += 1
        self._skip_until = horizon
        return None

    def _next_injection_flat(self, c: int, horizon: int) -> Optional[int]:
        """Vectorised lookahead for the flat (non-bursty) process.

        Scans whole chunks with one comparison per chunk instead of one
        ``_draw_starts`` call per cycle.  The stream stays bit-identical
        by the standard chunk argument: a fully quiet stretch consumes
        its rows outright, and a hit rewinds to the saved state and burns
        exactly the consumed rows — so chunk boundaries (including the
        larger lookahead chunks) never show up in the results.  Rows of a
        pre-existing chunk beyond ``horizon`` are left unconsumed,
        exactly as per-cycle stepping would leave them.
        """
        rng = self.rng
        n = self._n
        rate = self.packet_rate
        # adaptive prefetch: start from the per-cycle path's learned chunk
        # size (small right after a hit, so short idle gaps stay cheap)
        # and escalate per quiet chunk toward the lookahead ceiling
        prefetch = max(self._chunk_cycles, 1)
        while c < horizon:
            chunk = self._chunk
            if chunk is not None and self._chunk_pos >= len(chunk):
                chunk = self._chunk = None
            if chunk is None:
                count = min(horizon - c, prefetch)
                prefetch = min(prefetch * 2, _LOOKAHEAD_CHUNK_CYCLES)
                self._chunk_state = rng.bit_generator.state
                chunk = self._chunk = rng.random((count, n))
                self._chunk_pos = 0
            pos = self._chunk_pos
            limit = min(len(chunk), pos + (horizon - c))
            hits = (chunk[pos:limit] < rate).any(axis=1)
            idx = int(np.argmax(hits)) if hits.any() else -1
            if idx < 0:
                # window's share of this chunk is all quiet: consumed
                quiet = limit - pos
                self._chunk_pos = limit
                c += quiet
                self._quiet_streak += quiet
                while (
                    self._quiet_streak >= self._chunk_cycles
                    and self._chunk_cycles < _MAX_CHUNK_CYCLES
                ):
                    self._chunk_cycles *= 2
                continue
            hit_pos = pos + idx
            self._chunk_pos = hit_pos + 1
            starts = chunk[hit_pos] < self._flat_rate
            # rewind-and-burn: position the stream exactly where per-cycle
            # draws through the hit cycle would leave it
            rng.bit_generator.state = self._chunk_state
            rng.random((self._chunk_pos, n))
            self._chunk = None
            self._chunk_cycles = 1
            self._quiet_streak = 0
            self._stash = starts
            self._stash_cycle = c + idx
            self._skip_until = c + idx
            return c + idx
        self._skip_until = horizon
        return None

    def generate(self, cycle: int) -> Iterator[Packet]:
        """Packets created at ``cycle`` (TrafficSource protocol)."""
        if self._stash is not None and cycle == self._stash_cycle:
            starts = self._stash
            self._stash = None
            self._stash_cycle = -1
            self._skip_until = -1
        elif cycle < self._skip_until:
            # next_injection proved this cycle quiet and already consumed
            # its randomness — redrawing would desync the stream
            return
        else:
            drawn = self._draw_starts()
            if drawn is None:
                return
            starts = drawn
        rng = self.rng
        sources = self._nodes[starts]
        dests = self.pattern.destinations(sources, rng)
        classes = rng.choice(
            len(self.mix), size=len(sources), p=self._class_prob
        )
        for src, dst, ci in zip(sources, dests, classes):
            cls = self.mix[int(ci)]
            yield Packet(
                src=int(src),
                dest=int(dst),
                size_flits=cls.size_flits,
                vnet=cls.vnet,
                creation_cycle=cycle,
            )


class TraceTraffic:
    """Replays packets bucketed by creation cycle.

    ``generate(cycle)`` yields every not-yet-replayed packet created at
    or before ``cycle`` (catch-up semantics: a replay that starts late or
    skips cycles still delivers everything, in creation order).  Packets
    are grouped once up front (:func:`repro.traffic.trace.bucket_by_cycle`)
    so a full replay is O(cycles + packets); the common mid-replay call
    with nothing due is a single integer comparison.
    """

    def __init__(self, packets: Iterable[Packet]) -> None:
        self._cycles, self._buckets = bucket_by_cycle(packets)
        self._ci = 0
        self._remaining = sum(len(b) for b in self._buckets.values())

    def generate(self, cycle: int) -> Iterator[Packet]:
        cycles = self._cycles
        ci = self._ci
        if ci >= len(cycles) or cycles[ci] > cycle:
            return
        while ci < len(cycles) and cycles[ci] <= cycle:
            bucket = self._buckets[cycles[ci]]
            ci += 1
            self._ci = ci
            for p in bucket:
                self._remaining -= 1
                yield p

    def next_injection(self, cycle: int, horizon: int) -> Optional[int]:
        """Earliest cycle in ``[cycle, horizon)`` with packets to replay.

        Overdue buckets (catch-up) are due immediately at ``cycle``; the
        replay state is read-only here, so this is pure lookahead.
        """
        cycles = self._cycles
        ci = self._ci
        if ci >= len(cycles):
            return None
        nxt = max(int(cycles[ci]), cycle)
        return nxt if nxt < horizon else None

    @property
    def remaining(self) -> int:
        return self._remaining


class NullTraffic:
    """No traffic at all (used by fault-behaviour unit tests)."""

    def generate(self, cycle: int) -> Iterator[Packet]:
        return iter(())

    def next_injection(self, cycle: int, horizon: int) -> Optional[int]:
        return None
