"""Traffic sources: temporal injection processes on top of spatial patterns.

The generator is vectorised with NumPy per the hpc-parallel guides: one RNG
call per cycle decides which of the N nodes inject, rather than N Python-
level draws.

* :class:`SyntheticTraffic` — Bernoulli (or bursty ON/OFF Markov) injection
  at a given rate in flits/node/cycle, with a configurable packet-size mix
  (e.g. coherence-style 1-flit control + 5-flit data packets on separate
  virtual networks).
* :class:`TraceTraffic` — replays an explicit packet trace
  (see :mod:`repro.traffic.trace`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from ..config import NetworkConfig
from ..router.flit import Packet
from .patterns import TrafficPattern, UniformRandom


@dataclass(frozen=True)
class PacketClass:
    """One packet species in the traffic mix.

    ``weight`` is the relative probability of this class; ``size_flits``
    its length; ``vnet`` the virtual network it travels on (request/reply
    separation for coherence-style traffic).
    """

    size_flits: int
    vnet: int = 0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.size_flits < 1:
            raise ValueError("packets need at least one flit")
        if self.weight <= 0:
            raise ValueError("class weight must be positive")


#: GEM5 MOESI-style mix: 1-flit requests/control, 5-flit data replies.
COHERENCE_MIX = (
    PacketClass(size_flits=1, vnet=0, weight=0.6),
    PacketClass(size_flits=5, vnet=1, weight=0.4),
)

#: Single-class mix used by simple synthetic experiments.
SINGLE_FLIT_MIX = (PacketClass(size_flits=1, vnet=0, weight=1.0),)


class SyntheticTraffic:
    """Random traffic: spatial pattern x temporal process x packet mix.

    ``injection_rate`` is in *flits* per node per cycle (the standard NoC
    load metric); the per-cycle packet-start probability is derived from
    the mix's mean packet length.

    With ``burstiness`` > 0 the source follows a two-state ON/OFF Markov
    process with the same average rate but bursty arrivals (real
    application traffic — SPLASH-2/PARSEC — is bursty; the app surrogates
    in :mod:`repro.traffic.apps` build on this).
    """

    def __init__(
        self,
        config: NetworkConfig,
        injection_rate: float,
        pattern: Optional[TrafficPattern] = None,
        mix: Sequence[PacketClass] = SINGLE_FLIT_MIX,
        rng: np.random.Generator | int | None = None,
        burstiness: float = 0.0,
        nodes: Optional[Sequence[int]] = None,
    ) -> None:
        if injection_rate < 0:
            raise ValueError("injection rate must be >= 0")
        if not mix:
            raise ValueError("need at least one packet class")
        if not 0.0 <= burstiness < 1.0:
            raise ValueError("burstiness must be in [0, 1)")
        self.config = config
        self.injection_rate = injection_rate
        self.pattern = pattern or UniformRandom(config)
        self.mix = tuple(mix)
        self.rng = np.random.default_rng(rng)
        self.burstiness = burstiness

        weights = np.array([c.weight for c in self.mix], dtype=float)
        self._class_prob = weights / weights.sum()
        self._mean_len = float(
            sum(c.size_flits * p for c, p in zip(self.mix, self._class_prob))
        )
        #: probability a node starts a packet in a cycle
        self.packet_rate = injection_rate / self._mean_len
        if self.packet_rate > 1.0:
            raise ValueError(
                f"injection rate {injection_rate} flits/node/cycle exceeds "
                f"1 packet/node/cycle for mean length {self._mean_len}"
            )
        self._nodes = np.asarray(
            nodes if nodes is not None else np.arange(config.num_nodes)
        )
        # ON/OFF process state: start all-ON for burstiness == 0
        self._on = np.ones(len(self._nodes), dtype=bool)
        if burstiness > 0.0:
            # Mean burst length grows with burstiness; duty cycle 50 %,
            # so the ON-state rate is doubled to preserve the average.
            self._p_exit = (1.0 - burstiness) * 0.1
            self._on = self.rng.random(len(self._nodes)) < 0.5
        else:
            self._p_exit = 0.0

    # ------------------------------------------------------------------
    def _effective_rate(self) -> np.ndarray:
        if self.burstiness == 0.0:
            return np.full(len(self._nodes), self.packet_rate)
        rate = np.where(self._on, 2.0 * self.packet_rate, 0.0)
        return np.minimum(rate, 1.0)

    def _advance_onoff(self) -> None:
        if self.burstiness == 0.0:
            return
        flips = self.rng.random(len(self._nodes)) < self._p_exit
        self._on = np.where(flips, ~self._on, self._on)

    def generate(self, cycle: int) -> Iterator[Packet]:
        """Packets created at ``cycle`` (TrafficSource protocol)."""
        self._advance_onoff()
        starts = self.rng.random(len(self._nodes)) < self._effective_rate()
        if not np.any(starts):
            return
        sources = self._nodes[starts]
        dests = self.pattern.destinations(sources, self.rng)
        classes = self.rng.choice(
            len(self.mix), size=len(sources), p=self._class_prob
        )
        for src, dst, ci in zip(sources, dests, classes):
            cls = self.mix[int(ci)]
            yield Packet(
                src=int(src),
                dest=int(dst),
                size_flits=cls.size_flits,
                vnet=cls.vnet,
                creation_cycle=cycle,
            )


class TraceTraffic:
    """Replays packets from an iterable sorted by creation cycle."""

    def __init__(self, packets: Iterable[Packet]) -> None:
        self._packets = sorted(packets, key=lambda p: p.creation_cycle)
        self._next = 0

    def generate(self, cycle: int) -> Iterator[Packet]:
        while (
            self._next < len(self._packets)
            and self._packets[self._next].creation_cycle <= cycle
        ):
            yield self._packets[self._next]
            self._next += 1

    @property
    def remaining(self) -> int:
        return len(self._packets) - self._next


class NullTraffic:
    """No traffic at all (used by fault-behaviour unit tests)."""

    def generate(self, cycle: int) -> Iterator[Packet]:
        return iter(())
