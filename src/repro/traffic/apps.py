"""SPLASH-2 and PARSEC surrogate traffic (substitution for GEM5 traces).

The paper drives its 64-core mesh with SPLASH-2 [27] and PARSEC [28]
applications through a MOESI_CMP_directory protocol in GEM5.  We cannot
run GEM5, so each application is modelled as a parameterised traffic
source whose knobs are calibrated to published NoC-level
characterisations of these suites on 64-core CMPs:

* **aggregate injection rate** — coherence traffic is light (a few
  hundredths of a flit/node/cycle); memory-intensive apps (ocean, radix,
  canneal, streamcluster) load the NoC several times more than
  compute-bound ones (water, blackscholes, swaptions);
* **packet mix** — short (1-flit) requests/control on the request vnet +
  5-flit data replies on the reply vnet, roughly 60/40 by count;
* **spatial locality** — a fraction of traffic targets directory/memory
  home nodes (hotspotting), the rest is address-interleaved (uniform);
* **burstiness** — application phases produce ON/OFF bursts.

Figures 7 and 8 report *relative* latency (faulty vs fault-free) per
application, which depends on load level and distribution — preserved
here — rather than on instruction-level behaviour, which is not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import NetworkConfig
from .generator import PacketClass, SyntheticTraffic
from .patterns import Hotspot


@dataclass(frozen=True)
class AppProfile:
    """Traffic fingerprint of one benchmark application."""

    name: str
    suite: str
    injection_rate: float  # flits/node/cycle
    burstiness: float  # ON/OFF burst intensity in [0, 1)
    hotspot_fraction: float  # traffic share aimed at directory homes
    control_fraction: float = 0.6  # 1-flit packets share (by count)

    def __post_init__(self) -> None:
        if not 0 < self.injection_rate < 1:
            raise ValueError("injection rate must be in (0, 1)")
        if not 0 <= self.burstiness < 1:
            raise ValueError("burstiness must be in [0, 1)")
        if not 0 <= self.hotspot_fraction <= 1:
            raise ValueError("hotspot fraction must be in [0, 1]")
        if not 0 < self.control_fraction < 1:
            raise ValueError("control fraction must be in (0, 1)")


#: SPLASH-2 surrogates (Figure 7's application set).
#:
#: Injection rates put the fabric in the moderate-utilisation band that
#: closed-loop full-system coherence traffic occupies (cores stall on
#: outstanding misses, so the effective NoC load self-regulates into a
#: mid band rather than the near-zero load naive open-loop rates give);
#: the *relative* intensity ordering between applications follows the
#: published characterisations (ocean/radix/fft memory-bound and heavy,
#: water/raytrace compute-bound and light).
SPLASH2_PROFILES = (
    AppProfile("barnes", "splash2", 0.115, 0.30, 0.15),
    AppProfile("fft", "splash2", 0.145, 0.20, 0.25),
    AppProfile("fmm", "splash2", 0.110, 0.30, 0.15),
    AppProfile("lu", "splash2", 0.125, 0.15, 0.20),
    AppProfile("ocean", "splash2", 0.155, 0.25, 0.25),
    AppProfile("radix", "splash2", 0.150, 0.20, 0.30),
    AppProfile("raytrace", "splash2", 0.105, 0.40, 0.10),
    AppProfile("water-nsq", "splash2", 0.100, 0.25, 0.10),
)

#: PARSEC surrogates (Figure 8's application set).  PARSEC's working sets
#: and sharing patterns load the NoC slightly harder on average than
#: SPLASH-2, which is what makes the paper's faulty-latency overhead
#: larger (13 % vs 10 %).
PARSEC_PROFILES = (
    AppProfile("blackscholes", "parsec", 0.100, 0.20, 0.10),
    AppProfile("bodytrack", "parsec", 0.120, 0.35, 0.15),
    AppProfile("canneal", "parsec", 0.160, 0.25, 0.30),
    AppProfile("dedup", "parsec", 0.140, 0.40, 0.20),
    AppProfile("ferret", "parsec", 0.135, 0.35, 0.20),
    AppProfile("fluidanimate", "parsec", 0.125, 0.30, 0.15),
    AppProfile("streamcluster", "parsec", 0.145, 0.20, 0.30),
    AppProfile("swaptions", "parsec", 0.105, 0.25, 0.10),
    AppProfile("x264", "parsec", 0.140, 0.45, 0.20),
)

_BY_NAME = {p.name: p for p in SPLASH2_PROFILES + PARSEC_PROFILES}


def app_profile(name: str) -> AppProfile:
    """Look up a profile by application name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def suite_profiles(suite: str) -> tuple[AppProfile, ...]:
    if suite == "splash2":
        return SPLASH2_PROFILES
    if suite == "parsec":
        return PARSEC_PROFILES
    raise ValueError(f"unknown suite {suite!r} (splash2 or parsec)")


def directory_home_nodes(config: NetworkConfig) -> list[int]:
    """Directory/memory-controller placement: one home per mesh column
    edge, the common edge-MC layout for 8x8 CMPs."""
    top = [config.node_id(x, 0) for x in range(0, config.width, 2)]
    bottom = [
        config.node_id(x, config.height - 1) for x in range(1, config.width, 2)
    ]
    return sorted(top + bottom)


def make_app_traffic(
    config: NetworkConfig,
    profile: AppProfile | str,
    rng: np.random.Generator | int | None = None,
    rate_scale: float = 1.0,
) -> SyntheticTraffic:
    """Build the traffic source for one application surrogate.

    ``rate_scale`` uniformly scales the injection rate (used by load
    sweeps and quick test configurations).
    """
    if isinstance(profile, str):
        profile = app_profile(profile)
    if rate_scale <= 0:
        raise ValueError("rate_scale must be positive")
    pattern = Hotspot(
        config,
        hotspots=directory_home_nodes(config),
        fraction=profile.hotspot_fraction,
    )
    ctrl = profile.control_fraction
    if config.router.num_vnets >= 2:
        mix = (
            PacketClass(size_flits=1, vnet=0, weight=ctrl),
            PacketClass(size_flits=5, vnet=1, weight=1.0 - ctrl),
        )
    else:
        mix = (
            PacketClass(size_flits=1, vnet=0, weight=ctrl),
            PacketClass(size_flits=5, vnet=0, weight=1.0 - ctrl),
        )
    return SyntheticTraffic(
        config,
        injection_rate=profile.injection_rate * rate_scale,
        pattern=pattern,
        mix=mix,
        rng=rng,
        burstiness=profile.burstiness,
    )
