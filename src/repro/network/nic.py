"""Network interface controllers (NICs).

Each node's NIC owns the boundary between the core and the fabric:

* **Injection** — packets from the traffic generator wait in per-vnet
  source queues; the NIC performs NIC-side VC allocation on the router's
  *local input port* (one packet per VC at a time, reallocation on tail),
  respects credits, and injects at most one flit per cycle (the local link
  is one flit wide).
* **Ejection** — flits arriving on the router's local output port are
  consumed immediately (cores always sink traffic — this guarantees
  consumption and, with XY routing, freedom from network deadlock), the
  buffer credit is returned, and completed packets are reported to the
  statistics module.

Wake semantics (active-set / event-driven loops): ``on_wake`` fires on
the 0→1 transition of ``_queued`` in :meth:`NetworkInterface.enqueue`,
and the NIC stays in the simulator's active set until its last queued
packet finishes injecting — so an idle NIC costs nothing per cycle, and
a NIC stalled on credits needs no extra wake (the credit return is a
scheduled calendar event, which by itself blocks the event-driven loop
from skipping the cycle it lands on).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, Optional

from ..config import PORT_LOCAL, RouterConfig
from ..router.flit import Flit, Packet
from .stats import LatencySample, NetworkStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..observability import EventTracer
    from ..router.router import BaseRouter
    from .simulator import EventScheduler


class _ActiveInjection:
    """A packet mid-injection on one wire VC."""

    __slots__ = ("flits", "next_idx", "wire_vc")

    def __init__(self, flits: list[Flit], wire_vc: int) -> None:
        self.flits = flits
        self.next_idx = 0
        self.wire_vc = wire_vc

    @property
    def done(self) -> bool:
        return self.next_idx >= len(self.flits)


class NetworkInterface:
    """Injection/ejection endpoint attached to one router's local port."""

    def __init__(
        self,
        node: int,
        router: "BaseRouter",
        config: RouterConfig,
        stats: NetworkStats,
    ) -> None:
        self.node = node
        self.router = router
        self.config = config
        self.stats = stats
        V = config.num_vcs
        #: per-vnet FIFO of packets waiting to start injection
        self.source_queues: list[Deque[Packet]] = [
            deque() for _ in range(config.num_vnets)
        ]
        #: NIC-side credit count per wire VC of the router's local input port
        self.credits = [config.buffer_depth] * V
        #: wire VC ownership (packet id) for in-progress injections
        self.allocated: list[Optional[int]] = [None] * V
        #: active injection per vnet (at most one packet per vnet in flight
        #: from the source queue; queued packets follow on)
        self.active: list[Optional[_ActiveInjection]] = [None] * config.num_vnets
        self._vnet_rr = 0
        self._n_vnets = config.num_vnets
        #: packets waiting in source queues or mid-injection; counted up in
        #: ``enqueue`` and down when the tail flit enters the router, so
        #: the simulator's drain predicate never re-scans the queues
        self._queued = 0
        #: empty→non-empty transition callback; the simulator installs its
        #: active-NIC-set ``add``.  ``None`` for standalone NICs (tests).
        self.on_wake: Optional[Callable[[int], None]] = None
        #: partial ejections: packet id -> head flit info
        self._eject_heads: Dict[int, Flit] = {}
        #: flit-lifecycle tracer (:mod:`repro.observability`); ``None`` —
        #: the default — makes both emission sites a single attribute check
        self.tracer: Optional["EventTracer"] = None

    # ------------------------------------------------------------------
    # warm reset
    # ------------------------------------------------------------------
    def reset(self, stats: NetworkStats) -> None:
        """Restore power-on state and rebind the statistics sink.

        The simulator's warm reset installs a fresh :class:`NetworkStats`
        (so results returned from previous runs stay intact) and every NIC
        must record into it from then on.
        """
        self.stats = stats
        for q in self.source_queues:
            q.clear()
        for d in range(len(self.credits)):
            self.credits[d] = self.config.buffer_depth
            self.allocated[d] = None
        for vnet in range(self._n_vnets):
            self.active[vnet] = None
        self._vnet_rr = 0
        self._queued = 0
        self._eject_heads.clear()

    # ------------------------------------------------------------------
    # injection side
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> None:
        """Accept a packet from the traffic generator."""
        if packet.src != self.node:
            raise ValueError(
                f"packet sourced at {packet.src} enqueued at NIC {self.node}"
            )
        if not (0 <= packet.vnet < self.config.num_vnets):
            raise ValueError(f"packet vnet {packet.vnet} out of range")
        self.source_queues[packet.vnet].append(packet)
        self.stats.packets_created += 1
        self._queued += 1
        if self._queued == 1 and self.on_wake is not None:
            self.on_wake(self.node)

    @property
    def queued_packets(self) -> int:
        """Packets waiting or mid-injection (drain bookkeeping)."""
        return self._queued

    def _try_start(self, vnet: int, cycle: int) -> None:
        """NIC-side VC allocation: bind the next queued packet to a free VC."""
        queue = self.source_queues[vnet]
        if not queue:
            return
        for d in self.config.vcs_of_vnet(vnet):
            if self.allocated[d] is None:
                packet = queue.popleft()
                self.allocated[d] = packet.packet_id
                self.active[vnet] = _ActiveInjection(list(packet.flits()), d)
                return

    def step(self, cycle: int) -> int:
        """Inject up to one flit this cycle, round-robin across vnets.

        Returns the number of flits injected (0 or 1), so the simulator's
        in-flight accounting is a plain addition rather than a diff of the
        global ``flits_injected`` counter per NIC per cycle.
        """
        n_vnets = self._n_vnets
        active = self.active
        credits = self.credits
        stats = self.stats
        rr = self._vnet_rr
        for i in range(n_vnets):
            vnet = (rr + i) % n_vnets
            if active[vnet] is None:
                self._try_start(vnet, cycle)
            inj = active[vnet]
            if inj is None:
                continue
            d = inj.wire_vc
            if credits[d] <= 0:
                continue
            flit = inj.flits[inj.next_idx]
            inj.next_idx += 1
            credits[d] -= 1
            flit.injection_cycle = cycle
            self.router.receive_flit(PORT_LOCAL, d, flit, cycle)
            stats.flits_injected += 1
            tracer = self.tracer
            if tracer is not None:
                tracer.emit(
                    cycle,
                    "inject",
                    self.node,
                    packet=flit.packet_id,
                    flit=flit.flit_index,
                    src=flit.src,
                    dest=flit.dest,
                    vnet=flit.vnet,
                    vc=d,
                )
            if flit.is_head:
                # counted here, not at VC allocation: under zero-credit
                # backpressure an allocated packet may not have entered
                # the router yet
                stats.packets_injected += 1
            if flit.is_tail:
                # reallocation on tail: the wire VC may host the next packet
                self.allocated[d] = None
                active[vnet] = None
                self._queued -= 1
            self._vnet_rr = (vnet + 1) % n_vnets
            return 1  # local link bandwidth: one flit per cycle
        return 0

    def receive_credit(self, wire_vc: int) -> None:
        """The router freed a slot of our local-input-port VC."""
        self.credits[wire_vc] += 1
        if self.credits[wire_vc] > self.config.buffer_depth:
            raise AssertionError(
                f"NIC {self.node} credit overflow on VC {wire_vc}"
            )

    # ------------------------------------------------------------------
    # ejection side
    # ------------------------------------------------------------------
    def eject(self, flit: Flit, wire_vc: int, cycle: int, sched: "EventScheduler") -> None:
        """Consume a flit arriving from the router's local output port."""
        if flit.dest != self.node:
            raise AssertionError(
                f"flit for node {flit.dest} ejected at node {self.node}: "
                "misroute"
            )
        flit.ejection_cycle = cycle
        self.stats.flits_ejected += 1
        # consuming the flit frees the NIC-side buffer slot -> credit back
        sched.return_nic_credit(self.node, wire_vc)
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                cycle,
                "eject",
                self.node,
                packet=flit.packet_id,
                flit=flit.flit_index,
                src=flit.src,
                dest=flit.dest,
                vc=wire_vc,
            )
        if flit.is_head:
            self._eject_heads[flit.packet_id] = flit
        if flit.is_tail:
            head = self._eject_heads.pop(flit.packet_id, flit)
            self.stats.record_packet(
                LatencySample(
                    packet_id=flit.packet_id,
                    src=flit.src,
                    dest=flit.dest,
                    vnet=flit.vnet,
                    size_flits=flit.packet_len,
                    creation_cycle=head.creation_cycle,
                    injection_cycle=head.injection_cycle,
                    ejection_cycle=cycle,
                    hops=flit.hops,
                )
            )
