"""Batched lane engine: step whole sweeps as flat NumPy state arrays.

Every sweep experiment runs dozens of structurally identical fabrics that
differ only in injection rate, seed, or fault set.  This module
materialises N such sweep points ("lanes") into one set of flat NumPy
state arrays — VC state of shape ``(lanes, routers, ports, vcs)``, flit
buffers with a depth axis alongside, credit/allocation arrays on the
output side — and advances RC/VA/SA/XB for *all* lanes in one vectorised
step.  Per-lane fault sets are boolean masks over the same axes; drained
or blocked lanes retire independently and simply drop out of every
phase's requester set.

Bit-identical by construction
-----------------------------
The engine mirrors :meth:`NoCSimulator._step_reference` exactly — the
same phase order (faults, XB, SA, VA, RC, link dispatch, injection), the
same two-stage separable allocators with per-arbiter round-robin
priority state, the same credit/event timing: a calendar ring of
``max(link_latency, credit_latency) + 1`` slots per event kind, indexed
``cycle % span`` exactly like :class:`EventScheduler`, so multi-cycle
link and credit latencies land on the same cycle they would serially.
Each lane's traffic source and fault schedule are the *same Python
objects* a serial run would use, called once per cycle, so RNG streams
and fault arrival order are identical by construction.  Finished lanes
decode back into ordinary :class:`NetworkStats`/:class:`RouterStats`
objects; ``tests/test_golden_determinism.py`` pins them byte-identical
to the event engine per lane.

Lane refill
-----------
Lanes run on *local clocks*: every lane slot carries a start offset and
all cycle-dependent state (traffic generation, fault arrival, bypass
rotation, latency timestamps, inject/drain windows) is computed against
``cycle - off[lane]``.  When a lane retires, its result is decoded
immediately and the next pending structurally-identical point is
imported into the freed slot — the array form of the router
``import_state()`` seam: every per-lane array slice returns to its
power-on value and stale in-flight calendar events are purged.  A
1000-point sweep therefore holds dense ``(lanes, ...)`` arrays at the
configured width for its whole duration; :attr:`lane_occupancy` reports
the achieved density.

Vectorisation strategy
----------------------
Phases operate on *compressed index arrays* (``np.nonzero`` over the
relevant state mask) rather than dense tensors — the work per cycle
scales with the number of busy VCs across all lanes, the same property
the event engine's active sets give a single fabric.  Within one cycle
all same-stage arbiters are independent (each grant touches a distinct
(router, arbiter) pair — see the allocator docstrings), so a masked
segment-argmin implements the rotating-priority grant for every group
at once.  The only scalar remnants are the boundary effects that are
per-packet, not per-cycle: NIC injection state machines, tail-flit
ejection into latency samples, and fault-site injection.

Use :func:`supports` to check a configuration before constructing the
engine; unsupported configurations (adaptive routing, tracing, per-flit
callbacks, ...) should fall back to the event engine per point —
``run_lane_sweep(engine="batched")`` does exactly that and records the
reason string per fallback point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, cast

import numpy as np

from collections import deque

from ..config import PORT_LOCAL, NetworkConfig, SimulationConfig
from ..faults.sites import FaultUnit
from ..observability import maybe_create
from ..router.router import RouterStats
from ..router.routing import make_routing
from .simulator import (
    FaultSchedule,
    RouterFactory,
    SimulationResult,
    TrafficSource,
)
from .stats import LatencySample, NetworkStats
from .topology import Topology

# VC pipeline states (must match repro.router.vc.VCState integer values)
_IDLE, _ROUTING, _WAITING_VA, _ACTIVE = 0, 1, 2, 3

# flit flag bits stored in the buffer arrays
_F_HEAD = 1
_F_TAIL = 2

#: RouterStats field -> column index in the per-lane counter matrix
_RS_IDX: Dict[str, int] = {
    name: i for i, name in enumerate(RouterStats.__dataclass_fields__)
}

_I_TRAV = _RS_IDX["flits_traversed"]
_I_BUFW = _RS_IDX["buffer_writes"]
_I_VA_GRANT = _RS_IDX["va_grants"]
_I_SA_GRANT = _RS_IDX["sa_grants"]
_I_VA_BORROWED = _RS_IDX["va_borrowed_grants"]
_I_VA2_RETRY = _RS_IDX["va_stage2_fault_retries"]
_I_VA_BLOCK = _RS_IDX["va_blocked_cycles"]
_I_VA_NOFREE = _RS_IDX["va_no_free_vc_cycles"]
_I_VA_BORROW_WAIT = _RS_IDX["va_borrow_wait_cycles"]
_I_SA_BLOCK = _RS_IDX["sa_blocked_cycles"]
_I_SA_BYPASS = _RS_IDX["sa_bypass_grants"]
_I_VC_XFER = _RS_IDX["vc_transfers"]
_I_SEC = _RS_IDX["secondary_path_grants"]
_I_RC_BLOCK = _RS_IDX["rc_blocked_cycles"]
_I_RC_DUP = _RS_IDX["rc_duplicate_computations"]
_I_UNREACH = _RS_IDX["unreachable_output_cycles"]

_SUPPORTED_KINDS = ("baseline", "protected")


@dataclass
class LaneSpec:
    """One sweep point to run as a lane of the batched engine.

    The traffic source and fault schedule are per-lane, single-use,
    stateful objects — construct them exactly as a serial run would
    (same seeds from the same ``SeedSequence.spawn``) and the lane's
    RNG stream is identical to its serial run by construction.
    """

    traffic: TrafficSource
    fault_schedule: Optional[FaultSchedule] = None


def supports(
    config: NetworkConfig,
    router_factory: Optional[RouterFactory] = None,
    routing_kind: str = "xy",
    *,
    keep_samples: bool = False,
    on_eject: Optional[Callable] = None,
    observability: object = None,
    schedule_factory: object = None,
) -> Optional[str]:
    """Why the batched engine cannot run this configuration, or ``None``.

    Returns a human-readable reason string for unsupported configs (the
    sweep layer records it and falls back to the event engine per point)
    and ``None`` when the configuration is fully supported.

    ``schedule_factory`` is the sweep point's fault-schedule factory (or
    the schedule class itself): factories marked ``mutates_fabric`` —
    online fault timelines that heal and re-inject sites mid-run —
    decline here, because the lane arrays bake fault flags in at lane
    start and have no mid-run heal seam.
    """
    kind = getattr(router_factory, "router_kind", "baseline")
    if kind not in _SUPPORTED_KINDS:
        return f"router kind {kind!r} not supported (no array model)"
    if getattr(schedule_factory, "mutates_fabric", False):
        return (
            "fault schedule mutates the fabric mid-run "
            "(online timeline heals/reconfigures; no lane heal seam)"
        )
    if make_routing(config, routing_kind).adaptive:
        return f"adaptive routing {routing_kind!r} (route depends on run-time state)"
    if observability is not None or maybe_create() is not None:
        return "observability enabled (tracing/metrics need per-object hooks)"
    if on_eject is not None:
        return "on_eject hook set (per-flit callback needs flit objects)"
    V, P = config.router.num_vcs, config.router.num_ports
    if P * V > 62:
        return "num_ports * num_vcs > 62 (stage-2 requester bitmask width)"
    if V > 31:
        return "num_vcs > 31 (va_excluded bitmask width)"
    return None


class BatchedLaneEngine:
    """N structurally identical fabrics stepped as flat NumPy state.

    All lanes share one ``NetworkConfig``, ``SimulationConfig``, router
    kind and routing kind (the *structural key*); they differ only in
    their per-lane traffic sources and fault schedules.
    """

    def __init__(
        self,
        config: NetworkConfig,
        sim_config: SimulationConfig,
        lanes: List[LaneSpec],
        router_factory: Optional[RouterFactory] = None,
        routing_kind: str = "xy",
        *,
        keep_samples: bool = False,
        pending: Optional[Iterable[LaneSpec]] = None,
    ) -> None:
        reason = supports(
            config, router_factory, routing_kind, keep_samples=keep_samples
        )
        if reason is not None:
            raise ValueError(f"batched engine cannot run this config: {reason}")
        if not lanes:
            raise ValueError("need at least one lane")
        self.config = config
        self.sim_config = sim_config
        self.lanes = list(lanes)
        self.keep_samples = keep_samples
        self.protected = (
            getattr(router_factory, "router_kind", "baseline") == "protected"
        )

        rc = config.router
        self.L = L = len(self.lanes)
        self.R = R = config.num_nodes
        self.P = P = rc.num_ports
        self.V = V = rc.num_vcs
        self.D = D = rc.buffer_depth
        self.NV = rc.num_vnets
        self.VV = rc.vcs_per_vnet
        self.PV = P * V
        self.rot = rc.bypass_rotation_period
        self.link_lat = config.link_latency
        self.cred_lat = config.credit_latency
        # calendar span — mirrors ``EventScheduler``: an event written at
        # cycle t with latency k lands in slot (t + k) % span, delivered
        # when the read pointer reaches that slot k cycles later
        self.span = max(self.link_lat, self.cred_lat) + 1
        self._inject_until = (
            sim_config.warmup_cycles + sim_config.measure_cycles
        )

        # --- static wiring (shared by all lanes) -----------------------
        topo = Topology(config)
        self.link_dst = np.full((R, P), -1, dtype=np.int32)
        self.link_dport = np.full((R, P), -1, dtype=np.int32)
        self.up_node = np.full((R, P), -1, dtype=np.int32)
        self.up_port = np.full((R, P), -1, dtype=np.int32)
        for (node, port), (dst, dport) in topo.links.items():
            self.link_dst[node, port] = dst
            self.link_dport[node, port] = dport
        for node in range(R):
            for port in range(1, P):
                up = topo.upstream_link[node][port]
                if up is not None:
                    self.up_node[node, port] = up[0]
                    self.up_port[node, port] = up[1]
        routing = make_routing(config, routing_kind)
        self.rtab = np.array(routing.route_table(), dtype=np.int32)

        # --- per-VC state, physical-slot indexed -----------------------
        shape4 = (L, R, P, V)
        self.st = np.zeros(shape4, dtype=np.int8)  # VCState
        self.route = np.full(shape4, -1, dtype=np.int32)
        self.outvc = np.full(shape4, -1, dtype=np.int32)
        self.vpid = np.full(shape4, -1, dtype=np.int64)
        self.excl = np.zeros(shape4, dtype=np.int64)  # va_excluded bitmask
        # wire-id indirection: ``pwire[..., s]`` is the wire id of the VC
        # object in physical slot s; ``wphys`` is the inverse permutation
        self.pwire = np.broadcast_to(
            np.arange(V, dtype=np.int32), shape4
        ).copy()
        self.wphys = self.pwire.copy()

        # flit buffers: ring per VC over per-flit integer fields
        shape5 = (L, R, P, V, D)
        self.b_pid = np.full(shape5, -1, dtype=np.int64)
        self.b_dest = np.full(shape5, -1, dtype=np.int32)
        self.b_hops = np.zeros(shape5, dtype=np.int32)
        self.b_flags = np.zeros(shape5, dtype=np.int8)
        self.b_head = np.zeros(shape4, dtype=np.int32)
        self.b_cnt = np.zeros(shape4, dtype=np.int32)

        # output side: credits and downstream-VC ownership
        self.cred = np.full(shape4, D, dtype=np.int32)
        self.alloc = np.full(shape4, -1, dtype=np.int64)

        # round-robin arbiter priority pointers
        self.va1_prio = np.zeros((L, R, P, V, P), dtype=np.int32)
        self.va2_prio = np.zeros(shape4, dtype=np.int32)
        self.sa1_prio = np.zeros((L, R, P), dtype=np.int32)
        self.sa2_prio = np.zeros((L, R, P), dtype=np.int32)

        # fault masks, one per protectable unit kind
        shape3 = (L, R, P)
        self.f_rc1 = np.zeros(shape3, dtype=bool)
        self.f_rc2 = np.zeros(shape3, dtype=bool)
        self.f_va1 = np.zeros(shape4, dtype=bool)
        self.f_va2 = np.zeros(shape4, dtype=bool)
        self.f_sa1 = np.zeros(shape3, dtype=bool)
        self.f_sa1b = np.zeros(shape3, dtype=bool)
        self.f_sa2 = np.zeros(shape3, dtype=bool)
        self.f_xbm = np.zeros(shape3, dtype=bool)
        self.f_xbs = np.zeros(shape3, dtype=bool)
        # fast-path flags: phases skip fault branches entirely until the
        # first fault of that kind lands anywhere in the fleet
        self._have_rc = self._have_va1 = self._have_va2 = False
        self._have_sa1 = self._have_excl = False

        # crossbar path plans per (lane, router, dest), fault-dependent
        self.plan_ok = np.ones(shape3, dtype=bool)
        self.plan_arb = np.broadcast_to(
            np.arange(P, dtype=np.int32), shape3
        ).copy()
        self.plan_sec = np.zeros(shape3, dtype=bool)

        # XB queue: at most one SA grant per input port per cycle
        self.xq_valid = np.zeros(shape3, dtype=bool)
        self.xq_slot = np.zeros(shape3, dtype=np.int32)
        self.xq_dest = np.zeros(shape3, dtype=np.int32)

        # calendar events in flight, one ring per event kind indexed by
        # ``cycle % span``: flits/ejections are written ``link_latency``
        # slots ahead, credits ``credit_latency`` slots ahead.  Each slot
        # is a tuple of parallel 1-D arrays or None — within one span
        # window every (slot, kind) pair is written by at most one cycle
        # and each phase writes its kind at most once per cycle, so no
        # same-slot merge is ever needed.
        span = self.span
        _Ring = List[Optional[Tuple[np.ndarray, ...]]]
        self._ring_flit: _Ring = [None] * span
        self._ring_eject: _Ring = [None] * span
        self._ring_credit: _Ring = [None] * span
        self._ring_nic_credit: _Ring = [None] * span
        self._ring_out_credit: _Ring = [None] * span
        self._rings = (
            self._ring_flit, self._ring_eject, self._ring_credit,
            self._ring_nic_credit, self._ring_out_credit,
        )

        # --- scalar per-lane state -------------------------------------
        self.net_stats = [
            NetworkStats(keep_samples=keep_samples) for _ in range(L)
        ]
        self.rstats = np.zeros((L, len(_RS_IDX)), dtype=np.int64)
        #: per-lane packet table: pid -> [src, dest, vnet, len, creation,
        #: injection]; populated at enqueue, popped at tail ejection
        self.pkt_info: List[Dict[int, list]] = [dict() for _ in range(L)]
        self.nics = [
            [_LaneNic(rc) for _ in range(R)] for _ in range(L)
        ]
        self.nic_active: List[set] = [set() for _ in range(L)]
        self.fin = [0] * L  # flits in network, per lane
        self.lane_queued = [0] * L  # queued/mid-injection packets, per lane
        self.last_progress = [0] * L
        self.faults_injected = [0] * L
        self.blocked = [False] * L
        self.drained = [False] * L
        self.end_cycle = [0] * L
        self._act = np.ones(L, dtype=bool)

        # --- lane refill / streaming point queue -----------------------
        # lanes run on local clocks: local cycle = global - off[lane];
        # a retiring lane's slot is refilled from ``pending`` and its
        # result decoded immediately, keyed by sweep point index
        self._pending: deque = deque(pending or ())
        self.off = [0] * L
        self.lane_point = list(range(L))
        self._next_point = L
        self._results: List[Optional[SimulationResult]] = [None] * (
            L + len(self._pending)
        )
        # lane-occupancy accounting (active lane-cycles / lane-cycles)
        self.active_lane_cycles = 0
        self.total_lane_cycles = 0

        # broadcast index helpers
        self._lane_ids = np.arange(L)
        self._any_schedules = any(
            spec.fault_schedule is not None for spec in self.lanes
        )
        self._fault_arrays = {
            FaultUnit.RC_PRIMARY: self.f_rc1,
            FaultUnit.RC_DUPLICATE: self.f_rc2,
            FaultUnit.VA1_ARBITER_SET: self.f_va1,
            FaultUnit.VA2_ARBITER: self.f_va2,
            FaultUnit.SA1_ARBITER: self.f_sa1,
            FaultUnit.SA1_BYPASS: self.f_sa1b,
            FaultUnit.SA2_ARBITER: self.f_sa2,
            FaultUnit.XB_MUX: self.f_xbm,
            FaultUnit.XB_SECONDARY: self.f_xbs,
        }

    # ------------------------------------------------------------------
    # fault injection and crossbar path plans
    # ------------------------------------------------------------------
    def _inject_lane_faults(self, cycle: int) -> None:
        for lane in range(self.L):
            if not self._act[lane]:
                continue
            sched = self.lanes[lane].fault_schedule
            if sched is None:
                continue
            for site in sched.due(cycle - self.off[lane]):
                if self._inject_site(lane, site):
                    self.faults_injected[lane] += 1

    def _inject_site(self, lane: int, site) -> bool:
        """Mirror ``BaseRouter.inject_fault``: idempotent, plans refreshed."""
        arr = self._fault_arrays[site.unit]
        if site.vc >= 0:
            idx = (lane, site.router, site.port, site.vc)
        else:
            idx = (lane, site.router, site.port)
        if arr[idx]:
            return False
        arr[idx] = True
        unit = site.unit
        if unit in (FaultUnit.RC_PRIMARY, FaultUnit.RC_DUPLICATE):
            self._have_rc = True
        elif unit is FaultUnit.VA1_ARBITER_SET:
            self._have_va1 = True
        elif unit is FaultUnit.VA2_ARBITER:
            self._have_va2 = True
        elif unit in (FaultUnit.SA1_ARBITER, FaultUnit.SA1_BYPASS):
            self._have_sa1 = True
        if unit in (FaultUnit.XB_MUX, FaultUnit.XB_SECONDARY, FaultUnit.SA2_ARBITER):
            self._recompute_plans(lane, site.router)
        return True

    def _recompute_plans(self, lane: int, r: int) -> None:
        """Rebuild the per-dest path plans of one (lane, router).

        Matches ``Crossbar.plan_path``/``SecondaryPathCrossbar.plan_path``:
        the normal path needs a healthy output mux and stage-2 arbiter; the
        protected router falls back to the neighbouring output's secondary
        path (input ``dest-1``, or 1 for output 0) when available.
        """
        for k in range(self.P):
            if not self.f_xbm[lane, r, k] and not self.f_sa2[lane, r, k]:
                self.plan_ok[lane, r, k] = True
                self.plan_arb[lane, r, k] = k
                self.plan_sec[lane, r, k] = False
                continue
            ok = False
            if self.protected:
                src = 1 if k == 0 else k - 1
                if (
                    not self.f_xbs[lane, r, k]
                    and not self.f_xbm[lane, r, src]
                    and not self.f_sa2[lane, r, src]
                ):
                    self.plan_ok[lane, r, k] = True
                    self.plan_arb[lane, r, k] = src
                    self.plan_sec[lane, r, k] = True
                    ok = True
            if not ok:
                self.plan_ok[lane, r, k] = False

    # ------------------------------------------------------------------
    # one vectorised cycle
    # ------------------------------------------------------------------
    def _step(self, cycle: int) -> None:
        """One cycle for every active lane — mirrors ``NoCSimulator._step``.

        Traffic injection gates itself per lane on the lane's *local*
        inject window, so lanes installed mid-run warm up and drain on
        their own clocks.
        """
        if self._any_schedules:
            self._inject_lane_faults(cycle)
        self._xb_phase(cycle)
        self._sa_phase(cycle)
        self._va_phase()
        self._rc_phase()
        self._dispatch(cycle)
        self._generate_traffic(cycle)
        self._nic_step(cycle)

    @staticmethod
    def _rr_pick(
        f: np.ndarray,
        prio_per_group: np.ndarray,
        starts: np.ndarray,
        seg: np.ndarray,
        size: int,
    ) -> np.ndarray:
        """Per segment, mark the element minimising ``(f - prio) % size``.

        ``f`` values are distinct within a segment, so exactly one element
        per segment is marked — the grant a ``RoundRobinArbiter`` makes.
        """
        dist = (f - prio_per_group[seg]) % size
        best = np.minimum.reduceat(dist, starts)
        return dist == best[seg]

    @staticmethod
    def _segments(sorted_key: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(segment starts, per-element segment id) of a sorted key array."""
        first = np.empty(sorted_key.shape, dtype=bool)
        first[0] = True
        np.not_equal(sorted_key[1:], sorted_key[:-1], out=first[1:])
        return np.flatnonzero(first), np.cumsum(first) - 1

    def _xb_phase(self, cycle: int) -> None:
        """Traverse last cycle's SA winners — mirrors ``BaseRouter.xb_phase``."""
        if not self.xq_valid.any():
            return
        lx, rx, px = np.nonzero(self.xq_valid)
        self.xq_valid[lx, rx, px] = False
        keep = self._act[lx]
        if not keep.all():
            lx, rx, px = lx[keep], rx[keep], px[keep]
            if lx.size == 0:
                return
        vx = self.xq_slot[lx, rx, px]
        dest = self.xq_dest[lx, rx, px]
        ovc = self.outvc[lx, rx, px, vx]
        h = self.b_head[lx, rx, px, vx]
        fpid = self.b_pid[lx, rx, px, vx, h]
        fdest = self.b_dest[lx, rx, px, vx, h]
        fhops = self.b_hops[lx, rx, px, vx, h] + 1
        ffl = self.b_flags[lx, rx, px, vx, h]
        self.b_head[lx, rx, px, vx] = (h + 1) % self.D
        cnt = self.b_cnt[lx, rx, px, vx] - 1
        self.b_cnt[lx, rx, px, vx] = cnt
        self.rstats[:, _I_TRAV] += np.bincount(lx, minlength=self.L)
        wire = self.pwire[lx, rx, px, vx]

        tail = (ffl & _F_TAIL) != 0
        if tail.any():
            lt, rt, pt, vt = lx[tail], rx[tail], px[tail], vx[tail]
            # release the downstream VC, then finish the packet: the slot
            # restarts on the next queued head or falls idle
            self.alloc[lt, rt, dest[tail], ovc[tail]] = -1
            self.route[lt, rt, pt, vt] = -1
            self.outvc[lt, rt, pt, vt] = -1
            self.excl[lt, rt, pt, vt] = 0
            has_next = cnt[tail] > 0
            hn = self.b_head[lt, rt, pt, vt]
            npid = self.b_pid[lt, rt, pt, vt, hn]
            self.st[lt, rt, pt, vt] = np.where(
                has_next, _ROUTING, _IDLE
            ).astype(np.int8)
            self.vpid[lt, rt, pt, vt] = np.where(has_next, npid, -1)

        wf = (cycle + self.link_lat) % self.span
        wc = (cycle + self.cred_lat) % self.span
        local = dest == PORT_LOCAL
        if local.any():
            self._ring_eject[wf] = (
                lx[local], rx[local], ovc[local],
                fpid[local], ffl[local], fhops[local],
            )
        rem = ~local
        if rem.any():
            self._ring_flit[wf] = (
                lx[rem],
                self.link_dst[rx[rem], dest[rem]],
                self.link_dport[rx[rem], dest[rem]],
                ovc[rem],
                fpid[rem], fdest[rem], fhops[rem], ffl[rem],
            )
        # credit return toward whoever feeds this input port
        pl = px == PORT_LOCAL
        if pl.any():
            self._ring_nic_credit[wc] = (lx[pl], rx[pl], wire[pl])
        pr = ~pl
        if pr.any():
            self._ring_credit[wc] = (
                lx[pr],
                self.up_node[rx[pr], px[pr]],
                self.up_port[rx[pr], px[pr]],
                wire[pr],
            )

    def _swap_slots(self, lane: int, r: int, p: int, a: int, b: int) -> None:
        """Exchange the VC *objects* at physical slots a and b (ft_sa swap).

        Everything that belongs to the slot object moves — pipeline state,
        buffer contents, the wire id (``pwire``) — while position-keyed
        state (arbiters, their priorities, fault flags) stays put.
        """
        ia = (lane, r, p, a)
        ib = (lane, r, p, b)
        for arr in (
            self.st, self.route, self.outvc, self.vpid, self.excl,
            self.b_head, self.b_cnt, self.pwire,
        ):
            arr[ia], arr[ib] = arr[ib], arr[ia]
        for arr in (self.b_pid, self.b_dest, self.b_hops, self.b_flags):
            tmp = arr[ia].copy()
            arr[ia] = arr[ib]
            arr[ib] = tmp
        self.wphys[lane, r, p, self.pwire[ia]] = a
        self.wphys[lane, r, p, self.pwire[ib]] = b

    def _sa_phase(self, cycle: int) -> None:
        """Switch allocation — mirrors ``SAUnit.allocate`` (+ ft_sa bypass)."""
        mask = (self.st == _ACTIVE) & (self.b_cnt > 0)
        mask &= self._act[:, None, None, None]
        if not mask.any():
            return
        lc, rc_, pc, sc = np.nonzero(mask)
        rt = self.route[lc, rc_, pc, sc]
        ov = self.outvc[lc, rc_, pc, sc]
        ok = (self.cred[lc, rc_, rt, ov] > 0) & self.plan_ok[lc, rc_, rt]
        if not ok.all():
            lc, rc_, pc, sc = lc[ok], rc_[ok], pc[ok], sc[ok]
            rt, ov = rt[ok], ov[ok]
            if lc.size == 0:
                return
        # stage 1: one winner per input port.  nonzero's C-order already
        # sorts the candidates by (lane, router, port).
        key = (lc * self.R + rc_) * self.P + pc
        starts, seg = self._segments(key)
        gl, gr, gp = lc[starts], rc_[starts], pc[starts]
        win = self._rr_pick(sc, self.sa1_prio[gl, gr, gp], starts, seg, self.V)
        if self._have_sa1:
            fa = self.f_sa1[gl, gr, gp]
            if fa.any():
                healthy = ~fa
                win &= healthy[seg]
                if not self.protected:
                    self.rstats[:, _I_SA_BLOCK] += np.bincount(
                        gl[fa], minlength=self.L
                    )
                else:
                    # bypass path: grant the rotation default, or transfer
                    # the first candidate into an idle default slot (the
                    # rotation runs on each lane's local clock)
                    bounds = np.append(starts, lc.size)
                    for g in np.flatnonzero(fa):
                        l0, r0, p0 = int(gl[g]), int(gr[g]), int(gp[g])
                        default = (
                            (cycle - self.off[l0]) // self.rot
                        ) % self.V
                        if self.f_sa1b[l0, r0, p0]:
                            self.rstats[l0, _I_SA_BLOCK] += 1
                            continue
                        elems = range(int(bounds[g]), int(bounds[g + 1]))
                        cand = [int(sc[i]) for i in elems]
                        if default in cand:
                            self.rstats[l0, _I_SA_BYPASS] += 1
                            win[int(bounds[g]) + cand.index(default)] = True
                        elif (
                            self.st[l0, r0, p0, default] == _IDLE
                            and self.b_cnt[l0, r0, p0, default] == 0
                        ):
                            self._swap_slots(l0, r0, p0, cand[0], default)
                            self.rstats[l0, _I_VC_XFER] += 1
                # advance only the healthy ports' arbiters (one winner each)
                hw = win & healthy[seg]
                self.sa1_prio[gl[healthy], gr[healthy], gp[healthy]] = (
                    sc[hw] + 1
                ) % self.V
            else:
                self.sa1_prio[gl, gr, gp] = (sc[win] + 1) % self.V
        else:
            self.sa1_prio[gl, gr, gp] = (sc[win] + 1) % self.V

        wl, wr, wp, ws = lc[win], rc_[win], pc[win], sc[win]
        if wl.size == 0:
            return
        wrt, wov = rt[win], ov[win]
        # stage 2: winners compete per *arbiter* port (secondary paths
        # borrow the neighbouring output's arbiter)
        arb = self.plan_arb[wl, wr, wrt]
        key2 = (wl * self.R + wr) * self.P + arb
        order = np.argsort(key2, kind="stable")
        starts2, seg2 = self._segments(key2[order])
        g2l = wl[order][starts2]
        g2r = wr[order][starts2]
        g2a = arb[order][starts2]
        win2 = self._rr_pick(
            wp[order], self.sa2_prio[g2l, g2r, g2a], starts2, seg2, self.P
        )
        live = ~self.f_sa2[g2l, g2r, g2a]
        if not live.all():
            win2 &= live[seg2]  # faulty stage-2 arbiter: silent skip
        self.sa2_prio[g2l[live], g2r[live], g2a[live]] = (
            wp[order][win2] + 1
        ) % self.P

        gi = order[win2]
        Gl, Gr, Gp, Gs = wl[gi], wr[gi], wp[gi], ws[gi]
        Grt, Gov = wrt[gi], wov[gi]
        self.cred[Gl, Gr, Grt, Gov] -= 1
        self.rstats[:, _I_SA_GRANT] += np.bincount(Gl, minlength=self.L)
        sec = self.plan_sec[Gl, Gr, Grt]
        if sec.any():
            self.rstats[:, _I_SEC] += np.bincount(Gl[sec], minlength=self.L)
        self.xq_valid[Gl, Gr, Gp] = True
        self.xq_slot[Gl, Gr, Gp] = Gs
        self.xq_dest[Gl, Gr, Gp] = Grt

    def _borrow_arbiters(
        self,
        lw: np.ndarray,
        rw: np.ndarray,
        pw: np.ndarray,
        sw: np.ndarray,
        fa: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Protected stage-1 arbiter borrowing (scalar; faults are rare).

        Mirrors ``ArbiterSharingVAUnit._stage1_arbiters``: a VC whose own
        arbiter set is faulty scans sibling slots in order for a healthy,
        unlent lender that is IDLE or ACTIVE this cycle.  Returns the
        keep-mask and per-requester owner slot (the priority row used).
        """
        keep = np.ones(lw.shape, dtype=bool)
        owner = sw.copy()
        borrowed: set = set()
        prev_key = None
        for i in np.flatnonzero(fa):
            l0, r0, p0, s0 = int(lw[i]), int(rw[i]), int(pw[i]), int(sw[i])
            k = (l0, r0, p0)
            if k != prev_key:
                borrowed = set()
                prev_key = k
            lender = -1
            for ls in range(self.V):
                if ls == s0 or ls in borrowed or self.f_va1[l0, r0, p0, ls]:
                    continue
                state = self.st[l0, r0, p0, ls]
                if state == _IDLE or state == _ACTIVE:
                    lender = ls
                    break
            if lender < 0:
                self.rstats[l0, _I_VA_BORROW_WAIT] += 1
                self.rstats[l0, _I_VA_BLOCK] += 1
                keep[i] = False
            else:
                borrowed.add(lender)
                owner[i] = lender
        return keep, owner

    def _va_phase(self) -> None:
        """VC allocation — mirrors ``VAUnit.allocate`` (+ ft_va borrowing)."""
        mask = (self.st == _WAITING_VA) & self._act[:, None, None, None]
        if not mask.any():
            return
        lw, rw, pw, sw = np.nonzero(mask)
        owner = sw
        if self._have_va1:
            fa = self.f_va1[lw, rw, pw, sw]
            if fa.any():
                if self.protected:
                    keep, owner = self._borrow_arbiters(lw, rw, pw, sw, fa)
                else:
                    self.rstats[:, _I_VA_BLOCK] += np.bincount(
                        lw[fa], minlength=self.L
                    )
                    keep = ~fa
                lw, rw, pw, sw = lw[keep], rw[keep], pw[keep], sw[keep]
                owner = owner[keep]
                if lw.size == 0:
                    return
        rt = self.route[lw, rw, pw, sw]
        # free downstream VCs of the requester's vnet (the *wire id* of the
        # slot object decides the vnet, not the physical position)
        lo = (self.pwire[lw, rw, pw, sw] // self.VV) * self.VV
        da = np.arange(self.V)
        free = (da >= lo[:, None]) & (da < (lo + self.VV)[:, None])
        free &= self.alloc[lw, rw, rt, :] < 0
        if self._have_va2 and self.protected:
            ex = self.excl[lw, rw, pw, sw]
            if ex.any():
                free &= ((ex[:, None] >> da) & 1) == 0
        any_free = free.any(axis=1)
        if not any_free.all():
            nf = ~any_free
            self.rstats[:, _I_VA_NOFREE] += np.bincount(
                lw[nf], minlength=self.L
            )
            lw, rw, pw, sw = lw[any_free], rw[any_free], pw[any_free], sw[any_free]
            owner, rt, free = owner[any_free], rt[any_free], free[any_free]
            if lw.size == 0:
                return
        # stage 1 pick: the owner slot's per-output round-robin row
        prio = self.va1_prio[lw, rw, pw, owner, rt]
        dist = np.where(free, (da - prio[:, None]) % self.V, self.V)
        choice = np.argmin(dist, axis=1)
        self.va1_prio[lw, rw, pw, owner, rt] = (choice + 1) % self.V

        # stage 2: proposals grouped per (output port, downstream VC)
        flat = pw * self.V + sw
        key = ((lw * self.R + rw) * self.P + rt) * self.V + choice
        order = np.argsort(key, kind="stable")
        starts, seg = self._segments(key[order])
        g_l = lw[order][starts]
        g_r = rw[order][starts]
        g_rt = rt[order][starts]
        g_ch = choice[order][starts]
        live = np.ones(starts.shape, dtype=bool)
        if self._have_va2:
            faulty_g = self.f_va2[g_l, g_r, g_rt, g_ch]
            if faulty_g.any():
                live = ~faulty_g
                fe = faulty_g[seg]
                self.rstats[:, _I_VA2_RETRY] += np.bincount(
                    lw[order][fe], minlength=self.L
                )
                if self.protected:
                    # record the exclusion so the retry picks elsewhere
                    self.excl[
                        lw[order][fe], rw[order][fe],
                        pw[order][fe], sw[order][fe],
                    ] |= np.int64(1) << choice[order][fe]
                    self._have_excl = True
        win = self._rr_pick(
            flat[order], self.va2_prio[g_l, g_r, g_rt, g_ch], starts, seg, self.PV
        )
        win &= live[seg]
        self.va2_prio[g_l[live], g_r[live], g_rt[live], g_ch[live]] = (
            flat[order][win] + 1
        ) % self.PV

        gi = order[win]
        Wl, Wr, Wp, Ws = lw[gi], rw[gi], pw[gi], sw[gi]
        Wrt, Wch = rt[gi], choice[gi]
        self.outvc[Wl, Wr, Wp, Ws] = Wch
        self.st[Wl, Wr, Wp, Ws] = _ACTIVE
        self.excl[Wl, Wr, Wp, Ws] = 0
        self.alloc[Wl, Wr, Wrt, Wch] = self.vpid[Wl, Wr, Wp, Ws]
        self.rstats[:, _I_VA_GRANT] += np.bincount(Wl, minlength=self.L)
        bm = owner[gi] != Ws
        if bm.any():
            self.rstats[:, _I_VA_BORROWED] += np.bincount(
                Wl[bm], minlength=self.L
            )

    def _rc_phase(self) -> None:
        """Route computation — mirrors ``RCUnit``/``DuplicatedRCUnit``."""
        mask = (self.st == _ROUTING) & self._act[:, None, None, None]
        if not mask.any():
            return
        li, ri, pi, si = np.nonzero(mask)
        if self._have_rc:
            f1 = self.f_rc1[li, ri, pi]
            if self.protected:
                blocked = f1 & self.f_rc2[li, ri, pi]
                dup = f1 & ~blocked
                if dup.any():
                    self.rstats[:, _I_RC_DUP] += np.bincount(
                        li[dup], minlength=self.L
                    )
            else:
                blocked = f1
            if blocked.any():
                self.rstats[:, _I_RC_BLOCK] += np.bincount(
                    li[blocked], minlength=self.L
                )
                keep = ~blocked
                li, ri, pi, si = li[keep], ri[keep], pi[keep], si[keep]
                if li.size == 0:
                    return
        h = self.b_head[li, ri, pi, si]
        out = self.rtab[ri, self.b_dest[li, ri, pi, si, h]]
        pok = self.plan_ok[li, ri, out]
        if not pok.all():
            bad = ~pok
            self.rstats[:, _I_UNREACH] += np.bincount(
                li[bad], minlength=self.L
            )
            li, ri, pi, si, out = li[pok], ri[pok], pi[pok], si[pok], out[pok]
        self.route[li, ri, pi, si] = out
        self.st[li, ri, pi, si] = _WAITING_VA

    # ------------------------------------------------------------------
    # event delivery and the NIC boundary
    # ------------------------------------------------------------------
    def _dispatch(self, cycle: int) -> None:
        """Deliver this slot's events — mirrors ``EventScheduler.dispatch``."""
        s = cycle % self.span
        ev = self._ring_flit[s]
        self._ring_flit[s] = None
        if ev is not None:
            keep = self._act[ev[0]]
            if not keep.all():
                ev = tuple(a[keep] for a in ev)
            l, node, port, w, pid, dst, hops, flags = ev
            if l.size:
                phys = self.wphys[l, node, port, w]
                cnt = self.b_cnt[l, node, port, phys]
                pos = (self.b_head[l, node, port, phys] + cnt) % self.D
                self.b_pid[l, node, port, phys, pos] = pid
                self.b_dest[l, node, port, phys, pos] = dst
                self.b_hops[l, node, port, phys, pos] = hops
                self.b_flags[l, node, port, phys, pos] = flags
                self.b_cnt[l, node, port, phys] = cnt + 1
                self.rstats[:, _I_BUFW] += np.bincount(l, minlength=self.L)
                idle = self.st[l, node, port, phys] == _IDLE
                if idle.any():
                    il, ino = l[idle], node[idle]
                    ipo, iph = port[idle], phys[idle]
                    self.st[il, ino, ipo, iph] = _ROUTING
                    self.route[il, ino, ipo, iph] = -1
                    self.outvc[il, ino, ipo, iph] = -1
                    self.excl[il, ino, ipo, iph] = 0
                    self.vpid[il, ino, ipo, iph] = pid[idle]
                for lane in np.unique(l):
                    self.last_progress[lane] = cycle
        ev = self._ring_eject[s]
        self._ring_eject[s] = None
        oc_l: list = []
        oc_n: list = []
        oc_w: list = []
        if ev is not None:
            act = self._act
            stats = self.net_stats
            fin = self.fin
            lp = self.last_progress
            pinfo = self.pkt_info
            off = self.off
            for lane, node, w, pid, flags, hops in zip(
                ev[0].tolist(), ev[1].tolist(), ev[2].tolist(),
                ev[3].tolist(), ev[4].tolist(), ev[5].tolist(),
            ):
                if not act[lane]:
                    continue
                ns = stats[lane]
                ns.flits_ejected += 1
                fin[lane] -= 1
                lp[lane] = cycle
                oc_l.append(lane)
                oc_n.append(node)
                oc_w.append(w)
                if flags & _F_TAIL:
                    info = pinfo[lane].pop(pid)
                    ns.record_packet(LatencySample(
                        packet_id=pid,
                        src=info[0],
                        dest=info[1],
                        vnet=info[2],
                        size_flits=info[3],
                        creation_cycle=info[4],
                        injection_cycle=info[5],
                        ejection_cycle=cycle - off[lane],
                        hops=hops,
                    ))
        if oc_l:
            self._ring_out_credit[(cycle + self.cred_lat) % self.span] = (
                np.asarray(oc_l), np.asarray(oc_n), np.asarray(oc_w),
            )
        ev = self._ring_credit[s]
        self._ring_credit[s] = None
        if ev is not None:
            keep = self._act[ev[0]]
            if not keep.all():
                ev = tuple(a[keep] for a in ev)
            l, node, port, w = ev
            self.cred[l, node, port, w] += 1
        ev = self._ring_nic_credit[s]
        self._ring_nic_credit[s] = None
        if ev is not None:
            act = self._act
            nics = self.nics
            for lane, node, w in zip(
                ev[0].tolist(), ev[1].tolist(), ev[2].tolist()
            ):
                if act[lane]:
                    nics[lane][node].credits[w] += 1
        ev = self._ring_out_credit[s]
        self._ring_out_credit[s] = None
        if ev is not None:
            keep = self._act[ev[0]]
            if not keep.all():
                ev = tuple(a[keep] for a in ev)
            l, node, w = ev
            self.cred[l, node, PORT_LOCAL, w] += 1

    def _generate_traffic(self, cycle: int) -> None:
        iu = self._inject_until
        for lane in range(self.L):
            if not self._act[lane]:
                continue
            local = cycle - self.off[lane]
            if local >= iu:
                continue
            spec = self.lanes[lane]
            pkts = list(spec.traffic.generate(local))
            if not pkts:
                continue
            ns = self.net_stats[lane]
            nics = self.nics[lane]
            active = self.nic_active[lane]
            info = self.pkt_info[lane]
            for pkt in pkts:
                nic = nics[pkt.src]
                nic.srcq[pkt.vnet].append(pkt)
                nic.queued += 1
                ns.packets_created += 1
                self.lane_queued[lane] += 1
                active.add(pkt.src)
                info[pkt.packet_id] = [
                    pkt.src, pkt.dest, pkt.vnet, pkt.size_flits,
                    pkt.creation_cycle, -1,
                ]

    def _nic_step(self, cycle: int) -> None:
        """Inject up to one flit per NIC — mirrors ``NetworkInterface.step``.

        The per-NIC decision logic is scalar (source queues, credits, vnet
        round-robin), but the resulting buffer writes are batched into one
        vectorised scatter: every NIC injects at most one flit per cycle,
        so the target cells are distinct.
        """
        NV, VV = self.NV, self.VV
        inj: list = []
        for lane in range(self.L):
            if not self._act[lane] or not self.nic_active[lane]:
                continue
            ns = self.net_stats[lane]
            info = self.pkt_info[lane]
            done_nodes = []
            for node in self.nic_active[lane]:
                nic = self.nics[lane][node]
                credits = nic.credits
                for i in range(NV):
                    vnet = (nic.rr + i) % NV
                    ai = nic.active[vnet]
                    if ai is None:
                        q = nic.srcq[vnet]
                        if q:
                            # NIC-side VC allocation on the local input port
                            for d in range(vnet * VV, (vnet + 1) * VV):
                                if nic.alloc[d] is None:
                                    pkt = q.popleft()
                                    nic.alloc[d] = pkt.packet_id
                                    ai = [
                                        pkt.packet_id, pkt.dest, 0,
                                        pkt.size_flits, d,
                                    ]
                                    nic.active[vnet] = ai
                                    break
                    if ai is None:
                        continue
                    d = ai[4]
                    if credits[d] <= 0:
                        continue
                    pid, dest, idx, length = ai[0], ai[1], ai[2], ai[3]
                    flags = (_F_HEAD if idx == 0 else 0) | (
                        _F_TAIL if idx == length - 1 else 0
                    )
                    inj.append((lane, node, d, pid, dest, flags))
                    credits[d] -= 1
                    ns.flits_injected += 1
                    self.fin[lane] += 1
                    if idx == 0:
                        ns.packets_injected += 1
                        info[pid][5] = cycle - self.off[lane]
                    if idx == length - 1:
                        nic.alloc[d] = None
                        nic.active[vnet] = None
                        nic.queued -= 1
                        self.lane_queued[lane] -= 1
                        if nic.queued == 0:
                            done_nodes.append(node)
                    else:
                        ai[2] = idx + 1
                    nic.rr = (vnet + 1) % NV
                    break  # local link bandwidth: one flit per cycle
            for node in done_nodes:
                self.nic_active[lane].discard(node)
        if inj:
            self._scatter_local_flits(inj)

    def _scatter_local_flits(self, inj: list) -> None:
        """Write this cycle's NIC injections into the local-port buffers.

        One flit per NIC per cycle means the (lane, node, slot) targets
        are distinct, so a plain fancy-index scatter is exact.
        """
        l, node, w, pid, dest, flags = (np.asarray(c) for c in zip(*inj))
        phys = self.wphys[l, node, PORT_LOCAL, w]
        cnt = self.b_cnt[l, node, PORT_LOCAL, phys]
        pos = (self.b_head[l, node, PORT_LOCAL, phys] + cnt) % self.D
        self.b_pid[l, node, PORT_LOCAL, phys, pos] = pid
        self.b_dest[l, node, PORT_LOCAL, phys, pos] = dest
        self.b_hops[l, node, PORT_LOCAL, phys, pos] = 0
        self.b_flags[l, node, PORT_LOCAL, phys, pos] = flags
        self.b_cnt[l, node, PORT_LOCAL, phys] = cnt + 1
        self.rstats[:, _I_BUFW] += np.bincount(l, minlength=self.L)
        idle = self.st[l, node, PORT_LOCAL, phys] == _IDLE
        if idle.any():
            il, ino, iph = l[idle], node[idle], phys[idle]
            self.st[il, ino, PORT_LOCAL, iph] = _ROUTING
            self.route[il, ino, PORT_LOCAL, iph] = -1
            self.outvc[il, ino, PORT_LOCAL, iph] = -1
            self.excl[il, ino, PORT_LOCAL, iph] = 0
            self.vpid[il, ino, PORT_LOCAL, iph] = pid[idle]

    # ------------------------------------------------------------------
    # run loop: shared cycle counter, independent lane retirement
    # ------------------------------------------------------------------
    def run(self) -> List[SimulationResult]:
        """Run every point to completion; results in point order.

        Lanes share the global cycle counter but run on their own local
        clocks: each blocks, drains and retires exactly where its serial
        run would (watchdog trips freeze a lane mid-flight; the drain
        predicate — no flits in the network, no queued packets — retires
        it cleanly).  Freed slots are refilled from the pending queue
        until the whole point stream has run.
        """
        sc = self.sim_config
        wd = sc.watchdog_cycles
        for ns in self.net_stats:
            ns.set_window(sc.warmup_cycles, sc.warmup_cycles + sc.measure_cycles)
        inject_until = self._inject_until
        horizon = inject_until + sc.drain_cycles
        cycle = 0
        while True:
            # per-lane retirement scan, in serial check order: watchdog
            # first (it is evaluated before the loop predicates in
            # ``NoCSimulator.run``), then the drain predicate / deadline
            for lane in np.flatnonzero(self._act):
                lane = int(lane)
                if (
                    self.fin[lane] > 0
                    and cycle - self.last_progress[lane] > wd
                ):
                    self.blocked[lane] = True
                    self._retire(lane, cycle, drained=False)
                    continue
                local = cycle - self.off[lane]
                if local >= inject_until:
                    done = (
                        self.fin[lane] == 0 and self.lane_queued[lane] == 0
                    )
                    if done or local >= horizon:
                        self._retire(lane, cycle, drained=done)
            if not self._act.any():
                break
            self.active_lane_cycles += int(self._act.sum())
            self.total_lane_cycles += self.L
            self._step(cycle)
            cycle += 1
        return cast(List[SimulationResult], list(self._results))

    @property
    def lane_occupancy(self) -> float:
        """Fraction of lane slots active, averaged over the cycles run."""
        if self.total_lane_cycles == 0:
            return 1.0
        return self.active_lane_cycles / self.total_lane_cycles

    def _retire(self, lane: int, cycle: int, drained: bool) -> None:
        """Decode one finished lane's result, then refill its slot."""
        local = cycle - self.off[lane]
        self.end_cycle[lane] = local
        self.drained[lane] = drained
        self._act[lane] = False
        self._results[self.lane_point[lane]] = SimulationResult(
            stats=self.net_stats[lane],
            cycles=local,
            blocked=self.blocked[lane],
            drained=drained,
            router_stats=RouterStats(
                *(int(v) for v in self.rstats[lane])
            ),
            faults_injected=self.faults_injected[lane],
        )
        if self._pending:
            self._install_lane(lane, self._pending.popleft(), cycle)

    def _install_lane(self, lane: int, spec: LaneSpec, cycle: int) -> None:
        """Import the next pending point into a freed lane slot.

        Every per-lane array slice and scalar returns to its power-on
        value and the old occupant's stale in-flight events are purged
        from the calendar rings, so the refilled lane is bit-identical
        to the same point run in a fresh fabric — the array form of the
        router ``import_state()`` seam.
        """
        rc = self.config.router
        self.st[lane] = _IDLE
        self.route[lane] = -1
        self.outvc[lane] = -1
        self.vpid[lane] = -1
        self.excl[lane] = 0
        self.pwire[lane] = np.arange(self.V, dtype=np.int32)
        self.wphys[lane] = np.arange(self.V, dtype=np.int32)
        self.b_pid[lane] = -1
        self.b_dest[lane] = -1
        self.b_hops[lane] = 0
        self.b_flags[lane] = 0
        self.b_head[lane] = 0
        self.b_cnt[lane] = 0
        self.cred[lane] = self.D
        self.alloc[lane] = -1
        self.va1_prio[lane] = 0
        self.va2_prio[lane] = 0
        self.sa1_prio[lane] = 0
        self.sa2_prio[lane] = 0
        for arr in self._fault_arrays.values():
            arr[lane] = False
        self.plan_ok[lane] = True
        self.plan_arb[lane] = np.arange(self.P, dtype=np.int32)
        self.plan_sec[lane] = False
        self.xq_valid[lane] = False
        self._purge_lane_events(lane)

        ns = NetworkStats(keep_samples=self.keep_samples)
        sc = self.sim_config
        ns.set_window(sc.warmup_cycles, sc.warmup_cycles + sc.measure_cycles)
        self.net_stats[lane] = ns
        self.rstats[lane] = 0
        self.pkt_info[lane] = {}
        self.nics[lane] = [_LaneNic(rc) for _ in range(self.R)]
        self.nic_active[lane] = set()
        self.fin[lane] = 0
        self.lane_queued[lane] = 0
        self.last_progress[lane] = cycle
        self.faults_injected[lane] = 0
        self.blocked[lane] = False
        self.drained[lane] = False
        self.end_cycle[lane] = 0
        self.off[lane] = cycle
        self.lanes[lane] = spec
        self.lane_point[lane] = self._next_point
        self._next_point += 1
        if spec.fault_schedule is not None:
            self._any_schedules = True
        self._act[lane] = True

    def _purge_lane_events(self, lane: int) -> None:
        """Drop a retired lane's stale in-flight events from every ring.

        A watchdog-blocked lane retires with flits still on the wire;
        without the purge, ``_dispatch``'s activity filter would deliver
        them into the slot's next occupant.
        """
        for ring in self._rings:
            for i, ev in enumerate(ring):
                if ev is None:
                    continue
                keep = ev[0] != lane
                ring[i] = (
                    tuple(a[keep] for a in ev) if keep.any() else None
                )


def run_lanes(
    config: NetworkConfig,
    sim_config: SimulationConfig,
    lanes: List[LaneSpec],
    router_factory: Optional[RouterFactory] = None,
    routing_kind: str = "xy",
    *,
    keep_samples: bool = False,
    width: Optional[int] = None,
) -> List[SimulationResult]:
    """Run a group of lanes through the batched engine (convenience).

    ``width`` caps the number of concurrent lane slots; the rest of the
    points stream in through lane refill as slots free up.
    """
    w = len(lanes) if width is None else max(1, min(width, len(lanes)))
    return BatchedLaneEngine(
        config, sim_config, lanes[:w], router_factory, routing_kind,
        keep_samples=keep_samples, pending=lanes[w:],
    ).run()


class _LaneNic:
    """Scalar NIC state machine of one (lane, node) — plain Python lists.

    The NIC boundary is inherently per-packet (source queues, one-flit-
    per-cycle injection, per-vnet round-robin), so it stays scalar; lists
    beat NumPy scalar indexing by an order of magnitude here.
    """

    __slots__ = (
        "credits", "alloc", "active", "rr", "queued", "srcq",
    )

    def __init__(self, rc) -> None:
        self.credits = [rc.buffer_depth] * rc.num_vcs
        self.alloc: list = [None] * rc.num_vcs
        #: per-vnet active injection: [pid, dest, next_idx, length,
        #: wire_vc] or None
        self.active: list = [None] * rc.num_vnets
        self.rr = 0
        self.queued = 0
        #: per-vnet FIFO of queued Packets
        self.srcq: list = [deque() for _ in range(rc.num_vnets)]
