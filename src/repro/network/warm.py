"""Warm-network pool: reuse one constructed fabric across many runs.

Building an 8x8 mesh — 64 routers x (20 VCs + 125 VA arbiters + 10 SA
arbiters + crossbar + route row) plus NICs and topology — costs far more
than a warm reset that only rewinds dynamic state.  Sweep workers
therefore keep one simulator per *structural* configuration and
:meth:`repro.network.simulator.NoCSimulator.reset` it between sweep
points and Monte-Carlo trials.  The golden determinism tests pin the
reset path bit-identical to fresh construction, so pooling is purely a
wall-clock optimization.

The pool is per-process (sweep workers are separate processes, each
keeps its own warm fabric) and keyed by everything that shapes the
object graph: the frozen :class:`~repro.config.NetworkConfig`, the
router flavour (``router_kind`` marker on the factory), the routing
function kind, the sample-retention flag, and the fault schedule's
``fingerprint()`` — a pooled fabric is never held under a schedule it is
no longer running (a structurally matching fabric with a *different*
schedule fingerprint is recycled through ``reset()`` and re-keyed, so
the per-process pool stays one fabric per structural configuration).
Factories without the marker — ad-hoc lambdas in tests — fall back to a
fresh, uncached build.

Setup wall time (construction *and* resets) accumulates in a
module-level counter that :mod:`repro.experiments.parallel` drains into
the per-shard ``setup_s`` / ``run_s`` timing split.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Optional

from ..config import NetworkConfig, SimulationConfig
from ..observability import Observability
from .simulator import (
    FaultSchedule,
    NoCSimulator,
    RouterFactory,
    TrafficSource,
    baseline_router_factory,
)

#: pool key -> warm simulator (per process; workers each grow their own)
_POOL: dict = {}

#: anonymous-schedule serial for keys that must never be reused
_anon_counter = 0

#: seconds spent building or resetting networks since the last drain
_setup_seconds = 0.0


def acquire(
    config: NetworkConfig,
    sim_config: SimulationConfig,
    traffic: TrafficSource,
    router_factory: Optional[RouterFactory] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    routing_kind: str = "xy",
    keep_samples: bool = False,
    on_eject: Optional[Callable] = None,
    observability: Optional[Observability] = None,
    event_driven: bool = True,
    engine: str = "event",
) -> NoCSimulator:
    """A simulator ready to ``run()`` — warm-reset when possible.

    Drop-in for the ``NoCSimulator(...)`` constructor call in sweep
    loops.  Returns a pooled, freshly reset fabric when the structural
    key matches a previous acquire in this process, else constructs (and
    pools) a new one.  Either way the caller must treat the instance as
    borrowed until its ``run()`` returns.

    ``event_driven`` mirrors the constructor flag; it is plain dynamic
    state (the loop flavour, not the object graph), so a pooled fabric is
    simply re-flagged rather than keyed on it.

    ``engine`` names the caller's engine kind and is part of the pool
    key: a worker alternating between per-point event-engine runs and
    batched-lane fallback points (``repro.network.batched``) must never
    alias the two pools, even though both hand out ``NoCSimulator``
    instances today.
    """
    global _setup_seconds, _anon_counter
    factory = router_factory if router_factory is not None else baseline_router_factory(config)
    kind = getattr(factory, "router_kind", None)
    t0 = perf_counter()
    if kind is None:
        # unknown factory: no way to prove two builds are interchangeable
        sim = NoCSimulator(
            config, sim_config, traffic, factory, fault_schedule,
            routing_kind, keep_samples, on_eject, observability,
            event_driven=event_driven,
        )
        _setup_seconds += perf_counter() - t0
        return sim
    fingerprint_fn = getattr(fault_schedule, "fingerprint", None)
    if fault_schedule is None:
        fp = "none"
    elif fingerprint_fn is not None:
        fp = fingerprint_fn()
    else:
        # pre-Protocol schedule with no content digest: give it a key that
        # can never alias a later acquire (the fabric itself still recycles
        # through the structural-prefix match below)
        _anon_counter += 1
        fp = f"anon:{_anon_counter}"
    structural = (config, kind, routing_kind, keep_samples, engine)
    key = structural + (fp,)
    sim = _POOL.get(key)
    if sim is None:
        # same structure, different schedule: recycle the fabric under the
        # new fingerprint so the pool never holds it under a stale key
        stale = next((k for k in _POOL if k[:-1] == structural), None)
        if stale is not None:
            sim = _POOL.pop(stale)
            sim.reset(sim_config, traffic, fault_schedule, on_eject, observability)
            sim.event_driven = event_driven
            _POOL[key] = sim
        else:
            sim = NoCSimulator(
                config, sim_config, traffic, factory, fault_schedule,
                routing_kind, keep_samples, on_eject, observability,
                event_driven=event_driven,
            )
            _POOL[key] = sim
    else:
        sim.reset(sim_config, traffic, fault_schedule, on_eject, observability)
        sim.event_driven = event_driven
    _setup_seconds += perf_counter() - t0
    return sim


def drain_setup_seconds() -> float:
    """Return and zero the accumulated setup time (per-shard harvest)."""
    global _setup_seconds
    t = _setup_seconds
    _setup_seconds = 0.0
    return t


def pool_size() -> int:
    """Number of warm fabrics currently pooled (diagnostics/tests)."""
    return len(_POOL)


def clear_pool() -> None:
    """Drop every pooled fabric (test isolation / memory pressure)."""
    _POOL.clear()
