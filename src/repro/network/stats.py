"""Network-level statistics collection.

The paper's latency analysis (Section IX, Figures 7 and 8) reports average
NoC packet latency per application, fault-free vs. fault-injected.  This
module accumulates per-packet latencies inside a measurement window and
exposes the aggregates the experiment harness prints.

Latency definitions (standard, GARNET-compatible):

* *network latency* — head-flit injection (entering the source router's
  local input port) to tail-flit ejection at the destination NIC;
* *total latency* — packet creation (entering the NIC source queue) to
  tail ejection, i.e. network latency plus source queueing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..observability.metrics import Histogram

#: network-latency histogram bucket upper edges (cycles); fixed so that
#: per-shard histograms always merge bucket-by-bucket (upper-inclusive
#: ``le`` semantics, one extra overflow bucket past the last edge)
LATENCY_EDGES = (
    4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256,
    384, 512, 768, 1024, 1536, 2048,
)


@dataclass
class LatencySample:
    """One completed packet's timing record."""

    packet_id: int
    src: int
    dest: int
    vnet: int
    size_flits: int
    creation_cycle: int
    injection_cycle: int
    ejection_cycle: int
    hops: int

    @property
    def network_latency(self) -> int:
        return self.ejection_cycle - self.injection_cycle

    @property
    def total_latency(self) -> int:
        return self.ejection_cycle - self.creation_cycle


class NetworkStats:
    """Aggregates packet completions during the measurement window."""

    def __init__(self, keep_samples: bool = False) -> None:
        self.keep_samples = keep_samples
        self.samples: list[LatencySample] = []
        self.packets_created = 0
        self.packets_injected = 0
        self.packets_ejected = 0
        self.flits_injected = 0
        self.flits_ejected = 0
        self.measured_packets = 0
        self._net_latency_sum = 0
        self._total_latency_sum = 0
        self._hops_sum = 0
        self._net_latency_max = 0
        #: always-on bounded histogram of measured network latencies —
        #: one bisect per completed packet, far off the per-cycle hot path
        self.latency_hist = Histogram(LATENCY_EDGES)
        #: per-virtual-network (count, network-latency sum) accumulators
        self._vnet_acc: dict[int, list[int]] = {}
        self.measure_start: Optional[int] = None
        self.measure_end: Optional[int] = None
        # -- online fault campaign counters (RecoveryMonitor.finalize) --
        #: timeline fault events that landed during the run
        self.fault_events = 0
        #: events whose watched counter moved (first visible symptom)
        self.faults_detected = 0
        #: events after which the router demonstrably served traffic
        self.faults_recovered = 0
        #: transient events healed by the native heal seam
        self.faults_healed = 0
        self.detection_latency_sum = 0
        self.recovery_latency_sum = 0
        #: flits buffered in the hit router at land time (at-risk traffic)
        self.exposed_flits = 0
        #: flits still stuck in never-recovered routers at end of run
        self.stranded_flits = 0

    # ------------------------------------------------------------------
    def set_window(self, start: int, end: int) -> None:
        """Packets *created* in [start, end) count toward latency stats."""
        self.measure_start = start
        self.measure_end = end

    def in_window(self, creation_cycle: int) -> bool:
        if self.measure_start is None:
            return True
        assert self.measure_end is not None
        return self.measure_start <= creation_cycle < self.measure_end

    # ------------------------------------------------------------------
    def record_packet(self, sample: LatencySample) -> None:
        """Record a completed packet (tail ejected)."""
        self.packets_ejected += 1
        if not self.in_window(sample.creation_cycle):
            return
        self.measured_packets += 1
        self._net_latency_sum += sample.network_latency
        self._total_latency_sum += sample.total_latency
        self._hops_sum += sample.hops
        if sample.network_latency > self._net_latency_max:
            self._net_latency_max = sample.network_latency
        self.latency_hist.observe(sample.network_latency)
        acc = self._vnet_acc.setdefault(sample.vnet, [0, 0])
        acc[0] += 1
        acc[1] += sample.network_latency
        if self.keep_samples:
            self.samples.append(sample)

    # ------------------------------------------------------------------
    @property
    def avg_network_latency(self) -> float:
        """Mean injection→ejection latency of measured packets (cycles)."""
        if self.measured_packets == 0:
            return float("nan")
        return self._net_latency_sum / self.measured_packets

    @property
    def avg_total_latency(self) -> float:
        """Mean creation→ejection latency (includes source queueing)."""
        if self.measured_packets == 0:
            return float("nan")
        return self._total_latency_sum / self.measured_packets

    @property
    def avg_hops(self) -> float:
        if self.measured_packets == 0:
            return float("nan")
        return self._hops_sum / self.measured_packets

    @property
    def max_network_latency(self) -> int:
        return self._net_latency_max

    def throughput(self, cycles: int, nodes: int) -> float:
        """Accepted traffic in flits/node/cycle over ``cycles``."""
        if cycles <= 0 or nodes <= 0:
            raise ValueError("cycles and nodes must be positive")
        return self.flits_ejected / (cycles * nodes)

    def vnet_breakdown(self) -> dict[int, dict[str, float]]:
        """Per-virtual-network measured packets and mean network latency.

        Separates request-class from reply-class behaviour in coherence-
        style traffic (replies are longer packets and typically see
        higher serialisation latency).
        """
        return {
            vnet: {
                "packets": count,
                "avg_network_latency": lat_sum / count if count else float("nan"),
            }
            for vnet, (count, lat_sum) in sorted(self._vnet_acc.items())
        }

    def latency_percentile(self, q: float) -> float:
        """Percentile of network latency; requires ``keep_samples=True``."""
        if not self.samples:
            raise ValueError("no samples kept (construct with keep_samples=True)")
        lat = np.fromiter(
            (s.network_latency for s in self.samples), dtype=np.int64
        )
        return float(np.percentile(lat, q))

    def latency_histogram(self) -> dict:
        """Bucketed network-latency distribution (see ``LATENCY_EDGES``)."""
        return self.latency_hist.snapshot()

    @property
    def mean_detection_latency(self) -> float:
        if self.faults_detected == 0:
            return float("nan")
        return self.detection_latency_sum / self.faults_detected

    @property
    def mean_time_to_recover(self) -> float:
        if self.faults_recovered == 0:
            return float("nan")
        return self.recovery_latency_sum / self.faults_recovered

    def recovery_summary(self) -> dict:
        """Campaign counters as a plain dict (empty-safe)."""
        return {
            "fault_events": self.fault_events,
            "faults_detected": self.faults_detected,
            "faults_recovered": self.faults_recovered,
            "faults_healed": self.faults_healed,
            "mean_detection_latency": self.mean_detection_latency,
            "mean_time_to_recover": self.mean_time_to_recover,
            "exposed_flits": self.exposed_flits,
            "stranded_flits": self.stranded_flits,
        }

    def summary(self) -> dict:
        """Plain-dict summary used by the experiment reports."""
        out = {
            "packets_created": self.packets_created,
            "packets_injected": self.packets_injected,
            "packets_ejected": self.packets_ejected,
            "measured_packets": self.measured_packets,
            "avg_network_latency": self.avg_network_latency,
            "avg_total_latency": self.avg_total_latency,
            "avg_hops": self.avg_hops,
            "max_network_latency": self.max_network_latency,
            "latency_histogram": self.latency_histogram(),
        }
        if self.fault_events:
            # only online campaigns populate these; keep fault-free
            # summaries byte-stable for the pinned reports
            out["recovery"] = self.recovery_summary()
        return out
