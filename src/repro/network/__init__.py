"""Cycle-accurate NoC fabric simulator (GEM5/GARNET substitute)."""

from .nic import NetworkInterface
from .simulator import (
    EventScheduler,
    NoCSimulator,
    SimulationResult,
    baseline_router_factory,
)
from .stats import LatencySample, NetworkStats
from .topology import Topology

__all__ = [
    "EventScheduler",
    "LatencySample",
    "NetworkInterface",
    "NetworkStats",
    "NoCSimulator",
    "SimulationResult",
    "Topology",
    "baseline_router_factory",
]
