"""Cycle-accurate NoC fabric simulator (GEM5/GARNET substitute)."""

from .batched import BatchedLaneEngine, LaneSpec, run_lanes
from .batched import supports as batched_supports
from .nic import NetworkInterface
from .simulator import (
    EventScheduler,
    NoCSimulator,
    SimulationResult,
    baseline_router_factory,
)
from .stats import LatencySample, NetworkStats
from .topology import Topology

__all__ = [
    "BatchedLaneEngine",
    "EventScheduler",
    "LaneSpec",
    "LatencySample",
    "NetworkInterface",
    "NetworkStats",
    "NoCSimulator",
    "SimulationResult",
    "Topology",
    "baseline_router_factory",
    "batched_supports",
    "run_lanes",
]
