"""The cycle-accurate NoC simulator (GEM5/GARNET substitute).

Per cycle, the simulator executes — for *all* routers before moving on —

1. fault injection due this cycle,
2. **XB**: crossbar traversal of last cycle's SA winners (flits leave onto
   links, credits return upstream),
3. **SA**: switch allocation,
4. **VA**: virtual-channel allocation,
5. **RC**: routing computation,
6. link/credit event delivery (flits arriving after link traversal),
7. traffic generation and NIC injection.

Executing the pipeline phases in reverse order makes each flit advance at
most one stage per cycle, which realises the paper's 4-stage pipeline
(Figure 2) plus a one-cycle link traversal: per-hop head latency is
RC+VA+SA+XB+LT = 5 cycles at zero load.

The simulator is deliberately plain Python tuned the way the hpc-parallel
guides recommend: legible first, then sped up with *activity tracking*
rather than clever machinery — the cycle loop visits only the routers and
NICs in the explicit active sets (idle components cost nothing; see
``docs/performance.md``), link/credit events live in a fixed calendar
ring, and results are bit-identical to the full-scan reference stepper
(:meth:`NoCSimulator._step_reference`, pinned by the golden determinism
test).  Bulk randomness (traffic generation, fault schedules) is
vectorised with NumPy in the traffic/fault modules.

On top of the active sets, :meth:`NoCSimulator.run` is *event-driven*:
when the fabric is provably idle (no active routers or NICs, no link or
credit events in flight) the loop asks every wake source for its next
due cycle — the traffic generator's :meth:`next_injection` lookahead,
scheduled wake events on the calendar (fault arrivals), the phase
boundary — and advances ``cycle`` straight to the earliest one.  Fully
idle stretches (drain tails after a burst, low-injection loads,
fault-isolated quiet periods) therefore cost zero work per cycle, and
the skip is invisible in the results: every skipped cycle is a no-op in
the reference stepper too, and metrics occupancy samples due inside the
gap are still taken (sampling only reads state, which is frozen while
idle).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Iterable, Optional, Protocol

from ..config import NetworkConfig, PORT_LOCAL, SimulationConfig
from ..faults.recovery import RecoveryMonitor
from ..faults.schedule import FaultSchedule
from ..observability import EventTracer, Observability, maybe_create
from ..router.flit import Packet
from ..router.router import BaseRouter, BaselineRouter, RouterStats
from ..router.routing import RoutingFunction, make_routing
from .nic import NetworkInterface
from .stats import NetworkStats
from .topology import Topology


class TrafficSource(Protocol):
    """Anything that emits packets: see :mod:`repro.traffic.generator`.

    Sources may additionally implement the *lookahead extension*::

        def next_injection(self, cycle: int, horizon: int) -> Optional[int]

    returning the next cycle in ``[cycle, horizon)`` that will yield
    packets (consuming any randomness for the quiet cycles in between,
    exactly as per-cycle ``generate`` calls would), or ``None`` when the
    window is quiet.  The event-driven loop uses it to skip idle
    stretches; sources without it simply disable skipping during the
    injection window.
    """

    def generate(self, cycle: int) -> Iterable[Packet]:
        """Packets created at ``cycle`` (their ``src`` selects the NIC)."""
        ...


# The canonical ``FaultSchedule`` protocol now lives in
# :mod:`repro.faults.schedule` (``events_at``/``next_cycle``/``fingerprint``)
# and is re-imported above for the simulator/warm-pool call sites.  The
# simulator accepts pre-protocol objects too: anything with a consuming
# ``due(cycle)`` iterator still injects, and ``next_cycle`` stays an
# optional lookahead (schedules without it disable skip-ahead).  Schedules
# with ``native_heals = True`` additionally expose ``heals_due(cycle)`` and
# are healed in-loop (see :class:`repro.faults.timeline.FaultTimeline`);
# ``wants_recovery_log = True`` makes the simulator install a
# :class:`repro.faults.recovery.RecoveryMonitor` for the run.


RouterFactory = Callable[[int, RoutingFunction], BaseRouter]


def baseline_router_factory(config: NetworkConfig) -> RouterFactory:
    """Factory producing unprotected baseline routers."""

    def make(node: int, routing: RoutingFunction) -> BaseRouter:
        return BaselineRouter(node, config.router, routing)

    # marker consumed by the warm-network pool (repro.network.warm): two
    # factories with the same router_kind build interchangeable fabrics
    make.router_kind = "baseline"  # type: ignore[attr-defined]
    return make


@dataclass
class SimulationResult:
    """Outcome of one :meth:`NoCSimulator.run`."""

    stats: NetworkStats
    cycles: int
    blocked: bool
    drained: bool
    router_stats: RouterStats
    faults_injected: int
    #: exported observability snapshot (``Observability.export``) when the
    #: run was instrumented, else ``None``; plain dicts, so it survives
    #: pickling back from parallel sweep workers
    observability: Optional[dict] = None
    #: per-event recovery summary (``RecoveryMonitor.summary``) when the
    #: fault schedule requested a recovery log, else ``None``; plain
    #: dicts, so campaign results flow through ``run_lane_sweep`` and the
    #: checkpoint store with zero new plumbing
    recovery: Optional[dict] = None

    @property
    def avg_network_latency(self) -> float:
        return self.stats.avg_network_latency

    @property
    def avg_total_latency(self) -> float:
        return self.stats.avg_total_latency


# integer-coded event kinds: indices into each calendar slot's per-kind
# event lists (cheaper than string-tag dispatch, and grouping by kind keeps
# the dispatch loops monomorphic)
EV_FLIT = 0
EV_EJECT = 1
EV_CREDIT = 2
EV_NIC_CREDIT = 3
EV_OUT_CREDIT = 4
_NUM_EVENT_KINDS = 5


class EventScheduler:
    """Event queue — a calendar ring keyed by delivery cycle, plus wakes.

    Every link/credit event is scheduled exactly ``link_latency`` or
    ``credit_latency`` cycles ahead, so a fixed ring of
    ``max(link, credit) + 1`` slots indexed by ``cycle % span`` replaces a
    dict keyed on absolute cycles.  Each slot holds one list per event
    kind.

    Dispatch order is behaviour-identical to the old insertion-ordered
    queue (and the golden determinism test pins it): within one cycle each
    delivery targets a distinct (router, port, VC) or (NIC, VC) — one flit
    per link, one credit per freed slot — so deliveries of *different*
    kinds commute, and within a kind the per-list insertion order is the
    old queue's insertion order.  Only ejection has an observable side
    channel (trace events, ``on_eject``), and ejections stay in their own
    ordered list.

    Alongside the short-horizon ring the scheduler carries *wake events*
    (:meth:`schedule_wake`): bare "step this cycle" marks at arbitrary
    future cycles, kept in a heap because they are not bounded by the
    link/credit span.  Wakes carry no payload and are never dispatched —
    the event-driven loop merely refuses to skip past one, so whatever
    scheduled it (today: fault arrivals) runs at its exact cycle.
    """

    def __init__(self, sim: "NoCSimulator") -> None:
        self._sim = sim
        self._link_latency = sim.config.link_latency
        self._credit_latency = sim.config.credit_latency
        span = max(self._link_latency, self._credit_latency) + 1
        self._span = span
        self._ring: list[list[list]] = [
            [[] for _ in range(_NUM_EVENT_KINDS)] for _ in range(span)
        ]
        # dense wiring views (plain list indexing on the per-flit path)
        self._out_link = sim.topology.out_link
        self._upstream = sim.topology.upstream_link
        #: flits in flight (pending EV_FLIT + EV_EJECT events), maintained
        #: so ``pending_flits`` is O(1) for the per-cycle drain predicate
        self._in_flight = 0
        #: all ring events in flight (flits + credits) — O(1) idle check
        self._pending = 0
        #: long-horizon wake cycles (heap; duplicates and stale entries
        #: are tolerated and dropped lazily by :meth:`next_wake`)
        self._wakes: list[int] = []
        self.cycle = 0
        #: flit-lifecycle tracer, installed by the simulator when enabled
        self.tracer: Optional["EventTracer"] = None

    # -- called by routers during the XB phase -----------------------------
    def deliver_flit(self, src_node: int, out_port: int, out_vc: int, flit) -> None:
        """Put a flit on the link leaving (src_node, out_port)."""
        slot = self._ring[(self.cycle + self._link_latency) % self._span]
        if out_port == PORT_LOCAL:
            slot[EV_EJECT].append((src_node, out_vc, flit))
            self._in_flight += 1
            self._pending += 1
            return
        link = self._out_link[src_node][out_port]
        if link is None:
            raise AssertionError(
                f"router {src_node} sent a flit off the mesh edge "
                f"(port {out_port}): routing bug"
            )
        slot[EV_FLIT].append((link[0], link[1], out_vc, flit))
        self._in_flight += 1
        self._pending += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                self.cycle,
                "link",
                src_node,
                out_port=out_port,
                out_vc=out_vc,
                packet=flit.packet_id,
                flit=flit.flit_index,
            )

    def return_credit(self, node: int, in_port: int, wire_vc: int) -> None:
        """A slot of (node, in_port, wire_vc) freed; credit the upstream."""
        slot = self._ring[(self.cycle + self._credit_latency) % self._span]
        self._pending += 1
        if in_port == PORT_LOCAL:
            slot[EV_NIC_CREDIT].append((node, wire_vc))
            return
        up = self._upstream[node][in_port]
        if up is None:
            raise AssertionError(
                f"credit from unconnected port {in_port} of router {node}"
            )
        slot[EV_CREDIT].append((up[0], up[1], wire_vc))

    def return_nic_credit(self, node: int, wire_vc: int) -> None:
        """NIC consumed a flit; credit the router's local output port."""
        slot = self._ring[(self.cycle + self._credit_latency) % self._span]
        slot[EV_OUT_CREDIT].append((node, wire_vc))
        self._pending += 1

    # -- called by the simulator's link phase -------------------------------
    def dispatch(self, cycle: int) -> int:
        """Deliver all events due at ``cycle``; returns #flit deliveries."""
        slot = self._ring[cycle % self._span]
        flit_evs, eject_evs, credit_evs, nic_credit_evs, out_credit_evs = slot
        sim = self._sim
        routers = sim.routers
        flits = 0
        if flit_evs:
            for dst, dst_port, vc, flit in flit_evs:
                routers[dst].receive_flit(dst_port, vc, flit, cycle)
            # a hop-by-hop link delivery is forward progress too: a
            # heavily loaded but live network may go many cycles
            # between ejections without being blocked
            sim._last_progress = cycle
            flits = len(flit_evs)
            self._in_flight -= flits
            self._pending -= flits
            flit_evs.clear()
        if eject_evs:
            nics = sim.nics
            on_eject = sim.on_eject
            for node, vc, flit in eject_evs:
                if on_eject is not None:
                    on_eject(flit, cycle)
                nics[node].eject(flit, vc, cycle, self)
            n = len(eject_evs)
            sim.flits_in_network -= n
            sim._last_progress = cycle
            flits += n
            self._in_flight -= n
            self._pending -= n
            eject_evs.clear()
        if credit_evs:
            for node, out_port, vc in credit_evs:
                routers[node].receive_credit(out_port, vc)
            self._pending -= len(credit_evs)
            credit_evs.clear()
        if nic_credit_evs:
            nics = sim.nics
            for node, vc in nic_credit_evs:
                nics[node].receive_credit(vc)
            self._pending -= len(nic_credit_evs)
            nic_credit_evs.clear()
        if out_credit_evs:
            for node, vc in out_credit_evs:
                routers[node].receive_credit(PORT_LOCAL, vc)
            self._pending -= len(out_credit_evs)
            out_credit_evs.clear()
        return flits

    # -- wake events (event-driven loop) -----------------------------------
    def schedule_wake(self, cycle: int) -> None:
        """Pin ``cycle`` as a cycle the event-driven loop must step.

        Wakes are advisory marks, not dispatched events: stepping every
        cycle (the reference and active-set loops) trivially honours
        them, and the skip-ahead loop clamps its jump target to the
        earliest pending wake.  Duplicates are fine.
        """
        heapq.heappush(self._wakes, cycle)

    def next_wake(self, after: int) -> Optional[int]:
        """Earliest scheduled wake at a cycle > ``after`` (drops stale)."""
        wakes = self._wakes
        while wakes and wakes[0] <= after:
            heapq.heappop(wakes)
        return wakes[0] if wakes else None

    @property
    def pending_events(self) -> int:
        """Ring events in flight (flits + credits), O(1)."""
        return self._pending

    def pending_flits(self) -> int:
        """Flits currently in flight on links (incl. NIC ejections)."""
        return self._in_flight

    def check_invariants(self) -> None:
        """O(1) counters must match the actual ring contents."""
        actual = sum(len(evs) for slot in self._ring for evs in slot)
        assert actual == self._pending, (
            f"event counter {self._pending} != ring contents {actual}"
        )


class NoCSimulator:
    """Builds the fabric and runs the cycle loop."""

    def __init__(
        self,
        config: NetworkConfig,
        sim_config: SimulationConfig,
        traffic: TrafficSource,
        router_factory: Optional[RouterFactory] = None,
        fault_schedule: Optional[FaultSchedule] = None,
        routing_kind: str = "xy",
        keep_samples: bool = False,
        on_eject: Optional[Callable] = None,
        observability: Optional[Observability] = None,
        use_reference_stepper: bool = False,
        event_driven: bool = True,
    ) -> None:
        self.config = config
        self.sim_config = sim_config
        self.traffic = traffic
        self.topology = Topology(config)
        self.routing = make_routing(config, routing_kind)
        factory = router_factory or baseline_router_factory(config)
        self.routers: list[BaseRouter] = [
            factory(node, self.routing) for node in range(config.num_nodes)
        ]
        for (node, port), _ in self.topology.links.items():
            self.routers[node].out_ports[port].connected = True
        self.stats = NetworkStats(keep_samples=keep_samples)
        self.nics = [
            NetworkInterface(n, self.routers[n], config.router, self.stats)
            for n in range(config.num_nodes)
        ]
        self.scheduler = EventScheduler(self)
        self.fault_schedule = fault_schedule
        #: observability hook: called as ``on_eject(flit, cycle)`` for every
        #: flit consumed at a destination NIC (used e.g. by the ECC
        #: datapath study to decode payload codewords)
        self.on_eject = on_eject
        #: tracing/metrics/profiling bundle; ``None`` (the default, unless
        #: :func:`repro.observability.configure` enabled it process-wide)
        #: keeps every instrumentation site a single attribute check
        self.obs: Optional[Observability] = (
            observability if observability is not None else maybe_create()
        )
        if self.obs is not None and self.obs.tracer is not None:
            tracer = self.obs.tracer
            for r in self.routers:
                r.tracer = tracer
            for nic in self.nics:
                nic.tracer = tracer
            self.scheduler.tracer = tracer
        self.flits_in_network = 0
        self.faults_injected = 0
        #: per-router recovery accounting; installed only when the fault
        #: schedule asks for it (``wants_recovery_log``), so every other
        #: run pays a single ``is not None`` check per cycle
        self.recovery_monitor: Optional[RecoveryMonitor] = (
            self._install_recovery(fault_schedule)
        )
        self.cycle = 0
        self._last_progress = 0
        self.blocked = False
        #: run the full-scan reference stepper instead of the active-set
        #: one — slow, kept for the golden determinism test (the two must
        #: produce byte-identical stats and traces)
        self.use_reference_stepper = use_reference_stepper
        #: let :meth:`run` skip fully idle stretches (the event-driven
        #: loop).  ``False`` forces per-cycle stepping — same results
        #: (pinned by the golden tests), kept for benchmarking and as an
        #: escape hatch for step-wrapping instrumentation.
        self.event_driven = event_driven
        #: nodes whose router / NIC has work this cycle.  Updated by the
        #: ``on_wake`` hooks on idle→busy transitions and pruned in-step;
        #: ``_step`` iterates these (in sorted node order, for determinism)
        #: instead of scanning every component every cycle.
        self._active_routers: set[int] = set()
        self._active_nics: set[int] = set()
        wake_router = self._active_routers.add
        wake_nic = self._active_nics.add
        for r in self.routers:
            r.on_wake = wake_router
        for nic in self.nics:
            nic.on_wake = wake_nic
        if not self.routing.adaptive:
            # non-adaptive routing: share one precomputed route table and
            # give every router its node's row for O(1) route lookup
            table = self.routing.route_table()
            for r in self.routers:
                r.route_row = table[r.node]

    # ------------------------------------------------------------------
    # warm reset (run amortization)
    # ------------------------------------------------------------------
    def reset(
        self,
        sim_config: SimulationConfig,
        traffic: TrafficSource,
        fault_schedule: Optional[FaultSchedule] = None,
        on_eject: Optional[Callable] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        """Restore pristine state for a new run without rebuilding the fabric.

        After ``reset`` a subsequent :meth:`run` is bit-identical to
        constructing a fresh ``NoCSimulator`` with the same arguments (the
        golden determinism tests pin this).  Static structure — topology,
        routing, route tables, ``connected`` flags, the ``on_wake``
        wiring — is reused; everything dynamic (VC buffers, credits,
        arbiter priorities, fault state, calendar ring, stats, caches,
        active sets) returns to power-on values.

        A *fresh* :class:`NetworkStats` is installed (and rebound into
        every NIC) so :class:`SimulationResult` objects returned by earlier
        runs stay valid.  Fault schedules and traffic sources are stateful
        single-use objects, so new ones must be supplied per run.
        """
        self.sim_config = sim_config
        self.traffic = traffic
        self.fault_schedule = fault_schedule
        self.on_eject = on_eject
        # drop any instance-level step wrapper a previous run installed
        # (e.g. TransientFaultSchedule.attach) — a pooled fabric must
        # never replay stale heals into a new run
        self.__dict__.pop("_step", None)
        for r in self.routers:
            r.reset()
        self.stats = NetworkStats(keep_samples=self.stats.keep_samples)
        for nic in self.nics:
            nic.reset(self.stats)
        # the ring only holds a handful of lists — rebuilding it is cheap
        # and guarantees a pristine queue (no stale in-flight counter)
        self.scheduler = EventScheduler(self)
        self.obs = (
            observability if observability is not None else maybe_create()
        )
        tracer = self.obs.tracer if self.obs is not None else None
        for r in self.routers:
            r.tracer = tracer
        for nic in self.nics:
            nic.tracer = tracer
        self.scheduler.tracer = tracer
        self.flits_in_network = 0
        self.faults_injected = 0
        self.recovery_monitor = self._install_recovery(fault_schedule)
        self.cycle = 0
        self._last_progress = 0
        self.blocked = False
        # in place: the on_wake hooks hold these sets' bound ``add``
        self._active_routers.clear()
        self._active_nics.clear()

    def _install_recovery(
        self, fault_schedule: Optional[FaultSchedule]
    ) -> Optional[RecoveryMonitor]:
        """Fresh :class:`RecoveryMonitor` when the schedule asks for one.

        The monitor doubles as every router's ``recovery`` probe, so a
        fault landing (or healing) reaches it through the per-router
        hook without the hot path growing a second dispatch site.
        ``BaseRouter.reset`` already cleared the probes, so a schedule
        without a recovery log leaves them ``None``.
        """
        if not getattr(fault_schedule, "wants_recovery_log", False):
            return None
        monitor = RecoveryMonitor()
        for r in self.routers:
            r.recovery = monitor
        return monitor

    # ------------------------------------------------------------------
    def _inject_faults(self, cycle: int) -> None:
        """Inject faults due this cycle, waking every router that was hit.

        Routing the injection through the router's ``on_wake`` hook keeps
        the active-set and event-driven loops honest: a fault landing on
        a fully idle router re-enters it into the schedule the same cycle
        (it is pruned again after its no-op phases if it stays idle), so
        fault-state changes are never deferred until a flit happens to
        arrive.  After any injection the next fault arrival is re-armed
        as a wake event so the skip-ahead loop steps its exact cycle.
        """
        schedule = self.fault_schedule
        if schedule is None:
            return
        advanced = False
        if getattr(schedule, "native_heals", False):
            # native heal seam (fault timelines): heals apply before
            # injections, mirroring the transient step-wrapper's order,
            # but in-loop — ``next_cycle()`` covers heal cycles too, so
            # the event-driven skip-ahead stays enabled
            for site in schedule.heals_due(cycle):
                advanced = True
                router = self.routers[site.router]
                if router.heal_fault(site):
                    router.wake()
                    probe = router.recovery
                    if probe is not None:
                        probe.fault_healed(router, site, cycle)
        events = getattr(schedule, "events_at", None) or schedule.due
        for site in events(cycle):
            advanced = True
            router = self.routers[site.router]
            if router.inject_fault(site):
                self.faults_injected += 1
                router.wake()
                probe = router.recovery
                if probe is not None:
                    probe.fault_landed(router, site, cycle)
        if advanced:
            self._arm_fault_wake()

    def _arm_fault_wake(self) -> None:
        """Schedule the next fault arrival as a calendar wake event."""
        peek = getattr(self.fault_schedule, "next_cycle", None)
        if peek is None:
            return
        nxt = peek()
        if nxt is not None:
            self.scheduler.schedule_wake(nxt)

    def _step(self, cycle: int, inject_traffic: bool) -> None:
        """One cycle of the active-set loop (optionally profiled).

        Profiling shares this body: on sampled cycles ``prof`` binds the
        stage profiler and each phase is fenced with ``perf_counter``;
        otherwise every fence is a single ``prof is None`` check (well
        inside the observability layer's <= 5 % disabled-path budget).
        Keeping one body ended the hand-copied ``_step_profiled`` fork —
        the profiled and unprofiled paths are now bit-identical by
        construction (and pinned so by the golden determinism test).
        """
        obs = self.obs
        prof = None
        if obs is not None:
            obs.on_cycle(self, cycle)
            p = obs.profiler
            if p is not None and p.should_sample(cycle):
                prof = p

        sched = self.scheduler
        sched.cycle = cycle
        t = perf_counter() if prof is not None else 0.0
        if self.fault_schedule is not None:
            self._inject_faults(cycle)
        if prof is not None:
            now = perf_counter()
            prof.record("faults", now - t)
            t = now

        routers = self.routers
        # Snapshot the active routers in sorted node order: phase (and
        # trace) order then matches the reference full scan exactly.  The
        # four phase loops stay separate — phases of different routers are
        # independent within a cycle, but trace emission order is not.
        active = [routers[n] for n in sorted(self._active_routers)]
        for r in active:
            if r._xb_queue:
                r.xb_phase(sched, cycle)
        if prof is not None:
            now = perf_counter()
            prof.record("xb", now - t)
            t = now
        for r in active:
            r.sa_phase(cycle)
        if prof is not None:
            now = perf_counter()
            prof.record("sa", now - t)
            t = now
        for r in active:
            r.va_phase(cycle)
        if prof is not None:
            now = perf_counter()
            prof.record("va", now - t)
            t = now
        for r in active:
            r.rc_phase(cycle)
        # Prune before dispatch: anything dispatch wakes (flit deliveries)
        # re-enters through the on_wake hook.
        discard = self._active_routers.discard
        for r in active:
            if r._nonidle == 0 and not r._xb_queue:
                discard(r.node)
        if prof is not None:
            now = perf_counter()
            prof.record("rc", now - t)
            t = now

        sched.dispatch(cycle)
        if prof is not None:
            now = perf_counter()
            prof.record("link", now - t)
            t = now

        nics = self.nics
        if inject_traffic:
            for packet in self.traffic.generate(cycle):
                nics[packet.src].enqueue(packet)
        injected = 0
        discard_nic = self._active_nics.discard
        for n in sorted(self._active_nics):
            nic = nics[n]
            injected += nic.step(cycle)
            if nic._queued == 0:
                discard_nic(n)
        self.flits_in_network += injected
        if prof is not None:
            prof.record("nic", perf_counter() - t)
            prof.cycle_done()

        # recovery watches poll at end-of-cycle so same-cycle mechanism
        # activity counts; counters are frozen while idle, so stepped
        # cycles see every edge even under skip-ahead
        mon = self.recovery_monitor
        if mon is not None and mon.open_watches:
            mon.poll(cycle)

    def _step_reference(self, cycle: int, inject_traffic: bool) -> None:
        """The pre-active-set full-scan stepper (reference semantics).

        Scans every router for every phase and every NIC for injection —
        exactly the seed implementation.  Kept as the oracle for the
        golden determinism test: running the same configuration through
        this stepper and through :meth:`_step` must produce byte-identical
        statistics and trace streams.  The active sets are rebuilt from
        component state after each cycle so the two steppers can even be
        interleaved.
        """
        obs = self.obs
        if obs is not None:
            obs.on_cycle(self, cycle)

        sched = self.scheduler
        sched.cycle = cycle
        self._inject_faults(cycle)

        routers = self.routers
        for r in routers:
            if r._xb_queue:
                r.xb_phase(sched, cycle)
        for r in routers:
            r.sa_phase(cycle)
        for r in routers:
            r.va_phase(cycle)
        for r in routers:
            r.rc_phase(cycle)

        sched.dispatch(cycle)

        if inject_traffic:
            for packet in self.traffic.generate(cycle):
                self.nics[packet.src].enqueue(packet)
        injected = 0
        for nic in self.nics:
            injected += nic.step(cycle)
        self.flits_in_network += injected

        # rebuild in place (the on_wake hooks hold bound ``add`` methods)
        active_routers = self._active_routers
        active_routers.clear()
        active_routers.update(r.node for r in routers if r.busy)
        active_nics = self._active_nics
        active_nics.clear()
        active_nics.update(nic.node for nic in self.nics if nic._queued)

        mon = self.recovery_monitor
        if mon is not None and mon.open_watches:
            mon.poll(cycle)

    # ------------------------------------------------------------------
    def _skip_idle(self, cycle: int, horizon: int, lookahead) -> int:
        """Advance straight to the next cycle with any scheduled work.

        Only called when the fabric is fully idle — no active routers or
        NICs and no link/credit events in flight — so the only future
        work can come from traffic injection, scheduled wakes (fault
        arrivals), or the end of the phase at ``horizon``.  The traffic
        lookahead consumes the quiet cycles' randomness exactly as
        per-cycle ``generate`` calls would, so the jump is bit-invisible.
        Metrics occupancy samples due inside the gap are still taken:
        sampling only reads component state, which is frozen while idle.
        """
        target = horizon
        nxt = lookahead(cycle, horizon)
        if nxt is not None and nxt < target:
            target = nxt
        wake = self.scheduler.next_wake(cycle - 1)
        if wake is not None and wake < target:
            target = wake
        if target <= cycle:
            return cycle
        obs = self.obs
        if obs is not None and obs.metrics is not None:
            every = obs.config.occupancy_sample_every
            first = cycle + (-cycle) % every
            for c in range(first, target, every):
                obs.on_cycle(self, c)
        return target

    def run(self) -> SimulationResult:
        """Warmup + measurement + drain, with watchdog protection.

        The loop is event-driven (``docs/performance.md``): whenever the
        fabric is provably idle it jumps ``cycle`` to the earliest future
        wake source instead of stepping through the gap.  Skipping
        engages only when every wake source is known — the traffic
        source implements the ``next_injection`` lookahead, the fault
        schedule (if any) implements ``next_cycle``, and the stepper has
        not been wrapped by instrumentation that polls per cycle — and
        never under the reference stepper, so results are bit-identical
        across all three loop flavours (pinned by the golden tests).
        """
        sc = self.sim_config
        self.stats.set_window(sc.warmup_cycles, sc.warmup_cycles + sc.measure_cycles)
        inject_until = sc.warmup_cycles + sc.measure_cycles
        cycle = self.cycle
        self._last_progress = cycle
        reference = self.use_reference_stepper
        step = self._step_reference if reference else self._step

        lookahead = getattr(self.traffic, "next_injection", None)
        can_skip = (
            self.event_driven
            and not reference
            # a wrapped stepper (transient heals, online detection) must
            # be invoked every cycle — it polls outside the event system
            and "_step" not in self.__dict__
            and lookahead is not None
            and (
                self.fault_schedule is None
                or hasattr(self.fault_schedule, "next_cycle")
            )
        )
        self._arm_fault_wake()

        active_routers = self._active_routers
        active_nics = self._active_nics
        sched = self.scheduler

        # warmup + measurement
        while cycle < inject_until:
            if (
                can_skip
                and not active_routers
                and not active_nics
                and sched.pending_events == 0
            ):
                cycle = self._skip_idle(cycle, inject_until, lookahead)
                if cycle >= inject_until:
                    break
            step(cycle, inject_traffic=True)
            cycle += 1
            if self._watchdog_tripped(cycle):
                break

        # drain.  No skip-ahead here: the moment the fabric goes fully
        # idle the drained predicate below ends the loop anyway.
        drained = False
        if not self.blocked:
            drain_deadline = cycle + sc.drain_cycles
            while cycle < drain_deadline:
                # the active-NIC set is exactly the NICs with queued or
                # mid-injection packets, so this is the old
                # ``any(nic.queued_packets ...)`` scan in O(1)
                if self.flits_in_network == 0 and not active_nics:
                    break
                step(cycle, inject_traffic=False)
                cycle += 1
                if self._watchdog_tripped(cycle):
                    break
            # Evaluate the drained predicate once, after the loop, for
            # every exit path (early break, deadline expiry, watchdog):
            # a final step that empties the network counts as drained
            # even at the deadline boundary.
            drained = self.flits_in_network == 0 and not active_nics

        self.cycle = cycle
        recovery_export = None
        mon = self.recovery_monitor
        if mon is not None:
            # fold campaign counters into NetworkStats *before* the
            # observability harvest so metrics see them like any other
            # network counter
            mon.finalize(cycle, self.stats)
            recovery_export = mon.summary()
        obs_export = None
        if self.obs is not None:
            self.obs.finalize_run(self)
            obs_export = self.obs.export()
        return SimulationResult(
            stats=self.stats,
            cycles=cycle,
            blocked=self.blocked,
            drained=drained,
            router_stats=self.aggregate_router_stats(),
            faults_injected=self.faults_injected,
            observability=obs_export,
            recovery=recovery_export,
        )

    def _watchdog_tripped(self, cycle: int) -> bool:
        if (
            self.flits_in_network > 0
            and cycle - self._last_progress > self.sim_config.watchdog_cycles
        ):
            self.blocked = True
            return True
        return False

    # ------------------------------------------------------------------
    def aggregate_router_stats(self) -> RouterStats:
        """Sum of all per-router counters."""
        total = RouterStats()
        for r in self.routers:
            for f in RouterStats.__dataclass_fields__:
                setattr(total, f, getattr(total, f) + getattr(r.stats, f))
        return total

    def check_invariants(self) -> None:
        """Structural invariants across the fabric (property tests)."""
        for r in self.routers:
            r.check_invariants()
        buffered = sum(r.buffered_flits() for r in self.routers)
        # flits are in buffers (XB grants reference still-buffered flits)
        # or on links
        assert buffered + self.scheduler.pending_flits() == self.flits_in_network, (
            f"flit conservation violated: buffered={buffered} "
            f"on_links={self.scheduler.pending_flits()} "
            f"tracked={self.flits_in_network}"
        )
        busy = {r.node for r in self.routers if r.busy}
        assert self._active_routers == busy, (
            f"active-router set {sorted(self._active_routers)} != "
            f"busy routers {sorted(busy)}"
        )
        queued = {nic.node for nic in self.nics if nic.queued_packets}
        assert self._active_nics == queued, (
            f"active-NIC set {sorted(self._active_nics)} != "
            f"NICs with queued packets {sorted(queued)}"
        )
        self.scheduler.check_invariants()
