"""The cycle-accurate NoC simulator (GEM5/GARNET substitute).

Per cycle, the simulator executes — for *all* routers before moving on —

1. fault injection due this cycle,
2. **XB**: crossbar traversal of last cycle's SA winners (flits leave onto
   links, credits return upstream),
3. **SA**: switch allocation,
4. **VA**: virtual-channel allocation,
5. **RC**: routing computation,
6. link/credit event delivery (flits arriving after link traversal),
7. traffic generation and NIC injection.

Executing the pipeline phases in reverse order makes each flit advance at
most one stage per cycle, which realises the paper's 4-stage pipeline
(Figure 2) plus a one-cycle link traversal: per-hop head latency is
RC+VA+SA+XB+LT = 5 cycles at zero load.

The simulator is deliberately plain Python tuned the way the hpc-parallel
guides recommend: legible first, then sped up with *activity tracking*
rather than clever machinery — the cycle loop visits only the routers and
NICs in the explicit active sets (idle components cost nothing; see
``docs/performance.md``), link/credit events live in a fixed calendar
ring, and results are bit-identical to the full-scan reference stepper
(:meth:`NoCSimulator._step_reference`, pinned by the golden determinism
test).  Bulk randomness (traffic generation, fault schedules) is
vectorised with NumPy in the traffic/fault modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Iterable, Optional, Protocol

from ..config import NetworkConfig, PORT_LOCAL, SimulationConfig
from ..observability import EventTracer, Observability, maybe_create
from ..router.flit import Packet
from ..router.router import BaseRouter, BaselineRouter, RouterStats
from ..router.routing import RoutingFunction, make_routing
from .nic import NetworkInterface
from .stats import NetworkStats
from .topology import Topology


class TrafficSource(Protocol):
    """Anything that emits packets: see :mod:`repro.traffic.generator`."""

    def generate(self, cycle: int) -> Iterable[Packet]:
        """Packets created at ``cycle`` (their ``src`` selects the NIC)."""
        ...


class FaultSchedule(Protocol):
    """Anything that injects faults: see :mod:`repro.faults.injector`."""

    def due(self, cycle: int) -> Iterable:
        """FaultSites to inject at ``cycle``."""
        ...


RouterFactory = Callable[[int, RoutingFunction], BaseRouter]


def baseline_router_factory(config: NetworkConfig) -> RouterFactory:
    """Factory producing unprotected baseline routers."""

    def make(node: int, routing: RoutingFunction) -> BaseRouter:
        return BaselineRouter(node, config.router, routing)

    # marker consumed by the warm-network pool (repro.network.warm): two
    # factories with the same router_kind build interchangeable fabrics
    make.router_kind = "baseline"  # type: ignore[attr-defined]
    return make


@dataclass
class SimulationResult:
    """Outcome of one :meth:`NoCSimulator.run`."""

    stats: NetworkStats
    cycles: int
    blocked: bool
    drained: bool
    router_stats: RouterStats
    faults_injected: int
    #: exported observability snapshot (``Observability.export``) when the
    #: run was instrumented, else ``None``; plain dicts, so it survives
    #: pickling back from parallel sweep workers
    observability: Optional[dict] = None

    @property
    def avg_network_latency(self) -> float:
        return self.stats.avg_network_latency

    @property
    def avg_total_latency(self) -> float:
        return self.stats.avg_total_latency


# integer-coded event kinds: indices into each calendar slot's per-kind
# event lists (cheaper than string-tag dispatch, and grouping by kind keeps
# the dispatch loops monomorphic)
EV_FLIT = 0
EV_EJECT = 1
EV_CREDIT = 2
EV_NIC_CREDIT = 3
EV_OUT_CREDIT = 4
_NUM_EVENT_KINDS = 5


class EventScheduler:
    """Link/credit event queue — a calendar ring keyed by delivery cycle.

    Every event is scheduled exactly ``link_latency`` or ``credit_latency``
    cycles ahead, so a fixed ring of ``max(link, credit) + 1`` slots indexed
    by ``cycle % span`` replaces a dict keyed on absolute cycles.  Each slot
    holds one list per event kind.

    Dispatch order is behaviour-identical to the old insertion-ordered
    queue (and the golden determinism test pins it): within one cycle each
    delivery targets a distinct (router, port, VC) or (NIC, VC) — one flit
    per link, one credit per freed slot — so deliveries of *different*
    kinds commute, and within a kind the per-list insertion order is the
    old queue's insertion order.  Only ejection has an observable side
    channel (trace events, ``on_eject``), and ejections stay in their own
    ordered list.
    """

    def __init__(self, sim: "NoCSimulator") -> None:
        self._sim = sim
        self._link_latency = sim.config.link_latency
        self._credit_latency = sim.config.credit_latency
        span = max(self._link_latency, self._credit_latency) + 1
        self._span = span
        self._ring: list[list[list]] = [
            [[] for _ in range(_NUM_EVENT_KINDS)] for _ in range(span)
        ]
        # dense wiring views (plain list indexing on the per-flit path)
        self._out_link = sim.topology.out_link
        self._upstream = sim.topology.upstream_link
        #: flits in flight (pending EV_FLIT + EV_EJECT events), maintained
        #: so ``pending_flits`` is O(1) for the per-cycle drain predicate
        self._in_flight = 0
        self.cycle = 0
        #: flit-lifecycle tracer, installed by the simulator when enabled
        self.tracer: Optional["EventTracer"] = None

    # -- called by routers during the XB phase -----------------------------
    def deliver_flit(self, src_node: int, out_port: int, out_vc: int, flit) -> None:
        """Put a flit on the link leaving (src_node, out_port)."""
        slot = self._ring[(self.cycle + self._link_latency) % self._span]
        if out_port == PORT_LOCAL:
            slot[EV_EJECT].append((src_node, out_vc, flit))
            self._in_flight += 1
            return
        link = self._out_link[src_node][out_port]
        if link is None:
            raise AssertionError(
                f"router {src_node} sent a flit off the mesh edge "
                f"(port {out_port}): routing bug"
            )
        slot[EV_FLIT].append((link[0], link[1], out_vc, flit))
        self._in_flight += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                self.cycle,
                "link",
                src_node,
                out_port=out_port,
                out_vc=out_vc,
                packet=flit.packet_id,
                flit=flit.flit_index,
            )

    def return_credit(self, node: int, in_port: int, wire_vc: int) -> None:
        """A slot of (node, in_port, wire_vc) freed; credit the upstream."""
        slot = self._ring[(self.cycle + self._credit_latency) % self._span]
        if in_port == PORT_LOCAL:
            slot[EV_NIC_CREDIT].append((node, wire_vc))
            return
        up = self._upstream[node][in_port]
        if up is None:
            raise AssertionError(
                f"credit from unconnected port {in_port} of router {node}"
            )
        slot[EV_CREDIT].append((up[0], up[1], wire_vc))

    def return_nic_credit(self, node: int, wire_vc: int) -> None:
        """NIC consumed a flit; credit the router's local output port."""
        slot = self._ring[(self.cycle + self._credit_latency) % self._span]
        slot[EV_OUT_CREDIT].append((node, wire_vc))

    # -- called by the simulator's link phase -------------------------------
    def dispatch(self, cycle: int) -> int:
        """Deliver all events due at ``cycle``; returns #flit deliveries."""
        slot = self._ring[cycle % self._span]
        flit_evs, eject_evs, credit_evs, nic_credit_evs, out_credit_evs = slot
        sim = self._sim
        routers = sim.routers
        flits = 0
        if flit_evs:
            for dst, dst_port, vc, flit in flit_evs:
                routers[dst].receive_flit(dst_port, vc, flit, cycle)
            # a hop-by-hop link delivery is forward progress too: a
            # heavily loaded but live network may go many cycles
            # between ejections without being blocked
            sim._last_progress = cycle
            flits = len(flit_evs)
            self._in_flight -= flits
            flit_evs.clear()
        if eject_evs:
            nics = sim.nics
            on_eject = sim.on_eject
            for node, vc, flit in eject_evs:
                if on_eject is not None:
                    on_eject(flit, cycle)
                nics[node].eject(flit, vc, cycle, self)
            n = len(eject_evs)
            sim.flits_in_network -= n
            sim._last_progress = cycle
            flits += n
            self._in_flight -= n
            eject_evs.clear()
        if credit_evs:
            for node, out_port, vc in credit_evs:
                routers[node].receive_credit(out_port, vc)
            credit_evs.clear()
        if nic_credit_evs:
            nics = sim.nics
            for node, vc in nic_credit_evs:
                nics[node].receive_credit(vc)
            nic_credit_evs.clear()
        if out_credit_evs:
            for node, vc in out_credit_evs:
                routers[node].receive_credit(PORT_LOCAL, vc)
            out_credit_evs.clear()
        return flits

    @property
    def pending_events(self) -> int:
        return sum(len(evs) for slot in self._ring for evs in slot)

    def pending_flits(self) -> int:
        """Flits currently in flight on links (incl. NIC ejections)."""
        return self._in_flight


class NoCSimulator:
    """Builds the fabric and runs the cycle loop."""

    def __init__(
        self,
        config: NetworkConfig,
        sim_config: SimulationConfig,
        traffic: TrafficSource,
        router_factory: Optional[RouterFactory] = None,
        fault_schedule: Optional[FaultSchedule] = None,
        routing_kind: str = "xy",
        keep_samples: bool = False,
        on_eject: Optional[Callable] = None,
        observability: Optional[Observability] = None,
        use_reference_stepper: bool = False,
    ) -> None:
        self.config = config
        self.sim_config = sim_config
        self.traffic = traffic
        self.topology = Topology(config)
        self.routing = make_routing(config, routing_kind)
        factory = router_factory or baseline_router_factory(config)
        self.routers: list[BaseRouter] = [
            factory(node, self.routing) for node in range(config.num_nodes)
        ]
        for (node, port), _ in self.topology.links.items():
            self.routers[node].out_ports[port].connected = True
        self.stats = NetworkStats(keep_samples=keep_samples)
        self.nics = [
            NetworkInterface(n, self.routers[n], config.router, self.stats)
            for n in range(config.num_nodes)
        ]
        self.scheduler = EventScheduler(self)
        self.fault_schedule = fault_schedule
        #: observability hook: called as ``on_eject(flit, cycle)`` for every
        #: flit consumed at a destination NIC (used e.g. by the ECC
        #: datapath study to decode payload codewords)
        self.on_eject = on_eject
        #: tracing/metrics/profiling bundle; ``None`` (the default, unless
        #: :func:`repro.observability.configure` enabled it process-wide)
        #: keeps every instrumentation site a single attribute check
        self.obs: Optional[Observability] = (
            observability if observability is not None else maybe_create()
        )
        if self.obs is not None and self.obs.tracer is not None:
            tracer = self.obs.tracer
            for r in self.routers:
                r.tracer = tracer
            for nic in self.nics:
                nic.tracer = tracer
            self.scheduler.tracer = tracer
        self.flits_in_network = 0
        self.faults_injected = 0
        self.cycle = 0
        self._last_progress = 0
        self.blocked = False
        #: run the full-scan reference stepper instead of the active-set
        #: one — slow, kept for the golden determinism test (the two must
        #: produce byte-identical stats and traces)
        self.use_reference_stepper = use_reference_stepper
        #: nodes whose router / NIC has work this cycle.  Updated by the
        #: ``on_wake`` hooks on idle→busy transitions and pruned in-step;
        #: ``_step`` iterates these (in sorted node order, for determinism)
        #: instead of scanning every component every cycle.
        self._active_routers: set[int] = set()
        self._active_nics: set[int] = set()
        wake_router = self._active_routers.add
        wake_nic = self._active_nics.add
        for r in self.routers:
            r.on_wake = wake_router
        for nic in self.nics:
            nic.on_wake = wake_nic
        if not self.routing.adaptive:
            # non-adaptive routing: share one precomputed route table and
            # give every router its node's row for O(1) route lookup
            table = self.routing.route_table()
            for r in self.routers:
                r.route_row = table[r.node]

    # ------------------------------------------------------------------
    # warm reset (run amortization)
    # ------------------------------------------------------------------
    def reset(
        self,
        sim_config: SimulationConfig,
        traffic: TrafficSource,
        fault_schedule: Optional[FaultSchedule] = None,
        on_eject: Optional[Callable] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        """Restore pristine state for a new run without rebuilding the fabric.

        After ``reset`` a subsequent :meth:`run` is bit-identical to
        constructing a fresh ``NoCSimulator`` with the same arguments (the
        golden determinism tests pin this).  Static structure — topology,
        routing, route tables, ``connected`` flags, the ``on_wake``
        wiring — is reused; everything dynamic (VC buffers, credits,
        arbiter priorities, fault state, calendar ring, stats, caches,
        active sets) returns to power-on values.

        A *fresh* :class:`NetworkStats` is installed (and rebound into
        every NIC) so :class:`SimulationResult` objects returned by earlier
        runs stay valid.  Fault schedules and traffic sources are stateful
        single-use objects, so new ones must be supplied per run.
        """
        self.sim_config = sim_config
        self.traffic = traffic
        self.fault_schedule = fault_schedule
        self.on_eject = on_eject
        for r in self.routers:
            r.reset()
        self.stats = NetworkStats(keep_samples=self.stats.keep_samples)
        for nic in self.nics:
            nic.reset(self.stats)
        # the ring only holds a handful of lists — rebuilding it is cheap
        # and guarantees a pristine queue (no stale in-flight counter)
        self.scheduler = EventScheduler(self)
        self.obs = (
            observability if observability is not None else maybe_create()
        )
        tracer = self.obs.tracer if self.obs is not None else None
        for r in self.routers:
            r.tracer = tracer
        for nic in self.nics:
            nic.tracer = tracer
        self.scheduler.tracer = tracer
        self.flits_in_network = 0
        self.faults_injected = 0
        self.cycle = 0
        self._last_progress = 0
        self.blocked = False
        # in place: the on_wake hooks hold these sets' bound ``add``
        self._active_routers.clear()
        self._active_nics.clear()

    # ------------------------------------------------------------------
    def _inject_faults(self, cycle: int) -> None:
        if self.fault_schedule is None:
            return
        for site in self.fault_schedule.due(cycle):
            if self.routers[site.router].inject_fault(site):
                self.faults_injected += 1

    def _step(self, cycle: int, inject_traffic: bool) -> None:
        obs = self.obs
        if obs is not None:
            prof = obs.profiler
            if prof is not None and prof.should_sample(cycle):
                self._step_profiled(cycle, inject_traffic, prof)
                obs.on_cycle(self, cycle)
                return
            obs.on_cycle(self, cycle)

        sched = self.scheduler
        sched.cycle = cycle
        if self.fault_schedule is not None:
            self._inject_faults(cycle)

        routers = self.routers
        # Snapshot the active routers in sorted node order: phase (and
        # trace) order then matches the reference full scan exactly.  The
        # four phase loops stay separate — phases of different routers are
        # independent within a cycle, but trace emission order is not.
        active = [routers[n] for n in sorted(self._active_routers)]
        for r in active:
            if r._xb_queue:
                r.xb_phase(sched, cycle)
        for r in active:
            r.sa_phase(cycle)
        for r in active:
            r.va_phase(cycle)
        for r in active:
            r.rc_phase(cycle)
        # Prune before dispatch: anything dispatch wakes (flit deliveries)
        # re-enters through the on_wake hook.
        discard = self._active_routers.discard
        for r in active:
            if r._nonidle == 0 and not r._xb_queue:
                discard(r.node)

        sched.dispatch(cycle)

        nics = self.nics
        if inject_traffic:
            for packet in self.traffic.generate(cycle):
                nics[packet.src].enqueue(packet)
        injected = 0
        discard_nic = self._active_nics.discard
        for n in sorted(self._active_nics):
            nic = nics[n]
            injected += nic.step(cycle)
            if nic._queued == 0:
                discard_nic(n)
        self.flits_in_network += injected

    def _step_profiled(self, cycle: int, inject_traffic: bool, prof) -> None:
        """One cycle with per-phase wall-time sampling (profiling mode).

        Mirrors :meth:`_step` exactly, with a ``perf_counter`` fence
        between phases; only every ``sample_every``-th cycle pays this.
        """
        sched = self.scheduler
        sched.cycle = cycle
        t0 = perf_counter()
        self._inject_faults(cycle)
        t1 = perf_counter()
        prof.record("faults", t1 - t0)

        routers = self.routers
        active = [routers[n] for n in sorted(self._active_routers)]
        for r in active:
            if r._xb_queue:
                r.xb_phase(sched, cycle)
        t2 = perf_counter()
        prof.record("xb", t2 - t1)
        for r in active:
            r.sa_phase(cycle)
        t3 = perf_counter()
        prof.record("sa", t3 - t2)
        for r in active:
            r.va_phase(cycle)
        t4 = perf_counter()
        prof.record("va", t4 - t3)
        for r in active:
            r.rc_phase(cycle)
        discard = self._active_routers.discard
        for r in active:
            if r._nonidle == 0 and not r._xb_queue:
                discard(r.node)
        t5 = perf_counter()
        prof.record("rc", t5 - t4)

        sched.dispatch(cycle)
        t6 = perf_counter()
        prof.record("link", t6 - t5)

        nics = self.nics
        if inject_traffic:
            for packet in self.traffic.generate(cycle):
                nics[packet.src].enqueue(packet)
        injected = 0
        discard_nic = self._active_nics.discard
        for n in sorted(self._active_nics):
            nic = nics[n]
            injected += nic.step(cycle)
            if nic._queued == 0:
                discard_nic(n)
        self.flits_in_network += injected
        prof.record("nic", perf_counter() - t6)
        prof.cycle_done()

    def _step_reference(self, cycle: int, inject_traffic: bool) -> None:
        """The pre-active-set full-scan stepper (reference semantics).

        Scans every router for every phase and every NIC for injection —
        exactly the seed implementation.  Kept as the oracle for the
        golden determinism test: running the same configuration through
        this stepper and through :meth:`_step` must produce byte-identical
        statistics and trace streams.  The active sets are rebuilt from
        component state after each cycle so the two steppers can even be
        interleaved.
        """
        obs = self.obs
        if obs is not None:
            obs.on_cycle(self, cycle)

        sched = self.scheduler
        sched.cycle = cycle
        self._inject_faults(cycle)

        routers = self.routers
        for r in routers:
            if r._xb_queue:
                r.xb_phase(sched, cycle)
        for r in routers:
            r.sa_phase(cycle)
        for r in routers:
            r.va_phase(cycle)
        for r in routers:
            r.rc_phase(cycle)

        sched.dispatch(cycle)

        if inject_traffic:
            for packet in self.traffic.generate(cycle):
                self.nics[packet.src].enqueue(packet)
        injected = 0
        for nic in self.nics:
            injected += nic.step(cycle)
        self.flits_in_network += injected

        # rebuild in place (the on_wake hooks hold bound ``add`` methods)
        active_routers = self._active_routers
        active_routers.clear()
        active_routers.update(r.node for r in routers if r.busy)
        active_nics = self._active_nics
        active_nics.clear()
        active_nics.update(nic.node for nic in self.nics if nic._queued)

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Warmup + measurement + drain, with watchdog protection."""
        sc = self.sim_config
        self.stats.set_window(sc.warmup_cycles, sc.warmup_cycles + sc.measure_cycles)
        inject_until = sc.warmup_cycles + sc.measure_cycles
        cycle = self.cycle
        self._last_progress = cycle
        step = self._step_reference if self.use_reference_stepper else self._step

        # warmup + measurement
        while cycle < inject_until:
            step(cycle, inject_traffic=True)
            cycle += 1
            if self._watchdog_tripped(cycle):
                break

        # drain
        drained = False
        if not self.blocked:
            drain_deadline = cycle + sc.drain_cycles
            while cycle < drain_deadline:
                # the active-NIC set is exactly the NICs with queued or
                # mid-injection packets, so this is the old
                # ``any(nic.queued_packets ...)`` scan in O(1)
                if self.flits_in_network == 0 and not self._active_nics:
                    drained = True
                    break
                step(cycle, inject_traffic=False)
                cycle += 1
                if self._watchdog_tripped(cycle):
                    break
            else:
                # same predicate as the in-loop check: packets still
                # waiting in NIC source queues mean the network did not
                # fully drain, even with zero flits in flight
                drained = self.flits_in_network == 0 and not self._active_nics

        self.cycle = cycle
        obs_export = None
        if self.obs is not None:
            self.obs.finalize_run(self)
            obs_export = self.obs.export()
        return SimulationResult(
            stats=self.stats,
            cycles=cycle,
            blocked=self.blocked,
            drained=drained,
            router_stats=self.aggregate_router_stats(),
            faults_injected=self.faults_injected,
            observability=obs_export,
        )

    def _watchdog_tripped(self, cycle: int) -> bool:
        if (
            self.flits_in_network > 0
            and cycle - self._last_progress > self.sim_config.watchdog_cycles
        ):
            self.blocked = True
            return True
        return False

    # ------------------------------------------------------------------
    def aggregate_router_stats(self) -> RouterStats:
        """Sum of all per-router counters."""
        total = RouterStats()
        for r in self.routers:
            for f in RouterStats.__dataclass_fields__:
                setattr(total, f, getattr(total, f) + getattr(r.stats, f))
        return total

    def check_invariants(self) -> None:
        """Structural invariants across the fabric (property tests)."""
        for r in self.routers:
            r.check_invariants()
        buffered = sum(r.buffered_flits() for r in self.routers)
        # flits are in buffers (XB grants reference still-buffered flits)
        # or on links
        assert buffered + self.scheduler.pending_flits() == self.flits_in_network, (
            f"flit conservation violated: buffered={buffered} "
            f"on_links={self.scheduler.pending_flits()} "
            f"tracked={self.flits_in_network}"
        )
        busy = {r.node for r in self.routers if r.busy}
        assert self._active_routers == busy, (
            f"active-router set {sorted(self._active_routers)} != "
            f"busy routers {sorted(busy)}"
        )
        queued = {nic.node for nic in self.nics if nic.queued_packets}
        assert self._active_nics == queued, (
            f"active-NIC set {sorted(self._active_nics)} != "
            f"NICs with queued packets {sorted(queued)}"
        )
