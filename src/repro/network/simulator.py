"""The cycle-accurate NoC simulator (GEM5/GARNET substitute).

Per cycle, the simulator executes — for *all* routers before moving on —

1. fault injection due this cycle,
2. **XB**: crossbar traversal of last cycle's SA winners (flits leave onto
   links, credits return upstream),
3. **SA**: switch allocation,
4. **VA**: virtual-channel allocation,
5. **RC**: routing computation,
6. link/credit event delivery (flits arriving after link traversal),
7. traffic generation and NIC injection.

Executing the pipeline phases in reverse order makes each flit advance at
most one stage per cycle, which realises the paper's 4-stage pipeline
(Figure 2) plus a one-cycle link traversal: per-hop head latency is
RC+VA+SA+XB+LT = 5 cycles at zero load.

The simulator is deliberately plain Python tuned the way the hpc-parallel
guides recommend: legible first, with cheap activity checks (idle routers
cost one attribute test per phase) rather than clever machinery; bulk
randomness (traffic generation, fault schedules) is vectorised with NumPy
in the traffic/fault modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Iterable, Optional, Protocol, Tuple

from ..config import NetworkConfig, PORT_LOCAL, SimulationConfig
from ..observability import Observability, maybe_create
from ..router.flit import Packet
from ..router.router import BaseRouter, BaselineRouter, RouterStats
from ..router.routing import RoutingFunction, make_routing
from .nic import NetworkInterface
from .stats import NetworkStats
from .topology import Topology


class TrafficSource(Protocol):
    """Anything that emits packets: see :mod:`repro.traffic.generator`."""

    def generate(self, cycle: int) -> Iterable[Packet]:
        """Packets created at ``cycle`` (their ``src`` selects the NIC)."""
        ...


class FaultSchedule(Protocol):
    """Anything that injects faults: see :mod:`repro.faults.injector`."""

    def due(self, cycle: int) -> Iterable:
        """FaultSites to inject at ``cycle``."""
        ...


RouterFactory = Callable[[int, RoutingFunction], BaseRouter]


def baseline_router_factory(config: NetworkConfig) -> RouterFactory:
    """Factory producing unprotected baseline routers."""

    def make(node: int, routing: RoutingFunction) -> BaseRouter:
        return BaselineRouter(node, config.router, routing)

    return make


@dataclass
class SimulationResult:
    """Outcome of one :meth:`NoCSimulator.run`."""

    stats: NetworkStats
    cycles: int
    blocked: bool
    drained: bool
    router_stats: RouterStats
    faults_injected: int
    #: exported observability snapshot (``Observability.export``) when the
    #: run was instrumented, else ``None``; plain dicts, so it survives
    #: pickling back from parallel sweep workers
    observability: Optional[dict] = None

    @property
    def avg_network_latency(self) -> float:
        return self.stats.avg_network_latency

    @property
    def avg_total_latency(self) -> float:
        return self.stats.avg_total_latency


class EventScheduler:
    """Link/credit event queue keyed by delivery cycle."""

    def __init__(self, sim: "NoCSimulator") -> None:
        self._sim = sim
        self._events: dict[int, list[tuple]] = {}
        self.cycle = 0
        #: flit-lifecycle tracer, installed by the simulator when enabled
        self.tracer = None

    # -- called by routers during the XB phase -----------------------------
    def deliver_flit(self, src_node: int, out_port: int, out_vc: int, flit) -> None:
        """Put a flit on the link leaving (src_node, out_port)."""
        sim = self._sim
        when = self.cycle + sim.config.link_latency
        if out_port == PORT_LOCAL:
            self._events.setdefault(when, []).append(
                ("eject", src_node, out_vc, flit)
            )
            return
        link = sim.topology.links.get((src_node, out_port))
        if link is None:
            raise AssertionError(
                f"router {src_node} sent a flit off the mesh edge "
                f"(port {out_port}): routing bug"
            )
        dst, dst_port = link
        self._events.setdefault(when, []).append(
            ("flit", dst, dst_port, out_vc, flit)
        )
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                self.cycle,
                "link",
                src_node,
                out_port=out_port,
                out_vc=out_vc,
                packet=flit.packet_id,
                flit=flit.flit_index,
            )

    def return_credit(self, node: int, in_port: int, wire_vc: int) -> None:
        """A slot of (node, in_port, wire_vc) freed; credit the upstream."""
        sim = self._sim
        when = self.cycle + sim.config.credit_latency
        if in_port == PORT_LOCAL:
            self._events.setdefault(when, []).append(("nic_credit", node, wire_vc))
            return
        up = sim.topology.upstream(node, in_port)
        if up is None:
            raise AssertionError(
                f"credit from unconnected port {in_port} of router {node}"
            )
        src_node, src_out = up
        self._events.setdefault(when, []).append(
            ("credit", src_node, src_out, wire_vc)
        )

    def return_nic_credit(self, node: int, wire_vc: int) -> None:
        """NIC consumed a flit; credit the router's local output port."""
        when = self.cycle + self._sim.config.credit_latency
        self._events.setdefault(when, []).append(
            ("out_credit", node, wire_vc)
        )

    # -- called by the simulator's link phase -------------------------------
    def dispatch(self, cycle: int) -> int:
        """Deliver all events due at ``cycle``; returns #flit deliveries."""
        events = self._events.pop(cycle, None)
        if not events:
            return 0
        sim = self._sim
        flits = 0
        for ev in events:
            kind = ev[0]
            if kind == "flit":
                _, dst, dst_port, vc, flit = ev
                sim.routers[dst].receive_flit(dst_port, vc, flit, cycle)
                # a hop-by-hop link delivery is forward progress too: a
                # heavily loaded but live network may go many cycles
                # between ejections without being blocked
                sim._last_progress = cycle
                flits += 1
            elif kind == "eject":
                _, node, vc, flit = ev
                if sim.on_eject is not None:
                    sim.on_eject(flit, cycle)
                sim.nics[node].eject(flit, vc, cycle, self)
                sim.flits_in_network -= 1
                sim._last_progress = cycle
                flits += 1
            elif kind == "credit":
                _, node, out_port, vc = ev
                sim.routers[node].receive_credit(out_port, vc)
            elif kind == "nic_credit":
                _, node, vc = ev
                sim.nics[node].receive_credit(vc)
            elif kind == "out_credit":
                _, node, vc = ev
                sim.routers[node].receive_credit(PORT_LOCAL, vc)
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown event {kind}")
        return flits

    @property
    def pending_events(self) -> int:
        return sum(len(v) for v in self._events.values())

    def pending_flits(self) -> int:
        """Flits currently in flight on links (incl. NIC ejections)."""
        return sum(
            1
            for evs in self._events.values()
            for ev in evs
            if ev[0] in ("flit", "eject")
        )


class NoCSimulator:
    """Builds the fabric and runs the cycle loop."""

    def __init__(
        self,
        config: NetworkConfig,
        sim_config: SimulationConfig,
        traffic: TrafficSource,
        router_factory: Optional[RouterFactory] = None,
        fault_schedule: Optional[FaultSchedule] = None,
        routing_kind: str = "xy",
        keep_samples: bool = False,
        on_eject: Optional[Callable] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        self.config = config
        self.sim_config = sim_config
        self.traffic = traffic
        self.topology = Topology(config)
        self.routing = make_routing(config, routing_kind)
        factory = router_factory or baseline_router_factory(config)
        self.routers: list[BaseRouter] = [
            factory(node, self.routing) for node in range(config.num_nodes)
        ]
        for (node, port), _ in self.topology.links.items():
            self.routers[node].out_ports[port].connected = True
        self.stats = NetworkStats(keep_samples=keep_samples)
        self.nics = [
            NetworkInterface(n, self.routers[n], config.router, self.stats)
            for n in range(config.num_nodes)
        ]
        self.scheduler = EventScheduler(self)
        self.fault_schedule = fault_schedule
        #: observability hook: called as ``on_eject(flit, cycle)`` for every
        #: flit consumed at a destination NIC (used e.g. by the ECC
        #: datapath study to decode payload codewords)
        self.on_eject = on_eject
        #: tracing/metrics/profiling bundle; ``None`` (the default, unless
        #: :func:`repro.observability.configure` enabled it process-wide)
        #: keeps every instrumentation site a single attribute check
        self.obs: Optional[Observability] = (
            observability if observability is not None else maybe_create()
        )
        if self.obs is not None and self.obs.tracer is not None:
            tracer = self.obs.tracer
            for r in self.routers:
                r.tracer = tracer
            for nic in self.nics:
                nic.tracer = tracer
            self.scheduler.tracer = tracer
        self.flits_in_network = 0
        self.faults_injected = 0
        self.cycle = 0
        self._last_progress = 0
        self.blocked = False

    # ------------------------------------------------------------------
    def _inject_faults(self, cycle: int) -> None:
        if self.fault_schedule is None:
            return
        for site in self.fault_schedule.due(cycle):
            if self.routers[site.router].inject_fault(site):
                self.faults_injected += 1

    def _step(self, cycle: int, inject_traffic: bool) -> None:
        obs = self.obs
        if obs is not None:
            prof = obs.profiler
            if prof is not None and prof.should_sample(cycle):
                self._step_profiled(cycle, inject_traffic, prof)
                obs.on_cycle(self, cycle)
                return
            obs.on_cycle(self, cycle)

        self.scheduler.cycle = cycle
        self._inject_faults(cycle)

        routers = self.routers
        sched = self.scheduler
        for r in routers:
            if r._xb_queue:
                r.xb_phase(sched, cycle)
        for r in routers:
            r.sa_phase(cycle)
        for r in routers:
            r.va_phase(cycle)
        for r in routers:
            r.rc_phase(cycle)

        sched.dispatch(cycle)

        if inject_traffic:
            for packet in self.traffic.generate(cycle):
                self.nics[packet.src].enqueue(packet)
        for nic in self.nics:
            before = self.stats.flits_injected
            nic.step(cycle)
            self.flits_in_network += self.stats.flits_injected - before

    def _step_profiled(self, cycle: int, inject_traffic: bool, prof) -> None:
        """One cycle with per-phase wall-time sampling (profiling mode).

        Mirrors :meth:`_step` exactly, with a ``perf_counter`` fence
        between phases; only every ``sample_every``-th cycle pays this.
        """
        self.scheduler.cycle = cycle
        t0 = perf_counter()
        self._inject_faults(cycle)
        t1 = perf_counter()
        prof.record("faults", t1 - t0)

        routers = self.routers
        sched = self.scheduler
        for r in routers:
            if r._xb_queue:
                r.xb_phase(sched, cycle)
        t2 = perf_counter()
        prof.record("xb", t2 - t1)
        for r in routers:
            r.sa_phase(cycle)
        t3 = perf_counter()
        prof.record("sa", t3 - t2)
        for r in routers:
            r.va_phase(cycle)
        t4 = perf_counter()
        prof.record("va", t4 - t3)
        for r in routers:
            r.rc_phase(cycle)
        t5 = perf_counter()
        prof.record("rc", t5 - t4)

        sched.dispatch(cycle)
        t6 = perf_counter()
        prof.record("link", t6 - t5)

        if inject_traffic:
            for packet in self.traffic.generate(cycle):
                self.nics[packet.src].enqueue(packet)
        for nic in self.nics:
            before = self.stats.flits_injected
            nic.step(cycle)
            self.flits_in_network += self.stats.flits_injected - before
        prof.record("nic", perf_counter() - t6)
        prof.cycle_done()

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Warmup + measurement + drain, with watchdog protection."""
        sc = self.sim_config
        self.stats.set_window(sc.warmup_cycles, sc.warmup_cycles + sc.measure_cycles)
        inject_until = sc.warmup_cycles + sc.measure_cycles
        cycle = self.cycle
        self._last_progress = cycle

        # warmup + measurement
        while cycle < inject_until:
            self._step(cycle, inject_traffic=True)
            cycle += 1
            if self._watchdog_tripped(cycle):
                break

        # drain
        drained = False
        if not self.blocked:
            drain_deadline = cycle + sc.drain_cycles
            while cycle < drain_deadline:
                if self.flits_in_network == 0 and not any(
                    nic.queued_packets for nic in self.nics
                ):
                    drained = True
                    break
                self._step(cycle, inject_traffic=False)
                cycle += 1
                if self._watchdog_tripped(cycle):
                    break
            else:
                # same predicate as the in-loop check: packets still
                # waiting in NIC source queues mean the network did not
                # fully drain, even with zero flits in flight
                drained = self.flits_in_network == 0 and not any(
                    nic.queued_packets for nic in self.nics
                )

        self.cycle = cycle
        obs_export = None
        if self.obs is not None:
            self.obs.finalize_run(self)
            obs_export = self.obs.export()
        return SimulationResult(
            stats=self.stats,
            cycles=cycle,
            blocked=self.blocked,
            drained=drained,
            router_stats=self.aggregate_router_stats(),
            faults_injected=self.faults_injected,
            observability=obs_export,
        )

    def _watchdog_tripped(self, cycle: int) -> bool:
        if (
            self.flits_in_network > 0
            and cycle - self._last_progress > self.sim_config.watchdog_cycles
        ):
            self.blocked = True
            return True
        return False

    # ------------------------------------------------------------------
    def aggregate_router_stats(self) -> RouterStats:
        """Sum of all per-router counters."""
        total = RouterStats()
        for r in self.routers:
            for f in RouterStats.__dataclass_fields__:
                setattr(total, f, getattr(total, f) + getattr(r.stats, f))
        return total

    def check_invariants(self) -> None:
        """Structural invariants across the fabric (property tests)."""
        for r in self.routers:
            r.check_invariants()
        buffered = sum(r.buffered_flits() for r in self.routers)
        in_xb = sum(len(r._xb_queue) for r in self.routers)
        # flits are in buffers, granted for XB (still buffered), or on links
        assert buffered + self.scheduler.pending_flits() == self.flits_in_network, (
            f"flit conservation violated: buffered={buffered} "
            f"on_links={self.scheduler.pending_flits()} "
            f"tracked={self.flits_in_network}"
        )
        del in_xb
