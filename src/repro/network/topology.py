"""Topology construction: 2D mesh and torus wiring.

Produces the static wiring tables the simulator uses every cycle:
``links[(node, out_port)] -> (neighbour, neighbour_in_port)``.  The local
port of every router connects to that node's network interface.

Besides the ``links`` dict, dense per-node arrays (:attr:`Topology.out_link`
and :attr:`Topology.upstream_link`) expose the same wiring as plain list
indexing for the event scheduler's per-flit hot path — no tuple-key hashing
per link traversal.

A `networkx` view of the fabric is exposed for structural analysis (path
diversity, connectivity under failed routers — used by tests and by the
network-level failure analysis in the experiments).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import networkx as nx

from ..config import (
    NetworkConfig,
    OPPOSITE_PORT,
    PORT_DELTAS,
    PORT_LOCAL,
)


class Topology:
    """Static wiring of the fabric described by a :class:`NetworkConfig`."""

    def __init__(self, config: NetworkConfig) -> None:
        self.config = config
        #: (node, out_port) -> (dst_node, dst_in_port) for router-router links
        self.links: Dict[Tuple[int, int], Tuple[int, int]] = {}
        num_ports = config.router.num_ports
        #: dense view: ``out_link[node][out_port]`` is the same
        #: ``(dst_node, dst_in_port)`` as ``links``, or ``None`` on edges
        self.out_link: list[list[Optional[Tuple[int, int]]]] = [
            [None] * num_ports for _ in range(config.num_nodes)
        ]
        #: dense view: ``upstream_link[node][in_port]`` ==
        #: :meth:`upstream`\ ``(node, in_port)``, or ``None``
        self.upstream_link: list[list[Optional[Tuple[int, int]]]] = [
            [None] * num_ports for _ in range(config.num_nodes)
        ]
        self._build()

    def _build(self) -> None:
        cfg = self.config
        wrap = cfg.topology == "torus"
        for node in range(cfg.num_nodes):
            x, y = cfg.coords(node)
            for port, (dx, dy) in PORT_DELTAS.items():
                nx_, ny_ = x + dx, y + dy
                if wrap:
                    nx_ %= cfg.width
                    ny_ %= cfg.height
                elif not (0 <= nx_ < cfg.width and 0 <= ny_ < cfg.height):
                    continue
                # A 1-wide dimension on a torus would self-loop; treat as edge.
                neighbour = cfg.node_id(nx_, ny_)
                if neighbour == node:
                    continue
                self.links[(node, port)] = (neighbour, OPPOSITE_PORT[port])
                self.out_link[node][port] = (neighbour, OPPOSITE_PORT[port])
                # the link arriving on our input port `port` is fed by the
                # neighbour in that direction, through its opposite output
                self.upstream_link[node][port] = (neighbour, OPPOSITE_PORT[port])

    def neighbour(self, node: int, out_port: int) -> Optional[Tuple[int, int]]:
        """(dst_node, dst_in_port) reached through ``out_port``, if wired."""
        if out_port == PORT_LOCAL:
            raise ValueError("the local port connects to the NIC, not a router")
        return self.links.get((node, out_port))

    def upstream(self, node: int, in_port: int) -> Optional[Tuple[int, int]]:
        """(src_node, src_out_port) feeding ``(node, in_port)``, if wired.

        In a mesh/torus every link is bidirectional and symmetric, so the
        upstream of input port *p* is the neighbour in direction *p* and
        its opposite output port.
        """
        if in_port == PORT_LOCAL:
            raise ValueError("the local input port is fed by the NIC")
        link = self.links.get((node, in_port))
        if link is None:
            return None
        neighbour, _ = link
        return neighbour, OPPOSITE_PORT[in_port]

    def graph(self) -> nx.DiGraph:
        """Directed multigraph-free view: one edge per unidirectional link."""
        g = nx.DiGraph()
        g.add_nodes_from(range(self.config.num_nodes))
        for (node, port), (dst, _) in self.links.items():
            g.add_edge(node, dst, out_port=port)
        return g

    def is_connected(self, failed_routers: frozenset[int] = frozenset()) -> bool:
        """Connectivity of the healthy sub-fabric (network-level analysis)."""
        g = self.graph()
        g.remove_nodes_from(failed_routers)
        if g.number_of_nodes() <= 1:
            return True
        return nx.is_strongly_connected(g)

    @property
    def num_links(self) -> int:
        """Unidirectional router-router links."""
        return len(self.links)
