"""Fault model: sites, state, injection schedules, detection, transients."""

from .detection import DetectionEvent, NetworkDetector, OnlineDetector
from .injector import (
    NullFaultInjector,
    RandomFaultInjector,
    ScheduledFaultInjector,
)
from .sites import FaultSite, FaultUnit, RouterFaultState, enumerate_sites
from .transient import (
    TransientFault,
    TransientFaultInjector,
    random_transients,
)

__all__ = [
    "DetectionEvent",
    "FaultSite",
    "FaultUnit",
    "NetworkDetector",
    "NullFaultInjector",
    "OnlineDetector",
    "RandomFaultInjector",
    "RouterFaultState",
    "ScheduledFaultInjector",
    "TransientFault",
    "TransientFaultInjector",
    "enumerate_sites",
    "random_transients",
]
