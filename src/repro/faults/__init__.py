"""Fault model: sites, schedules, timelines, detection, recovery.

The unified schedule API lives in :mod:`repro.faults.schedule`
(:class:`FaultSchedule` protocol, frozen spec dataclasses,
:func:`make_schedule` registry); :mod:`repro.faults.timeline` adds
arrival-time-stamped online fault timelines and
:mod:`repro.faults.recovery` the per-router recovery accounting used by
``repro.experiments.fault_campaign``.
"""

from .detection import DetectionEvent, NetworkDetector, OnlineDetector
from .injector import (
    ExplicitFaultSchedule,
    NullFaultInjector,
    NullFaultSchedule,
    RandomFaultInjector,
    RandomFaultSchedule,
    ScheduledFaultInjector,
    spawn_lane_injectors,
)
from .recovery import RecoveryMonitor, RecoveryRecord
from .schedule import (
    SCHEDULE_SPECS,
    FaultSchedule,
    NullSpec,
    RandomSpec,
    ScheduledSpec,
    TimelineSpec,
    TransientSpec,
    make_schedule,
    register_schedule,
    schedule_spec,
    site_from_tuple,
    site_token,
    site_tuple,
    spec_name,
)
from .sites import FaultSite, FaultUnit, RouterFaultState, enumerate_sites
from .timeline import (
    FaultTimeline,
    TimelineEvent,
    fit_mean_interval_cycles,
    random_timeline,
)
from .transient import (
    TransientFault,
    TransientFaultInjector,
    TransientFaultSchedule,
    random_transients,
)

__all__ = [
    "SCHEDULE_SPECS",
    "DetectionEvent",
    "ExplicitFaultSchedule",
    "FaultSchedule",
    "FaultSite",
    "FaultTimeline",
    "FaultUnit",
    "NetworkDetector",
    "NullFaultInjector",
    "NullFaultSchedule",
    "NullSpec",
    "OnlineDetector",
    "RandomFaultInjector",
    "RandomFaultSchedule",
    "RandomSpec",
    "RecoveryMonitor",
    "RecoveryRecord",
    "RouterFaultState",
    "ScheduledFaultInjector",
    "ScheduledSpec",
    "TimelineEvent",
    "TimelineSpec",
    "TransientFault",
    "TransientFaultInjector",
    "TransientFaultSchedule",
    "TransientSpec",
    "enumerate_sites",
    "fit_mean_interval_cycles",
    "make_schedule",
    "random_timeline",
    "random_transients",
    "register_schedule",
    "schedule_spec",
    "site_from_tuple",
    "site_token",
    "site_tuple",
    "spawn_lane_injectors",
    "spec_name",
]
