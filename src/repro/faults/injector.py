"""Fault-injection schedules.

The paper (Section IX): "The ideal way to simulate faults is to inject
them based on the FIT values ... Since the derived FIT values are very
small, the applications need to run for a long time ... To accelerate
simulations, we inject faults based on a uniform random variable with a
mean of 10 million cycles."

Python cycle budgets are smaller still, so :class:`RandomFaultInjector`
takes the mean inter-fault interval as a parameter; experiment configs
scale it so each run sees a comparable *number* of faults to the paper's
runs (documented per experiment in EXPERIMENTS.md).  A deterministic
:class:`ScheduledFaultInjector` supports exact test scenarios.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from ..config import RouterConfig
from .sites import FaultSite, enumerate_sites


class ScheduledFaultInjector:
    """Injects an explicit list of ``(cycle, FaultSite)`` pairs."""

    def __init__(self, schedule: Iterable[tuple[int, FaultSite]]) -> None:
        items = sorted(schedule, key=lambda cs: cs[0])
        self._cycles = [c for c, _ in items]
        self._sites = [s for _, s in items]
        self._next = 0

    def due(self, cycle: int) -> Iterator[FaultSite]:
        while self._next < len(self._cycles) and self._cycles[self._next] <= cycle:
            yield self._sites[self._next]
            self._next += 1

    def next_cycle(self) -> Optional[int]:
        """Cycle of the next pending fault, or ``None`` when exhausted.

        FaultSchedule lookahead extension: the event-driven engine arms a
        wake event here so skip-ahead never jumps over a fault arrival.
        """
        if self._next < len(self._cycles):
            return self._cycles[self._next]
        return None

    @property
    def remaining(self) -> int:
        return len(self._cycles) - self._next

    @property
    def planned(self) -> Sequence[tuple[int, FaultSite]]:
        return list(zip(self._cycles, self._sites))


class RandomFaultInjector(ScheduledFaultInjector):
    """Pre-draws a random schedule over a network's fault sites.

    Inter-fault gaps are ``Uniform(0, 2*mean)`` (mean = ``mean_interval``),
    matching the paper's "uniform random variable with a mean of 10 million
    cycles".  Sites are drawn without replacement across the whole network,
    uniformly over protectable component instances.

    ``protected`` controls whether correction-circuitry sites can also be
    hit (they can in the paper's model — Section VIII counts e.g. a fault
    "in the original and the other in the duplicate RC unit").

    ``avoid_failure=True`` draws only fault combinations that every
    protected router *tolerates* (no router reaches its Section VIII
    failure condition).  The paper's latency study (Section IX) measures
    the overhead of tolerated faults — a failed router would block traffic
    and measure availability, not latency — so the Figure 7/8 harnesses
    use this mode.
    """

    def __init__(
        self,
        config: RouterConfig,
        num_routers: int,
        mean_interval: float,
        num_faults: int,
        rng: np.random.Generator | int | None = None,
        protected: bool = True,
        first_fault_at: Optional[int] = None,
        include_va2: bool = True,
        avoid_failure: bool = False,
    ) -> None:
        if mean_interval <= 0:
            raise ValueError("mean_interval must be positive")
        if num_faults < 0:
            raise ValueError("num_faults must be >= 0")
        rng = np.random.default_rng(rng)
        pool: list[FaultSite] = []
        for router in range(num_routers):
            pool.extend(
                enumerate_sites(
                    config, router=router, protected=protected,
                    include_va2=include_va2,
                )
            )
        if num_faults > len(pool):
            raise ValueError(
                f"cannot inject {num_faults} distinct faults into "
                f"{len(pool)} sites"
            )
        order = rng.permutation(len(pool))
        if avoid_failure:
            picked = self._pick_tolerable(
                config, num_routers, pool, order, num_faults
            )
        else:
            picked = [pool[int(i)] for i in order[:num_faults]]
        gaps = rng.uniform(0, 2 * mean_interval, size=num_faults)
        cycles = np.cumsum(gaps).astype(np.int64)
        if first_fault_at is not None and num_faults > 0:
            cycles = cycles - cycles[0] + first_fault_at
        schedule = list(zip((int(c) for c in cycles), picked))
        super().__init__(schedule)

    @staticmethod
    def _pick_tolerable(
        config: RouterConfig,
        num_routers: int,
        pool: list[FaultSite],
        order,
        num_faults: int,
    ) -> list[FaultSite]:
        """Greedy draw skipping any site that would fail its router."""
        from ..core.failure import protected_router_failed
        from .sites import RouterFaultState

        states = [RouterFaultState(config) for _ in range(num_routers)]
        picked: list[FaultSite] = []
        for i in order:
            if len(picked) == num_faults:
                break
            site = pool[int(i)]
            st = states[site.router]
            st.inject(site)
            if protected_router_failed(st, exact=True):
                st.heal(site)
                continue
            picked.append(site)
        if len(picked) < num_faults:
            raise ValueError(
                f"could only place {len(picked)} of {num_faults} faults "
                "without failing a router; lower num_faults"
            )
        return picked


class NullFaultInjector:
    """No faults (fault-free runs)."""

    def due(self, cycle: int) -> Iterator[FaultSite]:
        return iter(())

    def next_cycle(self) -> Optional[int]:
        return None


def spawn_lane_injectors(
    config: RouterConfig,
    num_routers: int,
    lanes: int,
    mean_interval: float,
    num_faults: int,
    rng: np.random.Generator | np.random.SeedSequence | int | None = None,
    **kwargs,
) -> list[RandomFaultInjector]:
    """One independent random fault schedule per lane of a batched sweep.

    Child seeds come from :meth:`numpy.random.SeedSequence.spawn` — the
    same derivation :func:`repro.experiments.parallel.spawn_seeds` uses
    for sweep points — so lane ``i``'s schedule depends only on the root
    entropy and the lane index, never on how lanes are grouped into
    :class:`repro.network.batched.BatchedLaneEngine` chunks or worker
    processes.  ``kwargs`` pass through to :class:`RandomFaultInjector`
    (``protected``, ``first_fault_at``, ``avoid_failure``, ...).
    """
    if isinstance(rng, np.random.Generator):
        seq = rng.bit_generator.seed_seq
    elif isinstance(rng, np.random.SeedSequence):
        seq = rng
    else:
        seq = np.random.SeedSequence(rng)
    return [
        RandomFaultInjector(
            config, num_routers, mean_interval, num_faults,
            rng=np.random.default_rng(child), **kwargs,
        )
        for child in seq.spawn(lanes)
    ]
