"""Fault-injection schedules.

The paper (Section IX): "The ideal way to simulate faults is to inject
them based on the FIT values ... Since the derived FIT values are very
small, the applications need to run for a long time ... To accelerate
simulations, we inject faults based on a uniform random variable with a
mean of 10 million cycles."

Python cycle budgets are smaller still, so :class:`RandomFaultSchedule`
takes the mean inter-fault interval as a parameter; experiment configs
scale it so each run sees a comparable *number* of faults to the paper's
runs (documented per experiment in EXPERIMENTS.md).  A deterministic
:class:`ExplicitFaultSchedule` supports exact test scenarios.

Every class here implements the :class:`repro.faults.schedule.FaultSchedule`
protocol (``events_at`` / ``next_cycle`` / ``fingerprint``); the pre-2.0
``*FaultInjector`` names remain as ``DeprecationWarning`` shims.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from ..config import RouterConfig
from .schedule import (
    NullSpec,
    RandomSpec,
    ScheduledSpec,
    _require_geometry,
    register_schedule,
    schedule_digest,
    site_from_tuple,
    site_token,
    warn_legacy,
)
from .sites import FaultSite, enumerate_sites


class ExplicitFaultSchedule:
    """Injects an explicit list of ``(cycle, FaultSite)`` pairs."""

    def __init__(self, schedule: Iterable[tuple[int, FaultSite]]) -> None:
        items = sorted(schedule, key=lambda cs: cs[0])
        self._cycles = [c for c, _ in items]
        self._sites = [s for _, s in items]
        self._next = 0
        self._fingerprint: Optional[str] = None

    def events_at(self, cycle: int) -> Iterator[FaultSite]:
        """Consume and yield the sites due at (or before) ``cycle``."""
        while self._next < len(self._cycles) and self._cycles[self._next] <= cycle:
            yield self._sites[self._next]
            self._next += 1

    #: simulator-facing alias kept so pre-Protocol call sites keep working
    due = events_at

    def next_cycle(self) -> Optional[int]:
        """Cycle of the next pending fault, or ``None`` when exhausted.

        The event-driven engine arms a wake event here so skip-ahead
        never jumps over a fault arrival.
        """
        if self._next < len(self._cycles):
            return self._cycles[self._next]
        return None

    def fingerprint(self) -> str:
        """Content digest over the *full* planned event list.

        Deliberately independent of consumption state: a partially
        delivered schedule still names the same computation.
        """
        if self._fingerprint is None:
            self._fingerprint = schedule_digest(
                "scheduled",
                (
                    f"{c}@{site_token(s)}"
                    for c, s in zip(self._cycles, self._sites)
                ),
            )
        return self._fingerprint

    @property
    def remaining(self) -> int:
        return len(self._cycles) - self._next

    @property
    def planned(self) -> Sequence[tuple[int, FaultSite]]:
        return list(zip(self._cycles, self._sites))


class RandomFaultSchedule(ExplicitFaultSchedule):
    """Pre-draws a random schedule over a network's fault sites.

    Inter-fault gaps are ``Uniform(0, 2*mean)`` (mean = ``mean_interval``),
    matching the paper's "uniform random variable with a mean of 10 million
    cycles".  Sites are drawn without replacement across the whole network,
    uniformly over protectable component instances.

    ``protected`` controls whether correction-circuitry sites can also be
    hit (they can in the paper's model — Section VIII counts e.g. a fault
    "in the original and the other in the duplicate RC unit").

    ``avoid_failure=True`` draws only fault combinations that every
    protected router *tolerates* (no router reaches its Section VIII
    failure condition).  The paper's latency study (Section IX) measures
    the overhead of tolerated faults — a failed router would block traffic
    and measure availability, not latency — so the Figure 7/8 harnesses
    use this mode.
    """

    def __init__(
        self,
        config: RouterConfig,
        num_routers: int,
        mean_interval: float,
        num_faults: int,
        rng: np.random.Generator | int | None = None,
        protected: bool = True,
        first_fault_at: Optional[int] = None,
        include_va2: bool = True,
        avoid_failure: bool = False,
    ) -> None:
        if mean_interval <= 0:
            raise ValueError("mean_interval must be positive")
        if num_faults < 0:
            raise ValueError("num_faults must be >= 0")
        rng = np.random.default_rng(rng)
        pool: list[FaultSite] = []
        for router in range(num_routers):
            pool.extend(
                enumerate_sites(
                    config, router=router, protected=protected,
                    include_va2=include_va2,
                )
            )
        if num_faults > len(pool):
            raise ValueError(
                f"cannot inject {num_faults} distinct faults into "
                f"{len(pool)} sites"
            )
        order = rng.permutation(len(pool))
        if avoid_failure:
            picked = self._pick_tolerable(
                config, num_routers, pool, order, num_faults
            )
        else:
            picked = [pool[int(i)] for i in order[:num_faults]]
        gaps = rng.uniform(0, 2 * mean_interval, size=num_faults)
        cycles = np.cumsum(gaps).astype(np.int64)
        if first_fault_at is not None and num_faults > 0:
            cycles = cycles - cycles[0] + first_fault_at
        schedule = list(zip((int(c) for c in cycles), picked))
        super().__init__(schedule)

    @staticmethod
    def _pick_tolerable(
        config: RouterConfig,
        num_routers: int,
        pool: list[FaultSite],
        order,
        num_faults: int,
    ) -> list[FaultSite]:
        """Greedy draw skipping any site that would fail its router."""
        from ..core.failure import protected_router_failed
        from .sites import RouterFaultState

        states = [RouterFaultState(config) for _ in range(num_routers)]
        picked: list[FaultSite] = []
        for i in order:
            if len(picked) == num_faults:
                break
            site = pool[int(i)]
            st = states[site.router]
            st.inject(site)
            if protected_router_failed(st, exact=True):
                st.heal(site)
                continue
            picked.append(site)
        if len(picked) < num_faults:
            raise ValueError(
                f"could only place {len(picked)} of {num_faults} faults "
                "without failing a router; lower num_faults"
            )
        return picked


class NullFaultSchedule:
    """No faults (fault-free runs)."""

    def events_at(self, cycle: int) -> Iterator[FaultSite]:
        return iter(())

    due = events_at

    def next_cycle(self) -> Optional[int]:
        return None

    def fingerprint(self) -> str:
        return "none:0"


# ----------------------------------------------------------------------
# spec builders (make_schedule registry)
# ----------------------------------------------------------------------
@register_schedule("scheduled", ScheduledSpec)
def _build_scheduled(spec: ScheduledSpec, *, config=None, num_routers=None):
    return ExplicitFaultSchedule(
        (c, site_from_tuple(row)) for c, *row in spec.events
    )


@register_schedule("random", RandomSpec)
def _build_random(spec: RandomSpec, *, config=None, num_routers=None):
    config, num_routers = _require_geometry("random", config, num_routers)
    return RandomFaultSchedule(
        config,
        num_routers,
        spec.mean_interval,
        spec.num_faults,
        rng=spec.seed,
        protected=spec.protected,
        first_fault_at=spec.first_fault_at,
        include_va2=spec.include_va2,
        avoid_failure=spec.avoid_failure,
    )


@register_schedule("none", NullSpec)
def _build_null(spec: NullSpec, *, config=None, num_routers=None):
    return NullFaultSchedule()


# ----------------------------------------------------------------------
# pre-2.0 constructor shims
# ----------------------------------------------------------------------
class ScheduledFaultInjector(ExplicitFaultSchedule):
    """Deprecated alias of :class:`ExplicitFaultSchedule` (removal: 2.0)."""

    def __init__(self, schedule: Iterable[tuple[int, FaultSite]]) -> None:
        warn_legacy("ScheduledFaultInjector", "ExplicitFaultSchedule")
        super().__init__(schedule)


class RandomFaultInjector(RandomFaultSchedule):
    """Deprecated alias of :class:`RandomFaultSchedule` (removal: 2.0)."""

    def __init__(self, *args, **kwargs) -> None:
        warn_legacy("RandomFaultInjector", "RandomFaultSchedule")
        super().__init__(*args, **kwargs)


class NullFaultInjector(NullFaultSchedule):
    """Deprecated alias of :class:`NullFaultSchedule` (removal: 2.0)."""

    def __init__(self) -> None:
        warn_legacy("NullFaultInjector", "NullFaultSchedule")


def spawn_lane_injectors(
    config: RouterConfig,
    num_routers: int,
    lanes: int,
    mean_interval: float,
    num_faults: int,
    rng: np.random.Generator | np.random.SeedSequence | int | None = None,
    **kwargs,
) -> list[RandomFaultSchedule]:
    """One independent random fault schedule per lane of a batched sweep.

    Child seeds come from :meth:`numpy.random.SeedSequence.spawn` — the
    same derivation :func:`repro.experiments.parallel.spawn_seeds` uses
    for sweep points — so lane ``i``'s schedule depends only on the root
    entropy and the lane index, never on how lanes are grouped into
    :class:`repro.network.batched.BatchedLaneEngine` chunks or worker
    processes.  ``kwargs`` pass through to :class:`RandomFaultSchedule`
    (``protected``, ``first_fault_at``, ``avoid_failure``, ...).
    """
    if isinstance(rng, np.random.Generator):
        seq = rng.bit_generator.seed_seq
    elif isinstance(rng, np.random.SeedSequence):
        seq = rng
    else:
        seq = np.random.SeedSequence(rng)
    return [
        RandomFaultSchedule(
            config, num_routers, mean_interval, num_faults,
            rng=np.random.default_rng(child), **kwargs,
        )
        for child in seq.spawn(lanes)
    ]
