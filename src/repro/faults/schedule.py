"""Unified ``FaultSchedule`` API: protocol, spec dataclasses, registry.

Before this module, "a fault schedule" was implicit duck-typing — the
simulator called ``due(cycle)`` and probed ``next_cycle`` with
``getattr``, and each injector class exposed a slightly different
construction surface.  This module makes the contract explicit:

* :class:`FaultSchedule` — a runtime-checkable :class:`typing.Protocol`
  with the three methods every schedule implements:
  ``events_at(cycle)`` (the consuming event iterator, formerly ``due``),
  ``next_cycle()`` (the event-engine wake lookahead) and
  ``fingerprint()`` (a stable content digest used by the warm-fabric
  pool key and the service cache).
* **Spec dataclasses** — frozen, JSON-shaped descriptions of a schedule
  (:class:`ScheduledSpec`, :class:`RandomSpec`, :class:`TransientSpec`,
  :class:`NullSpec`, and :class:`repro.faults.timeline.TimelineSpec`).
  They hold only scalars and tuples, so they round-trip through the
  service's ``build_config``/``canonical`` machinery unchanged and
  cache-key soundly.
* :func:`make_schedule` — a name-keyed factory registry turning a spec
  (plus the network geometry where needed) into a live schedule object.

The legacy ``*FaultInjector`` constructors remain as thin
``DeprecationWarning`` shims (removal in 2.0), matching the PR-5 config
migration pattern.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from ..config import RouterConfig
from .sites import FaultSite, FaultUnit


@runtime_checkable
class FaultSchedule(Protocol):
    """Anything that injects faults into a running simulation.

    ``events_at(cycle)`` yields the :class:`FaultSite` events due at (or
    before) ``cycle`` and consumes them — the simulator calls it once
    per stepped cycle.  ``next_cycle()`` returns the cycle of the
    earliest not-yet-delivered event (or ``None`` when exhausted); the
    event-driven engine turns it into a calendar wake so skip-ahead
    never jumps over a fault arrival.  ``fingerprint()`` is a stable
    content digest: two schedules with the same fingerprint deliver the
    same events, which is what lets the warm-fabric pool and the service
    cache key on it.

    Schedules that also *heal* sites mid-run (transient upsets, fault
    timelines) additionally set ``native_heals = True`` and implement
    ``heals_due(cycle)``; see :class:`repro.faults.timeline.FaultTimeline`.
    """

    def events_at(self, cycle: int) -> Iterator[FaultSite]:
        """Consume and yield the fault sites due at ``cycle``."""
        ...

    def next_cycle(self) -> Optional[int]:
        """Cycle of the next pending event, or ``None`` when exhausted."""
        ...

    def fingerprint(self) -> str:
        """Stable content digest (``"<kind>:<hex>"``)."""
        ...


# ----------------------------------------------------------------------
# fingerprint + site-token helpers shared by the schedule classes
# ----------------------------------------------------------------------
def schedule_digest(kind: str, parts: Iterable[str]) -> str:
    """``"<kind>:<16-hex>"`` digest over an ordered token stream."""
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode())
        h.update(b"\n")
    return f"{kind}:{h.hexdigest()[:16]}"


def site_token(site: FaultSite) -> str:
    """Canonical string form of a :class:`FaultSite` (for digests)."""
    return f"{site.router}:{site.unit.value}:{site.port}:{site.vc}"


def site_tuple(site: FaultSite) -> Tuple[int, str, int, int]:
    """JSON-ready ``(router, unit, port, vc)`` form of a site."""
    return (site.router, site.unit.value, site.port, site.vc)


def site_from_tuple(row: Iterable[Any]) -> FaultSite:
    """Rebuild a :class:`FaultSite` from its JSON-ready tuple form."""
    router, unit, port, vc = row
    return FaultSite(int(router), FaultUnit(str(unit)), int(port), int(vc))


# ----------------------------------------------------------------------
# frozen spec dataclasses (JSON-shaped; scalars and tuples only)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScheduledSpec:
    """Explicit event list: ``(cycle, router, unit, port, vc)`` rows."""

    name: ClassVar[str] = "scheduled"
    events: Tuple[Tuple[int, int, str, int, int], ...] = ()

    def __post_init__(self) -> None:
        rows = tuple(
            (int(c), int(r), str(u), int(p), int(v))
            for c, r, u, p, v in self.events
        )
        object.__setattr__(self, "events", rows)


@dataclass(frozen=True)
class RandomSpec:
    """Paper-style pre-drawn random schedule (Section IX acceleration)."""

    name: ClassVar[str] = "random"
    mean_interval: float = 1000.0
    num_faults: int = 1
    seed: int = 0
    protected: bool = True
    first_fault_at: Optional[int] = None
    include_va2: bool = True
    avoid_failure: bool = False


@dataclass(frozen=True)
class TransientSpec:
    """Poisson-ish self-healing upsets (see ``random_transients``)."""

    name: ClassVar[str] = "transient"
    rate_per_cycle: float = 0.001
    cycles: int = 1000
    duration: int = 1
    seed: int = 0
    protected: bool = True


@dataclass(frozen=True)
class NullSpec:
    """No faults (fault-free runs)."""

    name: ClassVar[str] = "none"


@dataclass(frozen=True)
class TimelineSpec:
    """FIT-derived online fault timeline (permanent + transient events).

    Built by :func:`repro.faults.timeline.random_timeline`:
    exponential inter-arrival gaps with the given mean (cycles), each
    event transient with probability ``transient_fraction`` (healing
    ``transient_duration`` cycles after landing).
    """

    name: ClassVar[str] = "timeline"
    events: int = 8
    mean_interval: float = 2000.0
    transient_fraction: float = 0.25
    transient_duration: int = 64
    seed: int = 0
    protected: bool = True
    avoid_failure: bool = True
    first_event_at: int = 0


# ----------------------------------------------------------------------
# name-keyed factory registry
# ----------------------------------------------------------------------
#: schedule name -> spec dataclass (public, for service introspection)
SCHEDULE_SPECS: Dict[str, type] = {}
_BUILDERS: Dict[str, Callable[..., Any]] = {}
_SPEC_NAMES: Dict[type, str] = {}


def register_schedule(
    name: str, spec_type: type
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register ``spec_type`` + its builder under ``name`` (decorator).

    The builder is called as ``builder(spec, config=..., num_routers=...)``
    and must return a :class:`FaultSchedule`.  Registration happens at
    import of the defining module; ``repro.faults`` imports every
    schedule module, so the registry is complete once the package is.
    """

    def deco(builder: Callable[..., Any]) -> Callable[..., Any]:
        if name in _BUILDERS:
            raise ValueError(f"schedule {name!r} already registered")
        _BUILDERS[name] = builder
        SCHEDULE_SPECS[name] = spec_type
        _SPEC_NAMES[spec_type] = name
        return builder

    return deco


def schedule_spec(name: str, payload: Optional[Mapping[str, Any]] = None) -> Any:
    """Build the spec dataclass registered under ``name`` from a mapping.

    The JSON-side door: list values coerce to tuples (JSON has no
    tuples), unknown names/fields raise ``ValueError``.
    """
    cls = SCHEDULE_SPECS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown schedule {name!r}; available: {sorted(SCHEDULE_SPECS)}"
        )
    payload = dict(payload or {})
    coerced = {
        k: tuple(tuple(x) if isinstance(x, list) else x for x in v)
        if isinstance(v, list)
        else v
        for k, v in payload.items()
    }
    return cls(**coerced)


def make_schedule(
    spec: Any,
    *,
    config: Optional[RouterConfig] = None,
    num_routers: Optional[int] = None,
) -> Any:
    """Build a live :class:`FaultSchedule` from a frozen spec.

    Specs that draw sites from the fabric (``random``, ``transient``,
    ``timeline``) need the router ``config`` and ``num_routers``; the
    purely explicit ones (``scheduled``, ``none``) ignore them.
    """
    name = _SPEC_NAMES.get(type(spec))
    if name is None:
        raise TypeError(
            f"not a registered schedule spec: {type(spec).__name__} "
            f"(known: {sorted(SCHEDULE_SPECS)})"
        )
    return _BUILDERS[name](spec, config=config, num_routers=num_routers)


def spec_name(spec: Any) -> Optional[str]:
    """Registry name of a spec instance, or ``None`` if unregistered."""
    return _SPEC_NAMES.get(type(spec))


def _require_geometry(
    name: str, config: Optional[RouterConfig], num_routers: Optional[int]
) -> Tuple[RouterConfig, int]:
    if config is None or num_routers is None:
        raise ValueError(
            f"schedule {name!r} draws sites from the fabric: pass "
            "config= and num_routers= to make_schedule()"
        )
    return config, num_routers


def warn_legacy(old: str, new: str) -> None:
    """One-line ``DeprecationWarning`` for the legacy injector shims."""
    warnings.warn(
        f"{old} is deprecated and will be removed in 2.0; use {new} or "
        "repro.faults.make_schedule(spec)",
        DeprecationWarning,
        stacklevel=3,
    )
