"""Enumeration of permanent-fault sites in the router pipeline.

The paper (Section V) considers permanent faults in the four pipeline
stages only — "Faults in the other components of a router such as
multiplexers and buffers are studied in [23] and are out of scope".  The
protectable component instances are:

========== ========================= ============================== =======
Stage      Component                 Granularity                    Count*
========== ========================= ============================== =======
RC         routing unit              per input port                 5
RC (prot.) duplicate routing unit    per input port                 5
VA stage 1 ``po x v:1`` arbiter set  per input VC                   20
VA stage 2 ``pi*v : 1`` arbiter      per (output port, downstream VC) 20
SA stage 1 ``v:1`` arbiter           per input port                 5
SA (prot.) bypass path (mux+reg)     per input port                 5
SA stage 2 ``pi:1`` arbiter          per output port                5
XB         ``pi:1`` output mux       per output port                5
XB (prot.) secondary path (demux+P)  per output port                5
========== ========================= ============================== =======

(*counts for the paper's 5-port, 4-VC router)

A :class:`FaultSite` names one such instance inside one router;
:class:`RouterFaultState` holds the set of faulty instances of a single
router and offers O(1) lookups for the pipeline units.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from ..config import RouterConfig


class FaultUnit(enum.Enum):
    """Kind of protectable component instance."""

    RC_PRIMARY = "rc_primary"
    RC_DUPLICATE = "rc_duplicate"
    VA1_ARBITER_SET = "va1_arbiter_set"
    VA2_ARBITER = "va2_arbiter"
    SA1_ARBITER = "sa1_arbiter"
    SA1_BYPASS = "sa1_bypass"
    SA2_ARBITER = "sa2_arbiter"
    XB_MUX = "xb_mux"
    XB_SECONDARY = "xb_secondary"

    @property
    def stage(self) -> str:
        """Pipeline stage this unit belongs to (RC/VA/SA/XB)."""
        return _UNIT_STAGE[self]

    @property
    def is_correction_circuitry(self) -> bool:
        """True for components added by the protected router."""
        return self in (
            FaultUnit.RC_DUPLICATE,
            FaultUnit.SA1_BYPASS,
            FaultUnit.XB_SECONDARY,
        )


_UNIT_STAGE = {
    FaultUnit.RC_PRIMARY: "RC",
    FaultUnit.RC_DUPLICATE: "RC",
    FaultUnit.VA1_ARBITER_SET: "VA",
    FaultUnit.VA2_ARBITER: "VA",
    FaultUnit.SA1_ARBITER: "SA",
    FaultUnit.SA1_BYPASS: "SA",
    FaultUnit.SA2_ARBITER: "SA",
    FaultUnit.XB_MUX: "XB",
    FaultUnit.XB_SECONDARY: "XB",
}


@dataclass(frozen=True)
class FaultSite:
    """One permanently-faultable component instance.

    ``port`` is the input port for RC/VA1/SA1 units and the output port for
    VA2/SA2/XB units.  ``vc`` is used by the per-VC units (VA1: the input
    VC owning the arbiter set; VA2: the downstream VC of the arbiter).
    """

    router: int
    unit: FaultUnit
    port: int
    vc: int = -1

    def __post_init__(self) -> None:
        per_vc = self.unit in (FaultUnit.VA1_ARBITER_SET, FaultUnit.VA2_ARBITER)
        if per_vc and self.vc < 0:
            raise ValueError(f"{self.unit.value} requires a VC index")
        if not per_vc and self.vc != -1:
            raise ValueError(f"{self.unit.value} takes no VC index")

    def describe(self) -> str:
        """Human-readable location, e.g. ``router 12 VA1_ARBITER_SET p3v1``."""
        loc = f"p{self.port}" + (f"v{self.vc}" if self.vc >= 0 else "")
        return f"router {self.router} {self.unit.name} {loc}"


def enumerate_sites(
    config: RouterConfig,
    router: int = 0,
    protected: bool = True,
    include_va2: bool = True,
) -> Iterator[FaultSite]:
    """Yield every fault site of one router.

    ``protected=False`` omits the correction-circuitry sites (the baseline
    router has no duplicates/bypasses/secondary paths).  ``include_va2``
    exists because the paper's SPF analysis (Section VIII) covers VA stage 1
    only — VA stage 2 tolerance uses inherent redundancy with no dedicated
    circuitry, so some analyses exclude those sites.
    """
    P, V = config.num_ports, config.num_vcs
    for p in range(P):
        yield FaultSite(router, FaultUnit.RC_PRIMARY, p)
        if protected:
            yield FaultSite(router, FaultUnit.RC_DUPLICATE, p)
    for p in range(P):
        for v in range(V):
            yield FaultSite(router, FaultUnit.VA1_ARBITER_SET, p, v)
    if include_va2:
        for p in range(P):
            for v in range(V):
                yield FaultSite(router, FaultUnit.VA2_ARBITER, p, v)
    for p in range(P):
        yield FaultSite(router, FaultUnit.SA1_ARBITER, p)
        if protected:
            yield FaultSite(router, FaultUnit.SA1_BYPASS, p)
    for p in range(P):
        yield FaultSite(router, FaultUnit.SA2_ARBITER, p)
    for p in range(P):
        yield FaultSite(router, FaultUnit.XB_MUX, p)
        if protected:
            yield FaultSite(router, FaultUnit.XB_SECONDARY, p)


class RouterFaultState:
    """Mutable set of faulty component instances of one router.

    The pipeline units consult this object every cycle, so membership tests
    are plain set lookups.  Injection is idempotent; ``inject`` returns
    ``False`` when the site was already faulty.
    """

    __slots__ = (
        "config",
        "rc_primary",
        "rc_duplicate",
        "va1",
        "va2",
        "sa1",
        "sa1_bypass",
        "sa2",
        "xb_mux",
        "xb_secondary",
        "history",
    )

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.rc_primary: set[int] = set()
        self.rc_duplicate: set[int] = set()
        self.va1: set[tuple[int, int]] = set()
        self.va2: set[tuple[int, int]] = set()
        self.sa1: set[int] = set()
        self.sa1_bypass: set[int] = set()
        self.sa2: set[int] = set()
        self.xb_mux: set[int] = set()
        self.xb_secondary: set[int] = set()
        #: injection order, for reporting
        self.history: list[FaultSite] = []

    def inject(self, site: FaultSite) -> bool:
        """Mark ``site`` permanently faulty.  Returns False if already so."""
        P, V = self.config.num_ports, self.config.num_vcs
        if not (0 <= site.port < P):
            raise ValueError(f"port {site.port} out of range for {P}-port router")
        if site.vc >= V:
            raise ValueError(f"vc {site.vc} out of range for {V}-VC router")
        target = self._target_set(site.unit)
        key = (site.port, site.vc) if site.vc >= 0 else site.port
        if key in target:
            return False
        target.add(key)
        self.history.append(site)
        return True

    def heal(self, site: FaultSite) -> bool:
        """Remove a fault (used by tests and transient-fault extensions)."""
        target = self._target_set(site.unit)
        key = (site.port, site.vc) if site.vc >= 0 else site.port
        if key not in target:
            return False
        target.discard(key)
        self.history = [
            s for s in self.history
            if not (s.unit == site.unit and s.port == site.port and s.vc == site.vc)
        ]
        return True

    def _target_set(self, unit: FaultUnit) -> set:
        return {
            FaultUnit.RC_PRIMARY: self.rc_primary,
            FaultUnit.RC_DUPLICATE: self.rc_duplicate,
            FaultUnit.VA1_ARBITER_SET: self.va1,
            FaultUnit.VA2_ARBITER: self.va2,
            FaultUnit.SA1_ARBITER: self.sa1,
            FaultUnit.SA1_BYPASS: self.sa1_bypass,
            FaultUnit.SA2_ARBITER: self.sa2,
            FaultUnit.XB_MUX: self.xb_mux,
            FaultUnit.XB_SECONDARY: self.xb_secondary,
        }[unit]

    @property
    def num_faults(self) -> int:
        """Total number of injected faults."""
        return len(self.history)

    @property
    def any_faults(self) -> bool:
        return bool(self.history)

    def clear(self) -> None:
        """Remove every fault (power-on reset)."""
        for unit in FaultUnit:
            self._target_set(unit).clear()
        self.history.clear()

    def sites(self) -> list[FaultSite]:
        """Injection history as a list (copy)."""
        return list(self.history)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RouterFaultState({self.num_faults} faults)"
