"""Transient-fault extension.

The paper's Introduction distinguishes permanent from transient faults
("a transient fault affects the operation of a circuit for a smaller
period of time, typically in the order of one clock cycle") but its
design targets permanent faults only.  This extension models transients
as *self-healing* fault injections: a site goes faulty for a bounded
number of cycles and is then healed.  While active, the protected
router's mechanisms absorb it exactly like an early-life permanent
fault; after healing, the router returns to its pristine datapath.

Used by ablation benches and robustness property tests; not part of the
paper's headline reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

import numpy as np

from ..config import RouterConfig
from .schedule import (
    TransientSpec,
    _require_geometry,
    register_schedule,
    schedule_digest,
    site_token,
    warn_legacy,
)
from .sites import FaultSite, enumerate_sites


@dataclass(frozen=True)
class TransientFault:
    """One transient upset: ``site`` is faulty during [start, start+duration)."""

    cycle: int
    site: FaultSite
    duration: int = 1

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise ValueError("transient duration must be >= 1 cycle")
        if self.cycle < 0:
            raise ValueError("cycle must be >= 0")

    @property
    def heal_cycle(self) -> int:
        return self.cycle + self.duration


class TransientFaultSchedule:
    """Fault schedule that injects *and later heals* each site.

    Satisfies the :class:`repro.faults.schedule.FaultSchedule` protocol
    for injection; healing requires cooperation, so the simulator-facing
    integration is :meth:`attach`: it wraps the injector around a
    simulator and performs heals through the router's ``heal_fault``.

    Simplification: overlapping transients on the *same* site merge (the
    site heals at the later heal time) — the fault state is boolean.
    """

    #: heals sites mid-run: batched lane arrays have no heal seam, so
    #: ``repro.network.batched.supports`` declines factories carrying this
    mutates_fabric = True

    def __init__(self, transients: Iterable[TransientFault]) -> None:
        items = sorted(transients, key=lambda t: t.cycle)
        self._inject_q = list(items)
        self._inject_i = 0
        # heal events: (cycle, site); kept sorted lazily
        heals: dict[tuple, int] = {}
        for t in items:
            key = (t.site.router, t.site.unit, t.site.port, t.site.vc)
            heals[key] = max(heals.get(key, 0), t.heal_cycle)
        self._heals = sorted(
            ((cycle, key) for key, cycle in heals.items()), key=lambda x: x[0]
        )
        self._heal_i = 0
        self._site_by_key = {
            (t.site.router, t.site.unit, t.site.port, t.site.vc): t.site
            for t in items
        }
        self._fingerprint: Optional[str] = None

    # -- FaultSchedule protocol (injection half) -------------------------
    def events_at(self, cycle: int) -> Iterator[FaultSite]:
        while (
            self._inject_i < len(self._inject_q)
            and self._inject_q[self._inject_i].cycle <= cycle
        ):
            yield self._inject_q[self._inject_i].site
            self._inject_i += 1

    due = events_at

    def next_cycle(self) -> Optional[int]:
        """Next pending *injection* cycle (FaultSchedule lookahead).

        Heals are not represented here — they ride on the :meth:`attach`
        step wrapper, and a wrapped step disables the event-driven
        skip-ahead entirely, so heals are never jumped over.
        """
        if self._inject_i < len(self._inject_q):
            return self._inject_q[self._inject_i].cycle
        return None

    def fingerprint(self) -> str:
        """Content digest over the full (cycle, site, duration) list."""
        if self._fingerprint is None:
            self._fingerprint = schedule_digest(
                "transient",
                (
                    f"{t.cycle}@{site_token(t.site)}+{t.duration}"
                    for t in self._inject_q
                ),
            )
        return self._fingerprint

    # -- healing half ------------------------------------------------------
    def heals_due(self, cycle: int) -> Iterator[FaultSite]:
        while self._heal_i < len(self._heals) and self._heals[self._heal_i][0] <= cycle:
            _, key = self._heals[self._heal_i]
            yield self._site_by_key[key]
            self._heal_i += 1

    def attach(self, sim) -> None:
        """Wrap a simulator's step so heals are applied each cycle."""
        original = sim._step

        def stepped(cycle: int, inject_traffic: bool) -> None:
            for site in self.heals_due(cycle):
                sim.routers[site.router].heal_fault(site)
            original(cycle, inject_traffic)

        sim._step = stepped

    @property
    def remaining_injections(self) -> int:
        return len(self._inject_q) - self._inject_i


class TransientFaultInjector(TransientFaultSchedule):
    """Deprecated alias of :class:`TransientFaultSchedule` (removal: 2.0)."""

    def __init__(self, transients: Iterable[TransientFault]) -> None:
        warn_legacy("TransientFaultInjector", "TransientFaultSchedule")
        super().__init__(transients)


def random_transients(
    config: RouterConfig,
    num_routers: int,
    rate_per_cycle: float,
    cycles: int,
    duration: int = 1,
    rng: np.random.Generator | int | None = None,
    protected: bool = True,
) -> list[TransientFault]:
    """Poisson-ish transient schedule: each cycle, with probability
    ``rate_per_cycle``, one uniformly-chosen site is upset for
    ``duration`` cycles."""
    if not 0 <= rate_per_cycle <= 1:
        raise ValueError("rate must be a per-cycle probability")
    if cycles < 1:
        raise ValueError("cycles must be >= 1")
    rng = np.random.default_rng(rng)
    pool: list[FaultSite] = []
    for r in range(num_routers):
        pool.extend(enumerate_sites(config, router=r, protected=protected))
    hits = rng.random(cycles) < rate_per_cycle
    out = []
    for cycle in np.flatnonzero(hits):
        site = pool[int(rng.integers(len(pool)))]
        out.append(TransientFault(int(cycle), site, duration))
    return out


@register_schedule("transient", TransientSpec)
def _build_transient(spec: TransientSpec, *, config=None, num_routers=None):
    config, num_routers = _require_geometry("transient", config, num_routers)
    return TransientFaultSchedule(
        random_transients(
            config,
            num_routers,
            spec.rate_per_cycle,
            spec.cycles,
            duration=spec.duration,
            rng=spec.seed,
            protected=spec.protected,
        )
    )
