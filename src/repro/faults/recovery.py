"""Per-router recovery accounting for online fault campaigns.

When a fault lands mid-traffic the interesting story is temporal:

* **detection latency** — land to the first externally visible symptom:
  a protection-mechanism counter moving (duplicate RC computations,
  borrowed VA grants, bypass/secondary-path grants — the same counters
  :class:`repro.faults.detection.OnlineDetector` watches) or, for
  routers without that mechanism, a blocked-pipeline symptom counter;
* **time-to-recover** — land to the first flit traversing the router
  again, i.e. the reconfigured datapath demonstrably serving traffic;
* **in-flight exposure** — flits buffered in the router at land time
  (the packets at risk during reconfiguration) and flits still stranded
  there at end of run when the router never recovered.

A :class:`RecoveryMonitor` installs itself as the ``recovery`` probe on
every router (the :class:`repro.router.router.BaseRouter` hook); the
simulator reports land/heal events into it and polls open watches once
per stepped cycle.  Polling only reads counters, which are frozen while
a fabric is idle, so the event-driven skip-ahead stays enabled and
bit-identical.  At end of run the monitor folds its aggregates into
:class:`repro.network.stats.NetworkStats` and exports a picklable
summary on ``SimulationResult.recovery``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from .detection import OnlineDetector
from .schedule import site_token
from .sites import FaultSite, FaultUnit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..router.router import BaseRouter

#: mechanism counters (protected-router corrections; mirrors the
#: OnlineDetector map) — the fastest observable
_MECHANISM: Dict[FaultUnit, str] = dict(OnlineDetector._COUNTER)

#: symptom counters: pipeline-blockage effects a fault produces on
#: routers *without* a correction mechanism (baseline and comparison
#: kinds) — slower, congestion-mediated observables
_SYMPTOM: Dict[FaultUnit, Tuple[str, ...]] = {
    FaultUnit.RC_PRIMARY: ("rc_blocked_cycles",),
    FaultUnit.VA1_ARBITER_SET: ("va_blocked_cycles", "va_no_free_vc_cycles"),
    FaultUnit.VA2_ARBITER: ("va_no_free_vc_cycles", "va_blocked_cycles"),
    FaultUnit.SA1_ARBITER: ("sa_blocked_cycles",),
    FaultUnit.SA2_ARBITER: ("sa_blocked_cycles",),
    FaultUnit.XB_MUX: ("unreachable_output_cycles", "sa_blocked_cycles"),
}


def watch_counters(unit: FaultUnit) -> Tuple[str, ...]:
    """Stats counters whose movement counts as detecting ``unit``.

    Correction-circuitry units return ``()``: a fault there is latent
    until a second fault exercises it (Section VIII), so the campaign
    classifies it as undetectable rather than pretending a latency.
    """
    mech = _MECHANISM.get(unit)
    symptom = _SYMPTOM.get(unit, ())
    return ((mech,) + symptom) if mech else symptom


@dataclass
class RecoveryRecord:
    """Lifecycle of one fault event at one router."""

    site: FaultSite
    landed_at: int
    exposed_flits: int = 0
    detected_at: Optional[int] = None
    recovered_at: Optional[int] = None
    healed_at: Optional[int] = None
    stranded_flits: int = 0
    #: no counter observes this unit (correction circuitry: latent)
    latent: bool = False

    @property
    def detection_latency(self) -> Optional[int]:
        if self.detected_at is None:
            return None
        return self.detected_at - self.landed_at

    @property
    def time_to_recover(self) -> Optional[int]:
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.landed_at

    def export(self) -> dict:
        """Plain-dict form (pickles through sweep workers)."""
        return {
            "site": site_token(self.site),
            "unit": self.site.unit.value,
            "router": self.site.router,
            "landed_at": self.landed_at,
            "detected_at": self.detected_at,
            "recovered_at": self.recovered_at,
            "healed_at": self.healed_at,
            "exposed_flits": self.exposed_flits,
            "stranded_flits": self.stranded_flits,
            "latent": self.latent,
        }


@dataclass
class _Watch:
    record: RecoveryRecord
    router: "BaseRouter"
    counters: Tuple[str, ...]
    baselines: Tuple[int, ...]
    traversed0: int = 0


@dataclass
class RecoveryMonitor:
    """Collects :class:`RecoveryRecord` streams for one simulation run."""

    records: List[RecoveryRecord] = field(default_factory=list)
    heals_applied: int = 0
    _open: List[_Watch] = field(default_factory=list)
    #: simulator fast-path gate: poll only while a watch is open
    open_watches: int = 0

    # -- BaseRouter ``recovery`` probe hooks -----------------------------
    def fault_landed(self, router: "BaseRouter", site: FaultSite, cycle: int) -> None:
        counters = watch_counters(site.unit)
        stats = router.stats
        rec = RecoveryRecord(
            site=site,
            landed_at=cycle,
            exposed_flits=router.buffered_flits(),
            latent=not counters,
        )
        self.records.append(rec)
        self._open.append(
            _Watch(
                rec,
                router,
                counters,
                tuple(getattr(stats, c) for c in counters),
                stats.flits_traversed,
            )
        )
        self.open_watches = len(self._open)

    def fault_healed(self, router: "BaseRouter", site: FaultSite, cycle: int) -> None:
        self.heals_applied += 1
        for rec in reversed(self.records):
            if rec.site == site and rec.healed_at is None:
                rec.healed_at = cycle
                break

    # -- per-cycle polling (stepped cycles only; counters are frozen
    # while idle, so the event-driven skip-ahead cannot miss an edge) ----
    def poll(self, cycle: int) -> None:
        still_open: List[_Watch] = []
        for w in self._open:
            stats = w.router.stats
            rec = w.record
            if rec.detected_at is None and w.counters:
                for name, base in zip(w.counters, w.baselines):
                    if getattr(stats, name) > base:
                        rec.detected_at = cycle
                        break
            if rec.recovered_at is None:
                if stats.flits_traversed > w.traversed0:
                    rec.recovered_at = cycle
            resolved = rec.recovered_at is not None and (
                rec.detected_at is not None or not w.counters
            )
            if not resolved:
                still_open.append(w)
        self._open = still_open
        self.open_watches = len(still_open)

    # -- end of run ------------------------------------------------------
    def finalize(self, cycle: int, stats: Optional[Any] = None) -> None:
        """Record stranded flits for unresolved watches; fold aggregates.

        ``stats`` is the run's :class:`~repro.network.stats.NetworkStats`;
        when given, the campaign counters are accumulated onto it so the
        observability layer harvests them like any other network counter.
        """
        for w in self._open:
            if w.record.recovered_at is None:
                w.record.stranded_flits = w.router.buffered_flits()
        self._open = []
        self.open_watches = 0
        if stats is not None:
            for rec in self.records:
                stats.fault_events += 1
                if rec.healed_at is not None:
                    stats.faults_healed += 1
                if rec.detected_at is not None:
                    stats.faults_detected += 1
                    stats.detection_latency_sum += rec.detected_at - rec.landed_at
                if rec.recovered_at is not None:
                    stats.faults_recovered += 1
                    stats.recovery_latency_sum += rec.recovered_at - rec.landed_at
                stats.exposed_flits += rec.exposed_flits
                stats.stranded_flits += rec.stranded_flits

    def summary(self) -> dict:
        """Picklable per-run recovery summary (``SimulationResult.recovery``)."""
        n = len(self.records)
        detected = [r for r in self.records if r.detected_at is not None]
        recovered = [r for r in self.records if r.recovered_at is not None]
        det_lat = [r.detection_latency for r in detected]
        rec_lat = [r.time_to_recover for r in recovered]
        return {
            "events": n,
            "detected": len(detected),
            "recovered": len(recovered),
            "healed": sum(1 for r in self.records if r.healed_at is not None),
            "latent": sum(1 for r in self.records if r.latent),
            "unrecovered": n - len(recovered),
            "mean_detection_latency": (
                sum(det_lat) / len(det_lat) if det_lat else None
            ),
            "mean_time_to_recover": (
                sum(rec_lat) / len(rec_lat) if rec_lat else None
            ),
            "max_time_to_recover": max(rec_lat, default=None),
            "exposed_flits": sum(r.exposed_flits for r in self.records),
            "stranded_flits": sum(r.stranded_flits for r in self.records),
            "records": [r.export() for r in self.records],
        }
