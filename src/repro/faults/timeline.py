"""Arrival-time-stamped fault timelines drawn from the FIT/MTTF models.

The paper evaluates reliability with faults fixed before cycle 0; a
*timeline* instead delivers permanent and transient fault events at
FIT-derived arrival times **while traffic is live**, so a run measures
the temporal story: detection latency, time-to-recover, packets in
flight during reconfiguration.

A :class:`FaultTimeline` is a full :class:`repro.faults.schedule.FaultSchedule`
plus the *native heal seam*: it sets ``native_heals = True`` and
implements ``heals_due(cycle)``, and the simulator heals those sites
in-loop (no step wrapper, so the event-driven skip-ahead stays enabled —
``next_cycle()`` reports the earliest pending **event of either kind**,
so a heal can never be jumped over).  It also sets
``wants_recovery_log = True`` so the simulator installs a
:class:`repro.faults.recovery.RecoveryMonitor`, and ``mutates_fabric``
so the batched lane engine declines it (heals need per-object router
state) and the sweep layer falls back to the event engine per point.

Arrival times come from the paper's Section VII FIT inventories:
:func:`fit_mean_interval_cycles` converts the per-router failure rate
into a mean inter-arrival gap in cycles, compressed by an acceleration
factor exactly like the paper compresses its 10-million-cycle means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..config import RouterConfig
from .schedule import (
    TimelineSpec,
    _require_geometry,
    register_schedule,
    schedule_digest,
    site_token,
)
from .sites import FaultSite, enumerate_sites

#: cycles per simulated hour at the canonical 1 GHz clock
CYCLES_PER_HOUR_1GHZ = 3.6e12


@dataclass(frozen=True)
class TimelineEvent:
    """One timeline entry: a fault lands at ``cycle``.

    Permanent events never heal; transient events heal ``duration``
    cycles after landing.
    """

    cycle: int
    site: FaultSite
    transient: bool = False
    duration: int = 1

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("cycle must be >= 0")
        if self.transient and self.duration < 1:
            raise ValueError("transient duration must be >= 1 cycle")

    @property
    def heal_cycle(self) -> Optional[int]:
        return self.cycle + self.duration if self.transient else None


class FaultTimeline:
    """A sorted stream of timed fault events with native heals."""

    #: the simulator heals ``heals_due`` sites in-loop (no step wrapper)
    native_heals: ClassVar[bool] = True
    #: the simulator installs a RecoveryMonitor for this schedule
    wants_recovery_log: ClassVar[bool] = True
    #: the batched lane engine must decline: heals mutate per-object
    #: router fault state mid-run, which the array model cannot express
    mutates_fabric: ClassVar[bool] = True

    def __init__(self, events: Iterable[TimelineEvent]) -> None:
        items = sorted(events, key=lambda e: e.cycle)
        self._events: List[TimelineEvent] = items
        self._inject_i = 0
        # Merge overlapping transients per site (boolean fault state:
        # heal at the latest heal cycle) and drop heals for sites that a
        # permanent event claims before the heal would land.
        permanent: dict[tuple, int] = {}
        for e in items:
            if not e.transient:
                key = (e.site.router, e.site.unit, e.site.port, e.site.vc)
                permanent.setdefault(key, e.cycle)
        heals: dict[tuple, int] = {}
        sites: dict[tuple, FaultSite] = {}
        for e in items:
            if not e.transient:
                continue
            key = (e.site.router, e.site.unit, e.site.port, e.site.vc)
            heal_at = e.heal_cycle
            assert heal_at is not None
            if key in permanent and permanent[key] <= heal_at:
                continue
            heals[key] = max(heals.get(key, 0), heal_at)
            sites[key] = e.site
        self._heals: List[Tuple[int, tuple]] = sorted(
            ((cycle, key) for key, cycle in heals.items()), key=lambda x: x[0]
        )
        self._heal_i = 0
        self._site_by_key = sites
        self._fingerprint: Optional[str] = None

    # -- FaultSchedule protocol ------------------------------------------
    def events_at(self, cycle: int) -> Iterator[FaultSite]:
        while (
            self._inject_i < len(self._events)
            and self._events[self._inject_i].cycle <= cycle
        ):
            yield self._events[self._inject_i].site
            self._inject_i += 1

    due = events_at

    def next_cycle(self) -> Optional[int]:
        """Earliest pending event of *either* kind (inject or heal).

        Folding heals in is what makes the native seam safe under the
        event-driven loop: the wake armed from this value steps the
        exact heal cycle even when the fabric is idle.
        """
        nxt: Optional[int] = None
        if self._inject_i < len(self._events):
            nxt = self._events[self._inject_i].cycle
        if self._heal_i < len(self._heals):
            heal = self._heals[self._heal_i][0]
            nxt = heal if nxt is None else min(nxt, heal)
        return nxt

    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = schedule_digest(
                "timeline",
                (
                    f"{e.cycle}@{site_token(e.site)}"
                    + (f"~{e.duration}" if e.transient else "")
                    for e in self._events
                ),
            )
        return self._fingerprint

    # -- native heal seam ------------------------------------------------
    def heals_due(self, cycle: int) -> Iterator[FaultSite]:
        while self._heal_i < len(self._heals) and self._heals[self._heal_i][0] <= cycle:
            _, key = self._heals[self._heal_i]
            yield self._site_by_key[key]
            self._heal_i += 1

    @property
    def events(self) -> List[TimelineEvent]:
        """The full planned event list (copy; reporting/tests)."""
        return list(self._events)

    @property
    def remaining_events(self) -> int:
        return len(self._events) - self._inject_i


# ----------------------------------------------------------------------
# FIT-derived arrival model
# ----------------------------------------------------------------------
def fit_mean_interval_cycles(
    config: RouterConfig,
    num_routers: int,
    *,
    cycles_per_hour: float = CYCLES_PER_HOUR_1GHZ,
    acceleration: float = 1.0,
    protected: bool = True,
) -> float:
    """Mean fault inter-arrival gap in cycles from the Section VII FIT model.

    The network-level arrival rate is ``num_routers`` x the per-router
    SOFR (baseline stages, plus the correction circuitry for the
    protected router).  ``acceleration`` compresses simulated time the
    same way the paper's 10-million-cycle mean compresses its FIT-scale
    arrivals — a campaign picks it so a run's horizon sees the intended
    number of events, and the degradation report un-compresses when
    joining back to real hours.
    """
    from ..reliability.stages import (
        RouterGeometry,
        baseline_stages,
        correction_stages,
        total_fit,
    )

    if num_routers < 1:
        raise ValueError("num_routers must be >= 1")
    if acceleration <= 0 or cycles_per_hour <= 0:
        raise ValueError("acceleration and cycles_per_hour must be positive")
    geom = RouterGeometry.from_mesh(
        num_routers, num_ports=config.num_ports, num_vcs=config.num_vcs
    )
    fit = total_fit(baseline_stages(geom))
    if protected:
        fit += total_fit(correction_stages(geom))
    # FIT = failures per 1e9 device-hours -> per-network failures/hour
    rate_per_hour = num_routers * fit / 1e9
    mean_hours = 1.0 / rate_per_hour
    return mean_hours * cycles_per_hour / acceleration


def random_timeline(
    config: RouterConfig,
    num_routers: int,
    *,
    events: int,
    mean_interval: float,
    transient_fraction: float = 0.0,
    transient_duration: int = 64,
    rng: np.random.Generator | int | None = None,
    protected: bool = True,
    avoid_failure: bool = True,
    first_event_at: int = 0,
) -> FaultTimeline:
    """Draw one seeded fault timeline.

    Inter-arrival gaps are exponential with the given mean (a Poisson
    arrival process — the constant-rate limit of the FIT model that
    :func:`fit_mean_interval_cycles` summarizes).  Each event is
    transient with probability ``transient_fraction``.  Sites are drawn
    without replacement; ``avoid_failure=True`` keeps every router
    tolerable were all events permanent (conservative for transients),
    reusing the Section VIII failure predicate.
    """
    if events < 0:
        raise ValueError("events must be >= 0")
    if mean_interval <= 0:
        raise ValueError("mean_interval must be positive")
    if not 0 <= transient_fraction <= 1:
        raise ValueError("transient_fraction must be a probability")
    gen = np.random.default_rng(rng)
    pool: list[FaultSite] = []
    for router in range(num_routers):
        pool.extend(
            enumerate_sites(config, router=router, protected=protected)
        )
    if events > len(pool):
        raise ValueError(
            f"cannot place {events} distinct events over {len(pool)} sites"
        )
    order = gen.permutation(len(pool))
    if avoid_failure:
        from .injector import RandomFaultSchedule

        picked = RandomFaultSchedule._pick_tolerable(
            config, num_routers, pool, order, events
        )
    else:
        picked = [pool[int(i)] for i in order[:events]]
    gaps = gen.exponential(mean_interval, size=events)
    cycles = first_event_at + np.cumsum(gaps).astype(np.int64)
    kinds = gen.random(events) < transient_fraction
    return FaultTimeline(
        TimelineEvent(
            int(c), site, transient=bool(t), duration=transient_duration
        )
        for c, site, t in zip(cycles, picked, kinds)
    )


@register_schedule("timeline", TimelineSpec)
def _build_timeline(
    spec: TimelineSpec,
    *,
    config: Optional[RouterConfig] = None,
    num_routers: Optional[int] = None,
) -> FaultTimeline:
    config, num_routers = _require_geometry("timeline", config, num_routers)
    return random_timeline(
        config,
        num_routers,
        events=spec.events,
        mean_interval=spec.mean_interval,
        transient_fraction=spec.transient_fraction,
        transient_duration=spec.transient_duration,
        rng=spec.seed,
        protected=spec.protected,
        avoid_failure=spec.avoid_failure,
        first_event_at=spec.first_event_at,
    )
