"""Idealised online fault detection (NoCAlert [18] stand-in).

The paper explicitly scopes detection out: "we focus on fault tolerance
and not on fault detection.  We assume that faults can be detected by
using one of the many existing fault detection mechanisms [18]" — and
charges a +3 % area / +1 % power surcharge for it (Section VI-A).

This module provides the behavioural counterpart of that assumption: an
online checker that watches a router's pipeline each cycle, evaluates
NoCAlert-style *functional invariant assertions*, and reports when an
injected fault becomes *observable* (its component mis-serves actual
traffic).  It is used by the detection-latency study and by tests that
confirm tolerated faults are eventually exercised — it is **not** in the
latency-critical simulation path.

Detected events record the detection latency in cycles between injection
and first observation, the distribution NoCAlert-class mechanisms are
evaluated on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .sites import FaultSite, FaultUnit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..router.router import BaseRouter


@dataclass(frozen=True)
class DetectionEvent:
    """One fault's transition from latent to observed."""

    site: FaultSite
    injected_at: int
    detected_at: int

    @property
    def detection_latency(self) -> int:
        return self.detected_at - self.injected_at


@dataclass
class _Watch:
    site: FaultSite
    injected_at: int
    baseline: int  # observation counter value at injection time


class OnlineDetector:
    """Watches one router and timestamps when each fault is first exercised.

    A permanent fault is *observable* the first time its component would
    have served traffic — i.e. when the corresponding fault-tolerance
    mechanism fires (duplicate RC lookup, borrowed arbiter, bypass grant,
    secondary-path crossing) or, for stage-2 faults, when a retry is
    taken.  The detector polls the router's mechanism counters, which is
    exactly the information a NoCAlert-style invariant checker derives
    from its assertion network.
    """

    def __init__(self, router: "BaseRouter") -> None:
        self.router = router
        self._watches: list[_Watch] = []
        self.events: list[DetectionEvent] = []

    # which stats counter observes each faultable unit
    _COUNTER = {
        FaultUnit.RC_PRIMARY: "rc_duplicate_computations",
        FaultUnit.VA1_ARBITER_SET: "va_borrowed_grants",
        FaultUnit.VA2_ARBITER: "va_stage2_fault_retries",
        FaultUnit.SA1_ARBITER: "sa_bypass_grants",
        FaultUnit.SA2_ARBITER: "secondary_path_grants",
        FaultUnit.XB_MUX: "secondary_path_grants",
    }

    def observable(self, site: FaultSite) -> bool:
        """Whether this detector can ever observe the site.

        Correction-circuitry sites (duplicate RC, bypass, secondary path)
        are only exercised once the *primary* resource has also failed;
        they stay latent under a single fault — the classic latent-spare
        detection problem NoCAlert documents.
        """
        return site.unit in self._COUNTER

    def watch(self, site: FaultSite, cycle: int) -> bool:
        """Start watching a just-injected fault.  Returns ``observable``."""
        if not self.observable(site):
            return False
        counter = self._COUNTER[site.unit]
        self._watches.append(
            _Watch(site, cycle, getattr(self.router.stats, counter))
        )
        return True

    def poll(self, cycle: int) -> list[DetectionEvent]:
        """Check all watched faults; returns newly-detected events."""
        new: list[DetectionEvent] = []
        remaining: list[_Watch] = []
        for w in self._watches:
            counter = self._COUNTER[w.site.unit]
            if getattr(self.router.stats, counter) > w.baseline:
                ev = DetectionEvent(w.site, w.injected_at, cycle)
                self.events.append(ev)
                new.append(ev)
            else:
                remaining.append(w)
        self._watches = remaining
        return new

    @property
    def pending(self) -> int:
        """Faults injected but not yet observed (latent)."""
        return len(self._watches)

    def mean_detection_latency(self) -> Optional[float]:
        if not self.events:
            return None
        return sum(e.detection_latency for e in self.events) / len(self.events)


class NetworkDetector:
    """One :class:`OnlineDetector` per router, with fleet-wide polling."""

    def __init__(self, routers: list["BaseRouter"]) -> None:
        self.detectors = [OnlineDetector(r) for r in routers]

    def watch(self, site: FaultSite, cycle: int) -> bool:
        return self.detectors[site.router].watch(site, cycle)

    def poll(self, cycle: int) -> list[DetectionEvent]:
        out: list[DetectionEvent] = []
        for d in self.detectors:
            if d._watches:
                out.extend(d.poll(cycle))
        return out

    @property
    def events(self) -> list[DetectionEvent]:
        return [e for d in self.detectors for e in d.events]

    @property
    def pending(self) -> int:
        return sum(d.pending for d in self.detectors)

    def mean_detection_latency(self) -> Optional[float]:
        events = self.events
        if not events:
            return None
        return sum(e.detection_latency for e in events) / len(events)
