"""Configuration objects shared across the simulator, router, and analyses.

The paper evaluates a 5-input / 5-output router with 4 virtual channels (VCs)
per input port, sitting in an 8x8 mesh that runs dimension-order (XY) routing
(Sections II and VI).  Those values are the defaults here, but every knob is
explicit so that the sensitivity studies (e.g. SPF vs. VC count in Section
VIII-E) are one-field changes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


# Canonical port numbering for a 2D mesh router.  Matches the common
# convention used by GARNET-style simulators: the local (NIC) port first,
# then the four cardinal directions.
PORT_LOCAL = 0
PORT_NORTH = 1
PORT_EAST = 2
PORT_SOUTH = 3
PORT_WEST = 4

PORT_NAMES = ("local", "north", "east", "south", "west")

#: Direction vectors (dx, dy) for each non-local port, with +x pointing east
#: and +y pointing south (row-major node numbering).
PORT_DELTAS = {
    PORT_NORTH: (0, -1),
    PORT_EAST: (1, 0),
    PORT_SOUTH: (0, 1),
    PORT_WEST: (-1, 0),
}

#: The port on the neighbouring router that faces back at us.
OPPOSITE_PORT = {
    PORT_NORTH: PORT_SOUTH,
    PORT_SOUTH: PORT_NORTH,
    PORT_EAST: PORT_WEST,
    PORT_WEST: PORT_EAST,
}


def port_name(port: int) -> str:
    """Human-readable name for a mesh router port index."""
    if 0 <= port < len(PORT_NAMES):
        return PORT_NAMES[port]
    return f"port{port}"


@dataclass(frozen=True)
class RouterConfig:
    """Static parameters of a single router.

    Attributes
    ----------
    num_ports:
        Number of input ports == number of output ports (``P`` in the paper).
        A mesh router has 5 (local + N/E/S/W); edge routers still instantiate
        all 5 and simply leave the missing links unconnected.
    num_vcs:
        Virtual channels per input port (``V``; paper uses 4).
    buffer_depth:
        Flit slots per VC (paper Figure 3d shows 4-deep VCs).
    num_vnets:
        Number of virtual networks.  VCs are partitioned evenly across
        vnets; VA only considers downstream VCs of the packet's vnet.  Two
        vnets (request/reply) model MOESI-style coherence traffic without
        protocol deadlock.
    bypass_rotation_period:
        Cycles between rotations of the SA-stage-1 bypass "default winner"
        VC (Section V-C1 recommends rotating to avoid starvation).
    """

    num_ports: int = 5
    num_vcs: int = 4
    buffer_depth: int = 4
    num_vnets: int = 1
    bypass_rotation_period: int = 8

    def __post_init__(self) -> None:
        if self.num_ports < 2:
            raise ValueError("a router needs at least 2 ports")
        if self.num_vcs < 1:
            raise ValueError("need at least one virtual channel")
        if self.buffer_depth < 1:
            raise ValueError("VC buffers need at least one flit slot")
        if self.num_vnets < 1:
            raise ValueError("need at least one virtual network")
        if self.num_vcs % self.num_vnets != 0:
            raise ValueError(
                f"num_vcs ({self.num_vcs}) must be divisible by "
                f"num_vnets ({self.num_vnets})"
            )
        if self.bypass_rotation_period < 1:
            raise ValueError("bypass rotation period must be >= 1")

    @property
    def vcs_per_vnet(self) -> int:
        """Number of VCs available to each virtual network."""
        return self.num_vcs // self.num_vnets

    def vnet_of_vc(self, vc: int) -> int:
        """Virtual network that VC index ``vc`` belongs to."""
        return vc // self.vcs_per_vnet

    def vcs_of_vnet(self, vnet: int) -> range:
        """VC indices belonging to virtual network ``vnet``."""
        base = vnet * self.vcs_per_vnet
        return range(base, base + self.vcs_per_vnet)


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the mesh/torus fabric.

    The paper's latency study uses an 8x8 mesh (64 cores) with one router
    per core and XY dimension-order routing.
    """

    width: int = 8
    height: int = 8
    topology: str = "mesh"  # "mesh" or "torus"
    link_latency: int = 1
    credit_latency: int = 1
    router: RouterConfig = field(default_factory=RouterConfig)

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("mesh dimensions must be positive")
        if self.topology not in ("mesh", "torus"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.link_latency < 1:
            raise ValueError("link latency must be >= 1 cycle")
        if self.credit_latency < 1:
            raise ValueError("credit latency must be >= 1 cycle")

    @property
    def num_nodes(self) -> int:
        """Total number of routers (== cores) in the fabric."""
        return self.width * self.height

    def node_id(self, x: int, y: int) -> int:
        """Row-major node id of coordinates ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x}, {y}) outside {self.width}x{self.height}")
        return y * self.width + x

    def coords(self, node: int) -> tuple[int, int]:
        """Coordinates ``(x, y)`` of row-major node id ``node``."""
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} outside 0..{self.num_nodes - 1}")
        return node % self.width, node // self.width


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulation run.

    ``warmup_cycles`` packets are excluded from latency statistics; the
    simulator then measures for ``measure_cycles`` and finally drains
    in-flight packets for up to ``drain_cycles``.
    """

    warmup_cycles: int = 1000
    measure_cycles: int = 10000
    drain_cycles: int = 5000
    seed: int = 1
    watchdog_cycles: int = 100000
    """If any packet is older than this many cycles, the simulator flags a
    (likely fault-induced) blockage instead of spinning forever."""

    def __post_init__(self) -> None:
        if self.warmup_cycles < 0 or self.measure_cycles < 1:
            raise ValueError("invalid cycle budget")
        if self.drain_cycles < 0:
            raise ValueError("drain_cycles must be >= 0")
        if self.watchdog_cycles < 1:
            raise ValueError("watchdog_cycles must be >= 1")

    @property
    def total_cycles(self) -> int:
        """Upper bound on simulated cycles (warmup + measure + drain)."""
        return self.warmup_cycles + self.measure_cycles + self.drain_cycles


def replace(cfg, **changes):
    """Dataclass ``replace`` re-export for convenient config tweaking."""
    return dataclasses.replace(cfg, **changes)
