"""RoCo router model (Kim et al., ISCA 2006).

RoCo (Row-Column) decomposes the router into independent row and column
modules with decoupled arbiters and two smaller 2x2-ish crossbars.  Fault
tolerance comes from graceful degradation: a fault in one module leaves
the other module routing its dimension ("a permanent fault in one of the
components does not affect the other component and the router continues to
function in a degraded fashion"); lookahead routing covers RC faults and
VA-stage arbiters can be shared with SA.  It "cannot tolerate faults in
virtual channel allocation and crossbar stages" beyond that degradation.

The paper derives 5.5 faults to cause failure for RoCo and — since the
area overhead is not published (N/A) — bounds its SPF above by 5.5
("the SPF of RoCo is < 5.5").

:class:`RoCoModel` reproduces that accounting and adds a behavioural
row/column degradation model used by tests and the extended analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class RowColumnState:
    """Health of RoCo's two independent halves."""

    row_faults: int = 0
    col_faults: int = 0
    #: faults each half absorbs before dying (lookahead routing + shared
    #: arbiters give each half a small tolerance)
    per_half_tolerance: int = 2

    def hit_row(self) -> None:
        self.row_faults += 1

    def hit_col(self) -> None:
        self.col_faults += 1

    @property
    def row_alive(self) -> bool:
        return self.row_faults <= self.per_half_tolerance

    @property
    def col_alive(self) -> bool:
        return self.col_faults <= self.per_half_tolerance

    @property
    def degraded(self) -> bool:
        """Exactly one half dead: the router still forwards one dimension."""
        return self.row_alive != self.col_alive

    @property
    def failed(self) -> bool:
        """Both halves dead: the router is disconnected."""
        return not self.row_alive and not self.col_alive


@dataclass(frozen=True)
class RoCoModel:
    """Published Table III accounting for RoCo."""

    published_mean_faults: float = 5.5
    area_overhead: Optional[float] = None  # N/A in the paper

    @property
    def published_spf_bound(self) -> float:
        """SPF < mean faults (area overhead > 0 but unpublished)."""
        return self.published_mean_faults

    def spf(self, assumed_overhead: float = 0.0) -> float:
        """SPF under an assumed overhead (0 gives the upper bound)."""
        if assumed_overhead < 0:
            raise ValueError("overhead must be >= 0")
        return self.published_mean_faults / (1.0 + assumed_overhead)

    def monte_carlo_faults_to_failure(
        self,
        trials: int = 5000,
        rng: np.random.Generator | int | None = None,
        per_half_tolerance: int = 2,
    ) -> float:
        """Faults land on row/column halves uniformly until both die."""
        rng = np.random.default_rng(rng)
        counts = np.empty(trials, dtype=np.int64)
        for t in range(trials):
            state = RowColumnState(per_half_tolerance=per_half_tolerance)
            n = 0
            while not state.failed:
                n += 1
                if rng.integers(2) == 0:
                    state.hit_row()
                else:
                    state.hit_col()
            counts[t] = n
        return float(counts.mean())
