"""Comparison fault-tolerant routers: BulletProof, Vicis, RoCo."""

from .bulletproof import BulletProofModel, NMRUnit, SparedComponent
from .ecc_sim import DatapathFaultyRouter, ECCStudyResult, run_ecc_study
from .roco import RoCoModel, RowColumnState
from .roco_router import RoCoRouter, roco_router_factory
from .spf_table import SPFRow, build_spf_table, proposed_router_wins
from .vicis import HammingSECDED, VicisModel, best_port_swap

__all__ = [
    "BulletProofModel",
    "DatapathFaultyRouter",
    "ECCStudyResult",
    "HammingSECDED",
    "run_ecc_study",
    "NMRUnit",
    "RoCoModel",
    "RoCoRouter",
    "RowColumnState",
    "roco_router_factory",
    "SPFRow",
    "SparedComponent",
    "VicisModel",
    "best_port_swap",
    "build_spf_table",
    "proposed_router_wins",
]
