"""End-to-end ECC datapath study (Vicis's mechanism on our fabric).

The paper's proposed router protects the pipeline *control* stages;
Vicis protects the *datapath* with error-correcting codes.  This module
runs the two mechanisms together on the live simulator: flit payloads
carry Hamming-SECDED codewords, routers with injected datapath faults
flip payload bits in transit, and destination NICs decode — counting
clean, corrected, and uncorrectable deliveries.

Datapath (buffer/wire) faults are exactly the class the paper scopes out
("Faults in the other components of a router such as multiplexers and
buffers are studied in [23]"), so this is an *extension* showing how the
two papers' mechanisms compose: control-plane redundancy keeps flits
moving, ECC keeps their contents trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import NetworkConfig, SimulationConfig
from ..core.protected_router import ProtectedRouter
from ..network.simulator import NoCSimulator
from ..router.routing import RoutingFunction
from ..traffic.generator import SyntheticTraffic
from .vicis import HammingSECDED


class DatapathFaultyRouter(ProtectedRouter):
    """Protected router whose datapath can flip payload bits.

    ``datapath_fault_ports`` marks input ports with a stuck-at-ish defect:
    each codeword-carrying flit written into such a port has one
    (randomly positioned) payload bit flipped.  Control-plane behaviour
    is untouched — this models a buffer/wire defect, not a pipeline one.
    """

    kind = "protected+datapath-faults"

    def __init__(self, node, config, routing: RoutingFunction, rng=None):
        super().__init__(node, config, routing)
        self.datapath_fault_ports: set[int] = set()
        self._rng = np.random.default_rng(rng)
        self.bits_flipped = 0

    def receive_flit(self, port, wire_vc, flit, cycle):
        if (
            port in self.datapath_fault_ports
            and isinstance(flit.payload, dict)
            and "codeword" in flit.payload
        ):
            ecc: HammingSECDED = flit.payload["ecc"]
            bit = int(self._rng.integers(ecc.code_bits))
            flit.payload = dict(
                flit.payload, codeword=ecc.corrupt(flit.payload["codeword"], [bit])
            )
            self.bits_flipped += 1
        super().receive_flit(port, wire_vc, flit, cycle)


class _CodewordTraffic:
    """Wraps a traffic source: head flits carry SECDED codewords."""

    def __init__(self, inner, ecc: HammingSECDED, rng) -> None:
        self.inner = inner
        self.ecc = ecc
        self.rng = np.random.default_rng(rng)

    def generate(self, cycle: int):
        for pkt in self.inner.generate(cycle):
            value = int(self.rng.integers(1 << 16))
            pkt.payload = {
                "value": value,
                "codeword": self.ecc.encode(value),
                "ecc": self.ecc,
            }
            yield pkt


@dataclass
class ECCStudyResult:
    """Decode outcomes of every delivered codeword."""

    clean: int = 0
    corrected: int = 0
    uncorrectable: int = 0
    silent_corruptions: int = 0
    bits_flipped: int = 0
    packets_delivered: int = 0

    @property
    def total_codewords(self) -> int:
        return self.clean + self.corrected + self.uncorrectable

    @property
    def protected_fraction(self) -> float:
        """Deliveries whose data arrived intact (clean or corrected)."""
        if self.total_codewords == 0:
            return float("nan")
        return (self.clean + self.corrected) / self.total_codewords


def run_ecc_study(
    width: int = 4,
    height: int = 4,
    faulty_ports_per_router: float = 0.3,
    injection_rate: float = 0.06,
    measure_cycles: int = 3000,
    seed: int = 1,
) -> ECCStudyResult:
    """Simulate a mesh with scattered datapath defects and SECDED payloads.

    ``faulty_ports_per_router`` is the expected number of datapath-faulty
    input ports per router (drawn Bernoulli per port).
    """
    if not 0 <= faulty_ports_per_router <= 5:
        raise ValueError("expected faulty ports per router must be in [0, 5]")
    net = NetworkConfig(width=width, height=height)
    ecc = HammingSECDED(data_bits=16)
    rng = np.random.default_rng(seed)
    result = ECCStudyResult()

    routers: list[DatapathFaultyRouter] = []

    def factory(node, routing):
        r = DatapathFaultyRouter(node, net.router, routing, rng=seed + node)
        for port in range(net.router.num_ports):
            if rng.random() < faulty_ports_per_router / net.router.num_ports:
                r.datapath_fault_ports.add(port)
        routers.append(r)
        return r

    def on_eject(flit, cycle):
        if not (isinstance(flit.payload, dict) and "codeword" in flit.payload):
            return
        data, status = ecc.decode(flit.payload["codeword"])
        if status == "ok":
            result.clean += 1
        elif status == "corrected":
            result.corrected += 1
        else:
            result.uncorrectable += 1
        if status != "uncorrectable" and data != flit.payload["value"]:
            result.silent_corruptions += 1

    traffic = _CodewordTraffic(
        SyntheticTraffic(net, injection_rate=injection_rate, rng=seed),
        ecc,
        rng=seed + 99,
    )
    sim = NoCSimulator(
        net,
        SimulationConfig(
            warmup_cycles=200,
            measure_cycles=measure_cycles,
            drain_cycles=5000,
            seed=seed,
        ),
        traffic,
        router_factory=factory,
        on_eject=on_eject,
    )
    run = sim.run()
    result.packets_delivered = run.stats.packets_ejected
    result.bits_flipped = sum(r.bits_flipped for r in routers)
    return result
