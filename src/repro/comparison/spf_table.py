"""Table III assembly: SPF comparison of all four architectures.

=================  =====  =======================  ====
Architecture       Area   # faults to failure      SPF
=================  =====  =======================  ====
BulletProof        52 %   3.15                     2.07
Vicis              42 %   9.3                      6.55
RoCo               N/A    5.5                      <5.5
Proposed router    31 %   15                       11.4
=================  =====  =======================  ====

The proposed-router row is *computed* (Section VIII accounting over our
failure predicates + the synthesis proxy's area overhead); the three
comparison rows use each design's published constants, as the paper
itself does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import RouterConfig
from ..reliability.spf import SPFResult, analyze_spf
from ..synthesis.area import area_overhead
from .bulletproof import BulletProofModel
from .roco import RoCoModel
from .vicis import VicisModel


@dataclass(frozen=True)
class SPFRow:
    """One Table III row."""

    architecture: str
    area_overhead: Optional[float]  # None == N/A
    mean_faults_to_failure: float
    spf: float
    spf_is_upper_bound: bool = False

    def format(self) -> str:
        area = "N/A" if self.area_overhead is None else f"{self.area_overhead:.0%}"
        spf = f"<{self.spf:.1f}" if self.spf_is_upper_bound else f"{self.spf:.2f}"
        return (
            f"{self.architecture:<16} {area:>6} "
            f"{self.mean_faults_to_failure:>8.2f} {spf:>8}"
        )


def build_spf_table(
    config: RouterConfig | None = None,
    proposed_area_overhead: Optional[float] = None,
) -> list[SPFRow]:
    """Assemble Table III.  The proposed router's area overhead defaults to
    the synthesis proxy's figure (paper: 31 %)."""
    config = config or RouterConfig()
    if proposed_area_overhead is None:
        from ..reliability.stages import RouterGeometry

        geom = RouterGeometry(
            num_ports=config.num_ports, num_vcs=config.num_vcs
        )
        proposed_area_overhead = area_overhead(geom, with_detection=True)

    bp = BulletProofModel()
    vicis = VicisModel()
    roco = RoCoModel()
    proposed: SPFResult = analyze_spf(proposed_area_overhead, config)

    return [
        SPFRow(
            "BulletProof",
            bp.area_overhead,
            bp.published_mean_faults,
            bp.published_spf,
        ),
        SPFRow(
            "Vicis",
            vicis.area_overhead,
            vicis.published_mean_faults,
            vicis.published_spf,
        ),
        SPFRow(
            "RoCo",
            None,
            roco.published_mean_faults,
            roco.published_spf_bound,
            spf_is_upper_bound=True,
        ),
        SPFRow(
            "Proposed Router",
            proposed.area_overhead,
            proposed.mean_faults_to_failure,
            proposed.spf,
        ),
    ]


def proposed_router_wins(rows: list[SPFRow]) -> bool:
    """The paper's claim: the proposed router has the highest SPF."""
    proposed = next(r for r in rows if r.architecture == "Proposed Router")
    others = [r for r in rows if r is not proposed]
    return all(proposed.spf > r.spf for r in others)
