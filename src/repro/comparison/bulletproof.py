"""BulletProof router model (Constantinides et al., HPCA 2006).

BulletProof achieves defect tolerance through N-modular redundancy (NMR)
and component-level sparing.  This module provides:

* :class:`NMRUnit` — a working N-modular-redundancy voter: N replicas
  compute, the majority wins; tolerates ``floor((N-1)/2)`` faulty
  replicas.  Used directly (it is a real mechanism, exercised by tests)
  and by the reliability model.
* :class:`SparedComponent` — component-level sparing: ``spares`` cold
  spares behind one unit; fails after ``spares + 1`` faults.
* :class:`BulletProofModel` — the switch-level reliability model used for
  the paper's Table III comparison.  The paper compares against the
  BulletProof design point with similar area overhead to the proposed
  router ("We choose a design that incurs approximately the same area
  overhead"), whose published figures are **52 % area overhead** and a
  **mean of 3.15 faults to cause failure**, hence SPF 3.15/1.52 = 2.07.

The model decomposes the switch into spared component groups and derives
min/mean/max faults-to-failure both analytically and by Monte-Carlo draw,
calibrated to the published design point.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np


class NMRUnit:
    """N-modular redundancy with a majority voter.

    ``compute(inputs)`` runs the replicated function on each healthy
    replica and returns the majority output; replicas marked faulty
    produce corrupted values.  ``failed`` is True when a majority can no
    longer be guaranteed.
    """

    def __init__(self, func, n: int = 3) -> None:
        if n < 1 or n % 2 == 0:
            raise ValueError("NMR needs an odd number of replicas >= 1")
        self.func = func
        self.n = n
        self.faulty = [False] * n

    def mark_faulty(self, replica: int) -> None:
        self.faulty[replica] = True

    @property
    def faults(self) -> int:
        return sum(self.faulty)

    @property
    def tolerable_faults(self) -> int:
        """Replica faults tolerated: floor((N-1)/2)."""
        return (self.n - 1) // 2

    @property
    def failed(self) -> bool:
        return self.faults > self.tolerable_faults

    def compute(self, *args):
        """Majority-vote output; raises if voting cannot produce one."""
        outputs = []
        for i in range(self.n):
            value = self.func(*args)
            if self.faulty[i]:
                value = ("corrupt", i, value)  # a distinguishable wrong value
            outputs.append(value)
        counts = Counter(outputs)
        winner, votes = counts.most_common(1)[0]
        if votes <= self.n // 2:
            raise RuntimeError("NMR voter: no majority (unit failed)")
        return winner


class SparedComponent:
    """A unit with ``spares`` cold spares; the (spares+1)-th fault kills it."""

    def __init__(self, name: str, spares: int = 1) -> None:
        if spares < 0:
            raise ValueError("spares must be >= 0")
        self.name = name
        self.spares = spares
        self.faults = 0

    def hit(self) -> None:
        self.faults += 1

    @property
    def failed(self) -> bool:
        return self.faults > self.spares


@dataclass(frozen=True)
class BulletProofModel:
    """Reliability model of the area-comparable BulletProof design point.

    ``groups`` lists (name, instances, spares-per-instance): the switch
    fails when any instance exhausts its spares.  The default structure —
    four port-datapath groups and the allocator/voter core, each protected
    by a single component-level spare — approximates the published
    (3.15 faults, 52 % area) design point: min 2 faults (a unit and its
    spare), max 1 + sum(spares) = 6, and
    :meth:`monte_carlo_faults_to_failure` lands near the published mean
    from their fault-injection campaign.
    """

    area_overhead: float = 0.52
    published_mean_faults: float = 3.15
    groups: tuple[tuple[str, int, int], ...] = (
        ("port datapath", 4, 1),
        ("allocator core", 1, 1),
    )

    @property
    def published_spf(self) -> float:
        return self.published_mean_faults / (1.0 + self.area_overhead)

    # ------------------------------------------------------------------
    def site_spares(self) -> list[int]:
        """Flat list of spares per faultable instance."""
        out = []
        for _, instances, spares in self.groups:
            out.extend([spares] * instances)
        return out

    def min_faults_to_failure(self) -> int:
        return min(s + 1 for s in self.site_spares())

    def max_faults_to_failure(self) -> int:
        """Every instance loaded to its spare limit, plus one more."""
        return sum(s for s in self.site_spares()) + 1

    def monte_carlo_faults_to_failure(
        self,
        trials: int = 5000,
        rng: np.random.Generator | int | None = None,
    ) -> float:
        """Random faults land uniformly on instances until one fails."""
        rng = np.random.default_rng(rng)
        spares = self.site_spares()
        k = len(spares)
        counts = np.empty(trials, dtype=np.int64)
        for t in range(trials):
            hits = [0] * k
            n = 0
            while True:
                i = int(rng.integers(k))
                hits[i] += 1
                n += 1
                if hits[i] > spares[i]:
                    break
            counts[t] = n
        return float(counts.mean())

    def spf(self, mean_faults: float | None = None) -> float:
        mean = (
            self.published_mean_faults if mean_faults is None else mean_faults
        )
        return mean / (1.0 + self.area_overhead)
