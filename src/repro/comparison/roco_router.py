"""Behavioural RoCo router for the live simulator.

RoCo (Kim et al., ISCA 2006) decomposes the router into independent
*row* (east/west) and *column* (north/south) modules with decoupled
arbiters and two small crossbars.  Its fault story is graceful
degradation: "a permanent fault in one of the components does not affect
the other component and the router continues to function in a degraded
fashion with the fault-free component".

:class:`RoCoRouter` models that degradation on our pipeline substrate:

* every pipeline fault site is charged to the module that owns its port
  (east/west -> row, north/south -> column; local-port faults are
  charged to the less-damaged module, as RoCo's local injection/ejection
  has entry points in both);
* each module absorbs a small number of faults (lookahead routing covers
  RC, VA arbiters can be shared with SA — the mechanisms the RoCo paper
  describes), then *dies*: its input ports stop accepting routing and
  its output ports become unreachable;
* the router keeps forwarding through the surviving module — the
  degraded mode the comparison is about.  (Full turn-path modelling of
  the row->column internal queue is beyond this behavioural level and is
  documented as out of scope; the degradation semantics, which the SPF
  comparison rests on, are what this class reproduces.)

With a dead row module, XY traffic needing east/west through the router
strands while north/south traffic flows — visible in simulation — and
west-first adaptive routing can detour part of the stranded traffic.
"""

from __future__ import annotations

from typing import Optional

from ..config import (
    NetworkConfig,
    PORT_EAST,
    PORT_LOCAL,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_WEST,
)
from ..router.crossbar import Crossbar, PathPlan
from ..router.router import BaseRouter, RCUnit
from ..router.routing import RoutingFunction

ROW_PORTS = frozenset({PORT_EAST, PORT_WEST})
COL_PORTS = frozenset({PORT_NORTH, PORT_SOUTH})

#: faults each module absorbs before dying (matches the RoCoModel default)
DEFAULT_MODULE_TOLERANCE = 2


class RoCoCrossbar(Crossbar):
    """Row/column split crossbar: outputs of a dead module are unreachable."""

    def __init__(self, num_ports: int, faults, router: "RoCoRouter") -> None:
        super().__init__(num_ports, faults)
        self._router = router

    def _compute_plan(self, dest: int) -> Optional[PathPlan]:
        if self._router.module_of_port_failed(dest):
            return None
        return super()._compute_plan(dest)


class _RoCoRCUnit(RCUnit):
    """RC with RoCo's lookahead cover: a dead module blocks its inputs."""

    def compute(self, in_port: int, flit):
        router: RoCoRouter = self.router
        if router.module_of_port_failed(in_port):
            return None
        # lookahead routing covers a plain RC-unit fault (RoCo's RC story),
        # so rc_primary faults are absorbed by the module fault counter
        # instead of blocking here
        return self.select_route(flit)


class RoCoRouter(BaseRouter):
    """Row/column decomposed router with graceful degradation."""

    kind = "roco"

    def __init__(
        self,
        node: int,
        config,
        routing: RoutingFunction,
        module_tolerance: int = DEFAULT_MODULE_TOLERANCE,
    ) -> None:
        if config.num_ports != 5:
            raise ValueError("the RoCo model is defined for 5-port mesh routers")
        if module_tolerance < 0:
            raise ValueError("module tolerance must be >= 0")
        self.module_tolerance = module_tolerance
        self.row_faults = 0
        self.col_faults = 0
        super().__init__(node, config, routing)

    # ------------------------------------------------------------------
    def _make_crossbar(self) -> Crossbar:
        return RoCoCrossbar(self.config.num_ports, self.faults, self)

    def _make_rc_unit(self) -> RCUnit:
        return _RoCoRCUnit(self)

    # ------------------------------------------------------------------
    # module bookkeeping
    # ------------------------------------------------------------------
    @property
    def row_failed(self) -> bool:
        return self.row_faults > self.module_tolerance

    @property
    def col_failed(self) -> bool:
        return self.col_faults > self.module_tolerance

    @property
    def failed(self) -> bool:
        """Both modules dead: the router forwards nothing (RoCo failure)."""
        return self.row_failed and self.col_failed

    @property
    def degraded(self) -> bool:
        return self.row_failed != self.col_failed

    def module_of_port(self, port: int) -> str:
        if port in ROW_PORTS:
            return "row"
        if port in COL_PORTS:
            return "col"
        # local: served by whichever module is healthier
        return "row" if self.row_faults <= self.col_faults else "col"

    def module_of_port_failed(self, port: int) -> bool:
        if port == PORT_LOCAL:
            return self.row_failed and self.col_failed
        return self.row_failed if port in ROW_PORTS else self.col_failed

    # ------------------------------------------------------------------
    # fault handling: every site is charged to its module
    # ------------------------------------------------------------------
    def inject_fault(self, site) -> bool:
        changed = self.faults.inject(site)
        if changed:
            if self.module_of_port(site.port) == "row":
                self.row_faults += 1
            else:
                self.col_faults += 1
            # module state may have flipped: paths must be re-planned;
            # the raw fault sets are cleared so intra-module mechanisms
            # (which RoCo does not have) never mask the module model
            self._neutralise_site_sets()
            self.crossbar.notify_fault_change()
        return changed

    def _neutralise_site_sets(self) -> None:
        """RoCo has no per-site tolerance mechanisms of our protected
        router; its behaviour is entirely the module counters.  Clearing
        the per-site sets keeps the shared pipeline units fault-free so
        only module death changes behaviour."""
        history = self.faults.history[:]
        self.faults.clear()
        self.faults.history.extend(history)

    def fail_module(self, module: str) -> None:
        """Directly kill a module (tests/benches)."""
        if module == "row":
            self.row_faults = self.module_tolerance + 1
        elif module == "col":
            self.col_faults = self.module_tolerance + 1
        else:
            raise ValueError("module must be 'row' or 'col'")
        self.crossbar.notify_fault_change()


def roco_router_factory(config: NetworkConfig, module_tolerance: int = DEFAULT_MODULE_TOLERANCE):
    """Router factory for :class:`repro.network.NoCSimulator`."""

    def make(node: int, routing: RoutingFunction) -> RoCoRouter:
        return RoCoRouter(node, config.router, routing, module_tolerance)

    # structural-identity marker: lets the warm pool and the lane-sweep
    # factory registry treat RoCo fabrics as a distinct, poolable kind
    make.router_kind = "roco"
    return make
