"""Vicis router model (Fick et al., DAC 2009).

Vicis tolerates faults with: ECC on the datapath, a crossbar bypass bus,
input-port swapping, and network-level adaptive rerouting.  This module
implements the *mechanisms* (they are real, tested code) and a reliability
model for the Table III comparison:

* :class:`HammingSECDED` — a working Hamming(38,32) single-error-correct /
  double-error-detect codec, the ECC Vicis places on its datapath.
* :func:`best_port_swap` — Vicis's port-swapping step as a maximum
  bipartite matching (healthy physical ports onto required directions),
  solved with :mod:`networkx`.
* :class:`VicisModel` — published comparison constants: **42 % area
  overhead**, **9.3 mean faults to failure** (their fault-injection
  result), SPF 9.3/1.42 = 6.55.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import networkx as nx
import numpy as np


class HammingSECDED:
    """Hamming single-error-correcting, double-error-detecting code.

    For ``data_bits`` payload bits the codec uses ``r`` parity bits with
    ``2**r >= data_bits + r + 1`` plus one overall parity bit (SECDED).
    Words are handled as Python ints.
    """

    def __init__(self, data_bits: int = 32) -> None:
        if data_bits < 1:
            raise ValueError("need at least one data bit")
        self.data_bits = data_bits
        r = 0
        while (1 << r) < data_bits + r + 1:
            r += 1
        self.parity_bits = r
        self.code_bits = data_bits + r + 1  # +1 overall parity

    # -- bit layout: positions 1..n (1-based, Hamming convention); powers
    #    of two hold parity, the rest hold data; overall parity is bit 0.
    def _data_positions(self) -> list[int]:
        n = self.data_bits + self.parity_bits
        return [p for p in range(1, n + 1) if p & (p - 1) != 0]

    def encode(self, data: int) -> int:
        """Return the codeword for ``data`` (raises on overflow)."""
        if data < 0 or data >= (1 << self.data_bits):
            raise ValueError(f"data does not fit in {self.data_bits} bits")
        n = self.data_bits + self.parity_bits
        word = [0] * (n + 1)  # index 1..n
        for pos, i in zip(self._data_positions(), range(self.data_bits)):
            word[pos] = (data >> i) & 1
        for r in range(self.parity_bits):
            p = 1 << r
            parity = 0
            for pos in range(1, n + 1):
                if pos & p and pos != p:
                    parity ^= word[pos]
            word[p] = parity
        code = 0
        for pos in range(1, n + 1):
            code |= word[pos] << pos
        overall = bin(code).count("1") & 1
        return code | overall  # bit 0 = overall parity

    def decode(self, code: int) -> tuple[int, str]:
        """Decode a codeword.

        Returns ``(data, status)`` where status is "ok", "corrected", or
        "uncorrectable" (double error detected; data is best-effort).
        """
        n = self.data_bits + self.parity_bits
        word = [(code >> pos) & 1 for pos in range(n + 1)]
        syndrome = 0
        for r in range(self.parity_bits):
            p = 1 << r
            parity = 0
            for pos in range(1, n + 1):
                if pos & p:
                    parity ^= word[pos]
            if parity:
                syndrome |= p
        overall = bin(code).count("1") & 1
        status = "ok"
        if syndrome and overall:
            # single error at position `syndrome` (could be a parity bit)
            if syndrome <= n:
                word[syndrome] ^= 1
            status = "corrected"
        elif syndrome and not overall:
            status = "uncorrectable"
        elif not syndrome and overall:
            # error in the overall parity bit itself
            status = "corrected"
        data = 0
        for pos, i in zip(self._data_positions(), range(self.data_bits)):
            data |= word[pos] << i
        return data, status

    def corrupt(self, code: int, bit_positions: Sequence[int]) -> int:
        """Flip codeword bits (0 = overall parity, 1..n = Hamming bits)."""
        for b in bit_positions:
            if b < 0 or b > self.data_bits + self.parity_bits:
                raise ValueError(f"bit {b} outside the codeword")
            code ^= 1 << b
        return code


def best_port_swap(
    healthy_ports: Sequence[int], required_directions: Sequence[int]
) -> Optional[dict[int, int]]:
    """Vicis port swapping: map healthy physical ports onto directions.

    Returns a direction -> physical-port assignment covering every
    required direction, or ``None`` when there are not enough healthy
    ports.  Any healthy port can serve any direction (the swap network is
    a full crossbar in Vicis); maximum bipartite matching keeps the
    formulation general for partial swap networks.
    """
    g = nx.Graph()
    dirs = [("d", d) for d in required_directions]
    ports = [("p", p) for p in healthy_ports]
    g.add_nodes_from(dirs, bipartite=0)
    g.add_nodes_from(ports, bipartite=1)
    for d in required_directions:
        for p in healthy_ports:
            g.add_edge(("d", d), ("p", p))
    if not dirs:
        return {}
    matching = nx.bipartite.maximum_matching(g, top_nodes=dirs)
    assignment = {}
    for d in required_directions:
        partner = matching.get(("d", d))
        if partner is None:
            return None
        assignment[d] = partner[1]
    return assignment


@dataclass(frozen=True)
class VicisModel:
    """Published Table III constants for Vicis.

    The ECC/bypass/port-swap mechanisms let Vicis absorb many faults in a
    degraded mode; the published fault-injection study reports failure
    after 9.3 faults on average at a 42 % area overhead.
    """

    area_overhead: float = 0.42
    published_mean_faults: float = 9.3

    @property
    def published_spf(self) -> float:
        return self.published_mean_faults / (1.0 + self.area_overhead)

    def spf(self, mean_faults: float | None = None) -> float:
        mean = (
            self.published_mean_faults if mean_faults is None else mean_faults
        )
        return mean / (1.0 + self.area_overhead)

    def monte_carlo_faults_to_failure(
        self,
        trials: int = 5000,
        rng: np.random.Generator | int | None = None,
        num_ports: int = 5,
        ecc_tolerance: int = 6,
    ) -> float:
        """Coarse behavioural MC: faults land on {datapath, crossbar,
        ports}; ECC absorbs single datapath faults per lane, the bypass
        bus absorbs crossbar faults, port swapping survives until too few
        healthy ports remain."""
        rng = np.random.default_rng(rng)
        counts = np.empty(trials, dtype=np.int64)
        for t in range(trials):
            datapath_hits = 0
            crossbar_hits = 0
            dead_ports: set[int] = set()
            n = 0
            while True:
                n += 1
                kind = rng.integers(3)
                if kind == 0:
                    datapath_hits += 1
                    if datapath_hits > ecc_tolerance:
                        break
                elif kind == 1:
                    crossbar_hits += 1
                    if crossbar_hits > 1:  # bypass bus is a single spare path
                        break
                else:
                    dead_ports.add(int(rng.integers(num_ports)))
                    if len(dead_ports) > num_ports - 2:
                        break
            counts[t] = n
        return float(counts.mean())
