"""Flits and packets — the units of data movement in the NoC.

Section II-A of the paper: "data traverses in the NoC in the form of flits
(flow control information units).  Typically, a packet is segmented into a
head flit, single or multiple body flits and a tail flit.  Head flit
allocates router resources to the packet, body flit(s) contain the payload
of the packet and tail flit frees the router resources allocated to the
packet."

A single-flit packet is represented by a flit that is simultaneously head
and tail (``FlitType.HEAD_TAIL``), matching how one-flit control messages
behave in GARNET.
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterator, Optional


class FlitType(enum.IntEnum):
    """Position of a flit within its packet."""

    HEAD = 0
    BODY = 1
    TAIL = 2
    HEAD_TAIL = 3

    @property
    def is_head(self) -> bool:
        """True for the flit that allocates router resources (RC/VA)."""
        return self in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        """True for the flit that frees router resources."""
        return self in (FlitType.TAIL, FlitType.HEAD_TAIL)


_packet_ids = itertools.count()


def reset_packet_ids() -> None:
    """Restart the global packet id counter (test isolation helper)."""
    global _packet_ids
    _packet_ids = itertools.count()


class Flit:
    """One flow-control unit.

    Mutable per-hop fields (set by the pipeline) live on the flit so that
    downstream stages and the statistics module can observe them.
    """

    __slots__ = (
        "ftype",
        "is_head",
        "is_tail",
        "packet_id",
        "src",
        "dest",
        "vnet",
        "flit_index",
        "packet_len",
        "payload",
        "creation_cycle",
        "injection_cycle",
        "ejection_cycle",
        "hops",
    )

    def __init__(
        self,
        ftype: FlitType,
        packet_id: int,
        src: int,
        dest: int,
        vnet: int = 0,
        flit_index: int = 0,
        packet_len: int = 1,
        payload: object = None,
        creation_cycle: int = 0,
    ) -> None:
        self.ftype = ftype
        #: head/tail role, precomputed — the pipeline tests these on every
        #: buffer write and switch traversal, and ``ftype`` never changes
        #: after construction
        self.is_head: bool = ftype is FlitType.HEAD or ftype is FlitType.HEAD_TAIL
        self.is_tail: bool = ftype is FlitType.TAIL or ftype is FlitType.HEAD_TAIL
        self.packet_id = packet_id
        self.src = src
        self.dest = dest
        self.vnet = vnet
        self.flit_index = flit_index
        self.packet_len = packet_len
        self.payload = payload
        self.creation_cycle = creation_cycle
        #: cycle the flit entered the network (left the NIC source queue)
        self.injection_cycle: int = -1
        #: cycle the flit was consumed by the destination NIC
        self.ejection_cycle: int = -1
        #: number of routers traversed so far
        self.hops: int = 0

    @property
    def network_latency(self) -> int:
        """Cycles from injection to ejection (valid after ejection)."""
        if self.ejection_cycle < 0 or self.injection_cycle < 0:
            raise ValueError("flit has not completed its journey")
        return self.ejection_cycle - self.injection_cycle

    @property
    def total_latency(self) -> int:
        """Cycles from packet creation (incl. source queueing) to ejection."""
        if self.ejection_cycle < 0:
            raise ValueError("flit has not completed its journey")
        return self.ejection_cycle - self.creation_cycle

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Flit({self.ftype.name}, pkt={self.packet_id}, "
            f"{self.src}->{self.dest}, idx={self.flit_index}/{self.packet_len})"
        )


class Packet:
    """A message to be segmented into flits.

    ``size_flits`` counts all flits including head and tail.  The paper's
    latency experiments use a coherence-style mix of 1-flit control packets
    and multi-flit data packets; the traffic generators build those.
    """

    __slots__ = (
        "packet_id",
        "src",
        "dest",
        "size_flits",
        "vnet",
        "creation_cycle",
        "payload",
    )

    def __init__(
        self,
        src: int,
        dest: int,
        size_flits: int,
        vnet: int = 0,
        creation_cycle: int = 0,
        payload: object = None,
        packet_id: Optional[int] = None,
    ) -> None:
        if size_flits < 1:
            raise ValueError("packets contain at least one flit")
        if src == dest:
            raise ValueError("source and destination must differ")
        self.packet_id = next(_packet_ids) if packet_id is None else packet_id
        self.src = src
        self.dest = dest
        self.size_flits = size_flits
        self.vnet = vnet
        self.creation_cycle = creation_cycle
        self.payload = payload

    def flits(self) -> Iterator[Flit]:
        """Segment the packet into its flit sequence (head..body..tail)."""
        n = self.size_flits
        for i in range(n):
            if n == 1:
                ftype = FlitType.HEAD_TAIL
            elif i == 0:
                ftype = FlitType.HEAD
            elif i == n - 1:
                ftype = FlitType.TAIL
            else:
                ftype = FlitType.BODY
            yield Flit(
                ftype,
                self.packet_id,
                self.src,
                self.dest,
                vnet=self.vnet,
                flit_index=i,
                packet_len=n,
                payload=self.payload if i == 0 else None,
                creation_cycle=self.creation_cycle,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Packet(id={self.packet_id}, {self.src}->{self.dest}, "
            f"{self.size_flits} flits, vnet={self.vnet})"
        )
