"""The router: 4-stage pipeline driver, credits, and output-side state.

Pipeline (paper Figure 2): a head flit entering at cycle *t* performs
routing computation (RC) at *t+1*, VC allocation (VA) at *t+2*, switch
allocation (SA) at *t+3*, and crossbar traversal (XB) at *t+4*; body and
tail flits use only SA and XB.  The simulator realises this by executing,
each cycle, the phases in reverse pipeline order (XB first, RC last) so a
flit advances exactly one stage per cycle.

The router is built from pluggable units — RC unit, VA unit, SA unit,
crossbar — so that :class:`BaselineRouter` and the protected router
(:class:`repro.core.protected_router.ProtectedRouter`) share this driver
and differ only in the units and the fault-handling hooks.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from ..config import RouterConfig
from ..faults.sites import RouterFaultState
from .allocator import SAGrant, SAUnit, VAUnit
from .arbiter import Arbiter, MatrixArbiter, RoundRobinArbiter
from .crossbar import Crossbar, PathPlan
from .flit import Flit
from .input_port import InputPort
from .routing import RoutingFunction
from .vc import VCState, VirtualChannel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..network.simulator import EventScheduler
    from ..observability import EventTracer


class OutputPort:
    """Output-side state: credits and downstream-VC allocation tracking.

    ``credits[d]`` counts free buffer slots of downstream wire-VC ``d``;
    ``allocated[d]`` holds the packet id that currently owns ``d`` (set by
    VA, cleared when this router forwards the packet's tail — the standard
    reallocation-on-tail policy).
    """

    __slots__ = ("port", "num_vcs", "credits", "allocated", "connected")

    def __init__(self, port: int, num_vcs: int, buffer_depth: int) -> None:
        self.port = port
        self.num_vcs = num_vcs
        self.credits = [buffer_depth] * num_vcs
        self.allocated: list[Optional[int]] = [None] * num_vcs
        #: False on mesh edges where no link exists
        self.connected = False

    def free_vcs(self, vnet_vcs: Iterable[int]) -> list[int]:
        """Downstream VCs of the given vnet not owned by any packet."""
        alloc = self.allocated
        return [d for d in vnet_vcs if alloc[d] is None]

    @property
    def total_credits(self) -> int:
        return sum(self.credits)


class RCUnit:
    """Baseline routing-computation unit: one (unprotected) unit per port.

    A permanent fault in the unit means "the entire pipeline is affected"
    (Section V-A): head flits at that port can no longer be routed and
    block.  ``compute`` returns the output port or ``None`` when blocked.

    With an *adaptive* routing function (e.g. west-first), the unit
    selects among the permitted candidates at routing time: it prefers
    outputs that are reachable through a healthy normal crossbar path,
    then by downstream credit availability — which both balances load and
    routes around outputs whose paths have died (fault-aware routing, an
    extension beyond the paper's XY setup).
    """

    def __init__(self, router: "BaseRouter") -> None:
        self.router = router

    def compute(self, in_port: int, flit: Flit) -> Optional[int]:
        if in_port in self.router.faults.rc_primary:
            return None
        return self.select_route(flit)

    def select_route(self, flit: Flit) -> int:
        """The routing decision proper (fault gating handled by callers)."""
        router = self.router
        row = router.route_row
        if row is not None:
            # non-adaptive routing: the simulator installed this node's
            # row of the precomputed route table
            return row[flit.dest]
        routing = router.routing
        if not routing.adaptive:
            return routing.output_port(router.node, flit.dest)
        cands = routing.candidate_ports(router.node, flit.dest)
        crossbar = router.crossbar
        out_ports = router.out_ports
        best, best_key = None, None
        for c in cands:
            plan = crossbar.plan_path(c)
            if plan is None:
                continue
            credits = sum(out_ports[c].credits)
            key = (not plan.secondary, credits)
            if best_key is None or key > best_key:
                best, best_key = c, key
        if best is None:
            # every candidate unreachable: fall back to the preferred
            # direction; the pipeline will report it blocked
            return cands[0]
        return best


@dataclass
class RouterStats:
    """Per-router event counters (reset with the measurement window)."""

    flits_traversed: int = 0
    buffer_writes: int = 0
    va_grants: int = 0
    sa_grants: int = 0
    va_borrowed_grants: int = 0
    va_stage2_fault_retries: int = 0
    va_blocked_cycles: int = 0
    va_no_free_vc_cycles: int = 0
    va_borrow_wait_cycles: int = 0
    sa_blocked_cycles: int = 0
    sa_bypass_grants: int = 0
    vc_transfers: int = 0
    secondary_path_grants: int = 0
    rc_blocked_cycles: int = 0
    rc_duplicate_computations: int = 0
    unreachable_output_cycles: int = 0

    def reset(self) -> None:
        for f in self.__dataclass_fields__:
            setattr(self, f, 0)


class BaseRouter:
    """Shared pipeline driver; subclasses choose the units."""

    #: marker used by reports ("baseline" / "protected")
    kind = "base"

    def __init__(
        self,
        node: int,
        config: RouterConfig,
        routing: RoutingFunction,
        arbiter_kind: str = "round_robin",
    ) -> None:
        self.node = node
        self.config = config
        self.routing = routing
        self.faults = RouterFaultState(config)
        self.stats = RouterStats()

        P, V, D = config.num_ports, config.num_vcs, config.buffer_depth
        self.in_ports = [InputPort(p, V, D) for p in range(P)]
        self.out_ports = [OutputPort(p, V, D) for p in range(P)]

        self.crossbar = self._make_crossbar()
        self.rc_unit = self._make_rc_unit()
        self.va_unit = self._make_va_unit(arbiter_kind)
        self.sa_unit = self._make_sa_unit(arbiter_kind)

        #: SA winners of the previous cycle, traversing the XB this cycle
        self._xb_queue: list[SAGrant] = []
        #: count of non-idle VCs, used by the simulator to skip idle routers
        self._nonidle = 0
        #: idle→busy transition callback; the simulator installs its
        #: active-router-set ``add`` so a router re-enters the schedule the
        #: moment a flit arrives.  ``None`` for standalone routers (tests).
        self.on_wake: Optional[Callable[[int], None]] = None
        #: this node's row of the shared route table
        #: (``route_row[dest] -> out_port``), installed by the simulator
        #: for non-adaptive routing functions; ``None`` -> compute per flit
        self.route_row: Optional[Sequence[int]] = None
        #: flit-lifecycle tracer (:mod:`repro.observability`); ``None`` —
        #: the default — makes every emission site a single attribute check
        self.tracer: Optional["EventTracer"] = None
        #: per-router recovery probe (:class:`repro.faults.recovery.
        #: RecoveryMonitor`), installed by the simulator for online fault
        #: campaigns; the simulator reports fault land/heal events into it
        #: (``fault_landed``/``fault_healed``) and polls its open watches.
        #: ``None`` — the default — keeps the fault path cost at a single
        #: attribute check.
        self.recovery: Optional[object] = None

    # -- unit factories (overridden by the protected router) ---------------
    def _make_crossbar(self) -> Crossbar:
        return Crossbar(self.config.num_ports, self.faults)

    def _make_rc_unit(self) -> RCUnit:
        return RCUnit(self)

    def _make_va_unit(self, arbiter_kind: str) -> VAUnit:
        return VAUnit(self, arbiter_kind)

    def _make_sa_unit(self, arbiter_kind: str) -> SAUnit:
        return SAUnit(self, arbiter_kind)

    # ----------------------------------------------------------------------
    # fault management
    # ----------------------------------------------------------------------
    def inject_fault(self, site) -> bool:
        """Inject a permanent fault and refresh cached path plans."""
        changed = self.faults.inject(site)
        if changed:
            self._apply_fault_flags()
            self.crossbar.notify_fault_change()
        return changed

    def heal_fault(self, site) -> bool:
        changed = self.faults.heal(site)
        if changed:
            self._apply_fault_flags()
            self.crossbar.notify_fault_change()
        return changed

    def _apply_fault_flags(self) -> None:
        """Mirror the fault sets onto the arbiter objects' ``faulty`` flags.

        The allocators consult :attr:`faults` directly; syncing the flags
        keeps standalone arbiter uses (and tests poking at units) honest.
        """
        cfg = self.config
        for p in range(cfg.num_ports):
            for s in range(cfg.num_vcs):
                fa = (p, s) in self.faults.va1
                for arb in self.va_unit.stage1[p][s]:
                    arb.faulty = fa
                self.va_unit.stage2[p][s].faulty = (p, s) in self.faults.va2
            self.sa_unit.stage1[p].faulty = p in self.faults.sa1
            self.sa_unit.stage2[p].faulty = p in self.faults.sa2

    # ----------------------------------------------------------------------
    # warm reset
    # ----------------------------------------------------------------------
    def reset(self) -> None:
        """Restore power-on state without rebuilding any objects.

        The warm-reset fast path (``docs/performance.md``): clears faults
        (in place — the crossbar and FT units hold the
        :class:`RouterFaultState` by reference), empties every VC, refills
        credits, rewinds arbiter priorities, and zeroes the statistics, so
        the router is bit-identical to a freshly constructed one.  Static
        wiring (``out_ports[*].connected``, ``route_row``, ``on_wake``) is
        deliberately preserved.
        """
        self.faults.clear()
        self._apply_fault_flags()
        self.crossbar.reset()
        depth = self.config.buffer_depth
        for ip in self.in_ports:
            ip.reset()
        for op in self.out_ports:
            for d in range(op.num_vcs):
                op.credits[d] = depth
                op.allocated[d] = None
        self.va_unit.reset()
        self.sa_unit.reset()
        self.stats.reset()
        self._xb_queue.clear()
        self._nonidle = 0
        self.recovery = None

    # ----------------------------------------------------------------------
    # state export / import (snapshot & rollback substrate)
    # ----------------------------------------------------------------------
    @staticmethod
    def _arbiter_state(arb: Arbiter):
        if isinstance(arb, RoundRobinArbiter):
            return arb.priority
        if isinstance(arb, MatrixArbiter):
            return list(arb.order)
        return None

    @staticmethod
    def _restore_arbiter(arb: Arbiter, state) -> None:
        if isinstance(arb, RoundRobinArbiter):
            arb._priority = int(state)
        elif isinstance(arb, MatrixArbiter):
            arb._order = list(state)

    @staticmethod
    def _vc_state(vc: VirtualChannel) -> dict:
        return {
            "wire": vc.index,
            "buffer": [copy.copy(f) for f in vc.buffer],
            "state": vc.state,
            "route": vc.route,
            "out_vc": vc.out_vc,
            "packet_id": vc.packet_id,
            "r2": vc.r2,
            "vf": vc.vf,
            "borrower_id": vc.borrower_id,
            "sp": vc.sp,
            "fsp": vc.fsp,
            "va_retry": vc.va_retry,
            "va_excluded": (
                set(vc.va_excluded) if vc.va_excluded is not None else None
            ),
            "stalled_since": vc.stalled_since,
        }

    @staticmethod
    def _restore_vc(vc: VirtualChannel, st: dict) -> None:
        vc.buffer.clear()
        vc.buffer.extend(copy.copy(f) for f in st["buffer"])
        vc.state = st["state"]
        vc.route = st["route"]
        vc.out_vc = st["out_vc"]
        vc.packet_id = st["packet_id"]
        vc.r2 = st["r2"]
        vc.vf = st["vf"]
        vc.borrower_id = st["borrower_id"]
        vc.sp = st["sp"]
        vc.fsp = st["fsp"]
        vc.va_retry = st["va_retry"]
        vc.va_excluded = (
            set(st["va_excluded"]) if st["va_excluded"] is not None else None
        )
        vc.stalled_since = st["stalled_since"]

    def export_state(self) -> dict:
        """Deep snapshot of all dynamic state, layer by layer.

        The object-graph counterpart of the batched engine's flat arrays:
        everything that evolves during simulation — VC buffers and state
        fields (flits copied, so later pipeline mutation cannot leak into
        the snapshot), the wire→slot indirection, output credits and
        downstream-VC ownership, every arbiter's rotation state, pending
        crossbar grants, the fault sets, and the statistics counters — is
        captured; static wiring (route row, link connectivity, callbacks)
        is not.  Valid at cycle boundaries (between ``rc_phase`` of one
        cycle and ``xb_phase`` of the next); restoring the snapshot with
        :meth:`import_state` resumes the router bit-identically, which is
        the snapshot/rollback substrate checkpointing builds on.
        """
        f = self.faults
        return {
            "in_ports": [
                {
                    "wire_to_phys": list(ip._wire_to_phys),
                    "swaps": ip.swaps,
                    "slots": [self._vc_state(vc) for vc in ip.slots],
                }
                for ip in self.in_ports
            ],
            "out_ports": [
                {"credits": list(op.credits), "allocated": list(op.allocated)}
                for op in self.out_ports
            ],
            "va": {
                "stage1": [
                    [[self._arbiter_state(a) for a in row] for row in per_slot]
                    for per_slot in self.va_unit.stage1
                ],
                "stage2": [
                    [self._arbiter_state(a) for a in per_vc]
                    for per_vc in self.va_unit.stage2
                ],
            },
            "sa": {
                "stage1": [self._arbiter_state(a) for a in self.sa_unit.stage1],
                "stage2": [self._arbiter_state(a) for a in self.sa_unit.stage2],
            },
            "xb_queue": [
                {
                    "in_port": g.in_port,
                    "slot": self.in_ports[g.in_port].slots.index(g.vc),
                    "plan": {
                        "arb_port": g.plan.arb_port,
                        "mux": g.plan.mux,
                        "dest": g.plan.dest,
                        "secondary": g.plan.secondary,
                    },
                }
                for g in self._xb_queue
            ],
            "faults": {
                "rc_primary": set(f.rc_primary),
                "rc_duplicate": set(f.rc_duplicate),
                "va1": set(f.va1),
                "va2": set(f.va2),
                "sa1": set(f.sa1),
                "sa1_bypass": set(f.sa1_bypass),
                "sa2": set(f.sa2),
                "xb_mux": set(f.xb_mux),
                "xb_secondary": set(f.xb_secondary),
                "history": list(f.history),
            },
            "stats": {
                name: getattr(self.stats, name)
                for name in RouterStats.__dataclass_fields__
            },
        }

    def import_state(self, state: dict) -> None:
        """Restore a :meth:`export_state` snapshot onto this router.

        The router must be structurally identical to the exporter (same
        :class:`RouterConfig`, same unit classes, same arbiter kind); the
        snapshot itself is not consumed — the same dict can be imported
        repeatedly (rollback).  Derived state (idle counters, crossbar
        path-plan cache, arbiter fault flags) is recomputed rather than
        copied, so the invariants the pipeline relies on hold by
        construction after the restore.
        """
        # faults first: plan cache and arbiter flags derive from them
        f = self.faults
        fs = state["faults"]
        for name in (
            "rc_primary", "rc_duplicate", "va1", "va2", "sa1",
            "sa1_bypass", "sa2", "xb_mux", "xb_secondary",
        ):
            target = getattr(f, name)
            target.clear()
            target.update(fs[name])
        f.history = list(fs["history"])
        self._apply_fault_flags()
        self.crossbar.notify_fault_change()

        self._nonidle = 0
        for ip, ips in zip(self.in_ports, state["in_ports"]):
            # rebuild the physical-slot order: slot k holds the VC whose
            # wire id the exporter's slot k had
            by_wire = {vc.index: vc for vc in ip.slots}
            ip.slots = [by_wire[s["wire"]] for s in ips["slots"]]
            ip._wire_to_phys = list(ips["wire_to_phys"])
            ip.swaps = ips["swaps"]
            nonidle = 0
            for vc, s in zip(ip.slots, ips["slots"]):
                self._restore_vc(vc, s)
                if vc.state != VCState.IDLE:
                    nonidle += 1
            ip.nonidle = nonidle
            self._nonidle += nonidle
        for op, ops in zip(self.out_ports, state["out_ports"]):
            op.credits = list(ops["credits"])
            op.allocated = list(ops["allocated"])

        va = state["va"]
        for per_slot, per_slot_st in zip(self.va_unit.stage1, va["stage1"]):
            for row, row_st in zip(per_slot, per_slot_st):
                for arb, st in zip(row, row_st):
                    self._restore_arbiter(arb, st)
        for per_vc, per_vc_st in zip(self.va_unit.stage2, va["stage2"]):
            for arb, st in zip(per_vc, per_vc_st):
                self._restore_arbiter(arb, st)
        sa = state["sa"]
        for arb, st in zip(self.sa_unit.stage1, sa["stage1"]):
            self._restore_arbiter(arb, st)
        for arb, st in zip(self.sa_unit.stage2, sa["stage2"]):
            self._restore_arbiter(arb, st)

        self._xb_queue = [
            SAGrant(
                in_port=g["in_port"],
                vc=self.in_ports[g["in_port"]].slots[g["slot"]],
                plan=PathPlan(**g["plan"]),
            )
            for g in state["xb_queue"]
        ]
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)

    # ----------------------------------------------------------------------
    # busy tracking
    # ----------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True when the router has any pipeline work this cycle."""
        return self._nonidle > 0 or bool(self._xb_queue)

    def wake(self) -> None:
        """Force this router into the simulator's active set this cycle.

        Used by out-of-band state changes — today, fault injection — that
        mutate the router without a flit arriving.  The router runs its
        (possibly no-op) pipeline phases on the current cycle exactly as
        the reference full scan would, and is pruned again afterwards if
        it is still idle, so the active-set invariant (active == busy at
        cycle boundaries) is preserved.
        """
        if self.on_wake is not None:
            self.on_wake(self.node)

    # ----------------------------------------------------------------------
    # per-cycle phases (called by the network simulator, in this order)
    # ----------------------------------------------------------------------
    def xb_phase(self, sched: "EventScheduler", cycle: int) -> None:
        """Crossbar traversal: commit last cycle's SA grants."""
        queue = self._xb_queue
        if not queue:
            return
        tracer = self.tracer
        stats = self.stats
        node = self.node
        out_ports = self.out_ports
        in_ports = self.in_ports
        idle = VCState.IDLE
        for grant in queue:
            vc = grant.vc
            plan = grant.plan
            # The flit and bookkeeping captured at SA time are still valid:
            # the VC object is referenced directly and wormhole ordering
            # guarantees its front flit belongs to the granted packet.
            out_vc = vc.out_vc
            dest = plan.dest
            flit = vc.dequeue()
            flit.hops += 1
            stats.flits_traversed += 1
            if tracer is not None:
                tracer.emit(
                    cycle,
                    "xb",
                    node,
                    in_port=grant.in_port,
                    out_port=dest,
                    out_vc=out_vc,
                    packet=flit.packet_id,
                    flit=flit.flit_index,
                    secondary=plan.secondary,
                )
            if vc.state is idle:
                self._nonidle -= 1
                in_ports[grant.in_port].nonidle -= 1
            if flit.is_tail:
                # reallocation-on-tail: free the downstream VC for new VA
                out_ports[dest].allocated[out_vc] = None
            sched.deliver_flit(node, dest, out_vc, flit)
            # the freed input buffer slot becomes a credit upstream
            sched.return_credit(node, grant.in_port, vc.index)
        queue.clear()

    def sa_phase(self, cycle: int) -> None:
        """Switch allocation; winners traverse the crossbar next cycle."""
        if self._nonidle == 0:
            return
        self._xb_queue = self.sa_unit.allocate(cycle)

    def va_phase(self, cycle: int) -> None:
        """Virtual-channel allocation for head flits."""
        if self._nonidle == 0:
            return
        self.va_unit.allocate(cycle)

    def rc_phase(self, cycle: int) -> None:
        """Routing computation for newly arrived head flits."""
        if self._nonidle == 0:
            return
        crossbar = self.crossbar
        rc_compute = self.rc_unit.compute
        stats = self.stats
        tracer = self.tracer
        routing_state = VCState.ROUTING
        for in_port in self.in_ports:
            if in_port.nonidle == 0:
                continue
            for vc in in_port.slots:
                if vc.state is not routing_state:
                    continue
                out = rc_compute(in_port.port, vc.front())
                if out is None:
                    stats.rc_blocked_cycles += 1
                    continue
                plan = crossbar.plan_path(out)
                if plan is None:
                    # output unreachable through any path: the packet is
                    # stuck; the watchdog / failure predicate reports it.
                    stats.unreachable_output_cycles += 1
                    continue
                vc.route = out
                # Section V-D: RC updates the SP/FSP fields when the
                # regular path to the computed output port is unusable.
                vc.sp = plan.arb_port if plan.secondary else None
                vc.fsp = plan.secondary
                vc.state = VCState.WAITING_VA
                if tracer is not None:
                    tracer.emit(
                        cycle,
                        "rc",
                        self.node,
                        in_port=in_port.port,
                        out_port=out,
                        packet=vc.packet_id,
                    )

    # ----------------------------------------------------------------------
    # link-side entry points (called by the simulator)
    # ----------------------------------------------------------------------
    def receive_flit(self, port: int, wire_vc: int, flit: Flit, cycle: int) -> None:
        """Buffer write: a flit arrives from the upstream link (or NIC)."""
        in_port = self.in_ports[port]
        vc = in_port.slots[in_port._wire_to_phys[wire_vc]]
        was_idle = vc.state == VCState.IDLE
        vc.enqueue(flit)
        self.stats.buffer_writes += 1
        if was_idle:
            in_port.nonidle += 1
            self._nonidle += 1
            if self._nonidle == 1 and self.on_wake is not None:
                self.on_wake(self.node)

    def receive_credit(self, out_port: int, wire_vc: int) -> None:
        """A downstream buffer slot was freed."""
        op = self.out_ports[out_port]
        op.credits[wire_vc] += 1
        if op.credits[wire_vc] > self.config.buffer_depth:
            raise AssertionError(
                f"credit overflow on router {self.node} port {out_port} "
                f"vc {wire_vc}: flow-control protocol violated"
            )

    # ----------------------------------------------------------------------
    # diagnostics
    # ----------------------------------------------------------------------
    def buffered_flits(self) -> int:
        """Total flits buffered in all input VCs (drain check)."""
        return sum(p.total_occupancy for p in self.in_ports)

    def pending_grants(self) -> Sequence[SAGrant]:
        return tuple(self._xb_queue)

    def check_invariants(self) -> None:
        """Structural invariants, used by property tests."""
        cfg = self.config
        for in_port in self.in_ports:
            in_port.check_invariants()
        nonidle = 0
        for ip in self.in_ports:
            port_nonidle = sum(1 for vc in ip.slots if vc.state != VCState.IDLE)
            assert port_nonidle == ip.nonidle, (
                f"router {self.node} port {ip.port}: nonidle count "
                f"{ip.nonidle} != actual {port_nonidle}"
            )
            nonidle += port_nonidle
        assert nonidle == self._nonidle, (
            f"router {self.node}: busy count {self._nonidle} != actual {nonidle}"
        )
        for op in self.out_ports:
            for d in range(cfg.num_vcs):
                assert 0 <= op.credits[d] <= cfg.buffer_depth

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(node={self.node})"


class BaselineRouter(BaseRouter):
    """The unprotected generic NoC router of paper Section II.

    Any permanent fault in a pipeline-stage component blocks the affected
    traffic — the paper's baseline reliability model therefore counts *any*
    single fault as router failure (MTTF analysis, Section VII).
    """

    kind = "baseline"
