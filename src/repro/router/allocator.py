"""Two-stage separable virtual-channel and switch allocators.

Paper Figures 3a and 3b.  For a router with ``pi`` input ports, ``po``
output ports and ``v`` VCs per port:

* **VA stage 1** — every input VC owns a set of ``po`` arbiters, each
  ``v:1``: given the RC result, the arbiter for that output port picks one
  free VC at the downstream router.  (5-port, 4-VC router: 100 ``4:1``
  arbiters — exactly the count in the paper's Table I.)
* **VA stage 2** — one ``pi*v : 1`` arbiter per downstream VC resolves
  input VCs that picked the same downstream VC.  (20 ``20:1`` arbiters.)
* **SA stage 1** — one ``v:1`` arbiter per input port picks which VC of the
  port may bid for the switch.  (5 ``4:1`` arbiters.)
* **SA stage 2** — one ``pi:1`` arbiter per output port resolves
  competition for that port's crossbar mux.  (5 ``5:1`` arbiters.)

Both units implement the *baseline* (unprotected) behaviour: a faulty
arbiter simply never grants, which blocks the affected flits exactly as the
paper describes.  The protected router's units
(:mod:`repro.core.ft_va`, :mod:`repro.core.ft_sa`) subclass these and
override the hook methods marked below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .arbiter import make_arbiter
from .crossbar import PathPlan
from .vc import VCState, VirtualChannel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .router import BaseRouter


@dataclass(slots=True)
class VAGrant:
    """Outcome of one successful VC allocation (diagnostics/tests)."""

    in_port: int
    in_slot: int
    out_port: int
    out_vc: int
    packet_id: int
    borrowed_from: Optional[int] = None


@dataclass(slots=True)
class SAGrant:
    """A switch-allocation winner: ``vc``'s front flit crosses next cycle."""

    in_port: int
    vc: VirtualChannel
    plan: PathPlan


class VAUnit:
    """Baseline two-stage separable virtual-channel allocator."""

    def __init__(self, router: "BaseRouter", arbiter_kind: str = "round_robin") -> None:
        self.router = router
        cfg = router.config
        P, V = cfg.num_ports, cfg.num_vcs
        #: stage 1: [input port][physical slot][output port] -> v:1 arbiter
        self.stage1 = [
            [[make_arbiter(V, arbiter_kind) for _ in range(P)] for _ in range(V)]
            for _ in range(P)
        ]
        #: stage 2: [output port][downstream wire VC] -> pi*v:1 arbiter
        self.stage2 = [
            [make_arbiter(P * V, arbiter_kind) for _ in range(V)] for _ in range(P)
        ]
        #: precomputed vnet lookups — ``allocate`` runs per waiting VC per
        #: cycle, so the modular arithmetic of ``vnet_of_vc``/``vcs_of_vnet``
        #: is hoisted out of the hot loop
        self._vnet_of_vc = [cfg.vnet_of_vc(d) for d in range(V)]
        self._vnet_vcs = [list(cfg.vcs_of_vnet(vn)) for vn in range(cfg.num_vnets)]

    def reset(self) -> None:
        """Restore every arbiter's priority state to power-on defaults."""
        for per_slot in self.stage1:
            for per_out in per_slot:
                for arb in per_out:
                    arb.reset()
        for per_vc in self.stage2:
            for arb in per_vc:
                arb.reset()

    # -- hooks the protected router overrides --------------------------------
    def _stage1_arbiters(self, port: int, slot: int):
        """Arbiter set used by the VC in (port, slot), or ``None`` if blocked.

        Baseline: the VC's own set, unless it is faulty.  Returns a tuple
        ``(owner_slot, arbiter_row)`` so the FT override can lend another
        VC's arbiters.
        """
        if (port, slot) in self.router.faults.va1:
            return None
        return slot, self.stage1[port][slot]

    def _on_stage2_fault(self, vc: VirtualChannel, out_port: int, dvc: int) -> None:
        """Called when a stage-2 arbiter is faulty.  Baseline: nothing —
        the flit stays blocked (and the paper's FIT model calls the router
        failed).  The protected unit records an exclusion so the retry
        (+1 cycle, Section V-B3) picks a different downstream VC."""

    # ------------------------------------------------------------------------
    def allocate(self, cycle: int) -> list[VAGrant]:
        """Run both VA stages for every VC in ``WAITING_VA`` state."""
        router = self.router
        stats = router.stats
        out_ports = router.out_ports
        vnet_of_vc = self._vnet_of_vc
        vnet_vcs = self._vnet_vcs
        V = router.config.num_vcs
        waiting = VCState.WAITING_VA

        # ---- stage 1: each waiting VC picks a free downstream VC ----
        # proposals: (out_port, dvc) -> list of (flat requester id, vc, meta)
        proposals: dict[tuple[int, int], list[tuple[int, VirtualChannel, int, int, Optional[int]]]] = {}
        for p, in_port in enumerate(router.in_ports):
            if in_port.nonidle == 0:
                continue
            for s, vc in enumerate(in_port.slots):
                if vc.state is not waiting:
                    continue
                r = vc.route
                assert r is not None, "VC in WAITING_VA without a route"
                arbs = self._stage1_arbiters(p, s)
                if arbs is None:
                    stats.va_blocked_cycles += 1
                    continue
                owner_slot, arb_row = arbs
                free = out_ports[r].free_vcs(vnet_vcs[vnet_of_vc[vc.index]])
                excluded = vc.va_excluded
                if excluded:
                    free = [d for d in free if d not in excluded]
                if not free:
                    stats.va_no_free_vc_cycles += 1
                    continue
                choice = arb_row[r].grant(free)
                if choice is None:  # arbiter itself faulty
                    stats.va_blocked_cycles += 1
                    continue
                flat = p * V + s
                borrowed = owner_slot if owner_slot != s else None
                proposals.setdefault((r, choice), []).append(
                    (flat, vc, p, s, borrowed)
                )

        # ---- stage 2: resolve conflicts per downstream VC ----
        grants: list[VAGrant] = []
        tracer = router.tracer
        faults_va2 = router.faults.va2
        for (r, dvc), reqs in proposals.items():
            if (r, dvc) in faults_va2:
                for _, vc, _, _, _ in reqs:
                    self._on_stage2_fault(vc, r, dvc)
                    stats.va_stage2_fault_retries += 1
                    if tracer is not None:
                        tracer.emit(
                            cycle,
                            "va_retry",
                            router.node,
                            out_port=r,
                            out_vc=dvc,
                            packet=vc.packet_id,
                        )
                continue
            arb = self.stage2[r][dvc]
            winner = arb.grant([flat for flat, *_ in reqs])
            if winner is None:
                continue
            for flat, vc, p, s, borrowed in reqs:
                if flat != winner:
                    continue
                vc.out_vc = dvc
                vc.state = VCState.ACTIVE
                vc.va_excluded = None
                out_ports[r].allocated[dvc] = vc.packet_id
                stats.va_grants += 1
                if borrowed is not None:
                    stats.va_borrowed_grants += 1
                if tracer is not None:
                    tracer.emit(
                        cycle,
                        "va_grant",
                        router.node,
                        in_port=p,
                        in_slot=s,
                        out_port=r,
                        out_vc=dvc,
                        packet=vc.packet_id,
                        borrowed=borrowed,
                    )
                grants.append(
                    VAGrant(p, s, r, dvc, vc.packet_id, borrowed_from=borrowed)
                )
                break
        return grants


class SAUnit:
    """Baseline two-stage separable switch allocator."""

    def __init__(self, router: "BaseRouter", arbiter_kind: str = "round_robin") -> None:
        self.router = router
        cfg = router.config
        P, V = cfg.num_ports, cfg.num_vcs
        #: stage 1: [input port] -> v:1 arbiter over physical slots
        self.stage1 = [make_arbiter(V, arbiter_kind) for _ in range(P)]
        #: stage 2: [output/arb port] -> pi:1 arbiter over input ports
        self.stage2 = [make_arbiter(P, arbiter_kind) for _ in range(P)]

    def reset(self) -> None:
        """Restore every arbiter's priority state to power-on defaults."""
        for arb in self.stage1:
            arb.reset()
        for arb in self.stage2:
            arb.reset()

    # -- hooks the protected router overrides --------------------------------
    def _stage1_winner(self, port: int, candidates: list[int], cycle: int) -> Optional[int]:
        """Pick the physical slot that bids for the switch for ``port``.

        Baseline: the port's ``v:1`` arbiter; faulty arbiter grants nothing.
        The FT override adds the bypass path (rotating default winner) and
        may trigger a VC transfer, consuming the cycle.
        """
        if port in self.router.faults.sa1:
            self.router.stats.sa_blocked_cycles += 1
            return None
        return self.stage1[port].grant(candidates)

    def _stage2_arbiter_ok(self, arb_port: int) -> bool:
        """Baseline: a faulty stage-2 arbiter grants nothing.

        (With path plans, requests are never steered to a faulty arbiter —
        ``plan_path`` already returns None/secondary — so this is a
        defensive double-check.)
        """
        return arb_port not in self.router.faults.sa2

    def allocate(self, cycle: int) -> list[SAGrant]:
        """Run both SA stages; returns winners that cross the XB next cycle."""
        router = self.router
        out_ports = router.out_ports
        plan_path = router.crossbar.plan_path
        active = VCState.ACTIVE

        # ---- stage 1: one candidate VC per input port ----
        # A VC may bid for the switch when it is ACTIVE, holds a buffered
        # flit, has downstream credit, and the crossbar can reach its route
        # (the readiness predicate, inlined: it runs for every port*VC slot
        # of every busy router every cycle).
        stage1_winners: list[tuple[int, VirtualChannel, PathPlan]] = []
        for p, in_port in enumerate(router.in_ports):
            if in_port.nonidle == 0:
                continue
            plans: dict[int, PathPlan] = {}
            candidates = []
            for s, vc in enumerate(in_port.slots):
                if vc.state is not active or not vc.buffer:
                    continue
                r = vc.route
                if out_ports[r].credits[vc.out_vc] <= 0:
                    continue
                plan = plan_path(r)
                if plan is not None:
                    candidates.append(s)
                    plans[s] = plan
            if not candidates:
                continue
            winner = self._stage1_winner(p, candidates, cycle)
            if winner is None:
                continue
            stage1_winners.append((p, in_port.slots[winner], plans[winner]))

        # ---- stage 2: resolve per physical arbiter/mux ----
        by_arb: dict[int, list[tuple[int, VirtualChannel, PathPlan]]] = {}
        for p, vc, plan in stage1_winners:
            by_arb.setdefault(plan.arb_port, []).append((p, vc, plan))

        grants: list[SAGrant] = []
        tracer = router.tracer
        stats = router.stats
        for arb_port, reqs in by_arb.items():
            if not self._stage2_arbiter_ok(arb_port):
                continue
            winner_port = self.stage2[arb_port].grant([p for p, _, _ in reqs])
            if winner_port is None:
                continue
            for p, vc, plan in reqs:
                if p != winner_port:
                    continue
                out_ports[plan.dest].credits[vc.out_vc] -= 1
                stats.sa_grants += 1
                if plan.secondary:
                    stats.secondary_path_grants += 1
                if tracer is not None:
                    tracer.emit(
                        cycle,
                        "sa_grant",
                        router.node,
                        in_port=p,
                        out_port=plan.dest,
                        packet=vc.packet_id,
                        secondary=plan.secondary,
                    )
                grants.append(SAGrant(p, vc, plan))
                break
        return grants
