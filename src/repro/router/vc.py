"""Virtual channels and their per-VC state fields.

Paper Section II-C (Figure 3d): each VC is associated with state fields

* ``G`` — pipeline-stage status of the VC (:class:`VCState` here),
* ``R`` — result of routing computation (output port),
* ``O`` — result of VC allocation (downstream VC id),
* ``P`` — read/write pointers (implicit in our deque buffer),
* ``C`` — credit count (tracked on the *output* side, see
  :class:`repro.router.router.OutputPort`).

Section V-B2 (Figure 4) adds the fault-tolerance fields used by the
protected router:

* ``R2`` — RC result a *borrowing* VC deposits with the lender,
* ``VF`` — flag: this VC's arbiters are being used by another VC,
* ``ID`` — which VC deposited the borrow request,
* ``SP`` — secondary-path output port to arbitrate for in SA,
* ``FSP`` — flag: the secondary path must be used.

The baseline router simply leaves the FT fields at their reset values.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional

from .flit import Flit


class VCState(enum.IntEnum):
    """The ``G`` field: which pipeline stage the VC's current packet is in."""

    IDLE = 0
    #: head flit waiting for / undergoing routing computation
    ROUTING = 1
    #: waiting for a downstream VC grant from the VA unit
    WAITING_VA = 2
    #: allocated; flits compete in switch allocation
    ACTIVE = 3
    #: (protected router only) flits being moved to another VC of the same
    #: input port to work around a faulty SA-stage-1 bypass target
    TRANSFER = 4


class VirtualChannel:
    """One flit FIFO plus the per-VC register state.

    The state machine operates on the packet whose flits are at the front
    of the buffer; flits of a subsequent packet may legally queue up behind
    the current packet's tail (the upstream router only reallocates the
    downstream VC after it forwards the tail, so flit order within a VC is
    always head..body..tail per packet, packets back to back).
    """

    __slots__ = (
        "port",
        "index",
        "capacity",
        "buffer",
        "state",
        "route",
        "out_vc",
        "packet_id",
        # --- protected-router (Figure 4) fields ---
        "r2",
        "vf",
        "borrower_id",
        "sp",
        "fsp",
        # --- bookkeeping ---
        "va_retry",
        "va_excluded",
        "stalled_since",
    )

    def __init__(self, port: int, index: int, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("VC capacity must be >= 1")
        self.port = port
        self.index = index
        self.capacity = capacity
        self.buffer: Deque[Flit] = deque()
        self.state = VCState.IDLE
        #: ``R`` field — logical output port of the current packet
        self.route: Optional[int] = None
        #: ``O`` field — allocated downstream VC of the current packet
        self.out_vc: Optional[int] = None
        #: id of the packet currently owning this VC's pipeline state
        self.packet_id: Optional[int] = None
        # Figure 4 fields (used by the protected router's VA unit)
        self.r2: Optional[int] = None
        self.vf: bool = False
        self.borrower_id: Optional[int] = None
        # Figure 4 fields (used by SA/XB secondary path)
        self.sp: Optional[int] = None
        self.fsp: bool = False
        #: VA retries consumed by stage-2 faults (statistics)
        self.va_retry: int = 0
        #: downstream VCs excluded after a stage-2 arbiter fault was hit
        #: (Section V-B3 recompute-with-another-VC, protected router only)
        self.va_excluded: Optional[set] = None
        #: cycle at which the current packet last made progress (watchdog)
        self.stalled_since: int = -1

    # ------------------------------------------------------------------
    # buffer operations
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of flits currently buffered."""
        return len(self.buffer)

    @property
    def free_slots(self) -> int:
        """Remaining buffer capacity in flits."""
        return self.capacity - len(self.buffer)

    @property
    def is_empty(self) -> bool:
        return not self.buffer

    def front(self) -> Flit:
        """The flit that would traverse the switch next."""
        return self.buffer[0]

    def enqueue(self, flit: Flit) -> None:
        """Buffer write (BW).  Raises on overflow — credits must prevent it."""
        if len(self.buffer) >= self.capacity:
            raise OverflowError(
                f"VC ({self.port},{self.index}) overflow: credit protocol violated"
            )
        self.buffer.append(flit)
        if self.state == VCState.IDLE:
            if not flit.is_head:
                raise AssertionError(
                    "non-head flit arrived at an idle VC: upstream wormhole "
                    "invariant broken"
                )
            self._start_packet(flit)

    def dequeue(self) -> Flit:
        """Remove and return the front flit (switch traversal)."""
        if not self.buffer:
            raise IndexError("dequeue from empty VC")
        flit = self.buffer.popleft()
        if flit.is_tail:
            self._finish_packet()
        return flit

    # ------------------------------------------------------------------
    # packet lifecycle
    # ------------------------------------------------------------------
    def _start_packet(self, head: Flit) -> None:
        self.state = VCState.ROUTING
        self.route = None
        self.out_vc = None
        self.sp = None
        self.fsp = False
        self.va_retry = 0
        self.va_excluded = None
        self.packet_id = head.packet_id

    def _finish_packet(self) -> None:
        """Tail left: free resources; start the next queued packet if any."""
        self.route = None
        self.out_vc = None
        self.sp = None
        self.fsp = False
        self.va_retry = 0
        self.va_excluded = None
        self.packet_id = None
        if self.buffer:
            head = self.buffer[0]
            if not head.is_head:
                raise AssertionError(
                    "flit following a tail is not a head: packet interleaving "
                    "within a VC is not allowed"
                )
            self._start_packet(head)
        else:
            self.state = VCState.IDLE

    # ------------------------------------------------------------------
    # warm reset
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore power-on state without reallocating the object.

        Part of the warm-reset fast path (``docs/performance.md``): every
        field returns to its ``__init__`` value so a reset VC is
        indistinguishable from a freshly constructed one.
        """
        self.buffer.clear()
        self.state = VCState.IDLE
        self.route = None
        self.out_vc = None
        self.packet_id = None
        self.r2 = None
        self.vf = False
        self.borrower_id = None
        self.sp = None
        self.fsp = False
        self.va_retry = 0
        self.va_excluded = None
        self.stalled_since = -1

    # ------------------------------------------------------------------
    # FT helpers
    # ------------------------------------------------------------------
    def clear_borrow_request(self) -> None:
        """Reset the R2/VF/ID fields after a borrowed allocation completes."""
        self.r2 = None
        self.vf = False
        self.borrower_id = None

    def snapshot_state(self) -> dict:
        """State-field snapshot used by the SA-stage-1 VC transfer
        (Section V-C1 transfers "state fields of VC1 ... into the state
        fields of VC2")."""
        return {
            "state": self.state,
            "route": self.route,
            "out_vc": self.out_vc,
            "packet_id": self.packet_id,
            "sp": self.sp,
            "fsp": self.fsp,
        }

    def adopt_state(self, snap: dict) -> None:
        """Install a state snapshot taken from another VC of the same port."""
        self.state = snap["state"]
        self.route = snap["route"]
        self.out_vc = snap["out_vc"]
        self.packet_id = snap["packet_id"]
        self.sp = snap["sp"]
        self.fsp = snap["fsp"]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"VC(p{self.port},v{self.index}, {self.state.name}, "
            f"{len(self.buffer)}/{self.capacity} flits, R={self.route}, "
            f"O={self.out_vc})"
        )
