"""Crossbar stage (XB) — baseline architecture and the path-plan interface.

Paper Figure 3c: a ``pi x po`` crossbar is ``po`` multiplexers, each ``pi:1``,
one per output port.  "A fault in a multiplexer blocks the passage to its
associated output port" (Section V-D) — in the baseline crossbar there is a
single path per output, so a mux fault makes that output unreachable.

The pipeline interacts with the crossbar through *path plans*: given a
logical output port ``k``, :meth:`Crossbar.plan_path` answers which SA
stage-2 arbiter must be won and which physical mux will carry the flit, or
``None`` when the output is unreachable.  The baseline plan is trivial
(arbiter ``k``, mux ``k``); the protected router's
:class:`repro.core.ft_crossbar.SecondaryPathCrossbar` overrides it with the
demux/mux secondary paths of paper Figure 6.

A faulty SA stage-2 arbiter also makes its output port unreachable in the
baseline ("the input VCs cannot arbitrate for the arbiter's associated
output port thus making the output port unreachable", Section V-C2), so the
plan accounts for both fault sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..faults.sites import RouterFaultState

#: cache sentinel — ``None`` is a valid plan result ("unreachable"), so an
#: unset cache entry needs a distinct marker
_UNCACHED: object = object()


@dataclass(frozen=True)
class PathPlan:
    """How a flit physically reaches logical output ``dest``.

    Attributes
    ----------
    arb_port:
        SA stage-2 arbiter the input VC must win.  Equals ``dest`` on the
        normal path; equals the secondary-source port when the secondary
        path is in use (the paper's ``SP`` field holds this value).
    mux:
        Physical crossbar multiplexer that carries the flit.  Always equal
        to ``arb_port`` (each arbiter drives its own mux).
    dest:
        Logical output port — the link the flit is delivered on.
    secondary:
        True when the correction circuitry (demux + 2:1 output mux) is in
        use; the ``FSP`` flag in the paper.
    """

    arb_port: int
    mux: int
    dest: int
    secondary: bool


class Crossbar:
    """Baseline crossbar: one ``pi:1`` mux per output port, single path.

    ``plan_path`` results are memoised per output port in a flat list
    (plans depend only on the static fault sets, so between fault events
    the lookup is a single list index); the cache is invalidated whenever
    the fault state changes (``notify_fault_change``).
    """

    def __init__(self, num_ports: int, faults: RouterFaultState) -> None:
        self.num_ports = num_ports
        self.faults = faults
        self._plan_cache: list[object] = [_UNCACHED] * num_ports
        #: cold-path diagnostic: plans actually computed (cache misses);
        #: harvested by the observability metrics registry after a run
        self.plans_computed = 0

    def notify_fault_change(self) -> None:
        """Invalidate cached plans after a fault injection or heal."""
        self._plan_cache = [_UNCACHED] * self.num_ports

    def reset(self) -> None:
        """Warm reset: drop cached plans and the cache-miss diagnostic.

        The crossbar holds the router's :class:`RouterFaultState` *by
        reference* — the router clears that in place before calling here.
        """
        self.notify_fault_change()
        self.plans_computed = 0

    def plan_path(self, dest: int) -> Optional[PathPlan]:
        """Plan for reaching ``dest``, or ``None`` if unreachable."""
        if not 0 <= dest < self.num_ports:
            raise ValueError(f"output port {dest} out of range")
        plan = self._plan_cache[dest]
        if plan is _UNCACHED:
            plan = self._compute_plan(dest)
            self._plan_cache[dest] = plan
        return plan  # type: ignore[return-value]

    def _compute_plan(self, dest: int) -> Optional[PathPlan]:
        if not (0 <= dest < self.num_ports):
            raise ValueError(f"output port {dest} out of range")
        self.plans_computed += 1
        if dest in self.faults.xb_mux or dest in self.faults.sa2:
            return None
        return PathPlan(arb_port=dest, mux=dest, dest=dest, secondary=False)

    def reachable(self, dest: int) -> bool:
        """True when some path (normal or secondary) reaches ``dest``."""
        return self.plan_path(dest) is not None

    def reachable_outputs(self) -> list[int]:
        """All currently reachable output ports (diagnostics/tests)."""
        return [p for p in range(self.num_ports) if self.reachable(p)]
