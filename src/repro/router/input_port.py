"""Input ports: VC storage plus the wire-id indirection.

Paper Figure 3d shows an input port with four VCs.  The protected router's
SA-stage-1 mechanism (Section V-C1) *transfers flits and state fields*
between two VCs of the same input port so that a rotating "default winner"
VC always has work when the port's SA arbiter is bypassed.

Moving buffered flits while more flits of the same packet are still in
flight upstream requires the input demultiplexer to steer those later
arrivals into the *new* VC.  We model that steering with a wire-id
indirection: every VC object carries an immutable ``wire`` id (the VC id
upstream routers allocate, send flits to, and count credits for) and a
mutable *physical slot* position inside the port.  A transfer simply swaps
two VC objects' slots — upstream state, in-flight flits, and credit
accounting all keep working because they are keyed by wire id.

The baseline router never swaps, so wire id == physical slot throughout.
"""

from __future__ import annotations

from typing import Iterator, List

from .vc import VCState, VirtualChannel


class InputPort:
    """VC array of one input port with wire→physical indirection."""

    __slots__ = ("port", "num_vcs", "slots", "nonidle", "_wire_to_phys", "swaps")

    def __init__(self, port: int, num_vcs: int, buffer_depth: int) -> None:
        self.port = port
        self.num_vcs = num_vcs
        #: VC objects indexed by *physical slot*
        self.slots: List[VirtualChannel] = [
            VirtualChannel(port, v, buffer_depth) for v in range(num_vcs)
        ]
        #: count of non-IDLE VCs in this port, maintained by the router
        #: (``receive_flit`` / ``xb_phase``); allocator and RC scans skip
        #: ports with no work.  Slot swaps (FT VC transfers) exchange VCs
        #: within the port, so they never change this count.
        self.nonidle = 0
        self._wire_to_phys: List[int] = list(range(num_vcs))
        #: cold-path diagnostic: slot swaps performed (FT VC transfers);
        #: harvested by the observability metrics registry after a run
        self.swaps = 0

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def by_wire(self, wire: int) -> VirtualChannel:
        """The VC that currently receives flits addressed to ``wire``."""
        return self.slots[self._wire_to_phys[wire]]

    def by_slot(self, slot: int) -> VirtualChannel:
        """The VC occupying physical slot ``slot``."""
        return self.slots[slot]

    def phys_of_wire(self, wire: int) -> int:
        """Physical slot currently backing wire id ``wire``."""
        return self._wire_to_phys[wire]

    def __iter__(self) -> Iterator[VirtualChannel]:
        return iter(self.slots)

    # ------------------------------------------------------------------
    # the transfer operation (Section V-C1)
    # ------------------------------------------------------------------
    def swap_slots(self, slot_a: int, slot_b: int) -> None:
        """Exchange the VCs in two physical slots.

        Models the paper's flit + state-field transfer: after the swap the
        contents previously in ``slot_a`` occupy ``slot_b`` and vice versa,
        and future arrivals follow their wire ids to the new slots.
        """
        if slot_a == slot_b:
            return
        self.swaps += 1
        vcs = self.slots
        va, vb = vcs[slot_a], vcs[slot_b]
        vcs[slot_a], vcs[slot_b] = vb, va
        self._wire_to_phys[va.index], self._wire_to_phys[vb.index] = (
            self._wire_to_phys[vb.index],
            self._wire_to_phys[va.index],
        )

    # ------------------------------------------------------------------
    # warm reset
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore power-on state: undo slot swaps, reset every VC.

        Sorting the VC objects back by wire id and restoring the identity
        wire map makes a reset port bit-identical to a freshly built one
        (slot iteration order matters to the allocators' arbiter streams).
        """
        self.slots.sort(key=lambda vc: vc.index)
        for wire in range(self.num_vcs):
            self._wire_to_phys[wire] = wire
        for vc in self.slots:
            vc.reset()
        self.nonidle = 0
        self.swaps = 0

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    @property
    def total_occupancy(self) -> int:
        """Buffered flits across all VCs of this port."""
        return sum(vc.occupancy for vc in self.slots)

    def idle(self) -> bool:
        """True when every VC of the port is idle and empty."""
        return all(vc.state == VCState.IDLE and vc.is_empty for vc in self.slots)

    def check_invariants(self) -> None:
        """Assert the indirection is a permutation (test helper).

        (The ``nonidle`` counter is router-maintained, so its consistency
        is asserted by ``BaseRouter.check_invariants`` — standalone ports
        fed directly in unit tests legitimately leave it at zero.)
        """
        assert sorted(self._wire_to_phys) == list(range(self.num_vcs))
        for wire, phys in enumerate(self._wire_to_phys):
            assert self.slots[phys].index == wire, (
                f"wire {wire} maps to slot {phys} holding VC "
                f"{self.slots[phys].index}"
            )
