"""Routing computation (RC) — dimension-order routing and variants.

The paper employs XY dimension-order routing (Section V-A): "XY routing
protocol does not require routing tables.  The fundamental logic block
required for implementing XY routing protocol is a comparator."  The RC unit
of a 5-port router in an 8x8 mesh therefore consists of two 6-bit
comparators (one per dimension), which is exactly how the reliability model
(:mod:`repro.reliability.components`) accounts for it.

XY routing on a mesh is deadlock-free: packets fully resolve the X dimension
before turning into Y, which breaks all cyclic channel dependencies.
"""

from __future__ import annotations

from typing import Optional

from ..config import (
    NetworkConfig,
    PORT_EAST,
    PORT_LOCAL,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_WEST,
)


class RoutingFunction:
    """Interface: map (current node, destination node) -> output port(s).

    Deterministic functions implement :meth:`output_port`.  Adaptive
    functions additionally override :meth:`candidate_ports` to return all
    permitted productive directions; the RC unit then selects among them
    (by path health and downstream credit) at routing time.
    """

    #: True when candidate_ports can return more than one port
    adaptive = False

    def __init__(self, network: NetworkConfig) -> None:
        self.network = network
        self._route_table: Optional[list[list[int]]] = None

    def output_port(self, node: int, dest: int) -> int:
        raise NotImplementedError

    def route_table(self) -> list[list[int]]:
        """Dense ``table[node][dest] -> output port`` lookup (non-adaptive).

        Built lazily, once per routing instance, and shared by every
        router of a simulator: the RC unit replaces the per-head-flit
        coordinate arithmetic with one list index.  Adaptive functions
        have no static table — their choice depends on run-time credit
        and fault state — so they raise.
        """
        if self.adaptive:
            raise ValueError(
                f"{type(self).__name__} is adaptive: routes depend on "
                "run-time state, no static route table exists"
            )
        table = self._route_table
        if table is None:
            n = self.network.num_nodes
            output_port = self.output_port
            table = [
                [output_port(node, dest) for dest in range(n)]
                for node in range(n)
            ]
            self._route_table = table
        return table

    def candidate_ports(self, node: int, dest: int) -> list[int]:
        """Permitted output ports, most-preferred first (default: the one
        deterministic choice)."""
        return [self.output_port(node, dest)]

    def hop_count(self, src: int, dest: int) -> int:
        """Number of router-to-router hops on the computed path."""
        hops = 0
        # Walk the route; bounded by network diameter so this terminates.
        cur = src
        limit = self.network.num_nodes + 2
        while cur != dest:
            port = self.output_port(cur, dest)
            if port == PORT_LOCAL:
                break
            cur = _neighbour(self.network, cur, port)
            hops += 1
            if hops > limit:  # pragma: no cover - defensive
                raise RuntimeError("routing function does not converge")
        return hops


def _neighbour(net: NetworkConfig, node: int, port: int) -> int:
    """Node reached by leaving ``node`` through ``port`` (with torus wrap)."""
    x, y = net.coords(node)
    if port == PORT_NORTH:
        y -= 1
    elif port == PORT_SOUTH:
        y += 1
    elif port == PORT_EAST:
        x += 1
    elif port == PORT_WEST:
        x -= 1
    else:
        raise ValueError(f"port {port} has no neighbour")
    if net.topology == "torus":
        x %= net.width
        y %= net.height
    if not (0 <= x < net.width and 0 <= y < net.height):
        raise ValueError(f"route walked off the mesh at ({x},{y})")
    return net.node_id(x, y)


class XYRouting(RoutingFunction):
    """Dimension-order routing: resolve X first, then Y.

    On a torus the shorter wrap direction is taken in each dimension
    (still dimension-ordered, hence deadlock-free with 2 VCs per dimension
    in general; our default experiments use the mesh where 1 VC suffices).
    """

    def output_port(self, node: int, dest: int) -> int:
        net = self.network
        x, y = net.coords(node)
        dx_, dy_ = net.coords(dest)
        if x == dx_ and y == dy_:
            return PORT_LOCAL
        if x != dx_:
            return self._x_port(x, dx_)
        return self._y_port(y, dy_)

    def _x_port(self, x: int, dx_: int) -> int:
        net = self.network
        if net.topology == "torus":
            right = (dx_ - x) % net.width
            left = (x - dx_) % net.width
            return PORT_EAST if right <= left else PORT_WEST
        return PORT_EAST if dx_ > x else PORT_WEST

    def _y_port(self, y: int, dy_: int) -> int:
        net = self.network
        if net.topology == "torus":
            down = (dy_ - y) % net.height
            up = (y - dy_) % net.height
            return PORT_SOUTH if down <= up else PORT_NORTH
        return PORT_SOUTH if dy_ > y else PORT_NORTH


class YXRouting(XYRouting):
    """Dimension-order routing that resolves Y before X.

    Not used by the paper's experiments, but handy for tests (it must give
    identical hop counts to XY on a mesh) and for the RoCo comparison model,
    whose row/column decomposition pairs naturally with either order.
    """

    def output_port(self, node: int, dest: int) -> int:
        net = self.network
        x, y = net.coords(node)
        dx_, dy_ = net.coords(dest)
        if x == dx_ and y == dy_:
            return PORT_LOCAL
        if y != dy_:
            return self._y_port(y, dy_)
        return self._x_port(x, dx_)


class LookaheadXYRouting(XYRouting):
    """One-hop lookahead XY routing.

    RoCo (Section III) achieves RC-stage fault tolerance via lookahead
    routing: the *upstream* router computes the output port the flit will
    need at the *next* router, so a faulty local RC unit can be skipped.
    ``output_port`` keeps the XY semantics; :meth:`next_hop_port` exposes
    the lookahead computation used by the RoCo model.
    """

    def next_hop_port(self, node: int, dest: int) -> int:
        """Output port the packet will request at the next router."""
        first = self.output_port(node, dest)
        if first == PORT_LOCAL:
            return PORT_LOCAL
        nxt = _neighbour(self.network, node, first)
        return self.output_port(nxt, dest)


class WestFirstRouting(RoutingFunction):
    """West-first turn-model adaptive routing (mesh only).

    Extension beyond the paper (which uses XY): if the destination lies
    to the west, the packet must travel fully west first (no turns into
    west are ever taken later, which breaks all deadlock cycles); in
    every other case *any* productive direction among {east, north,
    south} is permitted, giving the RC unit freedom to route around
    congestion — and, in the protected router, around output ports whose
    normal *and* secondary paths have both died.
    """

    adaptive = True

    def __init__(self, network: NetworkConfig) -> None:
        super().__init__(network)
        if network.topology != "mesh":
            raise ValueError("west-first turn model requires a mesh")

    def candidate_ports(self, node: int, dest: int) -> list[int]:
        net = self.network
        x, y = net.coords(node)
        dx_, dy_ = net.coords(dest)
        if x == dx_ and y == dy_:
            return [PORT_LOCAL]
        if dx_ < x:
            # the turn model: all westward distance is covered first
            return [PORT_WEST]
        cands = []
        if dx_ > x:
            cands.append(PORT_EAST)
        if dy_ > y:
            cands.append(PORT_SOUTH)
        elif dy_ < y:
            cands.append(PORT_NORTH)
        return cands

    def output_port(self, node: int, dest: int) -> int:
        return self.candidate_ports(node, dest)[0]


def make_routing(network: NetworkConfig, kind: str = "xy") -> RoutingFunction:
    """Factory for routing functions by name."""
    if kind == "xy":
        return XYRouting(network)
    if kind == "yx":
        return YXRouting(network)
    if kind == "lookahead_xy":
        return LookaheadXYRouting(network)
    if kind == "west_first":
        return WestFirstRouting(network)
    raise ValueError(f"unknown routing kind {kind!r}")
