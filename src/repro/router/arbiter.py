"""Arbiters — the fundamental building block of the VA and SA stages.

The paper's FIT accounting (Table I) treats the ``v:1`` and ``pi:1`` arbiters
as the fundamental components of the allocation stages, and its fault model
marks whole arbiters as faulty.  Two classic implementations are provided:

* :class:`RoundRobinArbiter` — rotating-priority arbiter; the winner gets
  lowest priority next time.  This is the default everywhere because it is
  starvation-free, which the paper's bypass-path discussion (Section V-C1)
  relies on.
* :class:`MatrixArbiter` — least-recently-served matrix arbiter, provided
  for completeness and used by some ablation benches.

Both expose the same interface: ``grant(requests) -> winner | None`` where
``requests`` is an iterable of requester indices, plus a ``faulty`` flag that
models a permanent fault (a faulty arbiter never grants — Section V describes
exactly this failure semantics: the associated flit "would not be allocated
... resulting in the flit being blocked").
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


class Arbiter:
    """Interface shared by all arbiter implementations."""

    __slots__ = ("size", "faulty")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("arbiter needs at least one requester")
        self.size = size
        #: permanent-fault flag; a faulty arbiter never grants
        self.faulty = False

    def grant(self, requests: Iterable[int]) -> Optional[int]:
        raise NotImplementedError

    def reset(self) -> None:
        """Restore priority state to power-on defaults (not the fault flag)."""
        raise NotImplementedError


class RoundRobinArbiter(Arbiter):
    """Rotating-priority arbiter.

    Priority starts at requester 0; after a grant to requester *i*,
    requester *i+1 (mod size)* has top priority.  ``grant`` runs in
    O(#requests) using modular distance, not O(size).
    """

    __slots__ = ("_priority",)

    def __init__(self, size: int) -> None:
        super().__init__(size)
        self._priority = 0

    def reset(self) -> None:
        self._priority = 0

    @property
    def priority(self) -> int:
        """Requester index that currently has top priority."""
        return self._priority

    def grant(self, requests: Iterable[int]) -> Optional[int]:
        """Pick the requester closest (cyclically) to the priority pointer.

        Returns ``None`` when there are no requests or the arbiter is
        faulty.  On a grant the priority pointer advances past the winner.
        """
        if self.faulty:
            return None
        best = None
        best_dist = self.size
        prio = self._priority
        size = self.size
        for r in requests:
            if r < 0 or r >= size:
                raise ValueError(f"requester {r} out of range 0..{size - 1}")
            dist = (r - prio) % size
            if dist < best_dist:
                best = r
                best_dist = dist
                if dist == 0:
                    break
        if best is not None:
            self._priority = (best + 1) % size
        return best


class MatrixArbiter(Arbiter):
    """Least-recently-served arbiter.

    Keeps a strict priority order (most-recently-served last); grants the
    highest-priority requester and demotes it to the back.  Exactly
    equivalent to the classic triangular-matrix hardware implementation.
    """

    __slots__ = ("_order",)

    def __init__(self, size: int) -> None:
        super().__init__(size)
        self._order = list(range(size))

    def reset(self) -> None:
        self._order = list(range(self.size))

    @property
    def order(self) -> Sequence[int]:
        """Current priority order, highest first (read-only view)."""
        return tuple(self._order)

    def grant(self, requests: Iterable[int]) -> Optional[int]:
        if self.faulty:
            return None
        req = set(requests)
        if not req:
            return None
        for r in req:
            if r < 0 or r >= self.size:
                raise ValueError(f"requester {r} out of range 0..{self.size - 1}")
        for i, cand in enumerate(self._order):
            if cand in req:
                # demote winner to least priority
                self._order.append(self._order.pop(i))
                return cand
        return None  # pragma: no cover - unreachable (req non-empty)


def make_arbiter(size: int, kind: str = "round_robin") -> Arbiter:
    """Factory used by the allocators so arbiter flavour is configurable."""
    if kind == "round_robin":
        return RoundRobinArbiter(size)
    if kind == "matrix":
        return MatrixArbiter(size)
    raise ValueError(f"unknown arbiter kind {kind!r}")
