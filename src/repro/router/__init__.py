"""Generic NoC router substrate (paper Section II).

Flits, virtual channels, arbiters, separable VA/SA allocators, the
baseline crossbar, XY routing, and the 4-stage pipeline driver.
"""

from .allocator import SAGrant, SAUnit, VAGrant, VAUnit
from .arbiter import Arbiter, MatrixArbiter, RoundRobinArbiter, make_arbiter
from .crossbar import Crossbar, PathPlan
from .flit import Flit, FlitType, Packet, reset_packet_ids
from .input_port import InputPort
from .router import BaseRouter, BaselineRouter, OutputPort, RCUnit, RouterStats
from .routing import (
    LookaheadXYRouting,
    RoutingFunction,
    WestFirstRouting,
    XYRouting,
    YXRouting,
    make_routing,
)
from .vc import VCState, VirtualChannel

__all__ = [
    "Arbiter",
    "BaseRouter",
    "BaselineRouter",
    "Crossbar",
    "Flit",
    "FlitType",
    "InputPort",
    "LookaheadXYRouting",
    "MatrixArbiter",
    "OutputPort",
    "Packet",
    "PathPlan",
    "RCUnit",
    "RoundRobinArbiter",
    "RouterStats",
    "RoutingFunction",
    "SAGrant",
    "SAUnit",
    "VAGrant",
    "VAUnit",
    "VCState",
    "VirtualChannel",
    "WestFirstRouting",
    "XYRouting",
    "YXRouting",
    "make_arbiter",
    "make_routing",
    "reset_packet_ids",
]
