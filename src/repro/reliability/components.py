"""Gate/transistor inventories of the router's fundamental components.

The paper's FIT methodology (Section VII-A) is: per-FET FIT from FORC,
times the transistor count of a gate, summed over gates (SOFR).  Table I
prints per-component FIT values at the paper's operating point; dividing
them by the per-FET FIT (0.1) yields each component's effective transistor
count:

=====================  ====  ===========================================
Component              FIT   transistors (FIT / 0.1)
=====================  ====  ===========================================
6-bit comparator       11.7  117
4:1 arbiter            7.4   74    (~18.5 per request line)
20:1 arbiter           36.7  367
5:1 arbiter            9.3   93
4:1 mux (1-bit)        4.8   48
5:1 mux (32-bit)       204.8 2048  (64 per bit)
=====================  ====  ===========================================

Table II adds the correction-circuitry components.  Its D-flip-flop FIT of
0.5 per bit corresponds to a ~25-transistor DFF cell at a 20 % duty cycle
(state fields are written rarely), and its mux/demux rows imply 8
transistors/bit for a 2:1 mux, 20/bit for a 1:2 demux and 30/bit for a
1:3 demux.  These inferred counts are stored explicitly; generic fallback
formulas cover the sizes needed by the sensitivity sweeps (e.g. the
SPF-vs-VC-count study re-sizes every arbiter).
"""

from __future__ import annotations

from dataclasses import dataclass

from .forc import PAPER_TEMP_K, PAPER_VDD, DEFAULT_TDDB, TDDBParameters, fit_per_fet


#: Duty cycle applied to state-field flip-flops (see module docstring).
DFF_DUTY_CYCLE = 0.2

#: Transistors per DFF bit (standard-cell D flip-flop).
DFF_TRANSISTORS_PER_BIT = 25


@dataclass(frozen=True)
class Component:
    """A fundamental circuit component for FIT/area accounting.

    ``transistors`` is the effective device count; ``duty_cycle`` scales
    the per-FET FIT (Equation 3).
    """

    name: str
    transistors: int
    duty_cycle: float = 1.0

    def __post_init__(self) -> None:
        if self.transistors <= 0:
            raise ValueError("component needs at least one transistor")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in (0, 1]")

    def fit(
        self,
        vdd: float = PAPER_VDD,
        temp_k: float = PAPER_TEMP_K,
        params: TDDBParameters = DEFAULT_TDDB,
    ) -> float:
        """FIT of this component (SOFR building block)."""
        return self.transistors * fit_per_fet(
            vdd, temp_k, self.duty_cycle, params
        )


# ----------------------------------------------------------------------
# constructors for each fundamental component kind
# ----------------------------------------------------------------------

#: calibrated arbiter sizes from Table I (requests -> transistors)
_ARBITER_CALIBRATED = {4: 74, 5: 93, 20: 367}

#: transistors per request line for arbiter sizes outside the table
ARBITER_TRANSISTORS_PER_REQ = 18.5


def arbiter(requests: int) -> Component:
    """A ``requests:1`` round-robin arbiter."""
    if requests < 1:
        raise ValueError("arbiter needs at least one request line")
    t = _ARBITER_CALIBRATED.get(
        requests, round(ARBITER_TRANSISTORS_PER_REQ * requests)
    )
    return Component(f"{requests}:1 arbiter", t)


#: transistors per bit of a comparator (Table I: 6-bit -> 117)
COMPARATOR_TRANSISTORS_PER_BIT = 19.5


def comparator(bits: int) -> Component:
    """A ``bits``-wide equality/magnitude comparator (RC building block)."""
    if bits < 1:
        raise ValueError("comparator needs at least one bit")
    return Component(
        f"{bits}-bit comparator", round(COMPARATOR_TRANSISTORS_PER_BIT * bits)
    )


#: calibrated mux sizes from Tables I/II ((inputs, width) -> transistors)
_MUX_CALIBRATED = {
    (4, 1): 48,
    (5, 32): 2048,
    (2, 32): 256,
    (2, 2): 16,
}

#: per-input-per-bit transistor fallbacks
_MUX_PER_INPUT_BIT = {2: 4.0, 3: 9.0, 4: 12.0, 5: 12.8}


def mux(inputs: int, width: int = 1) -> Component:
    """An ``inputs:1`` multiplexer, ``width`` bits wide."""
    if inputs < 2 or width < 1:
        raise ValueError("mux needs >=2 inputs and >=1 bit")
    t = _MUX_CALIBRATED.get((inputs, width))
    if t is None:
        per = _MUX_PER_INPUT_BIT.get(inputs, 12.8)
        t = round(per * inputs * width)
    return Component(f"{width}-bit {inputs}:1 mux", t)


#: transistors per bit for demultiplexers (Table II inference)
_DEMUX_PER_BIT = {2: 20, 3: 30}


def demux(outputs: int, width: int = 32) -> Component:
    """A ``1:outputs`` demultiplexer, ``width`` bits wide."""
    if outputs < 2 or width < 1:
        raise ValueError("demux needs >=2 outputs and >=1 bit")
    per = _DEMUX_PER_BIT.get(outputs, 10 * outputs)
    return Component(f"{width}-bit 1:{outputs} demux", per * width)


def dff(bits: int) -> Component:
    """A ``bits``-wide D flip-flop state field (20 % duty cycle)."""
    if bits < 1:
        raise ValueError("DFF needs at least one bit")
    return Component(
        f"{bits}-bit DFF",
        DFF_TRANSISTORS_PER_BIT * bits,
        duty_cycle=DFF_DUTY_CYCLE,
    )


def register_file(bits: int) -> Component:
    """Continuously-clocked register (pipeline latch): full duty cycle."""
    if bits < 1:
        raise ValueError("register needs at least one bit")
    return Component(f"{bits}-bit register", DFF_TRANSISTORS_PER_BIT * bits)
