"""Silicon Protection Factor (paper Section VIII).

SPF = (mean number of faults to cause failure) / (1 + area overhead).

The paper computes the mean as the average of the *minimum* and *maximum*
number of faults that cause failure.  Per stage (P-port, V-VC router):

========= ============================== ==============================
Stage     max tolerated                  min to cause failure
========= ============================== ==============================
RC        P   (one per port)             2 (primary + duplicate, same port)
VA        P*(V-1)                        V (all sets of one port)
SA        P   (one arbiter per port)     2 (arbiter + bypass, same port)
XB        2   (paper's conservative      2 (normal + secondary path)
          figure; exact analysis gives
          3 for P=5 — reported separately)
========= ============================== ==============================

For the paper's 5x5, 4-VC router: max tolerated = 5 + 15 + 5 + 2 = 27,
max to failure = 28, min to failure = 2, mean = 15, and with the 31 % area
overhead SPF = 15 / 1.31 = 11.4 (Table III).

:func:`monte_carlo_faults_to_failure` cross-checks the analytical mean by
injecting faults in random order into the Section VIII failure predicates
until the router fails.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import RouterConfig
from ..core.failure import protected_router_failed
from ..core.ft_crossbar import max_tolerable_mux_faults
from ..faults.sites import RouterFaultState, enumerate_sites


@dataclass(frozen=True)
class StageFaultBounds:
    """Min-to-failure and max-tolerated fault counts of one stage."""

    stage: str
    max_tolerated: int
    min_to_failure: int


@dataclass(frozen=True)
class SPFResult:
    """The Section VIII-E accounting for one router configuration."""

    stages: tuple[StageFaultBounds, ...]
    max_tolerated: int
    max_to_failure: int
    min_to_failure: int
    mean_faults_to_failure: float
    area_overhead: float
    spf: float

    def stage(self, name: str) -> StageFaultBounds:
        for s in self.stages:
            if s.stage == name:
                return s
        raise KeyError(name)


def stage_fault_bounds(
    config: RouterConfig | None = None, exact_xb: bool = False
) -> list[StageFaultBounds]:
    """Per-stage bounds per Section VIII (paper accounting by default)."""
    config = config or RouterConfig()
    P, V = config.num_ports, config.num_vcs
    xb_max = max_tolerable_mux_faults(P) if exact_xb else 2
    return [
        StageFaultBounds("RC", max_tolerated=P, min_to_failure=2),
        StageFaultBounds("VA", max_tolerated=P * (V - 1), min_to_failure=V),
        StageFaultBounds("SA", max_tolerated=P, min_to_failure=2),
        StageFaultBounds("XB", max_tolerated=xb_max, min_to_failure=2),
    ]


def analyze_spf(
    area_overhead: float,
    config: RouterConfig | None = None,
    exact_xb: bool = False,
) -> SPFResult:
    """Compute SPF for a router config and a given area overhead fraction.

    ``area_overhead`` is the correction circuitry's area as a fraction of
    the baseline router (the paper uses 0.31, including fault detection).
    """
    if area_overhead < 0:
        raise ValueError("area overhead must be >= 0")
    config = config or RouterConfig()
    bounds = stage_fault_bounds(config, exact_xb=exact_xb)
    max_tol = sum(b.max_tolerated for b in bounds)
    max_fail = max_tol + 1
    min_fail = min(b.min_to_failure for b in bounds)
    mean = (min_fail + max_fail) / 2
    return SPFResult(
        stages=tuple(bounds),
        max_tolerated=max_tol,
        max_to_failure=max_fail,
        min_to_failure=min_fail,
        mean_faults_to_failure=mean,
        area_overhead=area_overhead,
        spf=mean / (1.0 + area_overhead),
    )


def spf_vs_vc_count(
    overheads: dict[int, float],
    num_ports: int = 5,
    exact_xb: bool = False,
) -> dict[int, SPFResult]:
    """Section VIII-E sensitivity: SPF for each VC count in ``overheads``.

    ``overheads`` maps VC count -> area-overhead fraction (typically from
    :func:`repro.synthesis.area.area_overhead`).
    """
    out = {}
    for vcs, ovh in sorted(overheads.items()):
        cfg = RouterConfig(num_vcs=vcs)
        out[vcs] = analyze_spf(ovh, cfg, exact_xb=exact_xb)
    return out


@dataclass(frozen=True)
class MonteCarloSPF:
    """Empirical faults-to-failure distribution."""

    mean: float
    std: float
    minimum: int
    maximum: int
    samples: np.ndarray
    #: shard/timing breakdown when run through the parallel sweep engine
    sweep: object = None

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.samples, q))


def _mc_trial_chunk(
    config: RouterConfig,
    seeds: list[np.random.SeedSequence],
    exact: bool,
    include_va2: bool,
) -> np.ndarray:
    """One worker chunk of the faults-to-failure campaign.

    Each trial draws its permutation from its own spawned child seed, so
    the counts depend only on the root seed and the trial index — never
    on how trials are chunked across workers.
    """
    sites = list(
        enumerate_sites(config, protected=True, include_va2=include_va2)
    )
    counts = np.empty(len(seeds), dtype=np.int64)
    for t, seed in enumerate(seeds):
        order = np.random.default_rng(seed).permutation(len(sites))
        state = RouterFaultState(config)
        n = 0
        for i in order:
            state.inject(sites[int(i)])
            n += 1
            if protected_router_failed(state, exact=exact):
                break
        counts[t] = n
    return counts


def monte_carlo_faults_to_failure(
    config: RouterConfig | None = None,
    trials: int = 2000,
    rng: np.random.Generator | int | None = None,
    exact: bool = False,
    include_va2: bool = False,
    jobs: int | None = None,
) -> MonteCarloSPF:
    """Inject faults in random order until the Section VIII predicates fail.

    ``include_va2`` matches the paper's SPF accounting when False (the
    paper's Section VIII analysis covers RC/VA1/SA1/XB sites); set it True
    together with ``exact=True`` for the extended model.

    ``jobs`` shards the trials across worker processes (0 = all cores).
    Trials are seeded per-trial via ``SeedSequence.spawn``, so the result
    is bit-identical for any ``jobs`` value.
    """
    # imported lazily: repro.experiments imports this module at startup
    from ..experiments.parallel import (
        SweepTask,
        resolve_jobs,
        run_sweep,
        spawn_seeds,
    )

    if trials < 1:
        raise ValueError("need at least one trial")
    config = config or RouterConfig()
    seeds = spawn_seeds(rng, trials)
    n_jobs = min(resolve_jobs(jobs), trials)
    # a few chunks per worker amortises site enumeration while keeping
    # the pool busy; chunking cannot change results (per-trial seeding)
    n_chunks = 1 if n_jobs == 1 else min(trials, n_jobs * 4)
    bounds = np.linspace(0, trials, n_chunks + 1).astype(int)
    tasks = [
        SweepTask(
            index=k,
            fn=_mc_trial_chunk,
            args=(config, seeds[a:b], exact, include_va2),
            label=f"trials[{a}:{b}]",
        )
        for k, (a, b) in enumerate(zip(bounds[:-1], bounds[1:]))
    ]
    chunks, report = run_sweep(tasks, jobs=jobs)
    counts = np.concatenate(chunks)
    return MonteCarloSPF(
        mean=float(counts.mean()),
        std=float(counts.std()),
        minimum=int(counts.min()),
        maximum=int(counts.max()),
        samples=counts,
        sweep=report,
    )
