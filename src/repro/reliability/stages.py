"""FIT inventories of the pipeline stages (paper Tables I and II).

For the paper's configuration — 5x5 router, 4 VCs, 8x8 mesh (64
destinations -> 6-bit comparators), 32-bit flits — these inventories
reproduce Table I:

    RC 117, VA ~1474 (printed 1478 in the paper), SA ~203, XB 1024

and Table II:

    RC 117, VA 60, SA 53, XB 416

Every inventory is parameterised over (ports, VCs, destination bits, flit
width) so the sensitivity studies (SPF vs. VC count, larger meshes) reuse
the same accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.ft_crossbar import demux_fanouts
from .components import (
    Component,
    arbiter,
    comparator,
    demux,
    dff,
    mux,
)
from .forc import PAPER_TEMP_K, PAPER_VDD, DEFAULT_TDDB, TDDBParameters


#: flit datapath width used by the paper's crossbar accounting
FLIT_WIDTH_BITS = 32


@dataclass(frozen=True)
class RouterGeometry:
    """The parameters the FIT inventories depend on."""

    num_ports: int = 5
    num_vcs: int = 4
    dest_bits: int = 6  # ceil(log2(64)) for the 8x8 mesh
    flit_width: int = FLIT_WIDTH_BITS

    def __post_init__(self) -> None:
        if self.num_ports < 2 or self.num_vcs < 1:
            raise ValueError("need >=2 ports and >=1 VC")
        if self.dest_bits < 1 or self.flit_width < 1:
            raise ValueError("dest_bits and flit_width must be positive")

    @classmethod
    def from_mesh(cls, num_nodes: int, num_ports: int = 5, num_vcs: int = 4,
                  flit_width: int = FLIT_WIDTH_BITS) -> "RouterGeometry":
        return cls(
            num_ports=num_ports,
            num_vcs=num_vcs,
            dest_bits=max(1, math.ceil(math.log2(max(2, num_nodes)))),
            flit_width=flit_width,
        )

    @property
    def port_bits(self) -> int:
        """Bits to name an output port (the R2/SP fields)."""
        return max(1, math.ceil(math.log2(self.num_ports)))

    @property
    def vc_bits(self) -> int:
        """Bits to name a VC (the ID field / bypass register)."""
        return max(1, math.ceil(math.log2(self.num_vcs)))


@dataclass
class StageInventory:
    """Component census of one pipeline stage."""

    stage: str
    entries: list[tuple[Component, int]] = field(default_factory=list)

    def add(self, component: Component, count: int) -> None:
        if count < 0:
            raise ValueError("component count must be >= 0")
        if count:
            self.entries.append((component, count))

    def fit(
        self,
        vdd: float = PAPER_VDD,
        temp_k: float = PAPER_TEMP_K,
        params: TDDBParameters = DEFAULT_TDDB,
    ) -> float:
        """SOFR: the stage's FIT is the sum over its components."""
        return sum(c.fit(vdd, temp_k, params) * n for c, n in self.entries)

    @property
    def transistors(self) -> int:
        return sum(c.transistors * n for c, n in self.entries)

    def describe(self) -> list[str]:
        return [f"{n} x {c.name}" for c, n in self.entries]


# ----------------------------------------------------------------------
# Table I: baseline pipeline stages
# ----------------------------------------------------------------------

def baseline_rc(geom: RouterGeometry) -> StageInventory:
    """RC: two comparators per input port (X and Y dimension checks)."""
    inv = StageInventory("RC")
    inv.add(comparator(geom.dest_bits), 2 * geom.num_ports)
    return inv


def baseline_va(geom: RouterGeometry) -> StageInventory:
    """VA: per-input-VC arbiter sets + per-downstream-VC arbiters."""
    P, V = geom.num_ports, geom.num_vcs
    inv = StageInventory("VA")
    # stage 1: every input VC owns P arbiters of V:1
    inv.add(arbiter(V), P * V * P)
    # stage 2: one P*V:1 arbiter per downstream VC
    inv.add(arbiter(P * V), P * V)
    return inv


def baseline_sa(geom: RouterGeometry) -> StageInventory:
    """SA: request muxes + stage-1 (v:1) and stage-2 (pi:1) arbiters.

    The paper's Table I counts 25 4:1 muxes for the 5-port router —
    one V:1 request mux per (input port, output port) pair.
    """
    P, V = geom.num_ports, geom.num_vcs
    inv = StageInventory("SA")
    inv.add(mux(V, 1), P * P)
    inv.add(arbiter(V), P)
    inv.add(arbiter(P), P)
    return inv


def baseline_xb(geom: RouterGeometry) -> StageInventory:
    """XB: one flit-wide pi:1 mux per output port."""
    P = geom.num_ports
    inv = StageInventory("XB")
    inv.add(mux(P, geom.flit_width), P)
    return inv


def baseline_stages(geom: RouterGeometry | None = None) -> dict[str, StageInventory]:
    """Paper Table I as a stage -> inventory mapping."""
    geom = geom or RouterGeometry()
    return {
        "RC": baseline_rc(geom),
        "VA": baseline_va(geom),
        "SA": baseline_sa(geom),
        "XB": baseline_xb(geom),
    }


# ----------------------------------------------------------------------
# Table II: correction circuitry
# ----------------------------------------------------------------------

def correction_rc(geom: RouterGeometry) -> StageInventory:
    """Duplicate RC unit per port: same comparator census as baseline."""
    inv = StageInventory("RC")
    inv.add(comparator(geom.dest_bits), 2 * geom.num_ports)
    return inv


def correction_va(geom: RouterGeometry) -> StageInventory:
    """New per-VC state fields R2, VF, ID (Figure 4)."""
    P, V = geom.num_ports, geom.num_vcs
    inv = StageInventory("VA")
    inv.add(dff(geom.port_bits), P * V)  # R2
    inv.add(dff(1), P * V)  # VF
    inv.add(dff(geom.vc_bits), P * V)  # ID
    return inv


def correction_sa(geom: RouterGeometry) -> StageInventory:
    """Bypass muxes + default-winner registers + SP/FSP fields."""
    P, V = geom.num_ports, geom.num_vcs
    inv = StageInventory("SA")
    inv.add(mux(2, geom.vc_bits), P)  # bypass 2:1 mux per port
    inv.add(dff(geom.vc_bits), P)  # default-winner register
    inv.add(dff(geom.port_bits), P * V)  # SP
    inv.add(dff(1), P * V)  # FSP
    return inv


def correction_xb(geom: RouterGeometry) -> StageInventory:
    """Secondary-path demuxes + per-output 2:1 muxes (Figure 6)."""
    P, W = geom.num_ports, geom.flit_width
    inv = StageInventory("XB")
    inv.add(mux(2, W), P)  # P1..P5 output muxes
    fan = demux_fanouts(P)
    n_two = sum(1 for f in fan.values() if f == 2)
    n_three = sum(1 for f in fan.values() if f == 3)
    inv.add(demux(2, W), n_two)
    inv.add(demux(3, W), n_three)
    return inv


def correction_stages(geom: RouterGeometry | None = None) -> dict[str, StageInventory]:
    """Paper Table II as a stage -> inventory mapping."""
    geom = geom or RouterGeometry()
    return {
        "RC": correction_rc(geom),
        "VA": correction_va(geom),
        "SA": correction_sa(geom),
        "XB": correction_xb(geom),
    }


def total_fit(stages: dict[str, StageInventory], **kw) -> float:
    """SOFR over a whole set of stages."""
    return sum(inv.fit(**kw) for inv in stages.values())
