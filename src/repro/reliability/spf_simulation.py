"""Simulation-based faults-to-failure measurement.

The paper derives its faults-to-failure count *theoretically* ("For our
router, we used a theoretical approach ... based on the fault tolerant
methodology"), while noting that BulletProof and Vicis used "an
experimental approach through simulations".  This module provides that
experimental approach for the proposed router: inject faults one at a
time into a *live simulated* router and declare failure when the router
demonstrably stops doing its job — some input-to-output flow that the
mesh needs can no longer deliver flits.

This is a behavioural cross-check of the Section VIII predicates: the
two must agree (a predicate-failed router must fail functionally, and
vice versa), which :func:`functional_failure` lets tests assert, and the
Monte-Carlo mean here should track the predicate-based Monte-Carlo in
:mod:`repro.reliability.spf`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import NetworkConfig, PORT_LOCAL, RouterConfig
from ..core.protected_router import ProtectedRouter
from ..faults.sites import FaultSite, enumerate_sites
from ..router.flit import Packet, reset_packet_ids
from ..router.routing import XYRouting


class _CollectingScheduler:
    """Minimal scheduler for driving a lone router."""

    def __init__(self) -> None:
        self.cycle = 0
        self.delivered: list[tuple[int, int]] = []  # (out_port, out_vc)

    def deliver_flit(self, src_node, out_port, out_vc, flit) -> None:
        self.delivered.append((out_port, out_vc))

    def return_credit(self, node, in_port, wire_vc) -> None:
        pass


#: node id of the centre of the 3x3 probe mesh
_PROBE_NODE = 4

#: (input port, destination node) pairs covering every input->output flow
#: the centre router of a 3x3 mesh must support under XY routing
def _probe_flows(net: NetworkConfig) -> list[tuple[int, int]]:
    routing = XYRouting(net)
    flows = []
    for in_port in range(net.router.num_ports):
        for dest in range(net.num_nodes):
            if dest == _PROBE_NODE:
                out = PORT_LOCAL
            else:
                out = routing.output_port(_PROBE_NODE, dest)
            if in_port == out and in_port != PORT_LOCAL:
                continue  # U-turns don't occur under XY
            flows.append((in_port, dest))
    return flows


def functional_failure(
    router: ProtectedRouter,
    net: NetworkConfig,
    max_cycles: int = 60,
    flows: Optional[list[tuple[int, int]]] = None,
) -> bool:
    """Drive one probe packet through every (input, destination) flow.

    Returns True when some flow cannot deliver — the experimental
    counterpart of the Section VIII failure predicates.  The router's
    dynamic state is reset between probes so each flow is tested in
    isolation (fault state is preserved).  ``flows`` lets campaign loops
    pass the :func:`_probe_flows` list once instead of rebuilding the
    routing function per call.
    """
    if flows is None:
        flows = _probe_flows(net)
    for in_port, dest in flows:
        if not _flow_delivers(router, in_port, dest, max_cycles):
            return True
    return False


def _reset_dynamic_state(router: ProtectedRouter) -> None:
    """Clear buffers/pipeline state, keep the fault state."""
    cfg = router.config
    for ip in router.in_ports:
        for vc in ip.slots:
            vc.buffer.clear()
            vc._finish_packet()
        ip.nonidle = 0
    for op in router.out_ports:
        op.credits = [cfg.buffer_depth] * cfg.num_vcs
        op.allocated = [None] * cfg.num_vcs
    router._xb_queue.clear()
    router._nonidle = 0


def _flow_delivers(
    router: ProtectedRouter, in_port: int, dest: int, max_cycles: int
) -> bool:
    _reset_dynamic_state(router)
    sched = _CollectingScheduler()
    src = 3 if dest != 3 else 5  # any node != dest for packet validity
    pkt = Packet(src=src, dest=dest, size_flits=1)
    for flit in pkt.flits():
        router.receive_flit(in_port, 0, flit, 0)
    for cycle in range(max_cycles):
        sched.cycle = cycle
        router.xb_phase(sched, cycle)
        router.sa_phase(cycle)
        router.va_phase(cycle)
        router.rc_phase(cycle)
        if sched.delivered:
            return True
    return False


@dataclass(frozen=True)
class SimulatedSPF:
    """Result of the simulation-based faults-to-failure campaign."""

    mean: float
    std: float
    minimum: int
    maximum: int
    samples: np.ndarray


def _trial_counts_reference(
    config: RouterConfig,
    net: NetworkConfig,
    sites: list[FaultSite],
    trials: int,
    rng: np.random.Generator,
    max_cycles: int,
) -> np.ndarray:
    """Scalar oracle: fresh router per trial, one full probe sweep after
    *every* injection.  Kept as the reference :func:`_trial_counts` is
    pinned against (``tests/test_spf_simulation.py``)."""
    counts = np.empty(trials, dtype=np.int64)
    for t in range(trials):
        reset_packet_ids()
        router = ProtectedRouter(_PROBE_NODE, config, XYRouting(net))
        order = rng.permutation(len(sites))
        n = 0
        for i in order:
            router.inject_fault(sites[int(i)])
            n += 1
            if functional_failure(router, net, max_cycles=max_cycles):
                break
        counts[t] = n
    return counts


def _trial_counts(
    config: RouterConfig,
    net: NetworkConfig,
    sites: list[FaultSite],
    trials: int,
    rng: np.random.Generator,
    max_cycles: int,
) -> np.ndarray:
    """Fast campaign loop, bit-identical to :func:`_trial_counts_reference`.

    Three amortisations:

    * the routing function, probe-flow list and the router object are
      built once — trials restore pristine state through the router's
      ``reset()`` fast path (the warm-network reset, pinned equivalent
      to fresh construction by the golden tests);
    * each trial draws the same single ``rng.permutation`` as the
      reference, so the consumed random stream is unchanged;
    * the failure count is found by bisection over the fault-prefix
      length instead of probing after every injection.  Faults only
      remove capability (they set fault flags that disable resources and
      never clear others), so "prefix of length m fails" is monotone in
      ``m`` and the first failing prefix is the smallest failing one —
      O(log n) probe sweeps replace O(n).
    """
    routing = XYRouting(net)
    flows = _probe_flows(net)
    router = ProtectedRouter(_PROBE_NODE, config, routing)
    n_sites = len(sites)
    counts = np.empty(trials, dtype=np.int64)

    def fails(order: np.ndarray, m: int, injected: int) -> tuple[bool, int]:
        """Probe the prefix ``order[:m]``; router holds ``injected`` faults."""
        if m < injected:
            router.reset()
            injected = 0
        for i in order[injected:m]:
            router.inject_fault(sites[int(i)])
        failed = functional_failure(
            router, net, max_cycles=max_cycles, flows=flows
        )
        return failed, m

    for t in range(trials):
        reset_packet_ids()
        router.reset()
        order = rng.permutation(n_sites)
        failed, injected = fails(order, n_sites, 0)
        if not failed:
            counts[t] = n_sites  # reference's exhausted-sites fallback
            continue
        lo, hi = 0, n_sites  # healthy router passes; full set fails
        while hi - lo > 1:
            mid = (lo + hi) // 2
            failed, injected = fails(order, mid, injected)
            if failed:
                hi = mid
            else:
                lo = mid
        counts[t] = hi
    return counts


def simulated_faults_to_failure(
    config: RouterConfig | None = None,
    trials: int = 30,
    rng: np.random.Generator | int | None = None,
    include_va2: bool = False,
    max_cycles: int = 60,
    reference: bool = False,
) -> SimulatedSPF:
    """Monte-Carlo: inject random faults into a live router until a probe
    flow stops delivering.

    Much slower than the predicate-based MC (every step runs real probe
    traffic), so trial counts are modest; it exists to validate, not to
    replace, the analytical accounting.  ``reference=True`` selects the
    scalar oracle loop (same results, used by the golden-equality tests
    and the reliability benchmark).
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    config = config or RouterConfig()
    net = NetworkConfig(width=3, height=3, router=config)
    rng = np.random.default_rng(rng)
    sites = list(
        enumerate_sites(config, router=_PROBE_NODE, protected=True,
                        include_va2=include_va2)
    )
    runner = _trial_counts_reference if reference else _trial_counts
    counts = runner(config, net, sites, trials, rng, max_cycles)
    return SimulatedSPF(
        mean=float(counts.mean()),
        std=float(counts.std()),
        minimum=int(counts.min()),
        maximum=int(counts.max()),
        samples=counts,
    )
