"""Simulation-based faults-to-failure measurement.

The paper derives its faults-to-failure count *theoretically* ("For our
router, we used a theoretical approach ... based on the fault tolerant
methodology"), while noting that BulletProof and Vicis used "an
experimental approach through simulations".  This module provides that
experimental approach for the proposed router: inject faults one at a
time into a *live simulated* router and declare failure when the router
demonstrably stops doing its job — some input-to-output flow that the
mesh needs can no longer deliver flits.

This is a behavioural cross-check of the Section VIII predicates: the
two must agree (a predicate-failed router must fail functionally, and
vice versa), which :func:`functional_failure` lets tests assert, and the
Monte-Carlo mean here should track the predicate-based Monte-Carlo in
:mod:`repro.reliability.spf`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import NetworkConfig, PORT_LOCAL, RouterConfig
from ..core.protected_router import ProtectedRouter
from ..faults.sites import FaultSite, enumerate_sites
from ..router.flit import Packet, reset_packet_ids
from ..router.routing import XYRouting


class _CollectingScheduler:
    """Minimal scheduler for driving a lone router."""

    def __init__(self) -> None:
        self.cycle = 0
        self.delivered: list[tuple[int, int]] = []  # (out_port, out_vc)

    def deliver_flit(self, src_node, out_port, out_vc, flit) -> None:
        self.delivered.append((out_port, out_vc))

    def return_credit(self, node, in_port, wire_vc) -> None:
        pass


#: node id of the centre of the 3x3 probe mesh
_PROBE_NODE = 4

#: (input port, destination node) pairs covering every input->output flow
#: the centre router of a 3x3 mesh must support under XY routing
def _probe_flows(net: NetworkConfig) -> list[tuple[int, int]]:
    routing = XYRouting(net)
    flows = []
    for in_port in range(net.router.num_ports):
        for dest in range(net.num_nodes):
            if dest == _PROBE_NODE:
                out = PORT_LOCAL
            else:
                out = routing.output_port(_PROBE_NODE, dest)
            if in_port == out and in_port != PORT_LOCAL:
                continue  # U-turns don't occur under XY
            flows.append((in_port, dest))
    return flows


def functional_failure(
    router: ProtectedRouter,
    net: NetworkConfig,
    max_cycles: int = 60,
) -> bool:
    """Drive one probe packet through every (input, destination) flow.

    Returns True when some flow cannot deliver — the experimental
    counterpart of the Section VIII failure predicates.  The router's
    dynamic state is reset between probes so each flow is tested in
    isolation (fault state is preserved).
    """
    flows = _probe_flows(net)
    for in_port, dest in flows:
        if not _flow_delivers(router, in_port, dest, max_cycles):
            return True
    return False


def _reset_dynamic_state(router: ProtectedRouter) -> None:
    """Clear buffers/pipeline state, keep the fault state."""
    cfg = router.config
    for ip in router.in_ports:
        for vc in ip.slots:
            vc.buffer.clear()
            vc._finish_packet()
        ip.nonidle = 0
    for op in router.out_ports:
        op.credits = [cfg.buffer_depth] * cfg.num_vcs
        op.allocated = [None] * cfg.num_vcs
    router._xb_queue.clear()
    router._nonidle = 0


def _flow_delivers(
    router: ProtectedRouter, in_port: int, dest: int, max_cycles: int
) -> bool:
    _reset_dynamic_state(router)
    sched = _CollectingScheduler()
    src = 3 if dest != 3 else 5  # any node != dest for packet validity
    pkt = Packet(src=src, dest=dest, size_flits=1)
    for flit in pkt.flits():
        router.receive_flit(in_port, 0, flit, 0)
    for cycle in range(max_cycles):
        sched.cycle = cycle
        router.xb_phase(sched, cycle)
        router.sa_phase(cycle)
        router.va_phase(cycle)
        router.rc_phase(cycle)
        if sched.delivered:
            return True
    return False


@dataclass(frozen=True)
class SimulatedSPF:
    """Result of the simulation-based faults-to-failure campaign."""

    mean: float
    std: float
    minimum: int
    maximum: int
    samples: np.ndarray


def simulated_faults_to_failure(
    config: RouterConfig | None = None,
    trials: int = 30,
    rng: np.random.Generator | int | None = None,
    include_va2: bool = False,
    max_cycles: int = 60,
) -> SimulatedSPF:
    """Monte-Carlo: inject random faults into a live router until a probe
    flow stops delivering.

    Much slower than the predicate-based MC (every step runs real probe
    traffic), so trial counts are modest; it exists to validate, not to
    replace, the analytical accounting.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    config = config or RouterConfig()
    net = NetworkConfig(width=3, height=3, router=config)
    rng = np.random.default_rng(rng)
    sites = list(
        enumerate_sites(config, router=_PROBE_NODE, protected=True,
                        include_va2=include_va2)
    )
    counts = np.empty(trials, dtype=np.int64)
    for t in range(trials):
        reset_packet_ids()
        router = ProtectedRouter(_PROBE_NODE, config, XYRouting(net))
        order = rng.permutation(len(sites))
        n = 0
        for i in order:
            router.inject_fault(sites[int(i)])
            n += 1
            if functional_failure(router, net, max_cycles=max_cycles):
                break
        counts[t] = n
    return SimulatedSPF(
        mean=float(counts.mean()),
        std=float(counts.std()),
        minimum=int(counts.min()),
        maximum=int(counts.max()),
        samples=counts,
    )
