"""Network-level reliability analysis (extension beyond the paper).

The paper quantifies reliability per router (MTTF, SPF).  At system
scale the question becomes: how long until the *fabric* degrades — first
router lost, k routers lost, or the mesh disconnecting so that healthy
cores can no longer all reach each other.

This module Monte-Carlo-samples router lifetimes from the per-router FIT
rates (baseline: first pipeline fault kills a router; protected: the
two-component parallel model of paper Eq. 5) and combines them with the
topology's connectivity analysis (`networkx` strongly-connected check
after removing dead routers, matching XY-routed meshes where a dead
router forwards nothing).

Vectorised with NumPy: all router lifetimes for all trials are drawn in
one call; only the connectivity scan walks per-trial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from ..config import NetworkConfig
from ..network.topology import Topology
from .mttf import HOURS_PER_BILLION
from .stages import RouterGeometry, baseline_stages, correction_stages, total_fit


RouterModel = Literal["baseline", "protected"]


def sample_router_lifetimes(
    num_routers: int,
    trials: int,
    model: RouterModel = "protected",
    geom: RouterGeometry | None = None,
    rng: np.random.Generator | np.random.SeedSequence | int | None = None,
) -> np.ndarray:
    """Lifetimes in hours, shape (trials, num_routers).

    Baseline routers die at their first pipeline fault (rate = Table I
    total).  Protected routers die when both the pipeline and the
    correction circuitry have failed (max of two exponentials — the
    physically meaningful reading of paper Eq. 5).
    """
    if num_routers < 1 or trials < 1:
        raise ValueError("need >= 1 router and >= 1 trial")
    geom = geom or RouterGeometry()
    rng = np.random.default_rng(rng)
    l1 = total_fit(baseline_stages(geom)) / HOURS_PER_BILLION
    if model == "baseline":
        return rng.exponential(1.0 / l1, size=(trials, num_routers))
    if model == "protected":
        l2 = total_fit(correction_stages(geom)) / HOURS_PER_BILLION
        t1 = rng.exponential(1.0 / l1, size=(trials, num_routers))
        t2 = rng.exponential(1.0 / l2, size=(trials, num_routers))
        return np.maximum(t1, t2)
    raise ValueError(f"unknown router model {model!r}")


@dataclass(frozen=True)
class NetworkReliabilityReport:
    """Monte-Carlo summary of fabric-level failure times (hours)."""

    model: str
    num_routers: int
    trials: int
    mean_first_failure: float
    mean_kth_failure: float
    k: int
    mean_disconnection: float
    #: shard/timing breakdown when run through the parallel sweep engine
    sweep: object = None

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("mean time to first router failure (h)", self.mean_first_failure),
            (f"mean time to {self.k}-th router failure (h)", self.mean_kth_failure),
            ("mean time to mesh disconnection (h)", self.mean_disconnection),
        ]


def _fabric_trial_chunk(
    network: NetworkConfig,
    model: RouterModel,
    seeds: list[np.random.SeedSequence],
    k: int,
    geom: Optional[RouterGeometry],
) -> np.ndarray:
    """One worker chunk of fabric trials: (first, kth, disconnection)
    per trial, shape ``(len(seeds), 3)``.

    Each trial samples its lifetimes from its own spawned child seed, so
    the outcome is independent of how trials are chunked across workers.
    """
    n = network.num_nodes
    topo = Topology(network)
    out = np.empty((len(seeds), 3))
    for t, seed in enumerate(seeds):
        lifetimes = sample_router_lifetimes(n, 1, model, geom, seed)[0]
        order = np.sort(lifetimes)
        # kill routers in lifetime order until connectivity breaks
        killed: set[int] = set()
        ordering = np.argsort(lifetimes)
        disconnection = lifetimes[ordering[-1]]  # all dead fallback
        for idx in ordering:
            killed.add(int(idx))
            if not topo.is_connected(frozenset(killed)):
                disconnection = lifetimes[int(idx)]
                break
        out[t] = (order[0], order[k - 1], disconnection)
    return out


def analyze_network_reliability(
    network: NetworkConfig | None = None,
    model: RouterModel = "protected",
    trials: int = 500,
    k: int = 4,
    geom: RouterGeometry | None = None,
    rng: np.random.Generator | int | None = None,
    jobs: int | None = None,
) -> NetworkReliabilityReport:
    """Fabric-level failure-time statistics for one router model.

    *Disconnection* means the healthy routers no longer form a strongly
    connected sub-fabric (some healthy pair cannot communicate at all,
    even with ideal rerouting — a lower bound on XY's tolerance, which
    in practice disconnects even earlier).

    ``jobs`` shards the Monte-Carlo trials across worker processes
    (0 = all cores); per-trial ``SeedSequence.spawn`` seeding keeps the
    result bit-identical for any ``jobs`` value.
    """
    from ..experiments.parallel import (
        SweepTask,
        resolve_jobs,
        run_sweep,
        spawn_seeds,
    )

    network = network or NetworkConfig()
    n = network.num_nodes
    if not 1 <= k <= n:
        raise ValueError(f"k must be in 1..{n}")
    if trials < 1:
        raise ValueError("need at least one trial")
    seeds = spawn_seeds(rng, trials)
    n_jobs = min(resolve_jobs(jobs), trials)
    n_chunks = 1 if n_jobs == 1 else min(trials, n_jobs * 4)
    bounds = np.linspace(0, trials, n_chunks + 1).astype(int)
    tasks = [
        SweepTask(
            index=i,
            fn=_fabric_trial_chunk,
            args=(network, model, seeds[a:b], k, geom),
            label=f"trials[{a}:{b}]",
        )
        for i, (a, b) in enumerate(zip(bounds[:-1], bounds[1:]))
    ]
    chunks, report = run_sweep(tasks, jobs=jobs)
    rows = np.concatenate(chunks)
    return NetworkReliabilityReport(
        model=model,
        num_routers=n,
        trials=trials,
        mean_first_failure=float(rows[:, 0].mean()),
        mean_kth_failure=float(rows[:, 1].mean()),
        k=k,
        mean_disconnection=float(rows[:, 2].mean()),
        sweep=report,
    )


def protection_gain(
    network: NetworkConfig | None = None,
    trials: int = 300,
    rng: int = 1,
) -> dict[str, float]:
    """Fabric-level gains of the protected router over the baseline."""
    network = network or NetworkConfig()
    base = analyze_network_reliability(
        network, "baseline", trials=trials, rng=rng
    )
    prot = analyze_network_reliability(
        network, "protected", trials=trials, rng=rng + 1
    )
    return {
        "first_failure": prot.mean_first_failure / base.mean_first_failure,
        "kth_failure": prot.mean_kth_failure / base.mean_kth_failure,
        "disconnection": prot.mean_disconnection / base.mean_disconnection,
    }
