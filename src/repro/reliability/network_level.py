"""Network-level reliability analysis (extension beyond the paper).

The paper quantifies reliability per router (MTTF, SPF).  At system
scale the question becomes: how long until the *fabric* degrades — first
router lost, k routers lost, or the mesh disconnecting so that healthy
cores can no longer all reach each other.

This module Monte-Carlo-samples router lifetimes from the per-router FIT
rates (baseline: first pipeline fault kills a router; protected: the
two-component parallel model of paper Eq. 5) and combines them with the
topology's connectivity analysis (`networkx` strongly-connected check
after removing dead routers, matching XY-routed meshes where a dead
router forwards nothing).

Vectorised with NumPy: all router lifetimes for all trials are drawn in
one call; only the connectivity scan walks per-trial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from ..config import NetworkConfig
from ..network.topology import Topology
from .mttf import HOURS_PER_BILLION
from .stages import RouterGeometry, baseline_stages, correction_stages, total_fit


RouterModel = Literal["baseline", "protected"]


def sample_router_lifetimes(
    num_routers: int,
    trials: int,
    model: RouterModel = "protected",
    geom: RouterGeometry | None = None,
    rng: np.random.Generator | np.random.SeedSequence | int | None = None,
) -> np.ndarray:
    """Lifetimes in hours, shape (trials, num_routers).

    Baseline routers die at their first pipeline fault (rate = Table I
    total).  Protected routers die when both the pipeline and the
    correction circuitry have failed (max of two exponentials — the
    physically meaningful reading of paper Eq. 5).
    """
    if num_routers < 1 or trials < 1:
        raise ValueError("need >= 1 router and >= 1 trial")
    geom = geom or RouterGeometry()
    rng = np.random.default_rng(rng)
    l1 = total_fit(baseline_stages(geom)) / HOURS_PER_BILLION
    if model == "baseline":
        return rng.exponential(1.0 / l1, size=(trials, num_routers))
    if model == "protected":
        l2 = total_fit(correction_stages(geom)) / HOURS_PER_BILLION
        t1 = rng.exponential(1.0 / l1, size=(trials, num_routers))
        t2 = rng.exponential(1.0 / l2, size=(trials, num_routers))
        return np.maximum(t1, t2)
    raise ValueError(f"unknown router model {model!r}")


@dataclass(frozen=True)
class NetworkReliabilityReport:
    """Monte-Carlo summary of fabric-level failure times (hours)."""

    model: str
    num_routers: int
    trials: int
    mean_first_failure: float
    mean_kth_failure: float
    k: int
    mean_disconnection: float
    #: shard/timing breakdown when run through the parallel sweep engine
    sweep: object = None

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("mean time to first router failure (h)", self.mean_first_failure),
            (f"mean time to {self.k}-th router failure (h)", self.mean_kth_failure),
            ("mean time to mesh disconnection (h)", self.mean_disconnection),
        ]


def _fabric_trial_chunk_reference(
    network: NetworkConfig,
    model: RouterModel,
    seeds: list[np.random.SeedSequence],
    k: int,
    geom: Optional[RouterGeometry],
) -> np.ndarray:
    """Scalar oracle for :func:`_fabric_trial_chunk`: per-trial Python
    loop with a full `networkx` connectivity check after every kill.

    Kept as the reference the vectorized kernel is pinned against
    (``tests/test_network_reliability.py``); also the fallback for
    topologies whose link wiring is not symmetric.
    """
    n = network.num_nodes
    topo = Topology(network)
    out = np.empty((len(seeds), 3))
    for t, seed in enumerate(seeds):
        lifetimes = sample_router_lifetimes(n, 1, model, geom, seed)[0]
        order = np.sort(lifetimes)
        # kill routers in lifetime order until connectivity breaks
        killed: set[int] = set()
        ordering = np.argsort(lifetimes)
        disconnection = lifetimes[ordering[-1]]  # all dead fallback
        for idx in ordering:
            killed.add(int(idx))
            if not topo.is_connected(frozenset(killed)):
                disconnection = lifetimes[int(idx)]
                break
        out[t] = (order[0], order[k - 1], disconnection)
    return out


def _links_symmetric(topo: Topology) -> bool:
    """True when every unidirectional link has its reverse twin.

    Mesh/torus wiring always does; symmetry makes strong connectivity of
    the healthy sub-fabric equal to plain undirected connectivity, which
    the union-find kernel relies on.
    """
    links = topo.links
    return all(links.get((b, q)) == (a, p) for (a, p), (b, q) in links.items())


def _undirected_neighbors(topo: Topology) -> list[list[int]]:
    """Adjacency lists of the undirected fabric graph."""
    n = topo.config.num_nodes
    neigh: list[set[int]] = [set() for _ in range(n)]
    for (a, _), (b, _) in topo.links.items():
        neigh[a].add(b)
        neigh[b].add(a)
    return [sorted(s) for s in neigh]


def _first_disconnecting_kill(
    ordering: np.ndarray, neighbors: list[list[int]]
) -> int:
    """First kill count (1-based) at which the survivors disconnect; 0 if
    the fabric stays connected through every prefix.

    Routers die in ``ordering`` order.  Survivor connectivity is *not*
    monotone in the death count — one or zero survivors count as
    connected again — so a bisection is unsound; instead one reverse
    pass re-adds routers to a union-find (O(n alpha) total, vs. a full
    graph rebuild + SCC scan per kill in the reference) and records
    connectivity for *every* prefix, then the forward-first failure wins.
    """
    n = len(neighbors)
    parent = list(range(n))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    alive = [False] * n
    components = 0
    connected = [True] * (n + 1)  # connected[j]: first j dead
    for j in range(n - 1, -1, -1):
        r = int(ordering[j])
        alive[r] = True
        components += 1
        for nb in neighbors[r]:
            if alive[nb]:
                ra, rb = find(r), find(nb)
                if ra != rb:
                    parent[ra] = rb
                    components -= 1
        connected[j] = (n - j) <= 1 or components == 1
    for i in range(1, n + 1):
        if not connected[i]:
            return i
    return 0


def _fabric_trial_chunk(
    network: NetworkConfig,
    model: RouterModel,
    seeds: list[np.random.SeedSequence],
    k: int,
    geom: Optional[RouterGeometry],
) -> np.ndarray:
    """One worker chunk of fabric trials: (first, kth, disconnection)
    per trial, shape ``(len(seeds), 3)``.

    Each trial samples its lifetimes from its own spawned child seed, so
    the outcome is independent of how trials are chunked across workers.
    Lifetime draws keep the per-seed streams of the reference; the
    first/k-th columns come from one batched sort and disconnection from
    a union-find pass per trial — bit-identical to
    :func:`_fabric_trial_chunk_reference` (golden test) and ~10-100x
    faster than its per-kill `networkx` rebuilds.
    """
    n = network.num_nodes
    topo = Topology(network)
    if not _links_symmetric(topo):  # exotic topology: keep the oracle
        return _fabric_trial_chunk_reference(network, model, seeds, k, geom)
    neighbors = _undirected_neighbors(topo)
    trials = len(seeds)
    lifetimes = np.empty((trials, n))
    for t, seed in enumerate(seeds):
        lifetimes[t] = sample_router_lifetimes(n, 1, model, geom, seed)[0]
    order = np.sort(lifetimes, axis=1)
    ordering = np.argsort(lifetimes, axis=1)
    out = np.empty((trials, 3))
    out[:, 0] = order[:, 0]
    out[:, 1] = order[:, k - 1]
    for t in range(trials):
        i = _first_disconnecting_kill(ordering[t], neighbors)
        idx = ordering[t, i - 1] if i else ordering[t, -1]
        out[t, 2] = lifetimes[t, idx]
    return out


def analyze_network_reliability(
    network: NetworkConfig | None = None,
    model: RouterModel = "protected",
    trials: int = 500,
    k: int = 4,
    geom: RouterGeometry | None = None,
    rng: np.random.Generator | int | None = None,
    jobs: int | None = None,
) -> NetworkReliabilityReport:
    """Fabric-level failure-time statistics for one router model.

    *Disconnection* means the healthy routers no longer form a strongly
    connected sub-fabric (some healthy pair cannot communicate at all,
    even with ideal rerouting — a lower bound on XY's tolerance, which
    in practice disconnects even earlier).

    ``jobs`` shards the Monte-Carlo trials across worker processes
    (0 = all cores); per-trial ``SeedSequence.spawn`` seeding keeps the
    result bit-identical for any ``jobs`` value.
    """
    from ..experiments.parallel import (
        SweepTask,
        resolve_jobs,
        run_sweep,
        spawn_seeds,
    )

    network = network or NetworkConfig()
    n = network.num_nodes
    if not 1 <= k <= n:
        raise ValueError(f"k must be in 1..{n}")
    if trials < 1:
        raise ValueError("need at least one trial")
    seeds = spawn_seeds(rng, trials)
    n_jobs = min(resolve_jobs(jobs), trials)
    n_chunks = 1 if n_jobs == 1 else min(trials, n_jobs * 4)
    bounds = np.linspace(0, trials, n_chunks + 1).astype(int)
    tasks = [
        SweepTask(
            index=i,
            fn=_fabric_trial_chunk,
            args=(network, model, seeds[a:b], k, geom),
            label=f"trials[{a}:{b}]",
        )
        for i, (a, b) in enumerate(zip(bounds[:-1], bounds[1:]))
    ]
    chunks, report = run_sweep(tasks, jobs=jobs)
    rows = np.concatenate(chunks)
    return NetworkReliabilityReport(
        model=model,
        num_routers=n,
        trials=trials,
        mean_first_failure=float(rows[:, 0].mean()),
        mean_kth_failure=float(rows[:, 1].mean()),
        k=k,
        mean_disconnection=float(rows[:, 2].mean()),
        sweep=report,
    )


def protection_gain(
    network: NetworkConfig | None = None,
    trials: int = 300,
    rng: int = 1,
) -> dict[str, float]:
    """Fabric-level gains of the protected router over the baseline."""
    network = network or NetworkConfig()
    base = analyze_network_reliability(
        network, "baseline", trials=trials, rng=rng
    )
    prot = analyze_network_reliability(
        network, "protected", trials=trials, rng=rng + 1
    )
    return {
        "first_failure": prot.mean_first_failure / base.mean_first_failure,
        "kth_failure": prot.mean_kth_failure / base.mean_kth_failure,
        "disconnection": prot.mean_disconnection / base.mean_disconnection,
    }
