"""FORC — Failure-in-time Of a Reference Circuit (paper Section VII-A).

Implements the paper's Equation 2, the TDDB (time-dependent dielectric
breakdown) failure-rate model from Shin et al. [19] with the fitting
parameters derived by Wu et al. [20] / Srinivasan et al. [21]:

    FORC_TDDB = (1e9 / A_TDDB) * Vdd^(a - b*T) * exp(-(X + Y/T + Z*T) / (k*T))

and Equation 3:

    FIT_TDDB_per_FET = duty_cycle * FORC_TDDB

The paper cites the fitting parameters without printing them; we use the
published RAMP/Srinivasan TDDB set (a = 78, b = -0.081, X = 0.759 eV,
Y = -66.8 eV*K, Z = -8.37e-4 eV/K).  The remaining normalisation constant
``A_TDDB`` is calibrated once so that at the paper's operating point
(Vdd = 1 V, T = 300 K, 100 % duty cycle) the per-FET FIT reproduces the
component FIT values of the paper's Table I (0.1 FIT per transistor — see
:mod:`repro.reliability.components` for the inference).  With the model in
hand, FIT values scale correctly with voltage, temperature and duty cycle,
which the extension experiments exploit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


#: Boltzmann constant in eV/K (the fitting parameters are in eV).
BOLTZMANN_EV = 8.617e-5

#: The paper's operating point (Section VII-A).
PAPER_VDD = 1.0
PAPER_TEMP_K = 300.0

#: Per-FET FIT at the paper's operating point, 100 % duty cycle, inferred
#: from Table I (e.g. 6-bit comparator: 117 transistors -> 11.7 FIT).
PAPER_FIT_PER_FET = 0.1


@dataclass(frozen=True)
class TDDBParameters:
    """Fitting parameters of the TDDB FORC model (RAMP / Srinivasan 2004).

    ``a_tddb`` is the normalisation constant (see module docstring); the
    default is calibrated so the paper's operating point yields
    :data:`PAPER_FIT_PER_FET`.
    """

    a: float = 78.0
    b: float = -0.081
    x: float = 0.759  # eV
    y: float = -66.8  # eV * K
    z: float = -8.37e-4  # eV / K
    a_tddb: float = 1.0  # placeholder; see calibrated() below

    def raw_forc(self, vdd: float, temp_k: float) -> float:
        """Equation 2 without the 1e9/A_TDDB prefactor."""
        if vdd <= 0:
            raise ValueError("Vdd must be positive")
        if temp_k <= 0:
            raise ValueError("temperature must be positive kelvin")
        exponent = -(self.x + self.y / temp_k + self.z * temp_k) / (
            BOLTZMANN_EV * temp_k
        )
        return vdd ** (self.a - self.b * temp_k) * math.exp(exponent)

    def forc(self, vdd: float, temp_k: float) -> float:
        """Equation 2: FIT rate of the reference circuit."""
        return (1e9 / self.a_tddb) * self.raw_forc(vdd, temp_k)


def calibrated_parameters(
    fit_per_fet: float = PAPER_FIT_PER_FET,
    vdd: float = PAPER_VDD,
    temp_k: float = PAPER_TEMP_K,
) -> TDDBParameters:
    """TDDB parameters with ``A_TDDB`` calibrated to the paper's Table I.

    Solves ``fit_per_fet == 1e9 / A_TDDB * raw_forc(vdd, T)`` for
    ``A_TDDB`` (duty cycle 1, per Section VII-A's "continuous device
    stress (100 % duty cycle)").
    """
    if fit_per_fet <= 0:
        raise ValueError("target FIT must be positive")
    base = TDDBParameters()
    a_tddb = 1e9 * base.raw_forc(vdd, temp_k) / fit_per_fet
    return TDDBParameters(
        a=base.a, b=base.b, x=base.x, y=base.y, z=base.z, a_tddb=a_tddb
    )


#: Module-level default: the calibrated paper model.
DEFAULT_TDDB = calibrated_parameters()


def fit_per_fet(
    vdd: float = PAPER_VDD,
    temp_k: float = PAPER_TEMP_K,
    duty_cycle: float = 1.0,
    params: TDDBParameters = DEFAULT_TDDB,
) -> float:
    """Equation 3: FIT of one FET = duty_cycle * FORC_TDDB."""
    if not 0.0 <= duty_cycle <= 1.0:
        raise ValueError("duty cycle must be in [0, 1]")
    return duty_cycle * params.forc(vdd, temp_k)
