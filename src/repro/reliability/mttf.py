"""MTTF analysis (paper Section VII, Equations 1 and 4-7).

* Equation 1: ``MTTF = 1 / FIT`` (FIT in failures per 1e9 hours, so
  ``MTTF_hours = 1e9 / FIT``).
* Equation 4: baseline router — SOFR over the four pipeline stages; any
  single fault is fatal.
* Equation 5: the protected router keeps working while *either* the
  baseline pipeline *or* the correction circuitry is fault-free; the paper
  computes

      MTTF = 1/l1 + 1/l2 + 1/(l1 + l2)                       (paper Eq. 5)

  Note: the standard expected maximum of two independent exponential
  lifetimes is ``1/l1 + 1/l2 - 1/(l1+l2)`` (minus, not plus).  The paper's
  plus sign is what produces its headline 2,190,696 h / ~6x numbers, so
  :func:`mttf_two_component_paper` reproduces it exactly, while
  :func:`mttf_two_component_exact` provides the textbook formula
  (1,614,009 h, ~4.6x) and :func:`monte_carlo_mttf` validates the exact
  formula by sampling.  EXPERIMENTS.md discusses the discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .stages import RouterGeometry, baseline_stages, correction_stages, total_fit


HOURS_PER_BILLION = 1e9


def mttf_from_fit(fit: float) -> float:
    """Equation 1: MTTF in hours from a FIT rate (failures / 1e9 h)."""
    if fit <= 0:
        raise ValueError("FIT must be positive")
    return HOURS_PER_BILLION / fit


def mttf_two_component_paper(fit1: float, fit2: float) -> float:
    """Paper Equation 5 (as printed): 1/l1 + 1/l2 + 1/(l1+l2), in hours."""
    if fit1 <= 0 or fit2 <= 0:
        raise ValueError("FIT rates must be positive")
    return HOURS_PER_BILLION * (1 / fit1 + 1 / fit2 + 1 / (fit1 + fit2))


def mttf_two_component_exact(fit1: float, fit2: float) -> float:
    """E[max(T1, T2)] for independent exponentials: 1/l1 + 1/l2 - 1/(l1+l2)."""
    if fit1 <= 0 or fit2 <= 0:
        raise ValueError("FIT rates must be positive")
    return HOURS_PER_BILLION * (1 / fit1 + 1 / fit2 - 1 / (fit1 + fit2))


@dataclass(frozen=True)
class MTTFReport:
    """Everything the Section VII reproduction reports."""

    baseline_fit: float
    correction_fit: float
    mttf_baseline_hours: float
    mttf_protected_hours: float
    mttf_protected_exact_hours: float
    improvement: float
    improvement_exact: float

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("baseline pipeline FIT", self.baseline_fit),
            ("correction circuitry FIT", self.correction_fit),
            ("MTTF baseline (h)", self.mttf_baseline_hours),
            ("MTTF protected, paper Eq.5 (h)", self.mttf_protected_hours),
            ("MTTF protected, exact E[max] (h)", self.mttf_protected_exact_hours),
            ("improvement (paper)", self.improvement),
            ("improvement (exact)", self.improvement_exact),
        ]


def analyze_mttf(geom: RouterGeometry | None = None, **fit_kwargs) -> MTTFReport:
    """Run the full Section VII analysis for a router geometry."""
    geom = geom or RouterGeometry()
    l1 = total_fit(baseline_stages(geom), **fit_kwargs)
    l2 = total_fit(correction_stages(geom), **fit_kwargs)
    base = mttf_from_fit(l1)
    prot = mttf_two_component_paper(l1, l2)
    prot_exact = mttf_two_component_exact(l1, l2)
    return MTTFReport(
        baseline_fit=l1,
        correction_fit=l2,
        mttf_baseline_hours=base,
        mttf_protected_hours=prot,
        mttf_protected_exact_hours=prot_exact,
        improvement=prot / base,
        improvement_exact=prot_exact / base,
    )


def monte_carlo_mttf(
    fit1: float,
    fit2: float,
    samples: int = 200_000,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Sampled E[max(T1, T2)] in hours (validates the exact formula).

    Lifetimes are exponential with rates ``fit/1e9`` per hour; the system
    (paper's model) survives until *both* the pipeline and the correction
    circuitry have failed.
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    rng = np.random.default_rng(rng)
    t1 = rng.exponential(HOURS_PER_BILLION / fit1, size=samples)
    t2 = rng.exponential(HOURS_PER_BILLION / fit2, size=samples)
    return float(np.maximum(t1, t2).mean())


def monte_carlo_mttf_reference(
    fit1: float,
    fit2: float,
    samples: int = 200_000,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Scalar oracle for :func:`monte_carlo_mttf`: one draw per call.

    ``Generator.exponential`` fills batched requests element by element
    from the same bitstream, so the scalar loop consumes the identical
    stream and the two paths return bit-equal means (pinned by
    ``tests/test_reliability.py``); the batched version only amortises
    the per-call overhead away.
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    rng = np.random.default_rng(rng)
    s1 = HOURS_PER_BILLION / fit1
    s2 = HOURS_PER_BILLION / fit2
    t1 = np.array([rng.exponential(s1) for _ in range(samples)])
    t2 = np.array([rng.exponential(s2) for _ in range(samples)])
    return float(np.maximum(t1, t2).mean())


def reliability_curve(
    fit: float, hours: np.ndarray
) -> np.ndarray:
    """Survival probability R(t) = exp(-l t) for a SOFR component."""
    lam = fit / HOURS_PER_BILLION
    return np.exp(-lam * np.asarray(hours, dtype=float))


def protected_reliability_curve(
    fit1: float, fit2: float, hours: np.ndarray
) -> np.ndarray:
    """R(t) of the two-component parallel system (either part alive)."""
    r1 = reliability_curve(fit1, hours)
    r2 = reliability_curve(fit2, hours)
    return r1 + r2 - r1 * r2
