"""Command-line simulation driver: ``python -m repro.tools``.

A downstream-user front end for one-off simulations without writing a
script: pick mesh size, router flavour, routing, traffic, load, fault
count — get the latency/throughput report and the fault-tolerance
mechanism counters.

Examples::

    python -m repro.tools --width 8 --height 8 --rate 0.1
    python -m repro.tools --router protected --faults 32 --pattern hotspot
    python -m repro.tools --app ocean --routing west_first --cycles 5000
    python -m repro.tools --router baseline --faults 1 --watchdog 2000
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from .config import NetworkConfig, RouterConfig, SimulationConfig
from .core.protected_router import protected_router_factory
from .faults.injector import RandomFaultSchedule
from .network.simulator import NoCSimulator, baseline_router_factory
from .traffic.apps import make_app_traffic
from .traffic.generator import COHERENCE_MIX, SINGLE_FLIT_MIX, SyntheticTraffic
from .traffic.patterns import available_patterns, make_pattern


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description="Run one NoC simulation and print the report.",
    )
    p.add_argument("--width", type=int, default=8, help="mesh width")
    p.add_argument("--height", type=int, default=8, help="mesh height")
    p.add_argument("--vcs", type=int, default=4, help="VCs per input port")
    p.add_argument("--vnets", type=int, default=1, help="virtual networks")
    p.add_argument("--buffer-depth", type=int, default=4, help="flits per VC")
    p.add_argument(
        "--topology", choices=["mesh", "torus"], default="mesh"
    )
    p.add_argument(
        "--router",
        choices=["protected", "baseline"],
        default="protected",
        help="the paper's fault-tolerant router or the unprotected baseline",
    )
    p.add_argument(
        "--routing",
        choices=["xy", "yx", "west_first"],
        default="xy",
    )
    p.add_argument(
        "--pattern",
        choices=available_patterns(),
        default="uniform_random",
        help="synthetic spatial pattern (ignored with --app)",
    )
    p.add_argument(
        "--app",
        default=None,
        help="SPLASH-2/PARSEC surrogate app (overrides --pattern/--rate)",
    )
    p.add_argument(
        "--rate", type=float, default=0.08, help="flits/node/cycle"
    )
    p.add_argument(
        "--coherence-mix",
        action="store_true",
        help="1-flit control + 5-flit data packets (needs --vnets 2)",
    )
    p.add_argument("--cycles", type=int, default=10_000, help="measured cycles")
    p.add_argument("--warmup", type=int, default=1_000)
    p.add_argument("--drain", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--faults",
        type=int,
        default=0,
        help="random tolerated faults injected during warmup",
    )
    p.add_argument(
        "--allow-fatal-faults",
        action="store_true",
        help="let random faults form router-killing combinations",
    )
    p.add_argument("--watchdog", type=int, default=100_000)
    return p


def run(args: argparse.Namespace):
    net = NetworkConfig(
        width=args.width,
        height=args.height,
        topology=args.topology,
        router=RouterConfig(
            num_vcs=args.vcs,
            num_vnets=args.vnets,
            buffer_depth=args.buffer_depth,
        ),
    )
    sim_cfg = SimulationConfig(
        warmup_cycles=args.warmup,
        measure_cycles=args.cycles,
        drain_cycles=args.drain,
        seed=args.seed,
        watchdog_cycles=args.watchdog,
    )
    if args.app:
        traffic = make_app_traffic(net, args.app, rng=args.seed)
    else:
        mix = COHERENCE_MIX if args.coherence_mix else SINGLE_FLIT_MIX
        traffic = SyntheticTraffic(
            net,
            injection_rate=args.rate,
            pattern=make_pattern(args.pattern, net),
            mix=mix,
            rng=args.seed,
        )
    schedule = None
    if args.faults:
        schedule = RandomFaultSchedule(
            net.router,
            net.num_nodes,
            mean_interval=max(1.0, args.warmup / (2 * args.faults)),
            num_faults=args.faults,
            rng=args.seed + 7919,
            first_fault_at=0,
            avoid_failure=not args.allow_fatal_faults,
        )
    factory = (
        protected_router_factory(net)
        if args.router == "protected"
        else baseline_router_factory(net)
    )
    sim = NoCSimulator(
        net,
        sim_cfg,
        traffic,
        router_factory=factory,
        fault_schedule=schedule,
        routing_kind=args.routing,
    )
    t0 = time.time()
    result = sim.run()
    elapsed = time.time() - t0
    return net, sim_cfg, result, elapsed


def report(net, sim_cfg, result, elapsed) -> str:
    stats = result.stats
    rs = result.router_stats
    lines = [
        f"fabric                : {net.width}x{net.height} {net.topology}, "
        f"{net.router.num_vcs} VCs, {net.router.num_vnets} vnet(s)",
        f"cycles simulated      : {result.cycles} "
        f"({result.cycles / max(elapsed, 1e-9):,.0f} cycles/s)",
        f"faults injected       : {result.faults_injected}",
        f"packets (created/ejected): {stats.packets_created}/"
        f"{stats.packets_ejected}",
        f"avg network latency   : {stats.avg_network_latency:.2f} cycles",
        f"avg total latency     : {stats.avg_total_latency:.2f} cycles",
        f"avg hops              : {stats.avg_hops:.2f}",
        f"throughput            : "
        f"{stats.flits_ejected / (sim_cfg.measure_cycles * net.num_nodes):.4f}"
        " flits/node/cycle",
        f"status                : "
        + ("BLOCKED (watchdog tripped)" if result.blocked
           else "drained" if result.drained else "drain budget exhausted"),
    ]
    if result.faults_injected:
        lines += [
            "fault-tolerance mechanisms:",
            f"  duplicate RC computations : {rs.rc_duplicate_computations}",
            f"  borrowed VA allocations   : {rs.va_borrowed_grants}",
            f"  VA stage-2 retries        : {rs.va_stage2_fault_retries}",
            f"  SA bypass grants          : {rs.sa_bypass_grants}",
            f"  VC transfers              : {rs.vc_transfers}",
            f"  secondary-path crossings  : {rs.secondary_path_grants}",
        ]
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    net, sim_cfg, result, elapsed = run(args)
    print(report(net, sim_cfg, result, elapsed))
    return 2 if result.blocked else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
