"""``repro.observability`` — zero-cost-when-disabled introspection layer.

Three cooperating subsystems, all off by default:

* :mod:`~repro.observability.events` — a flit-lifecycle event tracer
  (inject → RC → VA → SA → XB → link → eject) with bounded ring-buffer
  storage and Chrome ``trace_event`` export
  (:mod:`~repro.observability.trace`) viewable in Perfetto;
* :mod:`~repro.observability.metrics` — a counters/gauges/histograms
  registry capturing per-router per-stage occupancy, stall causes,
  VA/SA retries, and fault-path activations, merged deterministically
  across parallel sweep shards;
* :mod:`~repro.observability.profiler` — sampled wall-time profiling of
  the simulator's per-cycle phases.

**Cost discipline:** every instrumentation site in the simulator, router
pipeline, allocators, and NIC is guarded by a single ``x is None``
attribute check; with everything disabled (the default) those checks are
the *entire* overhead — pinned to <= 5 % by
``benchmarks/bench_observability.py``.

**Enabling:** pass an :class:`Observability` to
:class:`~repro.network.simulator.NoCSimulator`, or flip the process-wide
default with :func:`configure` (the ``--metrics-out`` / ``--trace-out`` /
``--profile`` flags on ``python -m repro.experiments`` do the latter).
The global configuration is mirrored into the ``REPRO_OBSERVABILITY``
environment variable so ``spawn``-started sweep workers inherit it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional

from .events import (
    DEFAULT_CAPACITY,
    EVENT_KINDS,
    EVENT_SCHEMA,
    EventTracer,
)
from .metrics import DEFAULT_EDGES, Histogram, MetricsRegistry, merge_snapshots
from .profiler import DEFAULT_SAMPLE_EVERY, StageProfiler, merge_profiles

__all__ = [
    "DEFAULT_EDGES",
    "EVENT_KINDS",
    "EVENT_SCHEMA",
    "EventTracer",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "ObservabilityConfig",
    "StageProfiler",
    "configure",
    "global_config",
    "maybe_create",
    "merge_exports",
    "merge_snapshots",
    "reset",
]

ENV_VAR = "REPRO_OBSERVABILITY"
ENV_CAPACITY_VAR = "REPRO_TRACE_CAPACITY"

#: occupancy sampling stride (cycles) when metrics are enabled
OCCUPANCY_SAMPLE_EVERY = 64

#: bucket edges for buffered-flit occupancy histograms
OCCUPANCY_EDGES = (0, 1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class ObservabilityConfig:
    """Which subsystems are on, and their knobs."""

    trace: bool = False
    metrics: bool = False
    profile: bool = False
    trace_capacity: int = DEFAULT_CAPACITY
    occupancy_sample_every: int = OCCUPANCY_SAMPLE_EVERY
    profile_sample_every: int = DEFAULT_SAMPLE_EVERY

    @property
    def enabled(self) -> bool:
        return self.trace or self.metrics or self.profile


def _config_from_env() -> ObservabilityConfig:
    raw = os.environ.get(ENV_VAR, "")
    flags = {f.strip() for f in raw.split(",") if f.strip()}
    capacity = int(os.environ.get(ENV_CAPACITY_VAR, DEFAULT_CAPACITY))
    return ObservabilityConfig(
        trace="trace" in flags,
        metrics="metrics" in flags,
        profile="profile" in flags,
        trace_capacity=capacity,
    )


#: process-wide default configuration (inherited by fork *and*, via the
#: environment mirror, by spawn-started sweep workers)
_GLOBAL: ObservabilityConfig = _config_from_env()


def global_config() -> ObservabilityConfig:
    return _GLOBAL


def configure(**changes: object) -> ObservabilityConfig:
    """Update the process-wide default config; returns the new config.

    Accepts any :class:`ObservabilityConfig` field as a keyword.  The
    enabled-subsystem set and trace capacity are mirrored into the
    environment so worker processes started with the ``spawn`` method
    (which re-import this module) see the same configuration.
    """
    global _GLOBAL
    _GLOBAL = replace(_GLOBAL, **changes)  # type: ignore[arg-type]
    flags = [
        name
        for name, on in (
            ("trace", _GLOBAL.trace),
            ("metrics", _GLOBAL.metrics),
            ("profile", _GLOBAL.profile),
        )
        if on
    ]
    if flags:
        os.environ[ENV_VAR] = ",".join(flags)
        os.environ[ENV_CAPACITY_VAR] = str(_GLOBAL.trace_capacity)
    else:
        os.environ.pop(ENV_VAR, None)
        os.environ.pop(ENV_CAPACITY_VAR, None)
    return _GLOBAL


def reset() -> ObservabilityConfig:
    """Restore the all-disabled default (test isolation helper)."""
    global _GLOBAL
    os.environ.pop(ENV_VAR, None)
    os.environ.pop(ENV_CAPACITY_VAR, None)
    _GLOBAL = ObservabilityConfig()
    return _GLOBAL


def maybe_create(
    config: Optional[ObservabilityConfig] = None,
) -> Optional["Observability"]:
    """An :class:`Observability` per the (global) config, or ``None``.

    Returning ``None`` when everything is disabled is what makes the
    disabled path free: the simulator stores the ``None`` and every
    instrumentation site reduces to one attribute check.
    """
    cfg = config if config is not None else _GLOBAL
    if not cfg.enabled:
        return None
    return Observability(cfg)


class Observability:
    """One run's tracer + metrics + profiler bundle."""

    __slots__ = ("config", "tracer", "metrics", "profiler")

    def __init__(self, config: Optional[ObservabilityConfig] = None) -> None:
        cfg = config if config is not None else ObservabilityConfig(
            trace=True, metrics=True, profile=True
        )
        self.config = cfg
        self.tracer: Optional[EventTracer] = (
            EventTracer(cfg.trace_capacity) if cfg.trace else None
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if cfg.metrics else None
        )
        self.profiler: Optional[StageProfiler] = (
            StageProfiler(cfg.profile_sample_every) if cfg.profile else None
        )

    # ------------------------------------------------------------------
    # simulator hooks
    # ------------------------------------------------------------------
    def on_cycle(self, sim, cycle: int) -> None:
        """Periodic in-run sampling (called once per simulated cycle).

        Samples per-router buffered-flit occupancy and per-stage VC-state
        counts every ``occupancy_sample_every`` cycles.  Sampling depends
        only on the simulation state, so it is deterministic and merges
        bit-identically across shardings.
        """
        m = self.metrics
        if m is None or cycle % self.config.occupancy_sample_every:
            return
        from ..router.vc import VCState

        for router in sim.routers:
            node = router.node
            occ = router.buffered_flits()
            m.observe(
                "router.occupancy_flits", occ, OCCUPANCY_EDGES, router=node
            )
            if not router.busy:
                continue
            for in_port in router.in_ports:
                for vc in in_port.slots:
                    state = vc.state
                    if state != VCState.IDLE:
                        m.inc(
                            "router.stage_occupancy",
                            1,
                            router=node,
                            stage=state.name.lower(),
                        )

    def finalize_run(self, sim) -> None:
        """Harvest end-of-run counters from the fabric into the registry.

        Reading the per-router :class:`~repro.router.router.RouterStats`
        after the run costs nothing during simulation; only the sampled
        occupancy above needs in-loop work.
        """
        m = self.metrics
        if m is None:
            return
        for router in sim.routers:
            node = router.node
            stats = router.stats
            for name in type(stats).__dataclass_fields__:
                value = getattr(stats, name)
                if value:
                    m.inc(f"router.{name}", value, router=node)
            plans = getattr(router.crossbar, "plans_computed", 0)
            if plans:
                m.inc("crossbar.plans_computed", plans, router=node)
            swaps = sum(
                getattr(p, "swaps", 0) for p in router.in_ports
            )
            if swaps:
                m.inc("input_port.slot_swaps", swaps, router=node)
        ns = sim.stats
        m.inc("network.packets_created", ns.packets_created)
        m.inc("network.packets_injected", ns.packets_injected)
        m.inc("network.packets_ejected", ns.packets_ejected)
        m.inc("network.flits_injected", ns.flits_injected)
        m.inc("network.flits_ejected", ns.flits_ejected)
        m.inc("network.measured_packets", ns.measured_packets)
        m.inc("sim.cycles", sim.cycle)
        m.inc("sim.faults_injected", sim.faults_injected)
        m.set_gauge("network.max_network_latency", ns.max_network_latency)
        hist = getattr(ns, "latency_hist", None)
        if hist is not None and hist.count:
            m.adopt_histogram("network.latency_cycles", hist)

    # ------------------------------------------------------------------
    def export(self) -> dict:
        """Picklable snapshot carried on ``SimulationResult.observability``."""
        return {
            "metrics": self.metrics.snapshot() if self.metrics else None,
            "trace": self.tracer.snapshot() if self.tracer else None,
            "profile": self.profiler.snapshot() if self.profiler else None,
        }


def merge_exports(
    exports: "list[tuple[str, Optional[dict]]]",
) -> Optional[dict]:
    """Merge per-point :meth:`Observability.export` snapshots.

    ``exports`` is ``[(label, export_or_None), ...]`` in task-index
    order.  Metrics merge by exact integer summation (bit-identical for
    any sharding); traces are kept per point, labelled; profiles sum.
    Returns ``None`` when no point carried observability data.
    """
    if not any(snap for _, snap in exports):
        return None
    metrics = (
        merge_snapshots((snap or {}).get("metrics") for _, snap in exports)
        if any(snap and snap.get("metrics") for _, snap in exports)
        else None
    )
    traces = [
        (label, snap["trace"])
        for label, snap in exports
        if snap and snap.get("trace")
    ]
    profile = merge_profiles(
        (snap or {}).get("profile") for _, snap in exports
    )
    return {"metrics": metrics, "traces": traces, "profile": profile}
