"""Chrome ``trace_event`` export for the flit-lifecycle tracer.

Produces the JSON object format understood by ``chrome://tracing`` and
Perfetto (https://ui.perfetto.dev): ``{"traceEvents": [...]}`` where each
simulated router becomes one *process* and each pipeline stage one
*thread* inside it, so a loaded trace shows per-router swim lanes with
RC/VA/SA/XB/link/NIC activity over cycles.  Timestamps are simulation
cycles interpreted as microseconds (1 cycle == 1 us).

Multiple simulations (e.g. the points of a ``fig7`` sweep) can share one
file: each point's routers get their own pid block, labelled
``<point label> / router <n>`` via ``process_name`` metadata events.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, Sequence, Tuple

from .events import TraceEvent

__all__ = ["chrome_trace", "write_chrome_trace", "STAGE_LANES"]

#: event kind -> (tid, lane name): one thread row per pipeline stage
STAGE_LANES: Dict[str, Tuple[int, str]] = {
    "inject": (0, "nic"),
    "eject": (0, "nic"),
    "rc": (1, "rc"),
    "va_grant": (2, "va"),
    "va_retry": (2, "va"),
    "sa_grant": (3, "sa"),
    "sa_bypass": (3, "sa"),
    "xb": (4, "xb"),
    "link": (5, "link"),
}

#: pid stride per sweep point: room for a 64x64 mesh per point
_PID_STRIDE = 4096


def _event_name(kind: str, payload: dict) -> str:
    """Display name; splits primary/secondary XB crossings into two rows."""
    if kind == "xb":
        return "xb_secondary" if payload.get("secondary") else "xb_primary"
    return kind


def chrome_trace(
    points: Sequence[Tuple[str, Iterable[TraceEvent]]],
) -> dict:
    """Build the trace-event JSON object for one or more traced runs.

    ``points`` is a sequence of ``(label, events)`` pairs — one pair per
    simulation.  Labels distinguish sweep points (app / fault state).
    """
    trace_events: list = []
    named_pids: set = set()
    named_tids: set = set()
    for point_idx, (label, events) in enumerate(points):
        base_pid = point_idx * _PID_STRIDE
        for cycle, kind, node, payload in events:
            pid = base_pid + node
            tid, lane = STAGE_LANES.get(kind, (7, kind))
            if pid not in named_pids:
                named_pids.add(pid)
                prefix = f"{label} / " if label else ""
                trace_events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": f"{prefix}router {node}"},
                    }
                )
            if (pid, tid) not in named_tids:
                named_tids.add((pid, tid))
                trace_events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": lane},
                    }
                )
            trace_events.append(
                {
                    "name": _event_name(kind, payload),
                    "cat": "flit",
                    "ph": "X",
                    "ts": cycle,
                    "dur": 1,
                    "pid": pid,
                    "tid": tid,
                    "args": dict(payload),
                }
            )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.observability", "ts_unit": "cycle"},
    }


def write_chrome_trace(
    fp: IO[str],
    points: Sequence[Tuple[str, Iterable[TraceEvent]]],
) -> int:
    """Serialise :func:`chrome_trace` to ``fp``; returns #trace events."""
    doc = chrome_trace(points)
    json.dump(doc, fp, separators=(",", ":"))
    return len(doc["traceEvents"])
