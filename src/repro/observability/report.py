"""Human/machine-readable summaries of an observability export.

Consumes the dict produced by :meth:`Observability.export` (one run) or
:func:`repro.observability.merge_exports` (a merged sweep) and renders

* :func:`render_text` — a compact console summary: top stall causes and
  fault-path activations, latency histogram, per-stage wall-time shares,
  trace-ring accounting;
* :func:`render_json` — the same data as deterministic JSON (sorted
  keys), suitable for diffing across runs and for CI artifacts.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional

__all__ = ["render_json", "render_text", "summarize_counters"]

#: counters surfaced in the text report's "stall causes" section
STALL_COUNTERS = (
    "router.rc_blocked_cycles",
    "router.va_blocked_cycles",
    "router.va_no_free_vc_cycles",
    "router.va_borrow_wait_cycles",
    "router.sa_blocked_cycles",
    "router.unreachable_output_cycles",
)

#: counters surfaced in the "fault-path activations" section
FAULT_PATH_COUNTERS = (
    "router.va_borrowed_grants",
    "router.va_stage2_fault_retries",
    "router.sa_bypass_grants",
    "router.vc_transfers",
    "router.secondary_path_grants",
)

_LABEL_RE = re.compile(r"\{.*\}$")


def summarize_counters(counters: Dict[str, int]) -> Dict[str, int]:
    """Sum labelled counters down to their base metric names."""
    totals: Dict[str, int] = {}
    for key, value in counters.items():
        base = _LABEL_RE.sub("", key)
        totals[base] = totals.get(base, 0) + value
    return dict(sorted(totals.items()))


def _fmt_count(n: int) -> str:
    return f"{n:,}"


def render_text(export: Optional[dict]) -> str:
    """Console summary of one export / merged export."""
    if not export:
        return "observability: disabled (nothing collected)"
    lines: List[str] = ["observability summary"]

    metrics = export.get("metrics")
    if metrics:
        totals = summarize_counters(metrics.get("counters", {}))
        grants = {
            k: totals.get(k, 0)
            for k in ("router.va_grants", "router.sa_grants",
                      "router.flits_traversed")
        }
        lines.append(
            "  pipeline: "
            + ", ".join(f"{k.split('.')[1]}={_fmt_count(v)}"
                        for k, v in grants.items())
        )
        stalls = {k: totals[k] for k in STALL_COUNTERS if totals.get(k)}
        if stalls:
            lines.append("  stall causes:")
            for k, v in sorted(stalls.items(), key=lambda kv: -kv[1]):
                lines.append(f"    {k.split('.', 1)[1]:<28} {_fmt_count(v)}")
        faulty = {k: totals[k] for k in FAULT_PATH_COUNTERS if totals.get(k)}
        if faulty:
            lines.append("  fault-path activations:")
            for k, v in sorted(faulty.items(), key=lambda kv: -kv[1]):
                lines.append(f"    {k.split('.', 1)[1]:<28} {_fmt_count(v)}")
        hist = metrics.get("histograms", {}).get("network.latency_cycles")
        if hist and hist["count"]:
            mean = hist["total"] / hist["count"]
            lines.append(
                f"  latency histogram: {_fmt_count(hist['count'])} packets, "
                f"mean {mean:.2f} cycles"
            )

    profile = export.get("profile")
    if profile and profile.get("samples"):
        lines.append(
            f"  profile ({profile['samples']} sampled cycles, "
            f"every {profile['sample_every']}):"
        )
        rows = sorted(
            profile["stages"].items(), key=lambda kv: -kv[1]["time_s"]
        )
        for stage, row in rows:
            if row["time_s"] <= 0:
                continue
            lines.append(
                f"    {stage:<8} {row['share']:6.1%}  "
                f"{row['time_s'] * 1e3:8.2f} ms"
            )

    traces = export.get("traces")
    if traces is None and export.get("trace"):
        traces = [("", export["trace"])]
    if traces:
        total = sum(t["emitted"] for _, t in traces)
        kept = sum(len(t["events"]) for _, t in traces)
        lines.append(
            f"  trace: {_fmt_count(total)} events emitted across "
            f"{len(traces)} run(s), {_fmt_count(kept)} retained "
            f"({_fmt_count(total - kept)} dropped by ring bound)"
        )
    if len(lines) == 1:
        lines.append("  (no data collected)")
    return "\n".join(lines)


def render_json(export: Optional[dict]) -> str:
    """Deterministic JSON rendering (sorted keys, stable separators)."""
    return json.dumps(
        export if export is not None else {},
        sort_keys=True,
        indent=2,
        default=list,
    )
