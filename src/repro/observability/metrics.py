"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the quantitative half of :mod:`repro.observability`: it
captures *how often* things happened (stall causes, VA/SA retries,
fault-path activations, per-stage occupancy) where the event tracer
captures *when*.  Three design rules keep it compatible with the
deterministic parallel sweep engine (:mod:`repro.experiments.parallel`):

* **Integer-first.**  Counters and histogram buckets are plain ints, so
  merging per-shard snapshots is exact — no float summation order
  effects.  ``--jobs 4`` therefore produces bit-identical metrics to
  ``--jobs 1`` (pinned by ``tests/test_observability.py``).
* **Snapshot = plain dicts.**  :meth:`MetricsRegistry.snapshot` returns
  JSON-ready builtins that pickle cheaply across process boundaries;
  :func:`merge_snapshots` folds any number of them in a caller-supplied
  (task-index) order.
* **Fixed bucket edges.**  Histograms never rebucket on observe, so two
  histograms of the same series always merge bucket-by-bucket.

Bucket semantics follow Prometheus ``le`` convention: bucket ``i`` counts
values ``v <= edges[i]`` (upper-inclusive), with one extra overflow
bucket for ``v > edges[-1]``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_EDGES",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
]

#: generic latency/size edges (cycles or flits): roughly geometric
DEFAULT_EDGES: Tuple[float, ...] = (
    0, 1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192,
    256, 384, 512, 768, 1024, 1536, 2048, 4096,
)


def metric_key(name: str, labels: Dict[str, object]) -> str:
    """Canonical flat key: ``name{k1=v1,k2=v2}`` with sorted label keys."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Histogram:
    """Fixed-edge histogram with an overflow bucket.

    ``counts[i]`` counts observations ``v <= edges[i]``; ``counts[-1]``
    counts ``v > edges[-1]``.  ``total`` accumulates the raw sum so the
    mean survives bucketing.
    """

    __slots__ = ("edges", "counts", "count", "total")

    def __init__(self, edges: Sequence[float] = DEFAULT_EDGES) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError("histogram edges must be non-empty and sorted")
        self.edges: List[float] = list(edges)
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def bucket_of(self, value: float) -> int:
        """Index of the bucket an observation of ``value`` lands in."""
        return bisect_left(self.edges, value)

    def snapshot(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (edges must match)."""
        if other.edges != self.edges:
            raise ValueError("cannot merge histograms with different edges")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total


class MetricsRegistry:
    """Flat registry of named, labelled counters / gauges / histograms."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: int = 1, **labels: object) -> None:
        """Add ``value`` to the counter ``name`` (created on first use)."""
        key = metric_key(name, labels)
        self.counters[key] = self.counters.get(key, 0) + int(value)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name`` to ``value`` (merge keeps the max)."""
        self.gauges[metric_key(name, labels)] = float(value)

    def histogram(
        self,
        name: str,
        edges: Sequence[float] = DEFAULT_EDGES,
        **labels: object,
    ) -> Histogram:
        """Get-or-create the histogram ``name``."""
        key = metric_key(name, labels)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram(edges)
        return hist

    def observe(
        self,
        name: str,
        value: float,
        edges: Sequence[float] = DEFAULT_EDGES,
        **labels: object,
    ) -> None:
        self.histogram(name, edges, **labels).observe(value)

    def adopt_histogram(
        self, name: str, hist: Histogram, **labels: object
    ) -> None:
        """Copy an externally built histogram into the registry."""
        own = self.histogram(name, hist.edges, **labels)
        own.merge(hist)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON/pickle-ready snapshot with deterministically sorted keys."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                k: self.histograms[k].snapshot()
                for k in sorted(self.histograms)
            },
        }


def merge_snapshots(snapshots: Iterable[Optional[dict]]) -> dict:
    """Fold metric snapshots (skipping ``None``) into one merged snapshot.

    Counters and histogram buckets sum; gauges keep the maximum.  All
    arithmetic is on ints except gauge max, so the result is independent
    of how the inputs were sharded across workers — callers should still
    pass snapshots in task-index order so float ``total`` fields
    accumulate identically every time.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    hists: Dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for k, v in snap.get("counters", {}).items():
            counters[k] = counters.get(k, 0) + v
        for k, g in snap.get("gauges", {}).items():
            gauges[k] = max(gauges.get(k, g), g)
        for k, h in snap.get("histograms", {}).items():
            acc = hists.get(k)
            if acc is None:
                hists[k] = {
                    "edges": list(h["edges"]),
                    "counts": list(h["counts"]),
                    "count": h["count"],
                    "total": h["total"],
                }
                continue
            if acc["edges"] != h["edges"]:
                raise ValueError(f"histogram {k!r}: edges differ across shards")
            acc["counts"] = [
                a + b for a, b in zip(acc["counts"], h["counts"], strict=True)
            ]
            acc["count"] += h["count"]
            acc["total"] += h["total"]
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {k: hists[k] for k in sorted(hists)},
    }
